//! The voter-coordination insert kernel (Algorithm 1 of the paper).
//!
//! One *thread* owns each insert operation; the *warp* cooperates on
//! whichever operation wins the vote:
//!
//! 1. `ballot` over the still-active lanes elects a leader `l'`.
//! 2. The leader broadcasts its KV and target subtable, then tries to lock
//!    the destination bucket with `atomicCAS`.
//! 3. On failure the warp **re-votes another leader** instead of spinning —
//!    the core idea of the voter scheme (`nth_active_lane`). The
//!    [`crate::Coordination::Spin`] ablation disables the re-vote.
//! 4. On success the warp inspects the bucket with one coalesced read and a
//!    ballot: a matching key is updated, an empty slot is filled, a full
//!    bucket first re-routes a fresh KV to its remaining candidate
//!    subtables, and only then evicts a victim whose KV the leader
//!    re-targets at the victim's own destination (two-layer invariant),
//!    steered by Theorem 1.
//!
//! Operations whose eviction chain exceeds the configured limit are reported
//! as failed; the table layer responds by upsizing and retrying them, which
//! is exactly the paper's "insertion failure triggers resizing" rule.

use std::collections::HashMap;

use gpu_sim::ChargeKind;
use gpu_sim::{ballot, run_rounds_with, Metrics, RoundCtx, RoundKernel, StepOutcome, WARP_SIZE};

use crate::config::{Coordination, Distribution, DupPolicy, Layering};
use crate::distribute::{choose_among, choose_victim};
use crate::rmw::MergeRule;
use crate::subtable::{SubTable, EMPTY_KEY};
use crate::table::migration::{MigrationView, Route};
use crate::table::{TableShape, MAX_TABLES};

/// Where an insert operation is in its life cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Fresh operation: not yet routed to a subtable.
    Init,
    /// The key was observed in subtable `t`; update it under lock.
    Update { t: usize },
    /// Insert (or continue an eviction chain) into subtable `target`.
    /// `reroutes_left` counts how many *other* candidate buckets a fresh op
    /// may still try on a full bucket before resorting to eviction
    /// (try-all-before-evicting, standard for bucketized cuckoo). Keys in
    /// an eviction chain have a fixed destination, so they evict
    /// immediately.
    Probe { target: usize, reroutes_left: u8 },
}

/// One insert operation, owned by one lane.
#[derive(Debug, Clone, Copy)]
pub(crate) struct InsertOp {
    pub key: u32,
    pub val: u32,
    /// Deterministic per-op randomness source (global op index). Constant
    /// across the op's whole eviction chain, so it doubles as the chain id
    /// in flight-recorder events.
    pub salt: u64,
    evictions: u32,
    phase: Phase,
    /// Internal re-inserts (resize residuals, failure retries) are known
    /// unique: skip the Upsert duplicate pre-probe.
    skip_dup_check: bool,
    /// Buckets this op has probed (flight-recorder accounting only; never
    /// feeds [`Metrics`], so recording cannot drift the cost model).
    probes: u32,
    /// Failed bucket-lock acquisitions this op has suffered.
    lock_waits: u32,
    /// Merge rule applied when the key is found present. `val` holds the
    /// raw *argument* while the rule is armed; every write site goes
    /// through `rule.initial`/`rule.merge`, and any path that materializes
    /// the KV (eviction swap, failure retry) resets the rule to
    /// `LastWrite` so downstream re-insert machinery stays verbatim.
    rule: MergeRule,
    /// Caller-side index for freshness tracking (`u32::MAX` = untracked):
    /// pushed to [`InsertOutcome::merged`] when the op merges into an
    /// existing key instead of placing a fresh one.
    out_idx: u32,
}

/// Emit the op's flight-recorder retirement event. Call at every point
/// that clears the op's active bit (or pushes it to `failed`).
#[inline]
fn retire(op: &InsertOp, outcome: obs::OpOutcome) {
    if obs::is_enabled() {
        // Tracked RMW ops retire as `Upsert`; eviction carries and plain
        // inserts (out_idx cleared / never set) as `Insert`.
        let kind = if op.out_idx != u32::MAX {
            obs::OpKind::Upsert
        } else {
            obs::OpKind::Insert
        };
        obs::emit(obs::Event::OpRetired {
            kind,
            op: op.salt,
            key: op.key as u64,
            outcome,
            probes: op.probes,
            evict_depth: op.evictions,
            lock_waits: op.lock_waits,
        });
    }
}

impl InsertOp {
    /// A fresh insert of `(key, val)`.
    pub fn fresh(key: u32, val: u32, salt: u64) -> Self {
        Self {
            key,
            val,
            salt,
            evictions: 0,
            phase: Phase::Init,
            skip_dup_check: false,
            probes: 0,
            lock_waits: 0,
            rule: MergeRule::LastWrite,
            out_idx: u32::MAX,
        }
    }

    /// A fresh read-modify-write op: insert `rule.initial(arg)` if `key` is
    /// absent, merge `rule.merge(old, arg)` under the claim lock if present.
    /// `out_idx` tags the op in [`InsertOutcome::merged`] (`u32::MAX` to
    /// opt out of tracking).
    pub fn upsert(key: u32, arg: u32, salt: u64, rule: MergeRule, out_idx: u32) -> Self {
        Self {
            key,
            val: arg,
            salt,
            evictions: 0,
            phase: Phase::Init,
            skip_dup_check: false,
            probes: 0,
            lock_waits: 0,
            rule,
            out_idx,
        }
    }

    /// A re-insert of a key known not to reside in the table (resize
    /// residuals, failed-op retries): routed normally but without the
    /// Upsert duplicate pre-probe.
    pub fn reinsert(key: u32, val: u32, salt: u64) -> Self {
        Self {
            key,
            val,
            salt,
            evictions: 0,
            phase: Phase::Init,
            skip_dup_check: true,
            probes: 0,
            lock_waits: 0,
            rule: MergeRule::LastWrite,
            out_idx: u32::MAX,
        }
    }
}

/// Per-warp state: up to 32 lane-owned operations plus the voter cursor.
pub(crate) struct InsertWarp {
    ops: Vec<InsertOp>,
    active: u32,
    /// Re-vote rotation: advanced whenever a leader fails its lock, so the
    /// next vote elects a different lane (Algorithm 1, line "revote").
    rr: usize,
}

impl InsertWarp {
    fn new(ops: Vec<InsertOp>) -> Self {
        debug_assert!(ops.len() <= WARP_SIZE);
        let active = if ops.len() == 32 {
            u32::MAX
        } else {
            (1u32 << ops.len()) - 1
        };
        Self { ops, active, rr: 0 }
    }
}

/// Outputs of one insert kernel execution.
#[derive(Debug, Default)]
pub(crate) struct InsertOutcome {
    /// KVs placed into previously empty slots.
    pub inserted: u64,
    /// KVs that updated an existing key in place.
    pub updated: u64,
    /// Operations that exceeded the eviction limit (carrying whatever KV
    /// the chain was holding when it gave up). The caller upsizes and
    /// retries these. Unapplied merges are materialized at the failure
    /// site (`val = rule.initial(arg)`, rule reset to `LastWrite`), so
    /// retry paths may re-insert the KV verbatim.
    pub failed: Vec<InsertOp>,
    /// `out_idx` tags of tracked ops that merged into an existing key
    /// (the key was already present). Tracked ops absent from this list
    /// placed a fresh key — the signal frontier-dedup workloads consume.
    pub merged: Vec<u32>,
}

struct InsertKernel<'a> {
    tables: &'a mut [SubTable],
    shape: &'a TableShape,
    /// Subtable excluded from targeting and victim selection (set while it
    /// is being downsized).
    excluded: Option<usize>,
    /// In-flight incremental migration: probes of the draining subtable are
    /// routed per key to its old or fresh bucket (see
    /// [`crate::table::migration`]). The two-lookup bound is preserved —
    /// each candidate subtable still costs exactly one bucket probe.
    migration: Option<(MigrationView, &'a mut SubTable)>,
    out: InsertOutcome,
    /// Fault injection (see [`crate::Config::inject_lock_elision`]): probe
    /// steps skip bucket locks and read these stale bucket snapshots
    /// (captured on first touch, held for the whole kernel launch) while
    /// their writes land in the live table — the lost-update race a missing
    /// lock produces on real hardware, where a thread keeps acting on the
    /// bucket image it cached without the lock's acquire to refresh it.
    stale_buckets: Option<HashMap<(usize, usize), Vec<u32>>>,
}

impl InsertKernel<'_> {
    /// The bucket's keys as of the first time any op touched it this kernel
    /// launch (first touch snapshots the live bucket). Fresh-side buckets
    /// are keyed under `t + MAX_TABLES` so they never alias old-side snaps.
    fn stale_keys(&mut self, t: usize, b: usize, in_fresh: bool) -> &[u32] {
        let tables = &*self.tables;
        let migration = &self.migration;
        let snaps = self.stale_buckets.as_mut().expect("injection enabled");
        let key = if in_fresh { t + MAX_TABLES } else { t };
        snaps.entry((key, b)).or_insert_with(|| {
            if in_fresh {
                &*migration.as_ref().expect("fresh without migration").1
            } else {
                &tables[t]
            }
            .bucket_keys(b)
            .to_vec()
        })
    }

    /// Resolve the bucket, lock space and side for `key` in subtable `t`,
    /// honouring an in-flight migration of that subtable.
    fn locate(&self, t: usize, key: u32) -> (usize, u32, bool) {
        if let Some((view, _)) = &self.migration {
            if view.table == t {
                return match view.route(&self.shape.hashes[t], key) {
                    Route::Old(b) => (b, t as u32, false),
                    Route::Fresh(b) => (b, view.fresh_space(), true),
                };
            }
        }
        let b = self.shape.hashes[t].bucket(key, self.tables[t].n_buckets());
        (b, t as u32, false)
    }

    /// The store a located bucket lives in.
    fn store(&mut self, t: usize, in_fresh: bool) -> &mut SubTable {
        if in_fresh {
            self.migration.as_mut().expect("fresh without migration").1
        } else {
            &mut self.tables[t]
        }
    }

    /// Read-only view of a located bucket's store.
    fn store_ro(&self, t: usize, in_fresh: bool) -> &SubTable {
        if in_fresh {
            self.migration.as_ref().expect("fresh without migration").1
        } else {
            &self.tables[t]
        }
    }
}

impl InsertKernel<'_> {
    /// Apply the op's merge into an existing slot under the held lock:
    /// read the old value when the rule needs it (one value-read line;
    /// `LastWrite` blind-writes and charges nothing extra), write the
    /// merged value, and record the op as non-fresh.
    fn merge_in_place(
        &mut self,
        op: &InsertOp,
        t: usize,
        b: usize,
        slot: usize,
        in_fresh: bool,
        ctx: &mut RoundCtx,
    ) {
        let new = if op.rule.reads_old() {
            let old = self.store_ro(t, in_fresh).slot(b, slot).1;
            self.shape.cfg.layout.charge_value_read(ctx);
            op.rule.merge(old, op.val)
        } else {
            op.val
        };
        self.store(t, in_fresh).update_val(b, slot, new);
        self.shape.cfg.layout.charge_value_write(ctx);
        self.out.updated += 1;
        if op.out_idx != u32::MAX {
            self.out.merged.push(op.out_idx);
        }
    }

    /// Fail the op: materialize an unapplied merge first (the key is
    /// absent, so the retry must insert `rule.initial(arg)` — ops already
    /// in an eviction chain carry a victim's literal KV and are left
    /// alone), then retire and push to `failed`.
    fn fail(&mut self, warp: &mut InsertWarp, leader: usize, mut op: InsertOp) {
        if op.evictions == 0 {
            op.val = op.rule.initial(op.val);
            op.rule = MergeRule::LastWrite;
        }
        retire(&op, obs::OpOutcome::Failed);
        self.out.failed.push(op);
        warp.active &= !(1 << leader);
    }

    /// Pick the initial second-layer target for a fresh op, honouring the
    /// exclusion.
    fn route(&self, op: &InsertOp) -> usize {
        let cands = self.shape.candidates(op.key);
        let viable: Vec<usize> = cands.iter().filter(|&c| Some(c) != self.excluded).collect();
        debug_assert!(!viable.is_empty(), "all candidates excluded");
        choose_among(
            self.shape.cfg.distribution,
            self.tables,
            &viable,
            self.shape.cfg.seed,
            op.key,
            op.salt,
        )
    }

    /// The next candidate bucket for a fresh op re-routing off a full
    /// bucket: the candidate after `t`, cyclically, skipping the exclusion.
    fn next_candidate(&self, key: u32, t: usize) -> Option<usize> {
        let cands = self.shape.candidates(key);
        let pos = cands.position(t)?;
        for off in 1..cands.len() {
            let c = cands.get((pos + off) % cands.len());
            if Some(c) != self.excluded {
                return Some(c);
            }
        }
        None
    }

    /// Full bucket, no re-routes left: evict a victim, steered by Theorem 1.
    #[allow(clippy::too_many_arguments)]
    fn evict(
        &mut self,
        warp: &mut InsertWarp,
        leader: usize,
        op: InsertOp,
        t: usize,
        b: usize,
        in_fresh: bool,
        ctx: &mut RoundCtx,
    ) {
        let shape = self.shape;
        let excluded = self.excluded;
        let salt = op.salt ^ (op.evictions as u64) << 32;
        let victim = match shape.cfg.layering {
            // Pair layerings: a victim's destination is its pair's other
            // member; prefer victims whose destination has the most room.
            Layering::TwoLayer | Layering::DisjointPairs => {
                let tables_ro: &[SubTable] = self.tables;
                let store_ro: &SubTable = if in_fresh {
                    self.migration.as_ref().expect("fresh without migration").1
                } else {
                    &tables_ro[t]
                };
                choose_victim(
                    shape.cfg.distribution,
                    tables_ro,
                    |s| {
                        let (k, _) = store_ro.slot(b, s);
                        shape.evict_destination(tables_ro, k, t, excluded, salt)
                    },
                    shape.cfg.layout.slots,
                    shape.cfg.seed,
                    salt,
                )
            }
            // Plain d-ary cuckoo: any slot works (its destination is chosen
            // afterwards among the d−1 other subtables).
            Layering::PlainD => choose_victim(
                Distribution::Uniform,
                self.tables,
                |_| Some(0),
                shape.cfg.layout.slots,
                shape.cfg.seed,
                salt,
            ),
        };
        match victim {
            None => {
                // Every victim would land in the excluded subtable
                // (vanishingly rare): give up, let the caller retry after
                // the resize completes.
                self.fail(warp, leader, op);
            }
            Some(slot) => {
                let victim_key = self.store_ro(t, in_fresh).slot(b, slot).0;
                let Some(next) =
                    self.shape
                        .evict_destination(self.tables, victim_key, t, excluded, salt)
                else {
                    self.fail(warp, leader, op);
                    return;
                };
                let _attr = obs::attr::scope("evict-chain");
                // The swap places the op's key as a *fresh* entry (the dup
                // scan above found no duplicate), so an armed merge rule
                // materializes here; the carried victim is a literal KV.
                let (ek, ev) =
                    self.store(t, in_fresh)
                        .swap(b, slot, op.key, op.rule.initial(op.val));
                self.shape.cfg.layout.charge_kv_write(ctx);
                ctx.metrics.charge(ChargeKind::Evictions, 1);
                if obs::is_enabled() {
                    obs::emit(obs::Event::EvictStep {
                        op: op.salt,
                        placed_key: op.key as u64,
                        carried_key: ek as u64,
                        from_table: t as u8,
                        to_table: next as u8,
                        depth: op.evictions + 1,
                    });
                }
                let lane_op = &mut warp.ops[leader];
                lane_op.key = ek;
                lane_op.val = ev;
                lane_op.evictions = op.evictions + 1;
                lane_op.rule = MergeRule::LastWrite;
                lane_op.out_idx = u32::MAX;
                lane_op.phase = Phase::Probe {
                    target: next,
                    reroutes_left: 0,
                };
                if lane_op.evictions >= self.shape.cfg.eviction_limit {
                    retire(lane_op, obs::OpOutcome::Failed);
                    self.out.failed.push(*lane_op);
                    warp.active &= !(1 << leader);
                }
            }
        }
    }
}

impl RoundKernel<InsertWarp> for InsertKernel<'_> {
    fn step(&mut self, warp: &mut InsertWarp, ctx: &mut RoundCtx) -> StepOutcome {
        let mask = ballot(|l| warp.active & (1 << l) != 0);
        if mask == 0 {
            return StepOutcome::Done;
        }
        let leader = super::nth_active_lane(mask, warp.rr);
        let op = warp.ops[leader];

        match op.phase {
            Phase::Init => {
                let reroutes = if self.shape.cfg.reroute_before_evict {
                    self.shape.candidates(op.key).len() as u8 - 1
                } else {
                    0
                };
                if self.shape.cfg.dup_policy == DupPolicy::Upsert && !op.skip_dup_check {
                    // Optimistic duplicate probe of every candidate bucket.
                    let mut found = None;
                    for t in self.shape.candidates(op.key).iter() {
                        let (b, _, in_fresh) = self.locate(t, op.key);
                        warp.ops[leader].probes += 1;
                        if self
                            .store_ro(t, in_fresh)
                            .probe_find(b, op.key, ctx)
                            .is_some()
                        {
                            found = Some(t);
                            break;
                        }
                    }
                    warp.ops[leader].phase = match found {
                        Some(t) => Phase::Update { t },
                        None => Phase::Probe {
                            target: self.route(&op),
                            reroutes_left: reroutes,
                        },
                    };
                } else {
                    warp.ops[leader].phase = Phase::Probe {
                        target: self.route(&op),
                        reroutes_left: reroutes,
                    };
                }
                StepOutcome::Pending
            }

            Phase::Update { t } => {
                let (b, space, in_fresh) = self.locate(t, op.key);
                if !ctx.atomic_cas_lock(&mut self.store(t, in_fresh).locks, space, b) {
                    warp.ops[leader].lock_waits += 1;
                    if self.shape.cfg.coordination == Coordination::Voter {
                        warp.rr += 1; // revote
                    }
                    return StepOutcome::Pending;
                }
                // Re-verify under the lock: the key may have been evicted to
                // another candidate bucket since the optimistic probe.
                warp.ops[leader].probes += 1;
                if let Some(slot) = self.store_ro(t, in_fresh).probe_find(b, op.key, ctx) {
                    self.merge_in_place(&op, t, b, slot, in_fresh, ctx);
                    retire(&warp.ops[leader], obs::OpOutcome::Updated);
                    warp.active &= !(1 << leader);
                } else {
                    let reroutes = if self.shape.cfg.reroute_before_evict {
                        self.shape.candidates(op.key).len() as u8 - 1
                    } else {
                        0
                    };
                    warp.ops[leader].phase = Phase::Probe {
                        target: self.route(&op),
                        reroutes_left: reroutes,
                    };
                }
                ctx.atomic_exch_unlock(&mut self.store(t, in_fresh).locks, space, b);
                StepOutcome::Pending
            }

            Phase::Probe {
                target,
                reroutes_left,
            } => {
                let t = target;
                let (b, space, in_fresh) = self.locate(t, op.key);
                if self.stale_buckets.is_some() {
                    // Injected bug: no lock, and the probe reads the bucket
                    // as it was when the kernel first touched it. Two ops
                    // racing for one bucket both see the same "empty" slot;
                    // the later write clobbers the earlier key.
                    self.shape.cfg.layout.charge_probe(ctx);
                    warp.ops[leader].probes += 1;
                    let op = warp.ops[leader];
                    let snap = self.stale_keys(t, b, in_fresh);
                    let dup = snap.iter().position(|&k| k == op.key);
                    let empty = snap.iter().position(|&k| k == EMPTY_KEY);
                    if let Some(slot) = dup {
                        self.merge_in_place(&op, t, b, slot, in_fresh, ctx);
                        retire(&op, obs::OpOutcome::Updated);
                        warp.active &= !(1 << leader);
                    } else if let Some(slot) = empty {
                        let stored = op.rule.initial(op.val);
                        if self.store_ro(t, in_fresh).slot(b, slot).0 == EMPTY_KEY {
                            self.store(t, in_fresh).write_new(b, slot, op.key, stored);
                        } else {
                            // The slot was claimed earlier this round: the
                            // lost update the elided lock would have caused.
                            self.store(t, in_fresh).swap(b, slot, op.key, stored);
                        }
                        self.shape.cfg.layout.charge_kv_write(ctx);
                        self.out.inserted += 1;
                        retire(&op, obs::OpOutcome::Inserted);
                        warp.active &= !(1 << leader);
                    } else if reroutes_left > 0 {
                        warp.ops[leader].phase = match self.next_candidate(op.key, t) {
                            Some(next) => Phase::Probe {
                                target: next,
                                reroutes_left: reroutes_left - 1,
                            },
                            None => Phase::Probe {
                                target: t,
                                reroutes_left: 0,
                            },
                        };
                    } else {
                        self.evict(warp, leader, op, t, b, in_fresh, ctx);
                    }
                    return StepOutcome::Pending;
                }
                if !ctx.atomic_cas_lock(&mut self.store(t, in_fresh).locks, space, b) {
                    warp.ops[leader].lock_waits += 1;
                    if self.shape.cfg.coordination == Coordination::Voter {
                        warp.rr += 1; // revote
                    }
                    return StepOutcome::Pending;
                }
                warp.ops[leader].probes += 1;
                let op = warp.ops[leader];
                let (dup, empty) = self.store_ro(t, in_fresh).probe_for_insert(b, op.key, ctx);
                if let Some(slot) = dup {
                    // Same-bucket duplicate: merge in place (Algorithm 1's
                    // "loc[l].key == k'" arm, generalized over the rule).
                    self.merge_in_place(&op, t, b, slot, in_fresh, ctx);
                    retire(&op, obs::OpOutcome::Updated);
                    warp.active &= !(1 << leader);
                } else if let Some(slot) = empty {
                    self.store(t, in_fresh)
                        .write_new(b, slot, op.key, op.rule.initial(op.val));
                    self.shape.cfg.layout.charge_kv_write(ctx);
                    self.out.inserted += 1;
                    retire(&op, obs::OpOutcome::Inserted);
                    warp.active &= !(1 << leader);
                } else if reroutes_left > 0 {
                    // Fresh op, full bucket: try another candidate bucket
                    // before resorting to eviction.
                    warp.ops[leader].phase = match self.next_candidate(op.key, t) {
                        Some(next) => Phase::Probe {
                            target: next,
                            reroutes_left: reroutes_left - 1,
                        },
                        None => Phase::Probe {
                            target: t,
                            reroutes_left: 0,
                        },
                    };
                } else {
                    self.evict(warp, leader, op, t, b, in_fresh, ctx);
                }
                ctx.atomic_exch_unlock(&mut self.store(t, in_fresh).locks, space, b);
                StepOutcome::Pending
            }
        }
    }

    fn end_round(&mut self) {
        for t in self.tables.iter_mut() {
            t.locks.end_round();
        }
        if let Some((_, fresh)) = self.migration.as_mut() {
            fresh.locks.end_round();
        }
        // Note: `stale_buckets` is deliberately NOT cleared here — the
        // injected bug models a thread that cached the bucket without the
        // lock acquire that would force a re-read, so the staleness
        // persists across rounds within one kernel launch.
    }
}

/// Execute a batched insert of pre-built operations. Does *not* bump
/// `metrics.ops` — the public API counts each user operation exactly once,
/// so internal reuse (resize residuals, failure retries) stays out of the
/// throughput denominator.
pub(crate) fn insert_batch<'a>(
    tables: &'a mut [SubTable],
    shape: &'a TableShape,
    ops: Vec<InsertOp>,
    excluded: Option<usize>,
    migration: Option<(MigrationView, &'a mut SubTable)>,
    metrics: &mut Metrics,
) -> InsertOutcome {
    let mut warps: Vec<InsertWarp> = super::pack_warps(ops)
        .into_iter()
        .map(InsertWarp::new)
        .collect();
    let mut kernel = InsertKernel {
        tables,
        shape,
        excluded,
        migration,
        out: InsertOutcome::default(),
        stale_buckets: shape.cfg.inject_lock_elision.then(HashMap::new),
    };
    let recording = obs::is_enabled();
    let rounds_before = metrics.rounds;
    if recording {
        obs::span_begin(obs::Event::LaunchBegin {
            kind: obs::OpKind::Insert,
            warps: warps.len() as u32,
        });
    }
    run_rounds_with(&mut kernel, &mut warps, metrics, shape.cfg.schedule);
    if recording {
        obs::span_end(obs::Event::LaunchEnd {
            rounds: metrics.rounds - rounds_before,
        });
    }
    kernel.out
}
