//! **perf_ledger** — the canonical scenario suite behind the repo's
//! machine-readable performance ledger and CI budget gates.
//!
//! Runs six fixed-size scenarios spanning the stack's cost surfaces —
//! static insert, static find, negative lookups, dynamic churn, the
//! unsized string-key tier, and mid-migration churn — each under the
//! [`obs::attr`] cost-attribution profiler, and emits:
//!
//! * **`BENCH.json`** (`--json PATH`, default `BENCH.json`): a
//!   schema-versioned machine-readable ledger — per scenario: ops, Mops,
//!   transaction counts, lines/probe, and the top attribution paths.
//! * **`TELEMETRY_SNAP`**: the unified registry snapshot carrying both the
//!   aggregate `ledger_*` counters and the per-path `attr_tx{path=...}`
//!   attribution, so CI's byte-for-byte diff against
//!   `results/perf-ledger.snap` doubles as a per-path attribution diff.
//!
//! Every scenario asserts the **conservation law** in-process: the sum of
//! attributed counters equals the `Metrics` totals for all twelve counter
//! kinds — a drifted charge site fails the run, not just the snapshot.
//!
//! **Budget gates**: each scenario carries a hard transaction budget
//! (~15 % above the pinned cost). Exceeding it prints which attribution
//! paths regressed — diffed against the pinned snapshot when present —
//! and exits 1. `--inject-violation` halves the budgets so CI can prove
//! the gate fires; `--validate FILE` checks an existing `BENCH.json`
//! against the expected schema version and scenario set without running
//! anything.
//!
//! Scenario sizes are fixed (not `REPRO_SCALE`-dependent): budgets and the
//! pinned snapshot only make sense against one canonical workload.
//!
//! ```text
//! perf_ledger [--json PATH] [--pinned PATH] [--inject-violation]
//! perf_ledger --validate FILE
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::process::ExitCode;

use bench::measure;
use bench::report::Table;
use bench::telemetry::Telemetry;
use dycuckoo::{Config, DyCuckoo, UnsizedConfig, UnsizedTable};
use gpu_sim::{ChargeKind, Metrics, SimContext};
use obs::attr;
use workloads::{LengthDist, StrDatasetSpec};

const SCHEMA_VERSION: u32 = 1;
const BATCH: usize = 512;
const SEED: u64 = 0xD_1CE;
/// Keys in the fixed-tier static scenarios.
const STATIC_PAIRS: u32 = 20_000;
/// Pairs in the unsized-tier mix.
const STRKEY_PAIRS: usize = 6_000;

/// Per-scenario transaction budgets: the measured canonical cost plus
/// ~15 % headroom. A regression that pushes any scenario past its budget
/// fails CI with an attribution diff naming the paths that moved.
const BUDGETS: &[(&str, u64)] = &[
    ("static_insert", 139_000),
    ("static_find", 59_000),
    ("negative_find", 46_000),
    ("dynamic_churn", 73_000),
    ("strkey_mix", 168_000),
    ("migration_churn", 260_000),
];

struct Scenario {
    name: &'static str,
    ops: u64,
    mops: f64,
    metrics: Metrics,
    /// Read transactions per probe net of one value line per hit; only
    /// meaningful for find-dominated windows (None elsewhere).
    lines_per_probe: Option<f64>,
    attribution: attr::Attribution,
}

fn budget_of(name: &str) -> u64 {
    BUDGETS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, b)| *b)
        .unwrap_or(u64::MAX)
}

/// Assert Σ attributed == Metrics totals for every counter kind. The
/// choke-point design makes this hold by construction; a failure means a
/// charge site bypassed `Metrics::charge`.
fn assert_conservation(name: &str, attribution: &attr::Attribution, totals: &Metrics) {
    for kind in ChargeKind::ALL {
        assert_eq!(
            attribution.total(kind),
            totals.get(kind),
            "{name}: attribution drift on {} (Σ attributed != Metrics total)",
            kind.name(),
        );
    }
}

/// Run one attributed scenario: `f` performs the measured windows against
/// `sim` and returns (ops, accumulated window metrics, simulated ns).
/// Charges outside `measure` windows (e.g. resizes between batches) are
/// folded into the totals so conservation covers the whole window.
fn run_scenario(
    name: &'static str,
    sim: &mut SimContext,
    lines_per_probe: impl FnOnce(&Metrics) -> Option<f64>,
    f: impl FnOnce(&mut SimContext) -> (u64, Metrics, f64),
) -> Scenario {
    // Drop charges from table construction / earlier scenarios so the
    // attribution window and the conservation totals start together.
    let _ = sim.take_metrics();
    attr::start();
    let (ops, mut totals, ns) = f(sim);
    // Residual charges that happened on `sim` outside any measure window.
    totals.merge(&sim.take_metrics());
    let attribution = attr::stop();
    assert_conservation(name, &attribution, &totals);
    let mops = ops as f64 * 1000.0 / ns;
    Scenario {
        name,
        ops,
        mops,
        lines_per_probe: lines_per_probe(&totals),
        metrics: totals,
        attribution,
    }
}

fn find_lines_per_probe(m: &Metrics) -> Option<f64> {
    // Net of one value line per hit (ops - misses): both tiers' split
    // layouts charge exactly one line per found value.
    Some((m.read_transactions as f64) / m.lookups as f64)
}

/// Scenarios 1–3: build one fixed-tier table, then measure insert-all,
/// find-all, and all-miss windows separately.
fn fixed_static_suite(out: &mut Vec<Scenario>) {
    let mut sim = SimContext::new();
    let mut table = DyCuckoo::new(
        Config {
            seed: SEED,
            ..Config::default()
        },
        &mut sim,
    )
    .expect("fixed-tier table");
    let kvs: Vec<(u32, u32)> = (1..=STATIC_PAIRS).map(|k| (k, k ^ 0x5A5A)).collect();

    out.push(run_scenario(
        "static_insert",
        &mut sim,
        |_| None,
        |sim| {
            let (mut ops, mut total, mut ns) = (0, Metrics::default(), 0.0);
            for chunk in kvs.chunks(BATCH) {
                let (r, m) = measure(sim, |sim| table.insert_batch(sim, chunk));
                r.expect("static insert");
                ops += m.ops;
                total.merge(&m.metrics);
                ns += m.ns;
            }
            (ops, total, ns)
        },
    ));
    assert_eq!(table.len(), STATIC_PAIRS as u64, "static inserts lost");

    let keys: Vec<u32> = (1..=STATIC_PAIRS).collect();
    out.push(run_scenario(
        "static_find",
        &mut sim,
        find_lines_per_probe,
        |sim| {
            let (mut found, mut ops, mut total, mut ns) = (0u64, 0, Metrics::default(), 0.0);
            for chunk in keys.chunks(BATCH) {
                let (got, m) = measure(sim, |sim| table.find_batch(sim, chunk));
                found += got.iter().filter(|g| g.is_some()).count() as u64;
                ops += m.ops;
                total.merge(&m.metrics);
                ns += m.ns;
            }
            assert_eq!(found, STATIC_PAIRS as u64, "find-all missed keys");
            (ops, total, ns)
        },
    ));

    let absent: Vec<u32> = (STATIC_PAIRS + 1..=2 * STATIC_PAIRS).collect();
    out.push(run_scenario(
        "negative_find",
        &mut sim,
        find_lines_per_probe,
        |sim| {
            let (mut hits, mut ops, mut total, mut ns) = (0u64, 0, Metrics::default(), 0.0);
            for chunk in absent.chunks(BATCH) {
                let (got, m) = measure(sim, |sim| table.find_batch(sim, chunk));
                hits += got.iter().filter(|g| g.is_some()).count() as u64;
                ops += m.ops;
                total.merge(&m.metrics);
                ns += m.ns;
            }
            assert_eq!(hits, 0, "negative window found phantom keys");
            (ops, total, ns)
        },
    ));
}

/// Scenario 4: the r-sweep shape — delete/insert churn at a steady size,
/// driving both the delete path and fresh-key inserts (with any resizes
/// the flux triggers attributed to `maintenance/*`).
fn dynamic_churn(out: &mut Vec<Scenario>) {
    let mut sim = SimContext::new();
    let mut table = DyCuckoo::new(
        Config {
            seed: SEED,
            ..Config::default()
        },
        &mut sim,
    )
    .expect("churn table");
    let base: Vec<(u32, u32)> = (1..=16_000u32).map(|k| (k, k ^ 0x5A5A)).collect();
    for chunk in base.chunks(BATCH) {
        table.insert_batch(&mut sim, chunk).expect("churn preload");
    }
    out.push(run_scenario(
        "dynamic_churn",
        &mut sim,
        |_| None,
        |sim| {
            let (mut ops, mut total, mut ns) = (0, Metrics::default(), 0.0);
            let mut next_key = 16_001u32;
            for round in 0..16u32 {
                let dead: Vec<u32> =
                    (round * BATCH as u32 + 1..=(round + 1) * BATCH as u32).collect();
                let (r, m) = measure(sim, |sim| table.delete_batch(sim, &dead));
                r.expect("churn delete");
                ops += m.ops;
                total.merge(&m.metrics);
                ns += m.ns;
                let fresh: Vec<(u32, u32)> = (next_key..next_key + BATCH as u32)
                    .map(|k| (k, k ^ 0x5A5A))
                    .collect();
                next_key += BATCH as u32;
                let (r, m) = measure(sim, |sim| table.insert_batch(sim, &fresh));
                r.expect("churn insert");
                ops += m.ops;
                total.merge(&m.metrics);
                ns += m.ns;
            }
            (ops, total, ns)
        },
    ));
}

/// Scenario 5: the unsized tier under the mixed key-length distribution —
/// insert-all then find-all, with arena dereferences attributed under
/// `arena-deref`.
fn strkey_mix(out: &mut Vec<Scenario>) {
    let data = StrDatasetSpec {
        pairs: STRKEY_PAIRS,
        key_dist: LengthDist::Mixed,
        val_len: (0, 24),
        seed: SEED,
    }
    .generate();
    let mut sim = SimContext::new();
    let mut table = UnsizedTable::new(
        UnsizedConfig {
            seed: SEED,
            ..UnsizedConfig::default()
        },
        &mut sim,
    )
    .expect("unsized table");
    out.push(run_scenario(
        "strkey_mix",
        &mut sim,
        |_| None,
        |sim| {
            let (mut ops, mut total, mut ns) = (0, Metrics::default(), 0.0);
            for chunk in data.chunks(BATCH) {
                let refs: Vec<(&[u8], &[u8])> = chunk
                    .iter()
                    .map(|(k, v)| (k.as_slice(), v.as_slice()))
                    .collect();
                let (r, m) = measure(sim, |sim| table.insert_batch(sim, &refs));
                r.expect("strkey insert");
                ops += m.ops;
                total.merge(&m.metrics);
                ns += m.ns;
            }
            let mut found = 0u64;
            for chunk in data.chunks(BATCH) {
                let keys: Vec<&[u8]> = chunk.iter().map(|(k, _)| k.as_slice()).collect();
                let (got, m) = measure(sim, |sim| table.find_batch(sim, &keys));
                found += got
                    .expect("strkey find")
                    .iter()
                    .filter(|g| g.is_some())
                    .count() as u64;
                ops += m.ops;
                total.merge(&m.metrics);
                ns += m.ns;
            }
            assert_eq!(found, STRKEY_PAIRS as u64, "strkey find-all missed keys");
            (ops, total, ns)
        },
    ));
}

/// Scenario 6: growth under a finite migration quantum with finds
/// interleaved mid-migration, so `maintenance/migrate` carries real
/// traffic alongside the op paths.
fn migration_churn(out: &mut Vec<Scenario>) {
    let mut sim = SimContext::new();
    let mut table = DyCuckoo::new(
        Config {
            seed: SEED,
            migration_quantum: 16,
            ..Config::default()
        },
        &mut sim,
    )
    .expect("migration table");
    out.push(run_scenario(
        "migration_churn",
        &mut sim,
        |_| None,
        |sim| {
            let (mut ops, mut total, mut ns) = (0, Metrics::default(), 0.0);
            let kvs: Vec<(u32, u32)> = (1..=24_000u32).map(|k| (k, k ^ 0x5A5A)).collect();
            for chunk in kvs.chunks(BATCH) {
                let (r, m) = measure(sim, |sim| table.insert_batch(sim, chunk));
                r.expect("migration insert");
                ops += m.ops;
                total.merge(&m.metrics);
                ns += m.ns;
                // Probe a stripe of already-inserted keys while the
                // migration machine is (often) mid-drain.
                let lo = chunk[0].0.saturating_sub(BATCH as u32).max(1);
                let probes: Vec<u32> = (lo..lo + (BATCH / 4) as u32).collect();
                let (_, m) = measure(sim, |sim| table.find_batch(sim, &probes));
                ops += m.ops;
                total.merge(&m.metrics);
                ns += m.ns;
            }
            (ops, total, ns)
        },
    ));
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Render the ledger as schema-versioned JSON (hand-rolled, deterministic
/// key order, fixed float precision).
fn to_json(scenarios: &[Scenario], inject: bool) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema_version\": {SCHEMA_VERSION},");
    let _ = writeln!(out, "  \"suite\": \"perf-ledger\",");
    let _ = writeln!(out, "  \"scenarios\": [");
    for (i, s) in scenarios.iter().enumerate() {
        let m = &s.metrics;
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", json_escape(s.name));
        let _ = writeln!(out, "      \"ops\": {},", s.ops);
        let _ = writeln!(out, "      \"mops\": {:.3},", s.mops);
        let _ = writeln!(out, "      \"transactions\": {},", m.transactions());
        let _ = writeln!(out, "      \"read_transactions\": {},", m.read_transactions);
        let _ = writeln!(
            out,
            "      \"write_transactions\": {},",
            m.write_transactions
        );
        let _ = writeln!(out, "      \"lookups\": {},", m.lookups);
        let _ = writeln!(out, "      \"evictions\": {},", m.evictions);
        let _ = writeln!(out, "      \"rounds\": {},", m.rounds);
        match s.lines_per_probe {
            Some(l) => {
                let _ = writeln!(out, "      \"lines_per_probe\": {l:.4},");
            }
            None => {
                let _ = writeln!(out, "      \"lines_per_probe\": null,");
            }
        }
        let _ = writeln!(
            out,
            "      \"budget_transactions\": {},",
            effective_budget(s.name, inject)
        );
        let _ = writeln!(out, "      \"top_paths\": [");
        let top = s.attribution.top_paths(3);
        for (j, (path, tx)) in top.iter().enumerate() {
            let _ = writeln!(
                out,
                "        {{\"path\": \"{}\", \"transactions\": {}}}{}",
                json_escape(path),
                tx,
                if j + 1 < top.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "      ]");
        let _ = writeln!(
            out,
            "    }}{}",
            if i + 1 < scenarios.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn effective_budget(name: &str, inject: bool) -> u64 {
    let b = budget_of(name);
    if inject {
        b / 2
    } else {
        b
    }
}

/// Lightweight schema validation of an existing `BENCH.json`: version,
/// suite, and every canonical scenario present with its required keys.
fn validate(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perf_ledger --validate: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut ok = true;
    let mut check = |cond: bool, what: &str| {
        if !cond {
            eprintln!("perf_ledger --validate: {path}: {what}");
            ok = false;
        }
    };
    check(
        text.contains(&format!("\"schema_version\": {SCHEMA_VERSION}")),
        &format!("missing or wrong schema_version (expected {SCHEMA_VERSION})"),
    );
    check(
        text.contains("\"suite\": \"perf-ledger\""),
        "missing suite marker",
    );
    for (name, _) in BUDGETS {
        check(
            text.contains(&format!("\"name\": \"{name}\"")),
            &format!("scenario {name} missing"),
        );
    }
    for key in [
        "\"ops\":",
        "\"mops\":",
        "\"transactions\":",
        "\"lines_per_probe\":",
        "\"budget_transactions\":",
        "\"top_paths\":",
    ] {
        check(
            text.matches(key).count() >= BUDGETS.len(),
            &format!("key {key} missing from some scenario"),
        );
    }
    if ok {
        println!("perf_ledger --validate: {path}: OK (schema v{SCHEMA_VERSION})");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Parse `attr_tx{...} value` lines out of a registry snapshot.
fn attr_tx_lines(text: &str) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("attr_tx{") {
            if let Some((labels, value)) = rest.rsplit_once("} ") {
                if let Ok(v) = value.trim().parse::<u64>() {
                    out.insert(labels.to_string(), v);
                }
            }
        }
    }
    out
}

/// Print the per-path attribution diff between the pinned snapshot and
/// this run, largest absolute delta first — the layer that regressed is
/// the top line.
fn print_attribution_diff(pinned_path: &str, current_snap: &str) {
    let current = attr_tx_lines(current_snap);
    match std::fs::read_to_string(pinned_path) {
        Ok(pinned_text) => {
            let pinned = attr_tx_lines(&pinned_text);
            let mut deltas: Vec<(i64, String, u64, u64)> = Vec::new();
            let keys: std::collections::BTreeSet<&String> =
                pinned.keys().chain(current.keys()).collect();
            for key in keys {
                let was = pinned.get(key).copied().unwrap_or(0);
                let now = current.get(key).copied().unwrap_or(0);
                if was != now {
                    deltas.push((now as i64 - was as i64, key.clone(), was, now));
                }
            }
            if deltas.is_empty() {
                println!(
                    "  attribution unchanged vs {pinned_path} — the regression is in a \
                     path-neutral cost (check budgets against the pinned totals)"
                );
                return;
            }
            deltas.sort_by_key(|&(d, ref k, _, _)| (std::cmp::Reverse(d.abs()), k.clone()));
            println!("  attribution diff vs {pinned_path} (worst first):");
            for (delta, key, was, now) in deltas {
                println!("    {{{key}}}: {was} -> {now} ({delta:+})");
            }
        }
        Err(_) => {
            println!(
                "  no pinned snapshot at {pinned_path}; full attribution of the \
                 violating run:"
            );
            for (labels, v) in current {
                println!("    {{{labels}}}: {v}");
            }
        }
    }
}

fn main() -> ExitCode {
    let mut json_path = "BENCH.json".to_string();
    let mut pinned_path = "results/perf-ledger.snap".to_string();
    let mut inject = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("perf_ledger: {name} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--json" => json_path = val("--json"),
            "--pinned" => pinned_path = val("--pinned"),
            "--inject-violation" => inject = true,
            "--validate" => return validate(&val("--validate")),
            other => {
                eprintln!(
                    "perf_ledger: unknown flag {other:?}\n\
                     usage: perf_ledger [--json PATH] [--pinned PATH] [--inject-violation]\n\
                     \x20      perf_ledger --validate FILE"
                );
                return ExitCode::from(2);
            }
        }
    }

    let mut tel = Telemetry::from_env();
    println!(
        "Perf ledger: canonical scenario suite (fixed sizes: {STATIC_PAIRS} static pairs, \
         {STRKEY_PAIRS} string pairs), attribution on, schema v{SCHEMA_VERSION}"
    );

    let mut scenarios: Vec<Scenario> = Vec::new();
    fixed_static_suite(&mut scenarios);
    dynamic_churn(&mut scenarios);
    strkey_mix(&mut scenarios);
    migration_churn(&mut scenarios);

    let mut t = Table::new(&[
        "scenario",
        "ops",
        "Mops",
        "transactions",
        "lines/probe",
        "budget",
        "top attribution path",
    ]);
    for s in &scenarios {
        let top = s
            .attribution
            .top_paths(1)
            .first()
            .map(|(p, tx)| format!("{p} ({tx} tx)"))
            .unwrap_or_default();
        t.row(vec![
            s.name.to_string(),
            s.ops.to_string(),
            format!("{:.1}", s.mops),
            s.metrics.transactions().to_string(),
            s.lines_per_probe
                .map(|l| format!("{l:.3}"))
                .unwrap_or_else(|| "-".to_string()),
            effective_budget(s.name, inject).to_string(),
            top,
        ]);
    }
    t.print("Perf ledger: canonical scenarios, transaction budgets, attribution");

    // Registry: aggregate counters plus the per-path attribution, so the
    // pinned snapshot *is* the attribution baseline CI diffs against.
    for s in &scenarios {
        let labels = [("figure", "perf_ledger"), ("scenario", s.name)];
        let reg = tel.registry();
        reg.counter("ledger_ops", &labels, s.ops);
        reg.counter("ledger_tx", &labels, s.metrics.transactions());
        reg.counter("ledger_read_tx", &labels, s.metrics.read_transactions);
        reg.counter("ledger_write_tx", &labels, s.metrics.write_transactions);
        reg.counter("ledger_lookups", &labels, s.metrics.lookups);
        reg.counter("ledger_evictions", &labels, s.metrics.evictions);
        reg.gauge("ledger_mops", &labels, s.mops);
        s.attribution.register_into(reg, &[("scenario", s.name)]);
    }
    let current_snap = tel.registry().to_text();

    let json = to_json(&scenarios, inject);
    if let Err(e) = std::fs::write(&json_path, &json) {
        eprintln!("perf_ledger: cannot write {json_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("\nledger written to {json_path} (schema v{SCHEMA_VERSION})");

    // Budget gate: check every scenario, report all violations, then fail.
    let mut violations = 0;
    for s in &scenarios {
        let budget = effective_budget(s.name, inject);
        let tx = s.metrics.transactions();
        if tx > budget {
            violations += 1;
            println!(
                "\nBUDGET VIOLATION scenario={}: transactions {tx} > budget {budget}",
                s.name
            );
            print_attribution_diff(&pinned_path, &current_snap);
        }
    }
    tel.finish();
    if violations > 0 {
        println!("\n{violations} scenario(s) over budget — failing the gate");
        return ExitCode::FAILURE;
    }
    println!("all {} scenarios within budget", scenarios.len());
    ExitCode::SUCCESS
}
