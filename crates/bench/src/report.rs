//! Aligned-table printing for experiment output.
//!
//! Every figure binary prints one of these tables; `EXPERIMENTS.md` records
//! the output next to the paper's reported shape.

/// A simple column-aligned text table.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = widths[i].saturating_sub(cells[i].len());
                // Right-align numbers, left-align first column.
                if i == 0 {
                    line.push_str(&cells[i]);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(&cells[i]);
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Print to stdout with a title. When `REPRO_CSV_DIR` is set, the table
    /// is also written there as `<slug-of-title>.csv` for plotting.
    pub fn print(&self, title: &str) {
        println!("\n=== {title} ===");
        print!("{}", self.render());
        if let Ok(dir) = std::env::var("REPRO_CSV_DIR") {
            let slug: String = title
                .chars()
                .map(|c| {
                    if c.is_ascii_alphanumeric() {
                        c.to_ascii_lowercase()
                    } else {
                        '_'
                    }
                })
                .collect();
            let path = std::path::Path::new(&dir).join(format!("{slug}.csv"));
            if std::fs::create_dir_all(&dir)
                .and_then(|_| std::fs::write(&path, self.to_csv()))
                .is_err()
            {
                eprintln!("warning: could not write {}", path.display());
            }
        }
    }
}

/// Format a throughput value with sensible precision.
pub fn fmt_mops(v: f64) -> String {
    if v >= 1000.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Format a ratio/percentage.
pub fn fmt_pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Format a byte count as MiB.
pub fn fmt_mib(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "mops"]);
        t.row(vec!["DyCuckoo".into(), "123.4".into()]);
        t.row(vec!["MegaKV".into(), "99.1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].contains("DyCuckoo"));
        // Numbers right-aligned: both rows end at the same column.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn csv_escapes_and_joins() {
        let mut t = Table::new(&["a", "b,c"]);
        t.row(vec!["plain".into(), "has,comma".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,\"b,c\"\nplain,\"has,comma\"\n");
    }

    #[test]
    #[should_panic]
    fn row_arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_mops(1234.4), "1234");
        assert_eq!(fmt_mops(56.78), "56.8");
        assert_eq!(fmt_mops(1.234), "1.23");
        assert_eq!(fmt_pct(0.857), "85.7%");
        assert_eq!(fmt_mib(1024 * 1024 * 3), "3.0");
    }
}
