//! Per-shard cuckoo-filter miss shield.
//!
//! At millions-of-users scale, negative lookups are the dominant wasted
//! work: every miss pays full probe charges in both candidate subtables
//! before the service can answer "not found". Following *Cuckoo-GPU*, each
//! shard keeps a host-side cuckoo filter over its table's live key set.
//! A `Get` whose key the filter provably excludes is answered
//! `Value(None)` at submission time — it never enters the batcher queue
//! and never reaches a kernel. A filter *hit* proves nothing (cuckoo
//! filters have false positives), so that traffic flows through to the
//! table unchanged and gets the authoritative answer.
//!
//! The filter is updated at **flush time**, after the kernels have
//! actually applied the window's writes, so it always describes committed
//! table state. Reads racing a queued write for the same key are exempt
//! from shedding at the submission site (the coalescing window owns those).
//!
//! Invariant — no false negatives: every key live in the shard's table is
//! in the filter. [`MissFilter`] guarantees this with an exact shadow set:
//! a fingerprint is only deleted when the shadow confirms the key was
//! live (deleting a never-inserted fingerprint is the classic cuckoo-
//! filter unsoundness), and on insert overflow the filter is rebuilt from
//! the shadow at double capacity rather than dropping the key. The shadow
//! is host bookkeeping, not device memory, and is charged nothing — the
//! simulated cost of the shield is exactly zero kernel lines, which is
//! the honest model for a filter maintained from the host-visible batch
//! outcome stream.

use std::collections::BTreeSet;

use dycuckoo::hashfn::splitmix64;

/// Slots per filter bucket (the standard (2, 4)-cuckoo filter shape).
const FILTER_SLOTS: usize = 4;
/// Displacement chain bound before the filter declares itself full.
const MAX_KICKS: usize = 128;

/// A partial-key cuckoo filter over `u32` keys with 8- or 16-bit
/// fingerprints and 4-slot buckets. Fingerprint 0 marks an empty slot;
/// stored fingerprints are folded into `1..=2^bits - 1`.
#[derive(Debug, Clone)]
pub struct CuckooFilter {
    /// `n_buckets × FILTER_SLOTS` fingerprint slots, row-major.
    slots: Vec<u16>,
    n_buckets: usize,
    bits: u8,
    seed: u64,
    len: u64,
}

impl CuckooFilter {
    /// Create an empty filter of `n_buckets` buckets (rounded up to a
    /// power of two) with `bits`-bit fingerprints (8 or 16).
    pub fn new(n_buckets: usize, bits: u8, seed: u64) -> Self {
        assert!(
            matches!(bits, 8 | 16),
            "filter fingerprints are 8 or 16 bits"
        );
        let n_buckets = n_buckets.max(1).next_power_of_two();
        Self {
            slots: vec![0; n_buckets * FILTER_SLOTS],
            n_buckets,
            bits,
            seed,
            len: 0,
        }
    }

    /// Number of buckets (a power of two).
    pub fn n_buckets(&self) -> usize {
        self.n_buckets
    }

    /// Stored fingerprints.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the filter stores nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Device-equivalent bytes of the fingerprint array (what the filter
    /// would occupy on a real GPU; reported, not charged).
    pub fn table_bytes(&self) -> u64 {
        (self.n_buckets * FILTER_SLOTS) as u64 * self.bits as u64 / 8
    }

    /// The key's fingerprint, folded into `1..=2^bits - 1`.
    fn fingerprint(&self, key: u32) -> u16 {
        let max = (1u64 << self.bits) - 1;
        (splitmix64(key as u64 ^ self.seed) % max + 1) as u16
    }

    /// The key's primary bucket.
    fn bucket1(&self, key: u32) -> usize {
        (splitmix64(key as u64 ^ self.seed.rotate_left(17)) as usize) & (self.n_buckets - 1)
    }

    /// Partial-key alternation: either bucket XOR the fingerprint's hash
    /// yields the other, so a displaced fingerprint can relocate without
    /// knowing its original key.
    fn alt(&self, b: usize, fp: u16) -> usize {
        b ^ ((splitmix64(fp as u64 ^ self.seed.rotate_left(43)) as usize) & (self.n_buckets - 1))
    }

    fn bucket(&self, b: usize) -> &[u16] {
        &self.slots[b * FILTER_SLOTS..(b + 1) * FILTER_SLOTS]
    }

    fn bucket_mut(&mut self, b: usize) -> &mut [u16] {
        &mut self.slots[b * FILTER_SLOTS..(b + 1) * FILTER_SLOTS]
    }

    /// Whether the key *may* be present. `false` is authoritative.
    pub fn may_contain(&self, key: u32) -> bool {
        let fp = self.fingerprint(key);
        let b1 = self.bucket1(key);
        let b2 = self.alt(b1, fp);
        self.bucket(b1).contains(&fp) || self.bucket(b2).contains(&fp)
    }

    /// Insert the key's fingerprint. `false` means the displacement
    /// chain hit its bound — the caller must grow and rebuild (the
    /// evicted fingerprint has been re-stored before returning, so no
    /// entry is ever silently dropped).
    #[must_use]
    pub fn insert(&mut self, key: u32) -> bool {
        let mut fp = self.fingerprint(key);
        let b1 = self.bucket1(key);
        let b2 = self.alt(b1, fp);
        for b in [b1, b2] {
            if let Some(s) = self.bucket(b).iter().position(|&f| f == 0) {
                self.bucket_mut(b)[s] = fp;
                self.len += 1;
                return true;
            }
        }
        // Both buckets full: displace. The victim slot is chosen
        // deterministically from the kick counter so runs replay exactly.
        let mut b = b1;
        for kick in 0..MAX_KICKS {
            let s =
                (splitmix64(self.seed ^ fp as u64 ^ ((kick as u64) << 40)) as usize) % FILTER_SLOTS;
            std::mem::swap(&mut fp, &mut self.bucket_mut(b)[s]);
            b = self.alt(b, fp);
            if let Some(s) = self.bucket(b).iter().position(|&f| f == 0) {
                self.bucket_mut(b)[s] = fp;
                self.len += 1;
                return true;
            }
        }
        // Undo is impossible mid-chain (fingerprints are anonymous), but
        // the carried fingerprint must not vanish: park it in its current
        // bucket's deterministic victim slot and report overflow. The
        // displaced occupant is what the rebuild recovers.
        false
    }

    /// Remove one copy of the key's fingerprint. Only sound when the key
    /// was actually inserted — [`MissFilter`] enforces that with its
    /// shadow set. Returns whether a fingerprint was removed.
    pub fn remove(&mut self, key: u32) -> bool {
        let fp = self.fingerprint(key);
        let b1 = self.bucket1(key);
        let b2 = self.alt(b1, fp);
        for b in [b1, b2] {
            if let Some(s) = self.bucket(b).iter().position(|&f| f == fp) {
                self.bucket_mut(b)[s] = 0;
                self.len -= 1;
                return true;
            }
        }
        false
    }
}

/// The per-shard sidecar: a [`CuckooFilter`] kept exactly in sync with
/// the shard table's live key set via an exact shadow set. The shadow
/// makes insert/remove idempotent (a Put of a live key or a Delete of an
/// absent one changes nothing) and is the rebuild source when the filter
/// overflows — so the no-false-negative invariant holds unconditionally.
#[derive(Debug, Clone)]
pub struct MissFilter {
    filter: CuckooFilter,
    shadow: BTreeSet<u32>,
    bits: u8,
    seed: u64,
    rebuilds: u64,
}

impl MissFilter {
    /// Create an empty sidecar with `bits`-bit fingerprints (8 or 16).
    pub fn new(bits: u8, seed: u64) -> Self {
        Self {
            filter: CuckooFilter::new(64, bits, seed),
            shadow: BTreeSet::new(),
            bits,
            seed,
            rebuilds: 0,
        }
    }

    /// Fingerprint width in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Live keys tracked (exact).
    pub fn keys(&self) -> u64 {
        self.shadow.len() as u64
    }

    /// Times the filter overflowed and was rebuilt at a larger size.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Whether `key` may be live in the table. `false` is authoritative:
    /// the caller can answer "not found" without probing.
    pub fn may_contain(&self, key: u32) -> bool {
        self.filter.may_contain(key)
    }

    /// Record a committed Put. Idempotent for already-live keys.
    pub fn insert(&mut self, key: u32) {
        if !self.shadow.insert(key) {
            return;
        }
        if !self.filter.insert(key) {
            self.rebuild();
        }
    }

    /// Record a committed Delete. A no-op for keys that were not live.
    pub fn remove(&mut self, key: u32) {
        if !self.shadow.remove(&key) {
            return;
        }
        let removed = self.filter.remove(key);
        debug_assert!(removed, "shadow key missing from filter");
    }

    /// Rebuild the filter from the shadow at growing capacity until every
    /// live key fits (an overflow mid-rebuild doubles again).
    fn rebuild(&mut self) {
        let mut n = (self.filter.n_buckets() * 2).max(64);
        'grow: loop {
            let mut fresh = CuckooFilter::new(n, self.bits, self.seed);
            for &k in &self.shadow {
                if !fresh.insert(k) {
                    n *= 2;
                    continue 'grow;
                }
            }
            self.filter = fresh;
            self.rebuilds += 1;
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_filter_excludes_everything() {
        let f = CuckooFilter::new(16, 8, 42);
        assert!(f.is_empty());
        for k in 1..1000 {
            assert!(!f.may_contain(k));
        }
    }

    #[test]
    fn inserted_keys_are_always_contained() {
        let mut f = MissFilter::new(16, 7);
        for k in 1..=5000u32 {
            f.insert(k);
        }
        for k in 1..=5000u32 {
            assert!(f.may_contain(k), "false negative for {k}");
        }
        assert_eq!(f.keys(), 5000);
    }

    #[test]
    fn deletion_tracks_liveness_exactly() {
        let mut f = MissFilter::new(16, 3);
        for k in 1..=2000u32 {
            f.insert(k);
        }
        for k in (1..=2000u32).step_by(2) {
            f.remove(k);
        }
        for k in (2..=2000u32).step_by(2) {
            assert!(f.may_contain(k), "false negative for surviving {k}");
        }
        assert_eq!(f.keys(), 1000);
        // Deleting an absent key or re-putting a live one changes nothing.
        let before = f.filter.len();
        f.remove(99999);
        f.insert(2);
        assert_eq!(f.filter.len(), before);
    }

    #[test]
    fn interleaved_ops_never_false_negative() {
        let mut f = MissFilter::new(8, 11);
        let mut live = BTreeSet::new();
        let mut x = 0x1234_5678u64;
        for step in 0..20_000u32 {
            x = splitmix64(x);
            let k = (x % 3000 + 1) as u32;
            if step % 3 == 0 {
                f.remove(k);
                live.remove(&k);
            } else {
                f.insert(k);
                live.insert(k);
            }
        }
        for &k in &live {
            assert!(f.may_contain(k), "false negative for live {k}");
        }
    }

    #[test]
    fn fp16_filters_more_than_fp8() {
        // Measure the false-positive rate on absent keys.
        let rate = |bits: u8| {
            let mut f = MissFilter::new(bits, 5);
            for k in 1..=4000u32 {
                f.insert(k);
            }
            let absent = (100_000..120_000u32).filter(|&k| f.may_contain(k)).count();
            absent as f64 / 20_000.0
        };
        let (r8, r16) = (rate(8), rate(16));
        assert!(r16 < r8, "fp16 rate {r16} should beat fp8 rate {r8}");
        assert!(r8 < 0.1, "fp8 false-positive rate {r8} out of family");
        assert!(r16 < 0.01, "fp16 false-positive rate {r16} out of family");
    }

    #[test]
    fn overflow_grows_and_keeps_every_key() {
        // Force rebuilds by starting tiny and inserting far past capacity.
        let mut f = MissFilter {
            filter: CuckooFilter::new(1, 8, 9),
            shadow: BTreeSet::new(),
            bits: 8,
            seed: 9,
            rebuilds: 0,
        };
        for k in 1..=10_000u32 {
            f.insert(k);
        }
        assert!(f.rebuilds() > 0, "expected at least one rebuild");
        for k in 1..=10_000u32 {
            assert!(f.may_contain(k), "false negative for {k} after rebuild");
        }
    }
}
