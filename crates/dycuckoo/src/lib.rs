//! # DyCuckoo — dynamic two-layer cuckoo hashing (ICDE 2021), on a SIMT model
//!
//! This crate implements the primary contribution of *DyCuckoo: Dynamic Hash
//! Tables on GPUs* (Li, Zhu, Lyu, Huang, Sun — ICDE 2021) on top of the
//! [`gpu_sim`] execution model:
//!
//! * **`d` cuckoo subtables** with universal hash functions and 32-slot
//!   buckets matching the 128-byte GPU cache line ([`subtable`], [`hashfn`]).
//! * **Two-layer hashing**: the first layer maps every key to one of the
//!   `C(d,2)` subtable *pairs*; the second stores it in one member of the
//!   pair, so find and delete probe at most two buckets regardless of `d`
//!   ([`two_layer`]).
//! * **Voter-coordinated insertion** (Algorithm 1): warps elect a leader
//!   per round, re-vote instead of spinning on contended bucket locks, and
//!   cooperatively probe buckets with single coalesced transactions
//!   ([`ops::insert`]).
//! * **Single-subtable resizing**: when the filled factor leaves `[α, β]`,
//!   the smallest subtable doubles (conflict-free rehash) or the largest
//!   halves (merge + residual re-insertion), keeping every other subtable
//!   online and the size ratio within 2× ([`resize`], [`rehash`]).
//! * **Theorem-1 load balancing**: inserts and evictions are steered with
//!   probability proportional to `n_i / C(m_i,2)` ([`distribute`]).
//!
//! See the repository's `DESIGN.md` for how each paper section maps to a
//! module, and `EXPERIMENTS.md` for the reproduced evaluation.

pub mod config;
pub mod distribute;
pub mod error;
pub mod hashfn;
pub mod host_par;
pub mod ops;
pub mod rehash;
pub mod resize;
pub mod rmw;
pub mod stash;
pub mod stats;
pub mod subtable;
pub mod table;
pub mod two_layer;
pub mod unsized_kv;
pub mod wide;

pub use config::{Config, Coordination, Distribution, DupPolicy, Layering, BUCKET_SLOTS};
pub use error::{Error, Result};
pub use host_par::{ParReport, ParTable};
pub use resize::ResizeOp;
pub use rmw::MergeRule;
pub use stats::{SubTableStats, TableStats};
pub use table::{
    buckets_for_load, mixed_bucket_sizes, BatchReport, DyCuckoo, ResizeEvent, UpsertReport,
};
pub use unsized_kv::{UnsizedConfig, UnsizedReport, UnsizedStats, UnsizedTable};
pub use wide::WideDyCuckoo;
