//! Cost-attribution conservation gates (DESIGN.md §4i), pinned from the
//! outside of the engine.
//!
//! Two laws, both structural consequences of the `Metrics::charge` choke
//! point, re-proved here over real executions so a future charge site that
//! bypasses the choke point (or a scope that leaks) fails loudly:
//!
//! 1. **Conservation** — with the profiler armed, the sum of attributed
//!    counters over the whole tree equals the engine's `Metrics` totals for
//!    every one of the twelve counter kinds. Checked across all eight
//!    schedule-policy flavors, on both table tiers, and mid-incremental-
//!    migration, where charges flow through the most distinct scopes
//!    (op paths, eviction chains, maintenance, arena dereferences).
//! 2. **Observer neutrality** — arming the profiler must not perturb the
//!    execution it observes: the differential-oracle digest of a fuzz case
//!    is bit-identical with attribution on and off, and a telemetry
//!    registry snapshot of the same run carries identical `sim_*` lines.

use std::collections::BTreeMap;

use bench::fuzz::{self, Case, Target};
use dycuckoo::{Config, DyCuckoo, UnsizedConfig, UnsizedTable};
use gpu_sim::{ChargeKind, LayoutConfig, Metrics, SchedulePolicy, SimContext};
use kv_service::Tier;
use obs::attr;
use workloads::LengthDist;

/// Assert Σ attributed == engine totals for every counter kind, and that
/// the root of every attributed path is one of the expected domains.
fn assert_conserved(attr: &attr::Attribution, totals: &Metrics, ctx: &str) {
    for kind in ChargeKind::ALL {
        assert_eq!(
            attr.total(kind),
            totals.get(kind),
            "{ctx}: attribution drift on {}",
            kind.name()
        );
    }
}

/// Drive a mixed insert/find/delete workload on the fixed tier and return
/// (attribution, totals).
fn run_fixed(policy: SchedulePolicy, quantum: usize) -> (attr::Attribution, Metrics) {
    let mut sim = SimContext::new();
    let mut table = DyCuckoo::new(
        Config {
            seed: 0xA11CE,
            schedule: policy,
            migration_quantum: quantum,
            // Start tiny so the workload forces structural resizes and the
            // maintenance scopes carry real traffic.
            initial_buckets: 8,
            ..Config::default()
        },
        &mut sim,
    )
    .expect("table");
    let _ = sim.take_metrics();
    attr::start();
    let kvs: Vec<(u32, u32)> = (1..=4096u32).map(|k| (k, k.rotate_left(7))).collect();
    for chunk in kvs.chunks(256) {
        table.insert_batch(&mut sim, chunk).expect("insert");
    }
    let keys: Vec<u32> = (1..=4096).collect();
    let found = table.find_batch(&mut sim, &keys);
    assert!(found.iter().all(|g| g.is_some()), "find-all missed");
    let dead: Vec<u32> = (1..=1024).collect();
    table.delete_batch(&mut sim, &dead).expect("delete");
    let attribution = attr::stop();
    (attribution, sim.take_metrics())
}

/// Same shape on the unsized tier (byte-string keys through the arena).
fn run_unsized(policy: SchedulePolicy) -> (attr::Attribution, Metrics) {
    let mut sim = SimContext::new();
    let mut table = UnsizedTable::new(
        UnsizedConfig {
            seed: 0xA11CE,
            schedule: policy,
            ..UnsizedConfig::default()
        },
        &mut sim,
    )
    .expect("unsized table");
    let _ = sim.take_metrics();
    attr::start();
    let kvs: Vec<(Vec<u8>, Vec<u8>)> = (0..1024u32)
        .map(|i| {
            // Mix inline-width and spilling keys so arena scopes engage.
            let key = if i % 3 == 0 {
                format!("key-{i}").into_bytes()
            } else {
                format!("long-spilling-key-{i}-{}", "x".repeat(24)).into_bytes()
            };
            (key, i.to_le_bytes().to_vec())
        })
        .collect();
    for chunk in kvs.chunks(128) {
        let refs: Vec<(&[u8], &[u8])> = chunk
            .iter()
            .map(|(k, v)| (k.as_slice(), v.as_slice()))
            .collect();
        table.insert_batch(&mut sim, &refs).expect("insert");
    }
    let keys: Vec<&[u8]> = kvs.iter().map(|(k, _)| k.as_slice()).collect();
    for chunk in keys.chunks(128) {
        let got = table.find_batch(&mut sim, chunk).expect("find");
        assert!(got.iter().all(|g| g.is_some()), "unsized find-all missed");
    }
    let attribution = attr::stop();
    (attribution, sim.take_metrics())
}

/// Conservation across every schedule-policy flavor the fuzzer sweeps
/// (`from_seed(0..8)` covers Shuffled/ContendedFirst/Rotating/Reversed,
/// two parameterizations each), stop-the-world resizes.
#[test]
fn conservation_holds_across_all_schedule_policies() {
    for seed in 0..8 {
        let policy = SchedulePolicy::from_seed(seed);
        let (attribution, totals) = run_fixed(policy, usize::MAX);
        assert_conserved(&attribution, &totals, &format!("policy seed {seed}"));
        // The workload is big enough that every major domain carries cost.
        for path in ["dycuckoo/insert", "dycuckoo/find", "dycuckoo/delete"] {
            assert!(
                attribution.get(path).is_some(),
                "policy seed {seed}: no charges under {path}"
            );
        }
    }
}

/// Conservation mid-incremental-migration: a finite quantum keeps resize
/// drains in flight across batches, so `maintenance/*` scopes interleave
/// with op scopes — the nesting the profiler exists to untangle.
#[test]
fn conservation_holds_mid_migration() {
    for seed in 0..8 {
        let policy = SchedulePolicy::from_seed(seed);
        let (attribution, totals) = run_fixed(policy, 8);
        assert_conserved(&attribution, &totals, &format!("mid-migration seed {seed}"));
        let maint: u64 = attribution
            .iter()
            .filter(|(p, _)| p.contains("maintenance/"))
            .map(|(_, c)| c.transactions())
            .sum();
        assert!(
            maint > 0,
            "mid-migration seed {seed}: no maintenance traffic attributed"
        );
    }
}

/// Conservation on the unsized tier, arena dereferences included.
#[test]
fn conservation_holds_on_unsized_tier() {
    for seed in 0..8 {
        let policy = SchedulePolicy::from_seed(seed);
        let (attribution, totals) = run_unsized(policy);
        assert_conserved(&attribution, &totals, &format!("unsized seed {seed}"));
        assert!(
            attribution
                .iter()
                .any(|(p, c)| p.ends_with("arena-deref") && !c.is_zero()),
            "unsized seed {seed}: no arena-deref charges attributed"
        );
    }
}

/// The attribution subtree/top_paths views agree with the flat totals:
/// the root subtree *is* the whole execution.
#[test]
fn subtree_of_root_equals_totals() {
    let (attribution, totals) = run_fixed(SchedulePolicy::from_seed(0), usize::MAX);
    let root = attribution.subtree("");
    for kind in ChargeKind::ALL {
        assert_eq!(root.get(kind), totals.get(kind));
    }
    let insert = attribution.subtree("dycuckoo/insert");
    let direct = attribution.get("dycuckoo/insert").unwrap();
    assert!(insert.transactions() >= direct.transactions());
}

/// Observer neutrality, digest form: running the same differential-oracle
/// fuzz cases with the profiler armed yields bit-identical digests. This
/// is the gate that keeps the pinned 64-seed fuzz digest stable whether or
/// not anyone is watching.
#[test]
fn fuzz_digests_identical_with_attribution_on_and_off() {
    let mut cases: Vec<Case> = Vec::new();
    for seed in 0..4u64 {
        for target in [Target::DyCuckoo, Target::KvService] {
            cases.push(Case {
                target,
                policy: SchedulePolicy::from_seed(seed),
                workload_seed: seed,
                inject_lock_elision: false,
                layout: LayoutConfig::default(),
                migration_quantum: if seed % 2 == 0 { usize::MAX } else { 8 },
                tier: Tier::Fixed,
                key_dist: LengthDist::Mixed,
                fingerprint: 0,
                miss_filter: false,
                host_par_threads: 0,
                ops: fuzz::gen_ops(seed, 192),
            });
        }
    }
    for case in &cases {
        let off = fuzz::run_case(case).expect("case clean with attribution off");
        attr::start();
        let on = fuzz::run_case(case).expect("case clean with attribution on");
        let tree = attr::stop();
        assert_eq!(
            off, on,
            "digest perturbed by attribution for seed {} target {:?}",
            case.workload_seed, case.target
        );
        assert!(tree.total_transactions() > 0, "profiler saw no charges");
    }
}

/// Observer neutrality, snapshot form: the `sim_*` registry lines of one
/// run are byte-identical with attribution on and off (the profiler reads
/// the same increments; it never adds or reroutes any).
#[test]
fn registry_snapshot_identical_with_attribution_on_and_off() {
    let run = |armed: bool| -> BTreeMap<String, String> {
        if armed {
            attr::start();
        }
        let (_, totals) = {
            let mut sim = SimContext::new();
            let mut table = DyCuckoo::new(
                Config {
                    seed: 7,
                    ..Config::default()
                },
                &mut sim,
            )
            .expect("table");
            let kvs: Vec<(u32, u32)> = (1..=2048u32).map(|k| (k, k + 1)).collect();
            table.insert_batch(&mut sim, &kvs).expect("insert");
            ((), sim.take_metrics())
        };
        if armed {
            let _ = attr::stop();
        }
        let mut reg = obs::Registry::new();
        totals.register_into(&mut reg, &[("run", "neutrality")]);
        reg.to_text()
            .lines()
            .filter(|l| l.starts_with("sim_"))
            .map(|l| {
                let (k, v) = l.rsplit_once(' ').expect("metric line");
                (k.to_string(), v.to_string())
            })
            .collect()
    };
    assert_eq!(run(false), run(true));
}
