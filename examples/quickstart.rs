//! Quickstart: create a DyCuckoo table, insert, find, delete, and watch it
//! resize itself — all on the simulated GPU.
//!
//! Run with: `cargo run --release --example quickstart`

use dycuckoo::{Config, DyCuckoo};
use gpu_sim::SimContext;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The simulation context stands in for the GPU: it tracks device
    // memory and charges every kernel's memory/atomic traffic to a cost
    // model calibrated to a GTX 1080.
    let mut sim = SimContext::new();

    // A dynamic table with the paper's defaults: d = 4 subtables, filled
    // factor kept within [30%, 85%], two-layer hashing, voter inserts.
    let mut table = DyCuckoo::new(Config::default(), &mut sim)?;
    println!(
        "fresh table: {} subtables, {} slots, {} KiB on device",
        table.stats().num_tables,
        table.stats().capacity_slots,
        table.device_bytes() / 1024
    );

    // Insert a batch of 100k key-value pairs. The table upsizes itself
    // (one subtable at a time) as the filled factor crosses β.
    let kvs: Vec<(u32, u32)> = (1..=100_000u32).map(|k| (k, k * 7)).collect();
    let report = table.insert_batch(&mut sim, &kvs)?;
    println!(
        "inserted {} (updated {}), triggering {} resizes; θ = {:.1}%",
        report.inserted,
        report.updated,
        report.resizes.len(),
        table.fill_factor() * 100.0
    );

    // Batched find: at most two bucket probes per key, guaranteed.
    let hits = table.find_batch(&mut sim, &[1, 50_000, 999_999]);
    println!("find [1, 50000, 999999] -> {hits:?}");
    assert_eq!(hits, vec![Some(7), Some(350_000), None]);

    // Delete most of the table; it downsizes to stay above α.
    let doomed: Vec<u32> = (1..=90_000).collect();
    let before = table.device_bytes();
    let report = table.delete_batch(&mut sim, &doomed)?;
    println!(
        "deleted {}; {} downsizes shrank the table from {} KiB to {} KiB (θ = {:.1}%)",
        report.deleted,
        report.resizes.len(),
        before / 1024,
        table.device_bytes() / 1024,
        table.fill_factor() * 100.0
    );

    // The simulator has been charging everything we did; ask it for the
    // simulated throughput of the whole session.
    let metrics = sim.take_metrics();
    println!(
        "session totals: {} ops, {} memory transactions, {} evictions -> {:.0} Mops simulated",
        metrics.ops,
        metrics.transactions(),
        metrics.evictions,
        gpu_sim::CostModel::new(sim.device.config()).mops(metrics.ops, &metrics)
    );
    Ok(())
}
