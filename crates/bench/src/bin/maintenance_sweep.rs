//! **Maintenance sweep** — per-batch resize stall × tail latency versus the
//! migration quantum (DESIGN.md §4f).
//!
//! Stop-the-world resizing (`migration_quantum = ∞`, the paper's behaviour)
//! charges a whole subtable rehash to whichever unlucky batch crossed the
//! fill bound: the maximum per-batch structural work grows with the table.
//! A finite quantum turns each resize into a resumable migration that
//! drains at most `quantum` source buckets per batch, so the worst batch
//! pays a *bounded* structural toll while the aggregate work is unchanged.
//!
//! This sweep drives one grow-then-shrink-then-regrow workload through a
//! DyCuckoo table at each quantum and reports, per quantum:
//!
//! * **max stall** — the largest structural work (source buckets rehashed)
//!   any single batch paid. The headline: bounded by the quantum on the
//!   incremental path, unbounded on the stop-the-world path.
//! * **p50/p99 batch ns** — simulated kernel time per batch under the cost
//!   model; the stall bound is what flattens the tail.
//! * **resizes / backlog peak** — how many structural events ran and the
//!   deepest migration backlog observed between batches.
//!
//! Self-checks (nonzero exit on failure): every finite quantum's max stall
//! is `≤ quantum`, and max stall is monotone — a smaller quantum never
//! stalls a batch *more* than a larger one.
//!
//! `TELEMETRY_SNAP=<path>` writes the registry as deterministic text; CI
//! pins `results/maintenance-sweep.snap` against it.

use bench::report::Table;
use bench::telemetry::Telemetry;
use bench::{measure, scale, seed};
use dycuckoo::{BatchReport, Config, DyCuckoo};
use gpu_sim::SimContext;

/// The swept quanta, widest first. `None` is stop-the-world.
const QUANTA: [Option<usize>; 6] = [None, Some(4096), Some(1024), Some(256), Some(64), Some(16)];

fn quantum_spec(q: Option<usize>) -> String {
    match q {
        None => "inf".to_string(),
        Some(n) => n.to_string(),
    }
}

/// What one quantum's run of the workload looked like.
struct Outcome {
    /// Largest structural work (source buckets) any single batch paid.
    max_stall: u64,
    /// Aggregate structural work across the run.
    total_stall: u64,
    /// Median simulated batch time.
    p50_ns: f64,
    /// 99th-percentile simulated batch time.
    p99_ns: f64,
    /// Resize events retired (finalized migrations or stop-the-world).
    resizes: u64,
    /// Deepest migration backlog observed between batches.
    backlog_peak: u64,
    /// Keys resident at the end (identical across quanta by construction).
    final_len: u64,
}

/// Structural buckets a batch paid: the incremental path reports drained
/// chunks directly; the stop-the-world path pays every source bucket of
/// every resize inside the triggering batch.
fn batch_stall(report: &BatchReport, incremental: bool) -> u64 {
    if incremental {
        report.migrated_buckets
    } else {
        report.resizes.iter().map(|e| e.old_buckets as u64).sum()
    }
}

fn percentile(sorted_ns: &[f64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() as f64 * p).ceil() as usize).max(1) - 1;
    sorted_ns[idx.min(sorted_ns.len() - 1)]
}

fn run_quantum(quantum: Option<usize>, n_keys: u32, batch: usize, seed: u64) -> Outcome {
    let incremental = quantum.is_some();
    let mut sim = SimContext::new();
    let mut table = DyCuckoo::new(
        Config {
            initial_buckets: 16,
            seed,
            migration_quantum: quantum.unwrap_or(usize::MAX),
            ..Config::default()
        },
        &mut sim,
    )
    .expect("table construction");

    let mut max_stall = 0u64;
    let mut total_stall = 0u64;
    let mut resizes = 0u64;
    let mut backlog_peak = 0u64;
    let mut batch_ns: Vec<f64> = Vec::new();
    let mut account = |report: &BatchReport, ns: f64, backlog: u64, batch_ns: &mut Vec<f64>| {
        let stall = batch_stall(report, incremental);
        max_stall = max_stall.max(stall);
        total_stall += stall;
        resizes += report.resizes.len() as u64;
        backlog_peak = backlog_peak.max(backlog);
        batch_ns.push(ns);
    };

    let val = |k: u32| k.wrapping_mul(0x9E37) | 1;
    // Phase 1: grow through several upsizes.
    let keys: Vec<u32> = (1..=n_keys).collect();
    for chunk in keys.chunks(batch) {
        let kvs: Vec<(u32, u32)> = chunk.iter().map(|&k| (k, val(k))).collect();
        let (report, m) = measure(&mut sim, |sim| table.insert_batch(sim, &kvs));
        let report = report.expect("insert batch");
        account(&report, m.ns, table.migration_backlog(), &mut batch_ns);
    }
    // Phase 2: shrink through downsizes (delete 85%).
    let dels: Vec<u32> = (1..=(n_keys / 100) * 85).collect();
    for chunk in dels.chunks(batch) {
        let (report, m) = measure(&mut sim, |sim| table.delete_batch(sim, chunk));
        let report = report.expect("delete batch");
        account(&report, m.ns, table.migration_backlog(), &mut batch_ns);
    }
    // Phase 3: regrow with fresh keys (forces upsizes from the shrunk state).
    let fresh: Vec<u32> = (n_keys + 1..=n_keys + n_keys / 2).collect();
    for chunk in fresh.chunks(batch) {
        let kvs: Vec<(u32, u32)> = chunk.iter().map(|&k| (k, val(k))).collect();
        let (report, m) = measure(&mut sim, |sim| table.insert_batch(sim, &kvs));
        let report = report.expect("insert batch");
        account(&report, m.ns, table.migration_backlog(), &mut batch_ns);
    }
    // Drain any in-flight migration so every quantum ends quiescent; the
    // tail pumps are batches too and obey the same stall bound.
    while table.migration_in_flight() {
        let mut report = BatchReport::default();
        let (out, m) = measure(&mut sim, |sim| table.migrate_quantum(sim, &mut report));
        out.expect("tail migration pump");
        account(&report, m.ns, table.migration_backlog(), &mut batch_ns);
    }

    batch_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite ns"));
    Outcome {
        max_stall,
        total_stall,
        p50_ns: percentile(&batch_ns, 0.50),
        p99_ns: percentile(&batch_ns, 0.99),
        resizes,
        backlog_peak,
        final_len: table.len(),
    }
}

fn main() {
    let mut tel = Telemetry::from_env();
    let scale = scale();
    let seed = seed();
    let n_keys = ((60_000.0 * scale).round() as u32).max(4_000);
    let batch = 512usize;
    println!(
        "Maintenance sweep: DyCuckoo grow/shrink/regrow, {n_keys} keys, batch {batch}, \
         quanta {{inf, 4096, 1024, 256, 64, 16}}"
    );

    let mut t = Table::new(&[
        "quantum",
        "max stall (buckets)",
        "total stall",
        "p50 batch ns",
        "p99 batch ns",
        "resizes",
        "backlog peak",
    ]);
    let mut outcomes: Vec<(Option<usize>, Outcome)> = Vec::new();
    for &quantum in &QUANTA {
        let o = run_quantum(quantum, n_keys, batch, seed);
        let spec = quantum_spec(quantum);
        let labels = [("figure", "maintenance_sweep"), ("quantum", spec.as_str())];
        let reg = tel.registry();
        reg.counter("max_stall_buckets", &labels, o.max_stall);
        reg.counter("total_stall_buckets", &labels, o.total_stall);
        reg.counter("resizes", &labels, o.resizes);
        reg.counter("backlog_peak", &labels, o.backlog_peak);
        reg.counter("final_len", &labels, o.final_len);
        t.row(vec![
            spec,
            o.max_stall.to_string(),
            o.total_stall.to_string(),
            format!("{:.0}", o.p50_ns),
            format!("{:.0}", o.p99_ns),
            o.resizes.to_string(),
            o.backlog_peak.to_string(),
        ]);
        outcomes.push((quantum, o));
    }
    t.print("Maintenance sweep: per-batch stall and latency tail vs migration quantum");

    // Self-checks — a failed assert exits nonzero, which is what CI wants.
    let stop_the_world = &outcomes[0].1;
    for (q, o) in &outcomes[1..] {
        let q = q.expect("finite quantum");
        assert!(
            o.max_stall <= q as u64,
            "quantum {q}: max per-batch stall {} exceeds the quantum",
            o.max_stall
        );
        assert_eq!(
            o.final_len, stop_the_world.final_len,
            "quantum {q}: final contents diverged from stop-the-world"
        );
    }
    for pair in outcomes[1..].windows(2) {
        let (qa, a) = (&pair[0].0.unwrap(), &pair[0].1);
        let (qb, b) = (&pair[1].0.unwrap(), &pair[1].1);
        assert!(
            b.max_stall <= a.max_stall,
            "max stall must be monotone in the quantum: q={qb} stalls {} > q={qa} stalls {}",
            b.max_stall,
            a.max_stall
        );
    }
    let bounded = outcomes
        .last()
        .map(|(_, o)| o.max_stall)
        .expect("swept at least one quantum");
    println!(
        "\nWorst single-batch stall: {} source buckets stop-the-world vs {} at quantum 16 \
         — the incremental machine bounds what any one batch pays.",
        stop_the_world.max_stall, bounded
    );
    assert!(
        bounded < stop_the_world.max_stall,
        "expected the smallest quantum to beat stop-the-world on max stall"
    );
    tel.finish();
}
