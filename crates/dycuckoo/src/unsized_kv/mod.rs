//! The **unsized tier**: byte-string keys and values on the same engine.
//!
//! The fixed tier stores `u32 → u32`. This module stores `&[u8] → &[u8]`
//! without giving up the paper's guarantees, by splitting every entry into
//! a fixed-width bucket slot plus (when needed) a handle into a slab byte
//! arena:
//!
//! * [`encoding`] — the slot-word formats. A key becomes one 16-byte word:
//!   keys of ≤ 12 bytes are stored **inline** (probes compare whole words,
//!   zero arena traffic); longer keys spill their bytes and the word keeps
//!   a `(fingerprint, len, page, offset)` handle plus 48 routing-hash bits.
//!   Values get the same treatment in an 8-byte word (inline ≤ 7 bytes).
//!   The encodings are prefix-free: no inline word can collide with a
//!   spill handle's bit pattern (property-tested).
//! * [`arena`] — a slab allocator over [`gpu_sim::SlotStore`] pages that
//!   owns every spilled byte. Pages are bump-allocated, freed blocks are
//!   kept on an exact-fit free list, fragmentation is accounted and the
//!   whole structure is auditable against the live handle set.
//! * [`table`] — [`UnsizedTable`]: two-subtable cuckoo hashing over the
//!   slot words, with voter-coordinated insert kernels, warp-centric
//!   finds, incremental grow migration that drains arena pages alongside
//!   buckets, and full ledger/integrity verification.
//!
//! The bound that matters: a lookup costs one bucket probe per candidate
//! subtable (two total), and a spilled key's bytes are only dereferenced
//! after its 16-bit fingerprint and length already matched in the bucket
//! line — so the two-lookup bound of the fixed tier carries over, and the
//! all-inline case charges exactly the same lines per probe as the u32
//! tier (asserted by `bench --bin strkey_sweep`).

pub mod arena;
pub mod encoding;
pub mod table;

pub use arena::{ByteArena, PAGE_BYTES};
pub use encoding::{KeyRepr, SpillRef, ValRepr, INLINE_KEY_MAX, INLINE_VAL_MAX, MAX_BLOB_LEN};
pub use table::{UnsizedConfig, UnsizedReport, UnsizedStats, UnsizedTable};
