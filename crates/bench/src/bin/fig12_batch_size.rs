//! **Figure 12** — "Throughput for varying batch size": the dynamic
//! workload with batch sizes 2e5 … 10e5 (scaled), r = 0.2.
//!
//! Paper shape to reproduce: Slab stays below MegaKV and DyCuckoo (chains
//! lengthen as inserts stream in); DyCuckoo beats MegaKV with a margin that
//! grows with batch size.

use bench::driver::{build_dynamic, run_dynamic, Scheme};
use bench::report::{fmt_mops, Table};
use bench::{scale, seed};
use gpu_sim::SimContext;
use workloads::{paper_datasets, DynamicWorkload};

fn main() {
    let scale = scale();
    let seed = seed();
    println!("Figure 12: dynamic throughput vs batch size (r=0.2, scale={scale})");

    for spec in paper_datasets() {
        let ds = spec.scaled(scale).generate(seed);
        let mut t = Table::new(&["batch size", "MegaKV", "Slab", "DyCuckoo"]);
        for frac in [0.2, 0.4, 0.6, 0.8, 1.0] {
            let batch = ((1_000_000.0 * scale * frac).round() as usize).max(500);
            let w = DynamicWorkload::build(&ds, batch, 0.2, seed ^ batch as u64);
            let mut row = vec![format!("{:.0}e5 (scaled {batch})", frac * 10.0)];
            for scheme in Scheme::dynamic_set() {
                let mut sim = SimContext::new();
                let mut table = build_dynamic(scheme, 0.30, 0.85, batch, seed, &mut sim);
                let res = run_dynamic(table.as_mut(), &mut sim, &w);
                row.push(fmt_mops(res.mops));
            }
            t.row(row);
        }
        t.print(&format!(
            "Figure 12 [{}]: overall Mops vs batch size",
            spec.name
        ));
    }
}
