//! Simulated device: hardware constants and memory-footprint accounting.
//!
//! The constants default to the NVIDIA GTX 1080 used in the paper's
//! evaluation (Pascal, 20 SMs, 8 GB GDDR5 at 320 GB/s, 128-byte cache
//! lines). They are plain data — experiments may construct devices with
//! different parameters to study sensitivity.

/// Hardware parameters of the simulated GPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceConfig {
    /// Device-memory bandwidth in bytes per second (GTX 1080: 320 GB/s).
    pub bandwidth_bytes_per_sec: f64,
    /// Size of one coalesced memory transaction in bytes (L1 line: 128 B).
    pub line_bytes: u64,
    /// Effective-bandwidth penalty for pointer-chasing (dependent) line
    /// reads, e.g. chain traversal in SlabHash: the next address is only
    /// known after the previous load returns, defeating memory-level
    /// parallelism.
    pub dependent_access_derate: f64,
    /// Effective-bandwidth penalty for uncoalesced single-slot accesses:
    /// each occupies a full line but uses a few bytes, and scattered DRAM
    /// rows activate poorly. GDDR5 random access runs at roughly a quarter
    /// of sequential bandwidth.
    pub random_access_derate: f64,
    /// Number of streaming multiprocessors (GTX 1080: 20).
    pub sm_count: u32,
    /// Throughput cost of one atomic operation, in nanoseconds. Calibrated
    /// so a stream of uncontended atomics costs about as much as the same
    /// number of memory transactions, matching the paper's profiling figure
    /// at conflict count 1.
    pub atomic_unit_ns: f64,
    /// Latency of one step in a same-address atomic serialization chain
    /// (an L2 read-modify-write round trip). Conflicting atomics pay this
    /// serially — the collapse in the paper's profiling figure.
    pub atomic_serial_ns: f64,
    /// Issue cost of one scheduler round, in nanoseconds. Models kernel
    /// loop overhead (vote + branch) which is hidden unless a kernel is
    /// latency-bound.
    pub round_issue_ns: f64,
    /// Total device memory in bytes (GTX 1080: 8 GB). Allocations beyond
    /// this fail, as `cudaMalloc` would.
    pub memory_bytes: u64,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self {
            bandwidth_bytes_per_sec: 320.0e9,
            line_bytes: 128,
            random_access_derate: 4.0,
            dependent_access_derate: 2.0,
            sm_count: 20,
            atomic_unit_ns: 0.4,
            atomic_serial_ns: 16.0,
            round_issue_ns: 2.0,
            memory_bytes: 8 * (1 << 30),
        }
    }
}

/// Errors surfaced by the simulated device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// An allocation would exceed the device memory capacity.
    OutOfMemory {
        /// Bytes requested by the failing allocation.
        requested: u64,
        /// Bytes available before the allocation.
        available: u64,
    },
    /// A free reported more bytes than are currently allocated (a bug in the
    /// caller's accounting).
    DoubleFree {
        /// Bytes the caller attempted to free.
        freed: u64,
        /// Bytes actually allocated.
        allocated: u64,
    },
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::OutOfMemory {
                requested,
                available,
            } => write!(
                f,
                "device out of memory: requested {requested} bytes, {available} available"
            ),
            DeviceError::DoubleFree { freed, allocated } => {
                write!(f, "freed {freed} bytes but only {allocated} are allocated")
            }
        }
    }
}

impl std::error::Error for DeviceError {}

/// The simulated device: configuration plus allocation accounting.
///
/// Hash tables report their allocations here so experiments can track the
/// memory footprint over time — the quantity behind the paper's "saves up
/// to 4× memory" headline.
#[derive(Debug, Clone)]
pub struct Device {
    config: DeviceConfig,
    allocated_bytes: u64,
    peak_bytes: u64,
}

impl Device {
    /// Create a device with the given configuration.
    pub fn new(config: DeviceConfig) -> Self {
        Self {
            config,
            allocated_bytes: 0,
            peak_bytes: 0,
        }
    }

    /// The device's hardware parameters.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Record an allocation of `bytes`, like `cudaMalloc`.
    pub fn alloc(&mut self, bytes: u64) -> Result<(), DeviceError> {
        let available = self.config.memory_bytes - self.allocated_bytes;
        if bytes > available {
            return Err(DeviceError::OutOfMemory {
                requested: bytes,
                available,
            });
        }
        self.allocated_bytes += bytes;
        self.peak_bytes = self.peak_bytes.max(self.allocated_bytes);
        Ok(())
    }

    /// Record a free of `bytes`, like `cudaFree`.
    pub fn free(&mut self, bytes: u64) -> Result<(), DeviceError> {
        if bytes > self.allocated_bytes {
            return Err(DeviceError::DoubleFree {
                freed: bytes,
                allocated: self.allocated_bytes,
            });
        }
        self.allocated_bytes -= bytes;
        Ok(())
    }

    /// Bytes currently allocated on the device.
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated_bytes
    }

    /// High-water mark of allocated bytes. Full-rehash resizing (MegaKV's
    /// strategy) shows up here: old + new table coexist during the rehash.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    /// Reset the high-water mark to the current allocation level.
    pub fn reset_peak(&mut self) {
        self.peak_bytes = self.allocated_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_tracks_totals_and_peak() {
        let mut d = Device::new(DeviceConfig::default());
        d.alloc(1000).unwrap();
        d.alloc(500).unwrap();
        assert_eq!(d.allocated_bytes(), 1500);
        d.free(1000).unwrap();
        assert_eq!(d.allocated_bytes(), 500);
        assert_eq!(d.peak_bytes(), 1500);
    }

    #[test]
    fn alloc_beyond_capacity_fails() {
        let cfg = DeviceConfig {
            memory_bytes: 100,
            ..DeviceConfig::default()
        };
        let mut d = Device::new(cfg);
        d.alloc(60).unwrap();
        let err = d.alloc(50).unwrap_err();
        assert_eq!(
            err,
            DeviceError::OutOfMemory {
                requested: 50,
                available: 40
            }
        );
    }

    #[test]
    fn overfree_is_reported() {
        let mut d = Device::new(DeviceConfig::default());
        d.alloc(10).unwrap();
        assert!(matches!(d.free(11), Err(DeviceError::DoubleFree { .. })));
    }

    #[test]
    fn reset_peak_rebases_to_current() {
        let mut d = Device::new(DeviceConfig::default());
        d.alloc(1000).unwrap();
        d.free(800).unwrap();
        d.reset_peak();
        assert_eq!(d.peak_bytes(), 200);
    }

    #[test]
    fn default_config_is_gtx_1080() {
        let cfg = DeviceConfig::default();
        assert_eq!(cfg.sm_count, 20);
        assert_eq!(cfg.line_bytes, 128);
        assert_eq!(cfg.memory_bytes, 8 * (1 << 30));
    }
}
