//! Request coalescing: turning a FIFO window of single-key requests into
//! the minimal set of batched table kernels.
//!
//! DyCuckoo's kernels are batched per operation type (the paper's
//! protocol), so a flush window is compiled into at most three kernels —
//! one find, one insert, one delete — while preserving **per-key arrival
//! order** semantics:
//!
//! * a Get *before* any write to its key in the window reads the table
//!   (the find kernel runs before the write kernels);
//! * a Get *after* a write in the window is answered locally from the
//!   pending write — read-your-writes without a table probe;
//! * several Gets of the same (unwritten) key share one probe;
//! * several writes to the same key collapse to the key's **last** write —
//!   only the final state touches the table.
//!
//! Read-modify-write ops (`Op::Upsert` / `Op::Increment`) *compose* in the
//! pending window instead of overwriting:
//!
//! * an upsert after a Put/Delete collapses locally (the base value is
//!   known: `rule.merge(v, a)` / `rule.initial(a)`);
//! * an upsert over an untouched key opens a **symbolic chain** of
//!   `(rule, arg)` ops — same-rule neighbors fold via
//!   [`MergeRule::fold_args`], and the chain flushes as upsert kernels;
//! * a Get after a chain probes the table (pre-window value) and applies
//!   the chain at reply time — read-your-merges without running kernels.
//!
//! Everything is first-touch ordered, so plans are deterministic.

use std::collections::HashMap;

use dycuckoo::MergeRule;

use crate::request::{Op, Pending};

/// What a pending write window holds for one key.
#[derive(Debug, Clone)]
enum WriteState {
    Put(u32),
    Delete,
    /// A symbolic chain of pending RMW ops over an unknown base value.
    Rmw(Vec<(MergeRule, u32)>),
}

/// Where one request's reply comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum PlannedReply {
    /// Get answered by the find kernel: index into [`FlushPlan::probes`].
    FromTable(usize),
    /// Get answered locally from a preceding write in the window.
    Local(Option<u32>),
    /// Get after a pending RMW chain: probe the pre-window value at
    /// `probes[idx]`, then apply the chain snapshot at reply time.
    FromTableRmw(usize, Vec<(MergeRule, u32)>),
    /// Put acknowledgement.
    Stored,
    /// Delete acknowledgement.
    Deleted,
    /// Upsert/Increment acknowledgement.
    Merged,
}

/// The compiled form of one flush window.
#[derive(Debug, Default)]
pub(crate) struct FlushPlan {
    /// Unique keys the find kernel must probe (first-touch order).
    pub probes: Vec<u32>,
    /// Final puts (first-write-touch order).
    pub puts: Vec<(u32, u32)>,
    /// Final deletes (first-write-touch order).
    pub deletes: Vec<u32>,
    /// Final RMW chains (first-write-touch order). Each key's chain runs
    /// in order; position `i` of every chain flushes in wave `i`, grouped
    /// by rule into one upsert kernel per group.
    pub rmws: Vec<(u32, Vec<(MergeRule, u32)>)>,
    /// Reply source per request, parallel to the input window.
    pub replies: Vec<PlannedReply>,
    /// Gets answered locally from the window (no probe issued).
    pub coalesced_local: u64,
    /// Duplicate Gets that shared an already-planned probe.
    pub dedup_saved: u64,
    /// Writes superseded by a later write to the same key in the window.
    pub writes_coalesced: u64,
}

/// Compile a flush window into kernel batches plus per-request reply
/// routing.
pub(crate) fn plan_flush(window: &[Pending]) -> FlushPlan {
    let mut plan = FlushPlan {
        replies: Vec::with_capacity(window.len()),
        ..FlushPlan::default()
    };
    // Key → index into plan.probes.
    let mut probe_of: HashMap<u32, usize> = HashMap::new();
    // Key → latest pending write in the window.
    let mut write_state: HashMap<u32, WriteState> = HashMap::new();
    // First-write-touch order of keys in write_state (determinism).
    let mut write_order: Vec<u32> = Vec::new();
    let mut raw_writes: u64 = 0;

    for req in window {
        match req.op {
            Op::Get(k) => match write_state.get(&k) {
                Some(WriteState::Put(v)) => {
                    plan.coalesced_local += 1;
                    plan.replies.push(PlannedReply::Local(Some(*v)));
                }
                Some(WriteState::Delete) => {
                    plan.coalesced_local += 1;
                    plan.replies.push(PlannedReply::Local(None));
                }
                Some(WriteState::Rmw(chain)) => {
                    // The base value is in the table: probe it (probes run
                    // before write kernels, so the probe sees the
                    // pre-window value) and apply the chain at reply time.
                    let snapshot = chain.clone();
                    let next = plan.probes.len();
                    let idx = *probe_of.entry(k).or_insert(next);
                    if idx == next {
                        plan.probes.push(k);
                    } else {
                        plan.dedup_saved += 1;
                    }
                    plan.replies.push(PlannedReply::FromTableRmw(idx, snapshot));
                }
                None => {
                    let next = plan.probes.len();
                    let idx = *probe_of.entry(k).or_insert(next);
                    if idx == next {
                        plan.probes.push(k);
                    } else {
                        plan.dedup_saved += 1;
                    }
                    plan.replies.push(PlannedReply::FromTable(idx));
                }
            },
            Op::Put(k, v) => {
                raw_writes += 1;
                if write_state.insert(k, WriteState::Put(v)).is_none() {
                    write_order.push(k);
                }
                plan.replies.push(PlannedReply::Stored);
            }
            Op::Delete(k) => {
                raw_writes += 1;
                if write_state.insert(k, WriteState::Delete).is_none() {
                    write_order.push(k);
                }
                plan.replies.push(PlannedReply::Deleted);
            }
            Op::Upsert(..) | Op::Increment(_) => {
                // Normalize: Increment ≡ Upsert(Count); Count ≡ Add(1)
                // (identical initial and merge), which makes every chain
                // element foldable. LastWrite degenerates to Put.
                let (k, rule, arg) = match req.op {
                    Op::Increment(k) | Op::Upsert(k, _, MergeRule::Count) => (k, MergeRule::Add, 1),
                    Op::Upsert(k, v, r) => (k, r, v),
                    _ => unreachable!("outer match narrowed to RMW ops"),
                };
                raw_writes += 1;
                let next_state = match write_state.get(&k) {
                    // Base value known locally: collapse the merge now.
                    Some(WriteState::Put(v)) => WriteState::Put(rule.merge(*v, arg)),
                    Some(WriteState::Delete) => WriteState::Put(rule.initial(arg)),
                    Some(WriteState::Rmw(chain)) => {
                        let mut chain = chain.clone();
                        match chain.last_mut() {
                            Some((last_rule, last_arg)) if *last_rule == rule => {
                                *last_arg = rule
                                    .fold_args(*last_arg, arg)
                                    .expect("Count normalized to Add");
                            }
                            _ => chain.push((rule, arg)),
                        }
                        WriteState::Rmw(chain)
                    }
                    None if rule == MergeRule::LastWrite => WriteState::Put(arg),
                    None => WriteState::Rmw(vec![(rule, arg)]),
                };
                if write_state.insert(k, next_state).is_none() {
                    write_order.push(k);
                }
                plan.replies.push(PlannedReply::Merged);
            }
        }
    }

    let mut final_writes = 0u64;
    for k in write_order {
        match write_state.remove(&k).expect("ordered key has state") {
            WriteState::Put(v) => {
                final_writes += 1;
                plan.puts.push((k, v));
            }
            WriteState::Delete => {
                final_writes += 1;
                plan.deletes.push(k);
            }
            WriteState::Rmw(chain) => {
                final_writes += chain.len() as u64;
                plan.rmws.push((k, chain));
            }
        }
    }
    plan.writes_coalesced = raw_writes - final_writes;
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pend(ops: &[Op]) -> Vec<Pending> {
        ops.iter()
            .enumerate()
            .map(|(i, &op)| Pending {
                id: i as u64,
                client: 0,
                op,
                submitted_tick: 0,
            })
            .collect()
    }

    #[test]
    fn get_before_write_probes_table_get_after_is_local() {
        let w = pend(&[Op::Get(5), Op::Put(5, 9), Op::Get(5)]);
        let plan = plan_flush(&w);
        assert_eq!(plan.probes, vec![5]);
        assert_eq!(plan.puts, vec![(5, 9)]);
        assert_eq!(
            plan.replies,
            vec![
                PlannedReply::FromTable(0),
                PlannedReply::Stored,
                PlannedReply::Local(Some(9)),
            ]
        );
        assert_eq!(plan.coalesced_local, 1);
    }

    #[test]
    fn duplicate_gets_share_one_probe() {
        let w = pend(&[Op::Get(1), Op::Get(2), Op::Get(1), Op::Get(1)]);
        let plan = plan_flush(&w);
        assert_eq!(plan.probes, vec![1, 2]);
        assert_eq!(plan.dedup_saved, 2);
        assert_eq!(
            plan.replies,
            vec![
                PlannedReply::FromTable(0),
                PlannedReply::FromTable(1),
                PlannedReply::FromTable(0),
                PlannedReply::FromTable(0),
            ]
        );
    }

    #[test]
    fn last_write_wins_and_coalesces() {
        let w = pend(&[
            Op::Put(7, 1),
            Op::Put(7, 2),
            Op::Delete(8),
            Op::Put(8, 5),
            Op::Put(9, 3),
            Op::Delete(9),
        ]);
        let plan = plan_flush(&w);
        // Final states: 7 → put 2, 8 → put 5, 9 → delete.
        assert_eq!(plan.puts, vec![(7, 2), (8, 5)]);
        assert_eq!(plan.deletes, vec![9]);
        assert_eq!(plan.writes_coalesced, 3);
        assert!(plan.probes.is_empty());
    }

    #[test]
    fn get_after_delete_answers_miss_locally() {
        let w = pend(&[Op::Put(3, 1), Op::Delete(3), Op::Get(3)]);
        let plan = plan_flush(&w);
        assert_eq!(plan.replies[2], PlannedReply::Local(None));
        assert_eq!(plan.puts, vec![]);
        assert_eq!(plan.deletes, vec![3]);
    }

    #[test]
    fn plans_are_first_touch_ordered() {
        let w = pend(&[
            Op::Put(30, 1),
            Op::Put(10, 1),
            Op::Put(20, 1),
            Op::Put(10, 2),
            Op::Get(99),
            Op::Get(50),
        ]);
        let plan = plan_flush(&w);
        assert_eq!(plan.puts, vec![(30, 1), (10, 2), (20, 1)]);
        assert_eq!(plan.probes, vec![99, 50]);
    }

    #[test]
    fn empty_window_is_empty_plan() {
        let plan = plan_flush(&[]);
        assert!(plan.probes.is_empty() && plan.puts.is_empty() && plan.deletes.is_empty());
        assert!(plan.rmws.is_empty());
        assert!(plan.replies.is_empty());
    }

    #[test]
    fn upserts_compose_and_fold_in_the_window() {
        let w = pend(&[
            Op::Upsert(5, 3, MergeRule::Add),
            Op::Increment(5),
            Op::Upsert(5, 10, MergeRule::Add),
            Op::Get(5),
        ]);
        let plan = plan_flush(&w);
        // Increment normalizes to Add(1); three Adds fold into one element.
        assert_eq!(plan.rmws, vec![(5, vec![(MergeRule::Add, 14)])]);
        assert_eq!(plan.probes, vec![5]);
        assert_eq!(
            plan.replies[3],
            PlannedReply::FromTableRmw(0, vec![(MergeRule::Add, 14)])
        );
        assert_eq!(plan.writes_coalesced, 2);
    }

    #[test]
    fn upsert_after_put_collapses_locally() {
        let w = pend(&[Op::Put(7, 5), Op::Upsert(7, 3, MergeRule::Add), Op::Get(7)]);
        let plan = plan_flush(&w);
        assert_eq!(plan.puts, vec![(7, 8)]);
        assert!(plan.rmws.is_empty());
        assert_eq!(plan.replies[2], PlannedReply::Local(Some(8)));
    }

    #[test]
    fn upsert_after_delete_materializes_the_initial_value() {
        let w = pend(&[Op::Delete(9), Op::Increment(9), Op::Get(9)]);
        let plan = plan_flush(&w);
        // Same supersede rule as Put-after-Delete: the final Put overwrites
        // whatever the table holds, so the delete never runs a kernel.
        assert_eq!(plan.puts, vec![(9, 1)]);
        assert!(plan.deletes.is_empty());
        assert_eq!(plan.replies[2], PlannedReply::Local(Some(1)));
    }

    #[test]
    fn mixed_rule_chains_keep_order() {
        let w = pend(&[
            Op::Upsert(2, 5, MergeRule::Add),
            Op::Upsert(2, 3, MergeRule::Max),
            Op::Upsert(2, 4, MergeRule::Max),
        ]);
        let plan = plan_flush(&w);
        assert_eq!(
            plan.rmws,
            vec![(2, vec![(MergeRule::Add, 5), (MergeRule::Max, 4)])]
        );
    }

    #[test]
    fn last_write_upsert_is_a_put_with_merged_ack() {
        let w = pend(&[Op::Upsert(4, 9, MergeRule::LastWrite), Op::Get(4)]);
        let plan = plan_flush(&w);
        assert_eq!(plan.puts, vec![(4, 9)]);
        assert!(plan.rmws.is_empty());
        assert_eq!(plan.replies[0], PlannedReply::Merged);
        assert_eq!(plan.replies[1], PlannedReply::Local(Some(9)));
    }
}
