//! # baselines — the hash tables the paper compares DyCuckoo against
//!
//! Every baseline is a complete reimplementation (from its published
//! description) on the same [`gpu_sim`] execution model, driven through the
//! shared [`api::GpuHashTable`] trait:
//!
//! * [`cudpp::Cudpp`] — per-slot cuckoo hashing with `atomicExch` chains and
//!   2–5 auto-chosen hash functions (Alcantara et al. / the CUDPP library).
//!   Insert + find only; failure means a full rebuild.
//! * [`megakv::MegaKv`] — two-function bucketized cuckoo, warp-centric with
//!   spin-locking; resizing doubles/halves everything with a full rehash.
//! * [`slab::SlabHash`] — chaining over 32-slot slab nodes with a dedicated
//!   pool allocator and symbolic (tombstone) deletion.
//! * [`linear::LinearProbing`] — open addressing with warp-wide 32-slot
//!   probe windows (the appendix baseline).
//! * [`adapter::DyCuckooTable`] — the DyCuckoo core behind the same trait.

pub mod adapter;
pub mod api;
pub mod cudpp;
pub mod linear;
pub mod megakv;
pub mod slab;

pub use adapter::DyCuckooTable;
pub use api::{GpuHashTable, Result, TableError};
pub use cudpp::Cudpp;
pub use linear::LinearProbing;
pub use megakv::{MegaKv, ResizeBounds};
pub use slab::SlabHash;
