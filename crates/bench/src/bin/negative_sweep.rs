//! **Negative sweep** — what a lookup that misses costs, and how much of
//! that cost the two miss shields remove, at several hit ratios.
//!
//! Two layers, matching DESIGN.md §4h:
//!
//! * **Fingerprint lanes** (raw tables): on `aos32` — the 256-byte
//!   interleaved bucket whose bare probe spans two cache lines — a probe
//!   that the bucket's fingerprint word rejects costs one line instead of
//!   two. `aos32+fp16` beats `aos32+fp8` (fewer false-positive confirms),
//!   which beats bare `aos32`. On single-line layouts (`soa32`) the lane
//!   cannot save probe lines; the lines-per-miss ordering is asserted on
//!   the multi-line layout where the win exists.
//! * **The service's cuckoo-filter miss shield**: a per-shard filter over
//!   the live key set answers provably-absent `Get`s at submission time —
//!   no batcher enqueue, no find kernel. True misses are shed at the
//!   filter's false-positive complement (≥ 90 % even at 8-bit tags);
//!   false positives pass through and get the correct not-found from the
//!   table.
//!
//! Every row registers its raw counters into the unified telemetry
//! registry, so `TELEMETRY_SNAP` pins the whole grid bit-for-bit
//! (`results/negative-sweep.snap`).

use bench::report::Table;
use bench::telemetry::Telemetry;
use bench::{measure, scale, seed};
use dycuckoo::{Config, DupPolicy, DyCuckoo};
use gpu_sim::{LayoutConfig, SimContext};
use kv_service::{KvService, Op, Reply, ServiceConfig};
use workloads::mix64;

/// Hit ratios swept, with stable labels for telemetry.
const HIT_RATIOS: [(f64, &str); 3] = [(0.0, "h00"), (0.5, "h50"), (0.9, "h90")];

/// Deterministic query mix: `hit_ratio` of the queries are live keys
/// (`1..=n`), the rest are provably absent (`n+1..=2n`). Shuffled by the
/// seed so hits and misses interleave.
fn query_mix(n: usize, hit_ratio: f64, seed: u64) -> Vec<u32> {
    let n_hits = (n as f64 * hit_ratio).round() as usize;
    let mut q: Vec<u32> = Vec::with_capacity(n);
    let mut rng = mix64(seed ^ 0x4E47_5357_4545_5021);
    for i in 0..n {
        rng = mix64(rng);
        if i < n_hits {
            q.push((rng % n as u64) as u32 + 1);
        } else {
            q.push(n as u32 + (rng % n as u64) as u32 + 1);
        }
    }
    // Fisher–Yates on the same deterministic stream.
    for i in (1..q.len()).rev() {
        rng = mix64(rng);
        q.swap(i, (rng % (i as u64 + 1)) as usize);
    }
    q
}

fn main() {
    let mut tel = Telemetry::from_env();
    let scale = scale();
    let seed = seed();
    let n = ((100_000.0 * scale).round() as usize).max(2_000);
    println!("Negative sweep: {n} live keys, {n} queries per row, seed {seed:#x}");

    // ---- Part 1: fingerprint lanes on raw tables -----------------------
    let mut t = Table::new(&[
        "layout",
        "hit",
        "queries",
        "misses",
        "read tx",
        "tx/op",
        "tx vs no-fp",
    ]);
    // All-miss read totals per layout, for the ordering assertion.
    let mut all_miss_reads: Vec<(String, u64)> = Vec::new();
    for spec in ["aos32", "aos32+fp8", "aos32+fp16"] {
        let layout = LayoutConfig::parse(spec, 4, 4).expect("valid layout spec");
        let mut sim = SimContext::new();
        let cfg = Config {
            seed,
            initial_buckets: 64,
            dup_policy: DupPolicy::PaperInsert,
            layout,
            ..Config::default()
        };
        let mut table = DyCuckoo::new(cfg, &mut sim).expect("table construction");
        let kvs: Vec<(u32, u32)> = (1..=n as u32).map(|k| (k, k ^ 0xABCD)).collect();
        table.insert_batch(&mut sim, &kvs).expect("seeding inserts");

        for &(hit, hit_label) in &HIT_RATIOS {
            let queries = query_mix(n, hit, seed);
            let (results, m) = measure(&mut sim, |sim| table.find_batch(sim, &queries));
            let misses = results.iter().filter(|r| r.is_none()).count();
            let expected_misses = n - (n as f64 * hit).round() as usize;
            assert_eq!(
                misses, expected_misses,
                "{spec} {hit_label}: wrong miss count"
            );
            for (q, r) in queries.iter().zip(&results) {
                match r {
                    Some(v) => assert_eq!(*v, q ^ 0xABCD, "{spec}: wrong value for {q}"),
                    None => assert!(*q > n as u32, "{spec}: live key {q} missed"),
                }
            }
            let reads = m.metrics.read_transactions;
            if hit == 0.0 {
                all_miss_reads.push((spec.to_string(), reads));
            }
            let baseline = all_miss_reads
                .iter()
                .find(|(s, _)| s == "aos32")
                .map(|&(_, r)| r);
            let vs = match (hit, baseline) {
                (0.0, Some(b)) if spec != "aos32" => {
                    format!("{:+.1}%", (reads as f64 / b as f64 - 1.0) * 100.0)
                }
                _ => "—".to_string(),
            };
            let labels = [
                ("figure", "negative_sweep"),
                ("mode", spec),
                ("hit", hit_label),
            ];
            tel.registry().counter("neg_queries", &labels, n as u64);
            tel.registry().counter("neg_misses", &labels, misses as u64);
            tel.registry().counter("neg_read_tx", &labels, reads);
            t.row(vec![
                spec.to_string(),
                hit_label.to_string(),
                n.to_string(),
                misses.to_string(),
                reads.to_string(),
                format!("{:.2}", reads as f64 / n as f64),
                vs,
            ]);
        }
    }
    t.print("Fingerprint lanes: find-kernel read transactions on aos32");

    // Headline ordering on the all-miss workload: every added fingerprint
    // bit removes read traffic.
    let reads_of = |spec: &str| {
        all_miss_reads
            .iter()
            .find(|(s, _)| s == spec)
            .map(|&(_, r)| r)
            .expect("row ran")
    };
    let (bare, fp8, fp16) = (
        reads_of("aos32"),
        reads_of("aos32+fp8"),
        reads_of("aos32+fp16"),
    );
    println!(
        "\nAll-miss read tx: aos32 {bare} > +fp8 {fp8} > +fp16 {fp16} \
         ({:+.1}% and {:+.1}% vs bare)",
        (fp8 as f64 / bare as f64 - 1.0) * 100.0,
        (fp16 as f64 / bare as f64 - 1.0) * 100.0,
    );
    assert!(
        fp16 < fp8 && fp8 < bare,
        "expected lines-per-miss ordering fp16 < fp8 < no-fp on aos32 \
         (got {fp16} / {fp8} / {bare})"
    );

    // ---- Part 2: the service's cuckoo-filter miss shield ---------------
    let mut t = Table::new(&[
        "filter",
        "hit",
        "gets",
        "misses",
        "shed",
        "shed %",
        "false pos",
        "probes",
    ]);
    for bits in [0u8, 8, 16] {
        let mode = match bits {
            0 => "svc-nofilter".to_string(),
            b => format!("svc-filter{b}"),
        };
        for &(hit, hit_label) in &HIT_RATIOS {
            let mut sim = SimContext::new();
            let cfg = ServiceConfig {
                shards: 4,
                max_batch: 128,
                max_delay_ticks: 2,
                queue_capacity: 1024,
                shed_watermark: 1024,
                miss_filter_bits: bits,
                ..ServiceConfig::default()
            };
            let mut svc = KvService::new(cfg, &mut sim).expect("service construction");
            let kvs: Vec<(u32, u32)> = (1..=n as u32).map(|k| (k, k ^ 0xABCD)).collect();
            for chunk in kvs.chunks(256) {
                for &(k, v) in chunk {
                    svc.submit(0, Op::Put(k, v)).expect("put admitted");
                }
                svc.tick(&mut sim).expect("tick");
            }
            svc.flush_all(&mut sim).expect("drain puts");
            svc.drain_completions();

            let queries = query_mix(n, hit, seed);
            for chunk in queries.chunks(256) {
                for &k in chunk {
                    svc.submit(0, Op::Get(k)).expect("get admitted");
                }
                svc.tick(&mut sim).expect("tick");
            }
            svc.flush_all(&mut sim).expect("drain gets");

            // Every reply must be authoritative regardless of the shield:
            // absent keys answer None (shed or false-positive path alike),
            // live keys answer their value.
            let mut misses = 0u64;
            for c in svc.drain_completions() {
                match c.reply {
                    Reply::Value(None) => {
                        assert!(c.key > n as u32, "live key {} answered None", c.key);
                        misses += 1;
                    }
                    Reply::Value(Some(v)) => {
                        assert!(c.key <= n as u32, "absent key {} answered Some", c.key);
                        assert_eq!(v, c.key ^ 0xABCD, "wrong value for {}", c.key);
                    }
                    _ => {}
                }
            }
            let total = svc.metrics().total();
            let expected_misses = (n - (n as f64 * hit).round() as usize) as u64;
            assert_eq!(
                misses, expected_misses,
                "{mode} {hit_label}: wrong miss count"
            );
            if bits == 0 {
                assert_eq!(total.filter_shed, 0, "shield ran while disabled");
            } else {
                assert_eq!(
                    total.filter_false_pos,
                    misses - total.filter_shed,
                    "{mode} {hit_label}: every unshed miss is a false positive"
                );
                assert!(
                    total.filter_shed as f64 >= 0.9 * misses as f64,
                    "{mode} {hit_label}: shed {}/{misses} true misses (< 90%)",
                    total.filter_shed
                );
            }
            let labels = [
                ("figure", "negative_sweep"),
                ("mode", mode.as_str()),
                ("hit", hit_label),
            ];
            tel.registry().counter("neg_queries", &labels, n as u64);
            tel.registry().counter("neg_misses", &labels, misses);
            tel.registry()
                .counter("neg_filter_shed", &labels, total.filter_shed);
            tel.registry()
                .counter("neg_filter_false_pos", &labels, total.filter_false_pos);
            tel.registry()
                .counter("neg_table_probes", &labels, total.table_probes);
            t.row(vec![
                match bits {
                    0 => "off".to_string(),
                    b => format!("{b}-bit"),
                },
                hit_label.to_string(),
                n.to_string(),
                misses.to_string(),
                total.filter_shed.to_string(),
                if misses > 0 {
                    format!("{:.1}%", total.filter_shed as f64 / misses as f64 * 100.0)
                } else {
                    "—".to_string()
                },
                total.filter_false_pos.to_string(),
                total.table_probes.to_string(),
            ]);
        }
    }
    t.print("Miss shield: true misses shed before the batcher, per filter width");

    tel.finish();
}
