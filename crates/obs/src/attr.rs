//! Deterministic cost attribution: *where* did the transactions go?
//!
//! The simulator's one invariant is that every memory transaction is
//! counted exactly ([`gpu_sim::Metrics`]); this module adds the missing
//! axis — attribution. Engine layers push scoped **domain segments**
//! (component / phase / op-kind, e.g. `dycuckoo/insert/evict-chain` or
//! `unsized/find/arena-deref`) onto a thread-local stack, and every charge
//! that increments a `Metrics` counter is simultaneously credited to the
//! node at the top of that stack. Zero drift by construction: attribution
//! observes the *same* increments `Metrics` performs (via the
//! `Metrics::charge` choke point), so the conservation law
//!
//! ```text
//! Σ over paths of attributed[kind]  ==  Metrics totals charged while on
//! ```
//!
//! holds identically — it is asserted by the `attribution` integration
//! tests across every schedule policy, both KV tiers, and mid-migration.
//!
//! Off by default. When disabled, [`charge`] is a thread-local flag read
//! and [`scope`] allocates nothing, so enabling attribution can never
//! change an execution — only observe it (the digest-identity tests pin
//! this).
//!
//! The drained [`Attribution`] renders as an exact-match text tree
//! ([`Attribution::to_text`]), CSV ([`Attribution::to_csv`]), and
//! flamegraph-collapsed folded stacks ([`Attribution::to_folded`]) that
//! load directly in inferno / speedscope.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Number of attributable counter kinds (mirrors `gpu_sim::Metrics`).
pub const NUM_KINDS: usize = 12;

/// Which `Metrics` counter a charge increments. One variant per field of
/// `gpu_sim::Metrics`, in declaration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Kind {
    /// Coalesced read transactions.
    ReadTx,
    /// Coalesced write transactions.
    WriteTx,
    /// Uncoalesced single-slot reads.
    RandomReadTx,
    /// Uncoalesced single-slot writes.
    RandomWriteTx,
    /// Pointer-chased (dependent) line reads.
    DependentReadTx,
    /// Atomic operations issued.
    AtomicOps,
    /// Per-round largest-conflict-group serial units.
    AtomicSerialUnits,
    /// Scheduler rounds executed.
    Rounds,
    /// Bucket probes.
    Lookups,
    /// Cuckoo evictions.
    Evictions,
    /// Failed CAS lock acquisitions.
    LockFailures,
    /// Operations completed.
    Ops,
}

impl Kind {
    /// Every kind, in `Metrics` field order.
    pub const ALL: [Kind; NUM_KINDS] = [
        Kind::ReadTx,
        Kind::WriteTx,
        Kind::RandomReadTx,
        Kind::RandomWriteTx,
        Kind::DependentReadTx,
        Kind::AtomicOps,
        Kind::AtomicSerialUnits,
        Kind::Rounds,
        Kind::Lookups,
        Kind::Evictions,
        Kind::LockFailures,
        Kind::Ops,
    ];

    /// Stable column / field name, matching the `sim_*` registry counters
    /// without the prefix.
    pub fn name(self) -> &'static str {
        match self {
            Kind::ReadTx => "read_transactions",
            Kind::WriteTx => "write_transactions",
            Kind::RandomReadTx => "random_read_transactions",
            Kind::RandomWriteTx => "random_write_transactions",
            Kind::DependentReadTx => "dependent_read_transactions",
            Kind::AtomicOps => "atomic_ops",
            Kind::AtomicSerialUnits => "atomic_serial_units",
            Kind::Rounds => "rounds",
            Kind::Lookups => "lookups",
            Kind::Evictions => "evictions",
            Kind::LockFailures => "lock_failures",
            Kind::Ops => "ops",
        }
    }

    #[inline]
    fn index(self) -> usize {
        self as usize
    }
}

/// Per-path counter block: one slot per [`Kind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counts {
    values: [u64; NUM_KINDS],
}

impl Counts {
    /// Value of one counter kind.
    #[inline]
    pub fn get(&self, kind: Kind) -> u64 {
        self.values[kind.index()]
    }

    /// Coalesced transactions (reads + writes) — the paper's headline cost.
    #[inline]
    pub fn transactions(&self) -> u64 {
        self.get(Kind::ReadTx) + self.get(Kind::WriteTx)
    }

    /// Whether every counter is zero.
    pub fn is_zero(&self) -> bool {
        self.values.iter().all(|&v| v == 0)
    }

    fn add(&mut self, other: &Counts) {
        for (a, b) in self.values.iter_mut().zip(other.values.iter()) {
            *a += b;
        }
    }
}

/// One node of the in-flight attribution tree. Segment names live in the
/// parent's `children` map keys; paths are reconstructed at drain time.
#[derive(Debug)]
struct Node {
    children: BTreeMap<String, usize>,
    counts: Counts,
}

/// The in-flight profiler: an arena of tree nodes plus the active stack.
/// Node 0 is the root; charges landing there (no scope active) render as
/// `(unattributed)`.
#[derive(Debug)]
struct Profiler {
    nodes: Vec<Node>,
    stack: Vec<usize>,
}

impl Profiler {
    fn new() -> Self {
        Self {
            nodes: vec![Node {
                children: BTreeMap::new(),
                counts: Counts::default(),
            }],
            stack: vec![0],
        }
    }

    fn push(&mut self, segment: &str) {
        let top = *self.stack.last().expect("stack never empty");
        let id = match self.nodes[top].children.get(segment) {
            Some(&id) => id,
            None => {
                let id = self.nodes.len();
                self.nodes.push(Node {
                    children: BTreeMap::new(),
                    counts: Counts::default(),
                });
                self.nodes[top].children.insert(segment.to_string(), id);
                id
            }
        };
        self.stack.push(id);
    }

    fn pop(&mut self) {
        // The root sentinel stays; a stray pop (scope dropped after stop +
        // restart) must not underflow.
        if self.stack.len() > 1 {
            self.stack.pop();
        }
    }

    fn charge(&mut self, kind: Kind, n: u64) {
        let top = *self.stack.last().expect("stack never empty");
        self.nodes[top].counts.values[kind.index()] += n;
    }

    /// Flatten into `path -> self counts`, root as the empty path. Every
    /// node ever pushed is materialized (interior nodes with zero self
    /// charges included) so the text tree shows the full domain structure.
    fn drain(self) -> BTreeMap<String, Counts> {
        let mut out = BTreeMap::new();
        let mut todo: Vec<(usize, String)> = vec![(0, String::new())];
        while let Some((id, path)) = todo.pop() {
            let node = &self.nodes[id];
            out.insert(path.clone(), node.counts);
            for (seg, &child) in &node.children {
                let child_path = if path.is_empty() {
                    seg.clone()
                } else {
                    format!("{path}/{seg}")
                };
                todo.push((child, child_path));
            }
        }
        out
    }
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static PROFILER: RefCell<Option<Profiler>> = const { RefCell::new(None) };
}

/// Whether attribution is collecting on this thread. Charge sites guard on
/// this before doing any work beyond the flag read.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.with(|e| e.get())
}

/// Start collecting attribution on this thread (fresh tree; any previous
/// unfinished collection is discarded).
pub fn start() {
    PROFILER.with(|p| *p.borrow_mut() = Some(Profiler::new()));
    ENABLED.with(|e| e.set(true));
}

/// Stop collecting and drain the attribution tree. Returns an empty
/// [`Attribution`] if [`start`] was never called.
pub fn stop() -> Attribution {
    ENABLED.with(|e| e.set(false));
    let profiler = PROFILER.with(|p| p.borrow_mut().take());
    Attribution {
        paths: profiler.map(Profiler::drain).unwrap_or_default(),
    }
}

/// Credit `n` units of `kind` to the innermost active scope (the root if
/// none). No-op when attribution is off — `gpu_sim::Metrics::charge` calls
/// this unconditionally, so this early-out is the entire disabled-run cost.
#[inline]
pub fn charge(kind: Kind, n: u64) {
    if !is_enabled() {
        return;
    }
    PROFILER.with(|p| {
        if let Some(prof) = p.borrow_mut().as_mut() {
            prof.charge(kind, n);
        }
    });
}

/// Replay a drained [`Attribution`] into this thread's active profiler,
/// each path re-rooted under the currently innermost scope (the drained
/// root's charges land on that scope itself). No-op when attribution is
/// off.
///
/// This is how the `host-par` backend keeps the conservation law across
/// threads: a worker collects its kernel charges with [`start`]/[`stop`]
/// (attribution state is thread-local), and the coordinator absorbs the
/// result inside its own `service/flush/shardN` scope — producing the
/// same paths the single-threaded backend charges directly.
pub fn absorb(attribution: &Attribution) {
    if !is_enabled() {
        return;
    }
    for (path, counts) in attribution.iter() {
        let _scope = scope(path);
        for kind in Kind::ALL {
            let n = counts.get(kind);
            if n > 0 {
                charge(kind, n);
            }
        }
    }
}

/// RAII guard for one pushed domain path; pops its segments on drop.
#[derive(Debug)]
#[must_use = "dropping the scope immediately pops it"]
pub struct Scope {
    depth: usize,
}

impl Drop for Scope {
    fn drop(&mut self) {
        if self.depth > 0 {
            PROFILER.with(|p| {
                if let Some(prof) = p.borrow_mut().as_mut() {
                    for _ in 0..self.depth {
                        prof.pop();
                    }
                }
            });
        }
    }
}

/// Push a `/`-separated domain path (e.g. `"dycuckoo/insert"`); every
/// [`charge`] until the returned guard drops is credited to that node.
/// Free when attribution is off.
pub fn scope(path: &str) -> Scope {
    if !is_enabled() {
        return Scope { depth: 0 };
    }
    let mut depth = 0;
    PROFILER.with(|p| {
        if let Some(prof) = p.borrow_mut().as_mut() {
            for seg in path.split('/').filter(|s| !s.is_empty()) {
                prof.push(seg);
                depth += 1;
            }
        }
    });
    Scope { depth }
}

/// Like [`scope`], but the path is only *built* when attribution is on —
/// use for dynamic segments (`format!("service/flush/shard{i}")`) so
/// disabled runs never allocate.
pub fn scope_with<F: FnOnce() -> String>(f: F) -> Scope {
    if !is_enabled() {
        return Scope { depth: 0 };
    }
    scope(&f())
}

/// A drained attribution tree: per-path **self** counts (charges made while
/// that exact path was innermost). The empty path is the root — charges
/// made outside any scope — rendered as `(unattributed)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Attribution {
    paths: BTreeMap<String, Counts>,
}

/// Display name for the root path.
const ROOT_NAME: &str = "(unattributed)";

impl Attribution {
    /// Total of `kind` across every path (root included). By the
    /// conservation law this equals the `Metrics` delta of the window.
    pub fn total(&self, kind: Kind) -> u64 {
        self.paths.values().map(|c| c.get(kind)).sum()
    }

    /// Total coalesced transactions across every path.
    pub fn total_transactions(&self) -> u64 {
        self.paths.values().map(|c| c.transactions()).sum()
    }

    /// Self counts of one exact path (`""` for the root).
    pub fn get(&self, path: &str) -> Option<&Counts> {
        self.paths.get(path)
    }

    /// Iterate `(path, self counts)` in sorted path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Counts)> {
        self.paths.iter().map(|(p, c)| (p.as_str(), c))
    }

    /// Fold another attribution window into this one: path-wise counter
    /// sums, with paths present in only one side carried over verbatim.
    ///
    /// This is the quiesce-point merge of the `host-par` backend:
    /// attribution state is thread-local, so every worker thread drains
    /// its own [`Attribution`] and the coordinator folds them after the
    /// join. Merging is associative and commutative with
    /// `Attribution::default()` as identity (pinned by property tests),
    /// so the merge order — thread index, completion order, whatever the
    /// scheduler produced — cannot change the totals, and the
    /// conservation law (Σ attributed == merged `Metrics` deltas) is
    /// preserved because both sides are summed the same way.
    pub fn merge(&mut self, other: &Attribution) {
        for (path, counts) in &other.paths {
            self.paths.entry(path.clone()).or_default().add(counts);
        }
    }

    /// Subtree counts of one path: its self counts plus every descendant's.
    pub fn subtree(&self, path: &str) -> Counts {
        let mut total = Counts::default();
        for (p, c) in &self.paths {
            if path.is_empty()
                || p == path
                || (p.len() > path.len() && p.starts_with(path) && p.as_bytes()[path.len()] == b'/')
            {
                total.add(c);
            }
        }
        total
    }

    /// The `k` paths with the largest self transaction counts, descending
    /// (ties broken by path order). Root included only if it has traffic.
    pub fn top_paths(&self, k: usize) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = self
            .paths
            .iter()
            .filter(|(_, c)| c.transactions() > 0)
            .map(|(p, c)| (display_path(p), c.transactions()))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// Exact-match text tree: one line per path in sorted order, indented
    /// by depth, with self and subtree transaction counts plus self
    /// lookups/rounds/ops.
    pub fn to_text(&self) -> String {
        let mut out =
            String::from("path (indent = depth) | self_tx | subtree_tx | lookups | rounds | ops\n");
        for (path, counts) in &self.paths {
            let depth = if path.is_empty() {
                0
            } else {
                path.matches('/').count() + 1
            };
            let seg = if path.is_empty() {
                ROOT_NAME
            } else {
                path.rsplit('/').next().unwrap_or(path)
            };
            let subtree = self.subtree(path);
            let _ = writeln!(
                out,
                "{:indent$}{seg} | {} | {} | {} | {} | {}",
                "",
                counts.transactions(),
                subtree.transactions(),
                counts.get(Kind::Lookups),
                counts.get(Kind::Rounds),
                counts.get(Kind::Ops),
                indent = depth * 2,
            );
        }
        out
    }

    /// Wide CSV: `path` plus one column per [`Kind`], RFC 4180-quoted.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("path");
        for kind in Kind::ALL {
            out.push(',');
            out.push_str(kind.name());
        }
        out.push('\n');
        for (path, counts) in &self.paths {
            out.push_str(&crate::registry::csv_field(&display_path(path)));
            for kind in Kind::ALL {
                let _ = write!(out, ",{}", counts.get(kind));
            }
            out.push('\n');
        }
        out
    }

    /// Flamegraph-collapsed folded stacks for one counter kind:
    /// `seg;seg;seg value` per line, sorted, zero-value paths skipped.
    /// Loads directly in inferno / speedscope.
    pub fn to_folded(&self, kind: Kind) -> String {
        let mut out = String::new();
        for (path, counts) in &self.paths {
            let v = counts.get(kind);
            if v == 0 {
                continue;
            }
            let frames = if path.is_empty() {
                ROOT_NAME.to_string()
            } else {
                path.replace('/', ";")
            };
            let _ = writeln!(out, "{frames} {v}");
        }
        out
    }

    /// Fold per-path transaction counts into a unified [`crate::Registry`]
    /// as `attr_tx{path=...}` counters (plus `attr_lookups`/`attr_ops`),
    /// so pinned registry snapshots carry the attribution and CI's
    /// byte-for-byte snapshot diff doubles as a per-path attribution diff.
    pub fn register_into(&self, reg: &mut crate::Registry, extra: &[(&str, &str)]) {
        for (path, counts) in &self.paths {
            if counts.is_zero() {
                continue;
            }
            let shown = display_path(path);
            let mut labels: Vec<(&str, &str)> = extra.to_vec();
            labels.push(("path", shown.as_str()));
            reg.counter("attr_tx", &labels, counts.transactions());
            reg.counter("attr_lookups", &labels, counts.get(Kind::Lookups));
            reg.counter("attr_ops", &labels, counts.get(Kind::Ops));
        }
    }
}

fn display_path(path: &str) -> String {
    if path.is_empty() {
        ROOT_NAME.to_string()
    } else {
        path.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn charged(kind: Kind, n: u64) {
        charge(kind, n);
    }

    #[test]
    fn disabled_charges_and_scopes_are_noops() {
        assert!(!is_enabled());
        let _s = scope("a/b");
        charged(Kind::ReadTx, 5);
        let attr = stop();
        assert_eq!(attr.total(Kind::ReadTx), 0);
    }

    #[test]
    fn charges_credit_the_innermost_scope() {
        start();
        charged(Kind::ReadTx, 1); // root
        {
            let _a = scope("dycuckoo/insert");
            charged(Kind::ReadTx, 10);
            charged(Kind::Lookups, 10);
            {
                let _b = scope("evict-chain");
                charged(Kind::WriteTx, 3);
                charged(Kind::Evictions, 3);
            }
            charged(Kind::ReadTx, 2);
        }
        let attr = stop();
        assert_eq!(attr.get("").unwrap().get(Kind::ReadTx), 1);
        assert_eq!(attr.get("dycuckoo/insert").unwrap().get(Kind::ReadTx), 12);
        assert_eq!(
            attr.get("dycuckoo/insert/evict-chain")
                .unwrap()
                .get(Kind::WriteTx),
            3
        );
        // Conservation within the structure itself.
        assert_eq!(attr.total(Kind::ReadTx), 13);
        assert_eq!(attr.total(Kind::WriteTx), 3);
        assert_eq!(attr.total_transactions(), 16);
        // Subtree rolls descendants up.
        assert_eq!(attr.subtree("dycuckoo").transactions(), 15);
        assert_eq!(attr.subtree("").transactions(), 16);
    }

    #[test]
    fn scope_with_only_formats_when_enabled() {
        let mut called = false;
        {
            let _s = scope_with(|| {
                called = true;
                "x".to_string()
            });
        }
        assert!(!called, "path built while attribution off");
        start();
        {
            let _s = scope_with(|| "svc/flush/shard3".to_string());
            charged(Kind::WriteTx, 7);
        }
        let attr = stop();
        assert_eq!(attr.get("svc/flush/shard3").unwrap().get(Kind::WriteTx), 7);
    }

    #[test]
    fn folded_output_is_semicolon_separated_and_sorted() {
        start();
        {
            let _a = scope("t/insert");
            charged(Kind::ReadTx, 4);
        }
        {
            let _b = scope("t/find");
            charged(Kind::ReadTx, 2);
        }
        charged(Kind::ReadTx, 1);
        let attr = stop();
        let folded = attr.to_folded(Kind::ReadTx);
        assert_eq!(folded, "(unattributed) 1\nt;find 2\nt;insert 4\n");
    }

    #[test]
    fn csv_has_one_column_per_kind() {
        start();
        {
            let _a = scope("x");
            charged(Kind::Ops, 9);
        }
        let attr = stop();
        let csv = attr.to_csv();
        let header = csv.lines().next().unwrap();
        assert_eq!(header.split(',').count(), 1 + NUM_KINDS);
        assert!(header.ends_with(",ops"));
        assert!(csv
            .lines()
            .any(|l| l.starts_with("x,") && l.ends_with(",9")));
    }

    #[test]
    fn top_paths_sorts_by_transactions_descending() {
        start();
        {
            let _a = scope("small");
            charged(Kind::ReadTx, 1);
        }
        {
            let _b = scope("big");
            charged(Kind::WriteTx, 100);
        }
        let attr = stop();
        let top = attr.top_paths(1);
        assert_eq!(top, vec![("big".to_string(), 100)]);
    }

    #[test]
    fn reentrant_scopes_share_nodes() {
        start();
        for _ in 0..3 {
            let _a = scope("t/op");
            charged(Kind::Rounds, 1);
        }
        let attr = stop();
        assert_eq!(attr.get("t/op").unwrap().get(Kind::Rounds), 3);
        // Root, interior `t`, and `t/op` — re-entering does not duplicate.
        assert_eq!(attr.iter().count(), 3);
    }

    #[test]
    fn register_into_writes_per_path_counters() {
        start();
        {
            let _a = scope("dyc/find");
            charged(Kind::ReadTx, 6);
            charged(Kind::Lookups, 6);
        }
        let attr = stop();
        let mut reg = crate::Registry::new();
        attr.register_into(&mut reg, &[("scenario", "s1")]);
        assert_eq!(
            reg.get_counter("attr_tx", &[("scenario", "s1"), ("path", "dyc/find")]),
            Some(6)
        );
        assert_eq!(
            reg.get_counter("attr_lookups", &[("scenario", "s1"), ("path", "dyc/find")]),
            Some(6)
        );
    }

    #[test]
    fn stop_without_start_is_empty() {
        let attr = stop();
        assert_eq!(attr.total_transactions(), 0);
        assert!(attr.to_folded(Kind::ReadTx).is_empty());
    }

    #[test]
    fn text_tree_indents_by_depth() {
        start();
        {
            let _a = scope("a/b");
            charged(Kind::ReadTx, 2);
        }
        let attr = stop();
        let text = attr.to_text();
        assert!(text.contains("\n(unattributed)"));
        assert!(text.contains("\n  a |"));
        assert!(text.contains("\n    b | 2 | 2 |"));
    }

    #[test]
    fn absorb_reroots_a_drained_window_under_the_current_scope() {
        // A "worker" window with root charges and a nested path.
        start();
        charged(Kind::Ops, 2); // worker root
        {
            let _k = scope("dycuckoo/insert");
            charged(Kind::ReadTx, 5);
        }
        let worker = stop();
        // The "coordinator" absorbs it under its flush scope.
        start();
        {
            let _s = scope("service/flush/shard0");
            absorb(&worker);
        }
        let attr = stop();
        assert_eq!(attr.get("service/flush/shard0").unwrap().get(Kind::Ops), 2);
        assert_eq!(
            attr.get("service/flush/shard0/dycuckoo/insert")
                .unwrap()
                .get(Kind::ReadTx),
            5
        );
        // Conservation: totals carried over exactly.
        for kind in Kind::ALL {
            assert_eq!(attr.total(kind), worker.total(kind), "{kind:?}");
        }
        // Disabled absorb is a no-op.
        absorb(&worker);
        let after = stop();
        assert_eq!(after.total(Kind::Ops), 0);
    }

    #[test]
    fn merge_sums_shared_paths_and_carries_disjoint_ones() {
        start();
        {
            let _a = scope("kernel/insert");
            charged(Kind::ReadTx, 3);
        }
        let mut a = stop();
        start();
        {
            let _a = scope("kernel/insert");
            charged(Kind::ReadTx, 4);
        }
        {
            let _b = scope("kernel/find");
            charged(Kind::Lookups, 5);
        }
        let b = stop();
        a.merge(&b);
        assert_eq!(a.get("kernel/insert").unwrap().get(Kind::ReadTx), 7);
        assert_eq!(a.get("kernel/find").unwrap().get(Kind::Lookups), 5);
        assert_eq!(a.total(Kind::ReadTx), 7);
        // Identity: merging an empty window changes nothing.
        let before = a.clone();
        a.merge(&Attribution::default());
        assert_eq!(a, before);
    }
}
