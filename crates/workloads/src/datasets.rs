//! Synthetic equivalents of the paper's five datasets (Table 2).
//!
//! The real Twitter/Reddit crawls and the Alibaba Databank sample are not
//! redistributable, and TPC-H dbgen output is only needed for its key
//! multiplicity. What the evaluation actually exercises is each dataset's
//! **volume** (KV pairs) and **duplication profile** (unique keys / pairs),
//! so the generators reproduce exactly those statistics, scaled by a
//! configurable factor (experiments default to 1/50 of the paper's sizes).
//!
//! | name | KV pairs    | unique keys | max dup | character                    |
//! |------|-------------|-------------|---------|------------------------------|
//! | TW   | 50,876,784  | 44,523,684  | 4       | retweet actions              |
//! | RE   | 48,104,875  | 41,466,682  | 2       | comment actions              |
//! | LINE | 50,000,000  | 45,159,880  | 4       | composite TPC-H lineitem key |
//! | COM  | 10,000,000  |  4,583,941  | 14      | customer IDs                 |
//! | RAND | 100,000,000 | 100,000,000 | 1       | fully unique                 |
//!
//! The max-duplicate column comes from the authors' extended dataset table;
//! it bounds how often any key repeats, which matters for lock-contention
//! behaviour.

use crate::keygen::unique_keys;
use crate::mix64;
use crate::zipf::Zipf;

/// Static description of a dataset (name + target statistics).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetSpec {
    /// Dataset label as printed by the paper.
    pub name: &'static str,
    /// Total KV pairs to generate.
    pub total_pairs: usize,
    /// Distinct keys among them.
    pub unique_keys: usize,
    /// Zipf exponent of the duplicate-occurrence distribution.
    pub zipf_s: f64,
    /// Maximum occurrences of any single key (from the authors' extended
    /// dataset table). 1 means fully unique.
    pub max_dup: u32,
}

impl DatasetSpec {
    /// Scale the dataset down (or up), preserving the unique/total ratio.
    pub fn scaled(&self, factor: f64) -> DatasetSpec {
        assert!(factor > 0.0);
        let total = ((self.total_pairs as f64 * factor).round() as usize).max(1);
        let unique = ((self.unique_keys as f64 * factor).round() as usize)
            .max(1)
            .min(total);
        DatasetSpec {
            total_pairs: total,
            unique_keys: unique,
            ..*self
        }
    }

    /// Generate the dataset deterministically from a seed.
    pub fn generate(&self, seed: u64) -> Dataset {
        let uniques: Vec<u32> =
            unique_keys(seed ^ mix64(self.name.len() as u64), self.unique_keys).collect();
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(self.total_pairs);
        // Every unique key appears at least once…
        for (i, &k) in uniques.iter().enumerate() {
            pairs.push((k, value_of(k, i as u32)));
        }
        // …and the surplus occurrences hit Zipf-ranked keys, capped at
        // `max_dup` occurrences per key (rejection sampling with a linear
        // fallback so generation always terminates).
        let surplus = self.total_pairs - self.unique_keys;
        if surplus > 0 {
            assert!(
                self.max_dup >= 2,
                "{}: surplus pairs but max_dup = {}",
                self.name,
                self.max_dup
            );
            let mut occurrences = vec![1u32; self.unique_keys];
            let zipf = Zipf::new(self.unique_keys as u64, self.zipf_s);
            let mut cursor = 0usize; // fallback scan position
            for i in 0..surplus {
                let mut rank = None;
                for attempt in 0..8 {
                    let r = zipf.sample(mix64(seed ^ (i as u64) << 3 ^ attempt)) as usize - 1;
                    if occurrences[r] < self.max_dup {
                        rank = Some(r);
                        break;
                    }
                }
                let r = rank.unwrap_or_else(|| {
                    while occurrences[cursor] >= self.max_dup {
                        cursor += 1;
                    }
                    cursor
                });
                occurrences[r] += 1;
                let k = uniques[r];
                pairs.push((k, value_of(k, (self.unique_keys + i) as u32)));
            }
        }
        // Deterministic Fisher–Yates shuffle so duplicates interleave with
        // first occurrences, as they do in a real stream.
        for i in (1..pairs.len()).rev() {
            let j = (mix64(seed ^ 0xF15E ^ i as u64) % (i as u64 + 1)) as usize;
            pairs.swap(i, j);
        }
        Dataset {
            name: self.name,
            pairs,
            unique_keys: self.unique_keys,
        }
    }
}

#[inline]
fn value_of(key: u32, occurrence: u32) -> u32 {
    key.wrapping_mul(0x9E37_79B9) ^ occurrence
}

/// A generated dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset label.
    pub name: &'static str,
    /// The KV stream, duplicates interleaved.
    pub pairs: Vec<(u32, u32)>,
    /// Number of distinct keys in `pairs`.
    pub unique_keys: usize,
}

impl Dataset {
    /// Total KV pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The distinct keys of the dataset (first-occurrence order).
    pub fn distinct_keys(&self) -> Vec<u32> {
        let mut seen = std::collections::HashSet::with_capacity(self.unique_keys);
        let mut keys = Vec::with_capacity(self.unique_keys);
        for &(k, _) in &self.pairs {
            if seen.insert(k) {
                keys.push(k);
            }
        }
        keys
    }
}

/// The paper's five datasets at full size (Table 2).
pub fn paper_datasets() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            name: "TW",
            total_pairs: 50_876_784,
            unique_keys: 44_523_684,
            zipf_s: 1.1,
            max_dup: 4,
        },
        DatasetSpec {
            name: "RE",
            total_pairs: 48_104_875,
            unique_keys: 41_466_682,
            zipf_s: 1.0,
            max_dup: 2,
        },
        DatasetSpec {
            name: "LINE",
            total_pairs: 50_000_000,
            unique_keys: 45_159_880,
            zipf_s: 0.8,
            max_dup: 4,
        },
        DatasetSpec {
            name: "COM",
            total_pairs: 10_000_000,
            unique_keys: 4_583_941,
            zipf_s: 1.2,
            max_dup: 14,
        },
        DatasetSpec {
            name: "RAND",
            total_pairs: 100_000_000,
            unique_keys: 100_000_000,
            zipf_s: 1.0,
            max_dup: 1,
        },
    ]
}

/// Look up a paper dataset by name.
pub fn dataset_by_name(name: &str) -> Option<DatasetSpec> {
    paper_datasets().into_iter().find(|d| d.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn paper_table_2_statistics() {
        let specs = paper_datasets();
        assert_eq!(specs.len(), 5);
        let tw = dataset_by_name("TW").unwrap();
        assert_eq!(tw.total_pairs, 50_876_784);
        assert_eq!(tw.unique_keys, 44_523_684);
        let com = dataset_by_name("COM").unwrap();
        assert_eq!(com.total_pairs, 10_000_000);
        assert_eq!(com.unique_keys, 4_583_941);
        let rand = dataset_by_name("RAND").unwrap();
        assert_eq!(rand.total_pairs, rand.unique_keys);
    }

    #[test]
    fn scaled_preserves_ratio() {
        let com = dataset_by_name("COM").unwrap().scaled(0.01);
        assert_eq!(com.total_pairs, 100_000);
        let ratio = com.total_pairs as f64 / com.unique_keys as f64;
        let full_ratio = 10_000_000.0 / 4_583_941.0;
        assert!((ratio - full_ratio).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn generate_matches_spec_exactly() {
        let spec = dataset_by_name("COM").unwrap().scaled(0.002);
        let ds = spec.generate(1);
        assert_eq!(ds.len(), spec.total_pairs);
        let distinct: HashSet<u32> = ds.pairs.iter().map(|&(k, _)| k).collect();
        assert_eq!(distinct.len(), spec.unique_keys);
        assert!(!distinct.contains(&0));
        assert!(!distinct.contains(&u32::MAX));
    }

    #[test]
    fn rand_dataset_has_no_duplicates() {
        let spec = dataset_by_name("RAND").unwrap().scaled(0.0005);
        let ds = spec.generate(2);
        let distinct: HashSet<u32> = ds.pairs.iter().map(|&(k, _)| k).collect();
        assert_eq!(distinct.len(), ds.len());
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = dataset_by_name("TW").unwrap().scaled(0.001);
        assert_eq!(spec.generate(3).pairs, spec.generate(3).pairs);
    }

    #[test]
    fn duplicates_are_skewed_for_com() {
        let spec = dataset_by_name("COM").unwrap().scaled(0.01);
        let ds = spec.generate(4);
        let mut counts = std::collections::HashMap::new();
        for &(k, _) in &ds.pairs {
            *counts.entry(k).or_insert(0u32) += 1;
        }
        let max_dup = counts.values().copied().max().unwrap();
        assert!(
            (3..=14).contains(&max_dup),
            "COM duplicates should be skewed but capped at 14, max dup = {max_dup}"
        );
    }

    #[test]
    fn distinct_keys_first_occurrence_order() {
        let spec = DatasetSpec {
            name: "T",
            total_pairs: 100,
            unique_keys: 50,
            zipf_s: 1.0,
            max_dup: 8,
        };
        let ds = spec.generate(5);
        let keys = ds.distinct_keys();
        assert_eq!(keys.len(), 50);
        let set: HashSet<u32> = keys.iter().copied().collect();
        assert_eq!(set.len(), 50);
    }
}
