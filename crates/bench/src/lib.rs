//! # bench — shared experiment-harness utilities
//!
//! Each paper table/figure has a binary in `src/bin/` that prints the same
//! rows/series the paper reports. This library holds what they share:
//! workload scaling, measurement windows, scheme construction, the dynamic
//! workload driver, and aligned table printing.
//!
//! ## Scaling
//!
//! The paper's datasets are 10–100 M pairs on a real GTX 1080. The
//! simulator is deterministic but runs on a CPU, so experiments default to
//! **1/50 scale** (e.g. RAND = 2 M pairs). Set `REPRO_SCALE` to change it:
//! `REPRO_SCALE=0.05 cargo run --release -p bench --bin fig8_static`.
//! Shapes are scale-invariant because every scheme is charged by the same
//! cost model.

pub mod driver;
pub mod fuzz;
pub mod report;
pub mod telemetry;

use gpu_sim::{CostModel, Metrics, SimContext};

/// Default dataset scale factor relative to the paper.
pub const DEFAULT_SCALE: f64 = 0.02;

/// Dataset scale factor: `REPRO_SCALE` env var or [`DEFAULT_SCALE`].
pub fn scale() -> f64 {
    std::env::var("REPRO_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|&s| s > 0.0)
        .unwrap_or(DEFAULT_SCALE)
}

/// Experiment seed: `REPRO_SEED` env var or a fixed default.
pub fn seed() -> u64 {
    std::env::var("REPRO_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0xD_1CE)
}

/// Outcome of one measured kernel window.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Metrics accumulated during the window.
    pub metrics: Metrics,
    /// Simulated time in nanoseconds.
    pub ns: f64,
    /// Operations performed (from the metrics).
    pub ops: u64,
    /// Million operations per second.
    pub mops: f64,
}

/// Run `f` inside a fresh measurement window on `sim` and report the
/// simulated throughput of the operations it performed. Metrics accumulated
/// before the window are preserved around it.
pub fn measure<R>(sim: &mut SimContext, f: impl FnOnce(&mut SimContext) -> R) -> (R, Measurement) {
    let saved = sim.take_metrics();
    let result = f(sim);
    let metrics = sim.take_metrics();
    let model = CostModel::new(sim.device.config());
    let ns = model.kernel_time_ns(&metrics);
    let ops = metrics.ops;
    let mops = model.mops(ops, &metrics);
    sim.metrics = saved;
    (
        result,
        Measurement {
            metrics,
            ns,
            ops,
            mops,
        },
    )
}

/// Throughput over an explicit op count (when a window mixes op kinds).
pub fn mops_of(sim: &SimContext, metrics: &Metrics, ops: u64) -> f64 {
    CostModel::new(sim.device.config()).mops(ops, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_isolates_and_restores_window() {
        let mut sim = SimContext::new();
        sim.metrics.read_transactions = 7;
        let (val, m) = measure(&mut sim, |sim| {
            sim.metrics.read_transactions += 100;
            sim.metrics.ops += 10;
            42
        });
        assert_eq!(val, 42);
        assert_eq!(m.metrics.read_transactions, 100);
        assert_eq!(m.ops, 10);
        assert!(m.mops > 0.0);
        // Pre-existing metrics restored.
        assert_eq!(sim.metrics.read_transactions, 7);
    }

    #[test]
    fn default_scale_when_env_absent() {
        // The env var is not set in the test environment.
        assert!(scale() > 0.0);
    }
}
