//! The flight recorder: a thread-local bounded ring of [`TraceEvent`]s.
//!
//! The stack is single-threaded per simulation context, so a thread-local
//! recorder needs no locking and adds one branch (`is_enabled`) plus a
//! `VecDeque` push per event when on. Recording is **off by default**;
//! [`start`] arms it and [`stop`] drains the ring. When the ring is full
//! the oldest events are dropped (and counted) — a flight recorder keeps
//! the most recent history, which is what post-mortem debugging needs.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;

use crate::event::{Event, TraceEvent};
use crate::Trace;

struct Recorder {
    ring: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
    seq: u64,
    clock: u64,
    rounds: u64,
    span_stack: Vec<u32>,
    next_span: u32,
}

impl Recorder {
    fn new(capacity: usize) -> Self {
        Self {
            ring: VecDeque::with_capacity(capacity.min(1 << 12)),
            capacity,
            dropped: 0,
            seq: 0,
            clock: 0,
            rounds: 0,
            span_stack: Vec::new(),
            next_span: 0,
        }
    }

    fn push(&mut self, span: u32, parent: u32, event: Event) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.seq += 1;
        self.ring.push_back(TraceEvent {
            seq: self.seq,
            clock: self.clock,
            rounds: self.rounds,
            span,
            parent,
            event,
        });
    }
}

thread_local! {
    // Split flag so the hot-path guard is a plain `Cell` read with no
    // `RefCell` borrow bookkeeping.
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static RECORDER: RefCell<Option<Recorder>> = const { RefCell::new(None) };
}

/// Whether the flight recorder is currently armed on this thread.
///
/// Instrumentation sites guard on this before building event payloads, so
/// a disarmed recorder costs one predictable branch.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.with(|e| e.get())
}

/// Arm the recorder with a ring of `capacity` events (min 16), resetting
/// any previous recording, sequence numbers, clocks, and span state.
pub fn start(capacity: usize) {
    RECORDER.with(|r| *r.borrow_mut() = Some(Recorder::new(capacity.max(16))));
    ENABLED.with(|e| e.set(true));
}

/// Disarm the recorder and drain the ring.
pub fn stop() -> Trace {
    ENABLED.with(|e| e.set(false));
    RECORDER.with(|r| match r.borrow_mut().take() {
        Some(mut rec) => Trace {
            events: rec.ring.drain(..).collect(),
            dropped: rec.dropped,
        },
        None => Trace::default(),
    })
}

fn with_rec(f: impl FnOnce(&mut Recorder)) {
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            f(rec);
        }
    });
}

/// Stamp subsequent events with the simulated service clock (tick).
pub fn set_clock(clock: u64) {
    if !is_enabled() {
        return;
    }
    with_rec(|r| r.clock = clock);
}

/// Stamp subsequent events with the cumulative scheduler round count.
pub fn set_rounds(rounds: u64) {
    if !is_enabled() {
        return;
    }
    with_rec(|r| r.rounds = rounds);
}

/// Record an instant event, attributed to the innermost open span.
pub fn emit(event: Event) {
    if !is_enabled() {
        return;
    }
    with_rec(|r| {
        let span = r.span_stack.last().copied().unwrap_or(0);
        let parent = if r.span_stack.len() >= 2 {
            r.span_stack[r.span_stack.len() - 2]
        } else {
            0
        };
        r.push(span, parent, event);
    });
}

/// Record a span-opening event, push the new span, and return its id
/// (0 when recording is off).
pub fn span_begin(event: Event) -> u32 {
    if !is_enabled() {
        return 0;
    }
    let mut id = 0;
    with_rec(|r| {
        let parent = r.span_stack.last().copied().unwrap_or(0);
        r.next_span += 1;
        id = r.next_span;
        r.push(id, parent, event);
        r.span_stack.push(id);
    });
    id
}

/// Record a span-closing event and pop the innermost span. Tolerant of an
/// empty stack (e.g. recording armed mid-span): records with span 0.
pub fn span_end(event: Event) {
    if !is_enabled() {
        return;
    }
    with_rec(|r| {
        let span = r.span_stack.pop().unwrap_or(0);
        let parent = r.span_stack.last().copied().unwrap_or(0);
        r.push(span, parent, event);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::OpKind;

    fn lock(i: u64) -> Event {
        Event::LockConflict { space: 0, index: i }
    }

    #[test]
    fn off_by_default_and_emit_is_noop_when_off() {
        assert!(!is_enabled());
        emit(lock(1));
        let t = stop();
        assert!(t.events.is_empty());
        assert_eq!(t.dropped, 0);
    }

    #[test]
    fn records_in_order_with_stamps() {
        start(64);
        assert!(is_enabled());
        set_clock(3);
        set_rounds(7);
        emit(lock(1));
        emit(lock(2));
        let t = stop();
        assert!(!is_enabled());
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.events[0].seq, 1);
        assert_eq!(t.events[1].seq, 2);
        assert_eq!(t.events[0].clock, 3);
        assert_eq!(t.events[0].rounds, 7);
        assert_eq!(t.events[0].span, 0);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        start(16);
        for i in 0..20 {
            emit(lock(i));
        }
        let t = stop();
        assert_eq!(t.events.len(), 16);
        assert_eq!(t.dropped, 4);
        // The *latest* events survive.
        assert_eq!(t.events.last().unwrap().seq, 20);
        assert_eq!(t.events[0].seq, 5);
    }

    #[test]
    fn spans_nest_and_attribute_instants() {
        start(64);
        let outer = span_begin(Event::BatchFlush {
            shard: 0,
            window: 2,
            probes: 1,
            puts: 1,
            deletes: 0,
            coalesced: 0,
        });
        let inner = span_begin(Event::LaunchBegin {
            kind: OpKind::Insert,
            warps: 1,
        });
        emit(lock(9));
        span_end(Event::LaunchEnd { rounds: 4 });
        span_end(Event::BatchEnd { completed: 2 });
        let t = stop();
        assert_eq!(t.events.len(), 5);
        assert_ne!(outer, 0);
        assert_ne!(inner, outer);
        // Opening events carry their own span id and their parent.
        assert_eq!(t.events[0].span, outer);
        assert_eq!(t.events[0].parent, 0);
        assert_eq!(t.events[1].span, inner);
        assert_eq!(t.events[1].parent, outer);
        // The instant is attributed to the innermost span.
        assert_eq!(t.events[2].span, inner);
        assert_eq!(t.events[2].parent, outer);
        // Closers pop in LIFO order.
        assert_eq!(t.events[3].span, inner);
        assert_eq!(t.events[4].span, outer);
        assert_eq!(t.events[4].parent, 0);
    }

    #[test]
    fn restart_resets_sequence_and_spans() {
        start(16);
        span_begin(Event::LaunchBegin {
            kind: OpKind::Find,
            warps: 1,
        });
        start(16); // re-arm without closing the span
        emit(lock(1));
        let t = stop();
        assert_eq!(t.events.len(), 1);
        assert_eq!(t.events[0].seq, 1);
        assert_eq!(t.events[0].span, 0);
    }

    #[test]
    fn unbalanced_span_end_is_tolerated() {
        start(16);
        span_end(Event::LaunchEnd { rounds: 0 });
        let t = stop();
        assert_eq!(t.events.len(), 1);
        assert_eq!(t.events[0].span, 0);
    }
}
