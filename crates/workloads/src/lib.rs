//! # workloads — datasets and dynamic batch workloads from the paper
//!
//! * [`datasets`] — seeded synthetic equivalents of the paper's five
//!   datasets (Table 2), matching their KV-pair counts and unique-key
//!   ratios, with configurable scaling.
//! * [`dynamic`] — the two-phase batched workload of the dynamic
//!   experiments (inserts + finds + r·deletes per batch, then the mirror
//!   phase with inserts and deletes swapped).
//! * [`groupby`] — aggregation workloads for the read-modify-write
//!   pipeline: Zipf group-by row streams and frontier-dedup traces for
//!   state-space exploration.
//! * [`keygen`] / [`zipf`] — deterministic unique-key generation (Feistel
//!   bijection) and skewed duplicate sampling.
//! * [`stream`] — open-loop adapter flattening a dynamic workload into a
//!   per-client, per-tick arrival sequence for service front-ends.
//! * [`strkeys`] — byte-string KV datasets for the unsized tier, with
//!   key-length distributions pinning the inline/spill split.

pub mod datasets;
pub mod dynamic;
pub mod groupby;
pub mod keygen;
pub mod stream;
pub mod strkeys;
pub mod zipf;

pub use datasets::{dataset_by_name, paper_datasets, Dataset, DatasetSpec};
pub use dynamic::{Batch, DynamicWorkload};
pub use groupby::{aggregation_specs, FrontierSpec, FrontierTrace, GroupBySpec};
pub use stream::{RequestStream, StreamOp, StreamRequest};
pub use strkeys::{LengthDist, StrDatasetSpec};

/// SplitMix64 mixer used for all deterministic sampling in this crate.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}
