//! Aggregation workloads: group-by streams and frontier-dedup traces.
//!
//! Both shapes exist to exercise the read-modify-write pipeline
//! (`upsert_with` / `increment`) rather than plain build/probe:
//!
//! * [`GroupBySpec`] emits a row stream `(group_key, measure)` whose group
//!   keys are Zipf-ranked over a configurable cardinality — the classic
//!   hash-aggregation input (SUM/COUNT per group, COUNT DISTINCT overall).
//!   A handful of hot groups absorb most rows, so merge contention on a
//!   few keys dominates, which is exactly the regime where per-verb
//!   kernels used to diverge from the shared probe/claim/evict path.
//! * [`FrontierSpec`] models state-space exploration (BFS over an implicit
//!   graph): each round expands the current frontier into candidate
//!   successor states, and the hash table's insert-if-absent verdict
//!   (`UpsertReport::fresh`) decides which candidates form the next
//!   frontier. The generator is deliberately *not* pre-deduplicated — the
//!   table under test is the deduplicator; the spec only supplies the
//!   deterministic state universe and successor function.
//!
//! Both reuse the crate's seeded keygen ([`crate::keygen`]) so every run
//! is reproducible from a single `u64` seed.

use crate::keygen::unique_keys;
use crate::mix64;
use crate::zipf::Zipf;

/// A group-by row stream: Zipf-ranked group keys over a configurable
/// cardinality, with a deterministic per-row measure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupBySpec {
    /// Label for reports.
    pub name: &'static str,
    /// Distinct group-key cardinality (how many groups *can* occur).
    pub groups: usize,
    /// Total rows in the stream.
    pub rows: usize,
    /// Zipf exponent of the group-popularity distribution.
    pub zipf_s: f64,
}

impl GroupBySpec {
    /// Generate the row stream deterministically from a seed.
    ///
    /// Group keys come from the seeded Feistel enumeration (never 0 or
    /// `u32::MAX`); ranks are drawn Zipf(s), so rank-1's key is the
    /// hottest group. Not every group necessarily occurs — the exact
    /// distinct count is a property of the draw, which is what a
    /// COUNT DISTINCT self-check should measure from the rows, not
    /// assume from the spec.
    pub fn generate(&self, seed: u64) -> Vec<(u32, u32)> {
        assert!(self.groups >= 1);
        let keys: Vec<u32> = unique_keys(seed ^ 0x6B67, self.groups).collect();
        let zipf = Zipf::new(self.groups as u64, self.zipf_s);
        (0..self.rows)
            .map(|i| {
                let rank = zipf.sample(mix64(seed ^ (i as u64) << 1)) as usize - 1;
                let measure = (mix64(seed ^ 0xAB5E ^ i as u64) % 1000) as u32 + 1;
                (keys[rank], measure)
            })
            .collect()
    }

    /// Scale the stream down (or up), preserving the rows-per-group ratio.
    pub fn scaled(&self, factor: f64) -> GroupBySpec {
        assert!(factor > 0.0);
        GroupBySpec {
            groups: ((self.groups as f64 * factor).round() as usize).max(1),
            rows: ((self.rows as f64 * factor).round() as usize).max(1),
            ..*self
        }
    }
}

/// Group-by profiles over the paper's dataset shapes: the duplication
/// statistics of Table 2 recast as aggregation cardinalities (COM's 14×
/// duplication becomes the hot-group profile; a synthetic `HOT` profile
/// adds an extreme 1k-group case the datasets don't reach).
pub fn aggregation_specs() -> Vec<GroupBySpec> {
    vec![
        GroupBySpec {
            name: "COM-agg",
            groups: 4_583_941,
            rows: 10_000_000,
            zipf_s: 1.2,
        },
        GroupBySpec {
            name: "TW-agg",
            groups: 44_523_684,
            rows: 50_876_784,
            zipf_s: 1.1,
        },
        GroupBySpec {
            name: "HOT-agg",
            groups: 1_000,
            rows: 10_000_000,
            zipf_s: 1.3,
        },
    ]
}

/// An implicit-graph frontier workload: `space` distinct states whose keys
/// come from the seeded Feistel enumeration, each state expanding to
/// `branching` successor states.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontierSpec {
    /// Label for reports.
    pub name: &'static str,
    /// Size of the state universe (distinct states an exploration can reach).
    pub space: usize,
    /// Successors generated per expanded state.
    pub branching: usize,
    /// Size of the initial frontier (round 0 seed states).
    pub seeds: usize,
}

/// A materialized frontier workload: the state-key universe plus the
/// deterministic successor relation, both index-based so `fresh` flags
/// from a dedup table map positionally back onto states.
#[derive(Debug, Clone)]
pub struct FrontierTrace {
    /// `keys[i]` is the hash-table key of state `i`.
    pub keys: Vec<u32>,
    /// Indices of the round-0 frontier.
    pub initial: Vec<usize>,
    branching: usize,
    seed: u64,
}

impl FrontierSpec {
    /// Materialize the state universe and initial frontier for a seed.
    pub fn trace(&self, seed: u64) -> FrontierTrace {
        assert!(self.space >= 1 && self.branching >= 1);
        let keys: Vec<u32> = unique_keys(seed ^ 0xF207, self.space).collect();
        let initial: Vec<usize> = (0..self.seeds.min(self.space))
            .map(|i| (mix64(seed ^ 0x5EED ^ i as u64) % self.space as u64) as usize)
            .collect();
        FrontierTrace {
            keys,
            initial,
            branching: self.branching,
            seed,
        }
    }
}

impl FrontierTrace {
    /// Append the successor state indices of `state` to `out`. Candidates
    /// are NOT deduplicated — the same index can appear twice in a round,
    /// and revisits of settled states are the common case; filtering them
    /// is the dedup table's job.
    pub fn successors(&self, state: usize, out: &mut Vec<usize>) {
        for j in 0..self.branching {
            let next = mix64(self.seed ^ ((state * self.branching + j) as u64) << 7)
                % self.keys.len() as u64;
            out.push(next as usize);
        }
    }

    /// Exact reachable-state count from the initial frontier (reference
    /// BFS with a host-side set) — the ground truth a table-driven
    /// exploration must reproduce.
    pub fn exact_reachable(&self) -> usize {
        let mut seen = vec![false; self.keys.len()];
        let mut frontier: Vec<usize> = Vec::new();
        for &s in &self.initial {
            if !seen[s] {
                seen[s] = true;
                frontier.push(s);
            }
        }
        let mut total = frontier.len();
        let mut next = Vec::new();
        while !frontier.is_empty() {
            next.clear();
            let mut candidates = Vec::new();
            for &s in &frontier {
                self.successors(s, &mut candidates);
            }
            for c in candidates {
                if !seen[c] {
                    seen[c] = true;
                    next.push(c);
                }
            }
            total += next.len();
            std::mem::swap(&mut frontier, &mut next);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    #[test]
    fn groupby_stream_is_deterministic_and_sized() {
        let spec = GroupBySpec {
            name: "t",
            groups: 100,
            rows: 5_000,
            zipf_s: 1.1,
        };
        let a = spec.generate(7);
        let b = spec.generate(7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5_000);
        assert!(a.iter().all(|&(k, v)| k != 0 && k != u32::MAX && v >= 1));
    }

    #[test]
    fn groupby_hot_groups_dominate() {
        let spec = GroupBySpec {
            name: "t",
            groups: 10_000,
            rows: 50_000,
            zipf_s: 1.2,
        };
        let rows = spec.generate(11);
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for &(k, _) in &rows {
            *counts.entry(k).or_insert(0) += 1;
        }
        let mut sorted: Vec<usize> = counts.values().copied().collect();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top10: usize = sorted.iter().take(10).sum();
        assert!(
            top10 > rows.len() / 4,
            "top-10 groups got only {top10}/{} rows",
            rows.len()
        );
        assert!(
            counts.len() < spec.groups,
            "every group occurred — no skew?"
        );
    }

    #[test]
    fn groupby_scaled_keeps_ratio() {
        let spec = aggregation_specs()[0].scaled(0.001);
        assert_eq!(spec.groups, 4_584);
        assert_eq!(spec.rows, 10_000);
    }

    #[test]
    fn frontier_trace_is_deterministic() {
        let spec = FrontierSpec {
            name: "t",
            space: 500,
            branching: 4,
            seeds: 8,
        };
        let a = spec.trace(3);
        let b = spec.trace(3);
        assert_eq!(a.keys, b.keys);
        assert_eq!(a.initial, b.initial);
        let mut sa = Vec::new();
        let mut sb = Vec::new();
        a.successors(17, &mut sa);
        b.successors(17, &mut sb);
        assert_eq!(sa, sb);
    }

    #[test]
    fn frontier_keys_are_distinct_and_valid() {
        let trace = FrontierSpec {
            name: "t",
            space: 2_000,
            branching: 3,
            seeds: 4,
        }
        .trace(9);
        let set: HashSet<u32> = trace.keys.iter().copied().collect();
        assert_eq!(set.len(), 2_000);
        assert!(!set.contains(&0) && !set.contains(&u32::MAX));
    }

    #[test]
    fn frontier_exact_reachable_matches_naive_replay() {
        let trace = FrontierSpec {
            name: "t",
            space: 300,
            branching: 3,
            seeds: 5,
        }
        .trace(21);
        // Replay with a set-of-keys instead of index flags; must agree.
        let mut seen: HashSet<u32> = HashSet::new();
        let mut frontier: Vec<usize> = trace
            .initial
            .iter()
            .copied()
            .filter(|&s| seen.insert(trace.keys[s]))
            .collect();
        while !frontier.is_empty() {
            let mut candidates = Vec::new();
            for &s in &frontier {
                trace.successors(s, &mut candidates);
            }
            frontier = candidates
                .into_iter()
                .filter(|&c| seen.insert(trace.keys[c]))
                .collect();
        }
        assert_eq!(seen.len(), trace.exact_reachable());
        // With branching 3 over a 300-state space, exploration should
        // saturate most of the universe — guard against a degenerate
        // successor function that never leaves the seeds.
        assert!(trace.exact_reachable() > 250);
    }
}
