//! **agg_sweep** — the read-modify-write pipeline on its two target
//! workloads: hash aggregation (group-by) and frontier dedup.
//!
//! Part 1 streams the aggregation profiles of `workloads::groupby` (the
//! COM/TW duplication statistics recast as group cardinalities, plus a
//! 64-group hot profile) through `upsert_batch`:
//!
//! * **SUM per group** under `MergeRule::Add` — readback of every group
//!   must equal the exact sequential fold (wrapping arithmetic, same as
//!   the merge rule).
//! * **COUNT DISTINCT** from the same pass, for free: the sum of
//!   `UpsertReport::fresh_count()` across batches *is* the distinct-key
//!   count, asserted against the exact sequential answer.
//! * **COUNT per group** under `increment_batch` — readback must equal
//!   the exact occurrence counts.
//!
//! Part 2 runs the frontier-dedup loop of state-space exploration: each
//! round upserts the candidate frontier under `MergeRule::Min` (value =
//! discovery round; rounds only grow, so Min pins the first sighting),
//! keeps exactly the `fresh` positions as the next frontier, and expands
//! them. Termination and the reachable-state count are asserted against
//! the host-side reference BFS, and every settled state's stored
//! discovery round must match the reference depth.
//!
//! All headline numbers register into the unified telemetry registry, so
//! `TELEMETRY_SNAP=<path>` pins the whole sweep bit-for-bit
//! (`results/agg-sweep.snap`). Aggregate results enter the snapshot as
//! order-independent checksums folded over sorted keys.

use std::collections::HashMap;

use bench::report::Table;
use bench::telemetry::Telemetry;
use bench::{measure, scale, seed};
use dycuckoo::{Config, DyCuckoo, MergeRule};
use gpu_sim::SimContext;
use workloads::{aggregation_specs, mix64, FrontierSpec};

/// Upserts per kernel batch — large enough to exercise intra-batch
/// duplicate coalescing on the hot profiles.
const BATCH: usize = 1024;

fn table(seed: u64, sim: &mut SimContext) -> DyCuckoo {
    let cfg = Config {
        seed,
        initial_buckets: 64,
        ..Config::default()
    };
    DyCuckoo::new(cfg, sim).expect("table construction")
}

/// Deterministic order-independent digest of an aggregate: fold
/// `mix64(key, value)` terms with wrapping addition (commutative, so the
/// iteration order of the reference map cannot leak into the snapshot).
fn digest(pairs: impl Iterator<Item = (u32, u32)>) -> u64 {
    pairs.fold(0u64, |acc, (k, v)| {
        acc.wrapping_add(mix64(((k as u64) << 32) | v as u64))
    })
}

fn main() {
    let mut tel = Telemetry::from_env();
    let scale = scale();
    let seed = seed();

    // ---- Part 1: group-by aggregation ----------------------------------
    let mut t = Table::new(&[
        "dataset", "rows", "distinct", "exact", "max dup", "resizes", "mops",
    ]);
    for spec in aggregation_specs() {
        // The specs carry paper-sized volumes; run them at bench scale but
        // never collapse a profile below 64 groups (the hot profile should
        // stay contended, not degenerate).
        let mut spec = spec.scaled(scale * 0.005);
        spec.groups = spec.groups.max(64);
        let rows = spec.generate(seed);

        // Exact sequential answers (wrapping, matching MergeRule::Add).
        let mut sums: HashMap<u32, u32> = HashMap::new();
        let mut counts: HashMap<u32, u32> = HashMap::new();
        for &(k, v) in &rows {
            let s = sums.entry(k).or_insert(0);
            *s = s.wrapping_add(v);
            *counts.entry(k).or_insert(0) += 1;
        }
        let exact_distinct = sums.len();

        // SUM per group + COUNT DISTINCT in one upsert pass.
        let mut sim = SimContext::new();
        let mut sum_table = table(seed, &mut sim);
        let mut fresh_total = 0usize;
        let mut resizes = 0usize;
        let (_, m) = measure(&mut sim, |sim| {
            for chunk in rows.chunks(BATCH) {
                let rep = sum_table
                    .upsert_batch(sim, chunk, MergeRule::Add)
                    .expect("upsert batch");
                fresh_total += rep.fresh_count();
                resizes += rep.batch.resizes.len();
            }
        });
        assert_eq!(
            fresh_total, exact_distinct,
            "{}: COUNT DISTINCT from fresh flags disagrees with the exact \
             sequential count",
            spec.name
        );

        // Readback: every group's stored sum equals the exact fold.
        let mut keys: Vec<u32> = sums.keys().copied().collect();
        keys.sort_unstable();
        let got = sum_table.find_batch(&mut sim, &keys);
        for (k, g) in keys.iter().zip(&got) {
            assert_eq!(
                *g,
                Some(sums[k]),
                "{}: SUM readback mismatch for group {k}",
                spec.name
            );
        }

        // COUNT per group via the increment verb on a fresh table.
        let row_keys: Vec<u32> = rows.iter().map(|&(k, _)| k).collect();
        let mut cnt_table = table(seed ^ 1, &mut sim);
        for chunk in row_keys.chunks(BATCH) {
            cnt_table
                .increment_batch(&mut sim, chunk)
                .expect("increment batch");
        }
        let got = cnt_table.find_batch(&mut sim, &keys);
        for (k, g) in keys.iter().zip(&got) {
            assert_eq!(
                *g,
                Some(counts[k]),
                "{}: COUNT readback mismatch for group {k}",
                spec.name
            );
        }
        let max_dup = counts.values().copied().max().unwrap_or(0);

        let labels = [("figure", "agg_sweep"), ("dataset", spec.name)];
        tel.registry()
            .counter("agg_rows", &labels, rows.len() as u64);
        tel.registry()
            .counter("agg_distinct", &labels, exact_distinct as u64);
        tel.registry().counter(
            "agg_sum_digest",
            &labels,
            digest(keys.iter().map(|&k| (k, sums[&k]))),
        );
        tel.registry().counter(
            "agg_count_digest",
            &labels,
            digest(keys.iter().map(|&k| (k, counts[&k]))),
        );
        tel.registry()
            .counter("agg_resizes", &labels, resizes as u64);
        t.row(vec![
            spec.name.to_string(),
            rows.len().to_string(),
            fresh_total.to_string(),
            exact_distinct.to_string(),
            max_dup.to_string(),
            resizes.to_string(),
            format!("{:.1}", m.mops),
        ]);
    }
    t.print("Group-by: SUM/COUNT per group + COUNT DISTINCT from fresh flags");

    // ---- Part 2: frontier dedup ----------------------------------------
    let fspec = FrontierSpec {
        name: "frontier",
        space: ((40_000.0 * scale).round() as usize).max(1_000),
        branching: 4,
        seeds: 8,
    };
    let trace = fspec.trace(seed);

    // Host-side reference BFS: reachable count and per-state depth.
    let mut ref_depth: HashMap<u32, u32> = HashMap::new();
    {
        // First sighting wins: records `round` and keeps the state.
        let visit = |ref_depth: &mut HashMap<u32, u32>, s: usize, round: u32| {
            if let std::collections::hash_map::Entry::Vacant(e) = ref_depth.entry(trace.keys[s]) {
                e.insert(round);
                true
            } else {
                false
            }
        };
        let mut frontier: Vec<usize> = trace
            .initial
            .iter()
            .copied()
            .filter(|&s| visit(&mut ref_depth, s, 0))
            .collect();
        let mut round = 0u32;
        while !frontier.is_empty() {
            round += 1;
            let mut candidates = Vec::new();
            for &s in &frontier {
                trace.successors(s, &mut candidates);
            }
            frontier = candidates
                .into_iter()
                .filter(|&c| visit(&mut ref_depth, c, round))
                .collect();
        }
    }
    assert_eq!(ref_depth.len(), trace.exact_reachable());

    // Table-driven exploration: the upsert verdict IS the visited set.
    let mut sim = SimContext::new();
    let mut visited = table(seed ^ 2, &mut sim);
    let mut frontier: Vec<usize> = trace.initial.clone();
    let mut settled = 0usize;
    let mut rounds = 0u32;
    let mut peak = 0usize;
    while !frontier.is_empty() {
        peak = peak.max(frontier.len());
        let batch: Vec<(u32, u32)> = frontier.iter().map(|&s| (trace.keys[s], rounds)).collect();
        let rep = visited
            .upsert_batch(&mut sim, &batch, MergeRule::Min)
            .expect("frontier upsert");
        let fresh: Vec<usize> = frontier
            .iter()
            .zip(&rep.fresh)
            .filter(|&(_, &f)| f)
            .map(|(&s, _)| s)
            .collect();
        settled += fresh.len();
        let mut next = Vec::new();
        for &s in &fresh {
            trace.successors(s, &mut next);
        }
        frontier = next;
        rounds += 1;
    }
    assert_eq!(
        settled,
        trace.exact_reachable(),
        "frontier loop settled a different state count than the reference BFS"
    );

    // Every settled state's stored value is its discovery round.
    let mut keys: Vec<u32> = ref_depth.keys().copied().collect();
    keys.sort_unstable();
    let got = visited.find_batch(&mut sim, &keys);
    for (k, g) in keys.iter().zip(&got) {
        assert_eq!(
            *g,
            Some(ref_depth[k]),
            "state {k}: stored discovery round disagrees with reference depth"
        );
    }

    let labels = [("figure", "agg_sweep"), ("dataset", "frontier")];
    tel.registry()
        .counter("fr_space", &labels, trace.keys.len() as u64);
    tel.registry()
        .counter("fr_reachable", &labels, settled as u64);
    tel.registry().counter("fr_rounds", &labels, rounds as u64);
    tel.registry()
        .counter("fr_peak_frontier", &labels, peak as u64);
    tel.registry().counter(
        "fr_depth_digest",
        &labels,
        digest(keys.iter().map(|&k| (k, ref_depth[&k]))),
    );
    println!(
        "\nFrontier dedup: {} of {} states reached in {} rounds \
         (peak frontier {peak}, depths verified against reference BFS)",
        settled,
        trace.keys.len(),
        rounds
    );

    tel.finish();
}
