//! Storage side of the table: construction, capacity accounting, the
//! device-byte ledger and the integrity sweep.
//!
//! Every `sim.device.alloc`/`free` the table performs is mirrored into
//! [`DyCuckoo`]'s `ledger_bytes`, and [`DyCuckoo::verify_integrity`]
//! asserts the mirror equals the layout-derived [`DyCuckoo::device_bytes`]
//! — so layout geometry, the gpu-sim allocation ledger and the resize
//! paths can never silently drift apart.

use gpu_sim::SimContext;

use crate::config::Config;
use crate::error::Result;
use crate::resize;
use crate::stash::Stash;
use crate::stats::{SubTableStats, TableStats};
use crate::subtable::SubTable;

use super::{DyCuckoo, TableShape};

impl DyCuckoo {
    /// Create a table with `cfg.initial_buckets` buckets per subtable.
    pub fn new(cfg: Config, sim: &mut SimContext) -> Result<Self> {
        cfg.validate()?;
        let shape = TableShape::from_config(cfg);
        let tables: Vec<SubTable> = (0..cfg.num_tables)
            .map(|_| SubTable::new(cfg.initial_buckets, cfg.layout))
            .collect();
        let mut ledger_bytes = 0u64;
        for t in &tables {
            sim.device.alloc(t.device_bytes())?;
            ledger_bytes += t.device_bytes();
        }
        let stash = if cfg.stash_capacity > 0 {
            let s = Stash::new(cfg.stash_capacity, cfg.layout.keys_per_line());
            sim.device.alloc(s.device_bytes())?;
            ledger_bytes += s.device_bytes();
            Some(s)
        } else {
            None
        };
        Ok(Self {
            shape,
            tables,
            stash,
            migration: super::migration::MigrationMachine::Idle,
            decision: resize::Decision::new(cfg.resize_cooldown),
            op_counter: 0,
            ledger_bytes,
        })
    }

    /// Create a table pre-sized so that `items` keys load it to roughly
    /// `target_fill` (used by the static experiments, which fix the memory
    /// budget up front).
    ///
    /// Because the hash reduces modulo the bucket count, sizes are not
    /// restricted to powers of two: an equal even split tracks the budget
    /// almost exactly, making filled-factor sweeps comparable across `d`.
    /// Sizing accounts for the configured layout's bucket width, so a
    /// narrower layout gets proportionally more buckets.
    pub fn with_capacity(
        mut cfg: Config,
        items: usize,
        target_fill: f64,
        sim: &mut SimContext,
    ) -> Result<Self> {
        let sizes = gpu_sim::engine::mixed_bucket_sizes(
            items,
            cfg.num_tables,
            target_fill,
            cfg.layout.slots,
        );
        cfg.initial_buckets = sizes[0];
        cfg.validate()?;
        let mut table = Self::new(cfg, sim)?;
        for (i, &sz) in sizes.iter().enumerate() {
            if sz != table.tables[i].n_buckets() {
                let old_bytes = table.tables[i].device_bytes();
                sim.device.free(old_bytes)?;
                table.ledger_bytes -= old_bytes;
                let new_bytes = cfg.layout.device_bytes_for(sz);
                sim.device.alloc(new_bytes)?;
                table.ledger_bytes += new_bytes;
                table.tables[i] = SubTable::new(sz, cfg.layout);
            }
        }
        Ok(table)
    }

    /// The table's configuration.
    pub fn config(&self) -> &Config {
        &self.shape.cfg
    }

    /// Set the within-round warp ordering for all subsequent kernel
    /// launches. Purely an interleaving choice: contents and final state
    /// stay semantically equivalent, only contention patterns (and thus
    /// metrics) may differ. Used by the schedule-exploration harness.
    pub fn set_schedule(&mut self, policy: gpu_sim::SchedulePolicy) {
        self.shape.cfg.schedule = policy;
    }

    /// Number of live KV pairs (including any stashed overflow and, while
    /// a migration is in flight, keys already moved to the fresh subtable).
    pub fn len(&self) -> u64 {
        self.tables.iter().map(|t| t.occupied()).sum::<u64>()
            + self.migration.state().map_or(0, |d| d.fresh.occupied())
            + self.stash.as_ref().map_or(0, |s| s.len() as u64)
    }

    /// KV pairs currently parked in the overflow stash (0 without a stash).
    pub fn stashed(&self) -> usize {
        self.stash.as_ref().map_or(0, |s| s.len())
    }

    /// Whether the table holds no KV pairs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Overall filled factor `θ`.
    pub fn fill_factor(&self) -> f64 {
        resize::overall_fill(&self.tables)
    }

    /// Total key slots across all subtables.
    pub fn capacity_slots(&self) -> u64 {
        self.tables.iter().map(|t| t.capacity_slots()).sum()
    }

    /// Slots that can still be filled before θ crosses β (negative when
    /// already above it). A batching front-end can cap insert batches to
    /// this headroom so one flush does not force multiple resizes.
    pub fn headroom_slots(&self) -> i64 {
        (self.shape.cfg.beta * self.capacity_slots() as f64) as i64 - self.len() as i64
    }

    /// Device bytes currently held, derived from each subtable's layout
    /// (padded bucket strides plus lock words; see
    /// [`gpu_sim::engine::layout`]). While a migration is in flight, the
    /// draining subtable's old and fresh allocations both count — exactly
    /// the transient footprint the paper's single-subtable resize bounds.
    pub fn device_bytes(&self) -> u64 {
        self.tables.iter().map(|t| t.device_bytes()).sum::<u64>()
            + self.migration.state().map_or(0, |d| d.fresh.device_bytes())
            + self.stash.as_ref().map_or(0, |s| s.device_bytes())
    }

    /// Snapshot of per-subtable statistics.
    pub fn stats(&self) -> TableStats {
        let per_table: Vec<SubTableStats> = self
            .tables
            .iter()
            .map(|t| SubTableStats {
                n_buckets: t.n_buckets(),
                occupied: t.occupied(),
                capacity_slots: t.capacity_slots(),
                fill: t.fill_factor(),
            })
            .collect();
        TableStats {
            num_tables: self.tables.len(),
            occupied: self.len(),
            capacity_slots: self.tables.iter().map(|t| t.capacity_slots()).sum(),
            fill: self.fill_factor(),
            device_bytes: self.device_bytes(),
            per_table,
        }
    }

    /// Release the table's device memory. (The simulator cannot hook `Drop`
    /// because freeing needs the [`SimContext`].)
    pub fn release(self, sim: &mut SimContext) -> Result<()> {
        for t in &self.tables {
            sim.device.free(t.device_bytes())?;
        }
        if let Some(d) = self.migration.state() {
            sim.device.free(d.fresh.device_bytes())?;
        }
        if let Some(s) = &self.stash {
            sim.device.free(s.device_bytes())?;
        }
        Ok(())
    }

    /// Raw subtables, for experiments that need structural detail (e.g. the
    /// resize-throughput comparison reads exact per-subtable sizes).
    pub fn subtables(&self) -> &[SubTable] {
        &self.tables
    }

    /// Verify internal accounting (occupancy counters vs. actual slots, the
    /// device-byte ledger vs. layout-derived footprint, and the two-layer
    /// residency invariant). Test/debug helper; O(capacity).
    pub fn verify_integrity(&self) -> std::result::Result<(), String> {
        if self.ledger_bytes != self.device_bytes() {
            return Err(format!(
                "allocation ledger holds {} bytes but layout accounting says {}",
                self.ledger_bytes,
                self.device_bytes()
            ));
        }
        if let Some(stash) = &self.stash {
            // No key may live in both the stash and a subtable (nor the
            // fresh side of an in-flight migration).
            let mut probe = gpu_sim::Metrics::default();
            let mut ctx = gpu_sim::RoundCtx::new(&mut probe);
            let stores = self
                .tables
                .iter()
                .chain(self.migration.state().map(|d| &d.fresh));
            for t in stores {
                for (k, _) in t.iter_live() {
                    if stash.find(k, &mut ctx).is_some() {
                        return Err(format!("key {k} resides in a subtable AND the stash"));
                    }
                }
            }
            ctx.finish();
        }
        let drain = self.migration.state();
        let view = drain.map(|d| d.view());
        for (i, t) in self.tables.iter().enumerate() {
            if t.occupied() != t.recount() {
                return Err(format!(
                    "subtable {i}: occupancy counter {} but {} live slots",
                    t.occupied(),
                    t.recount()
                ));
            }
            for b in 0..t.n_buckets() {
                for (s, &k) in t.bucket_keys(b).iter().enumerate() {
                    if k == crate::subtable::EMPTY_KEY {
                        continue;
                    }
                    if !self.shape.candidates(k).contains(i) {
                        return Err(format!(
                            "key {k} in subtable {i} bucket {b} slot {s}, outside its candidate set {:?}",
                            self.shape.candidates(k).as_slice_vec()
                        ));
                    }
                    // Mid-migration, a key of the draining subtable must sit
                    // exactly where the routing view says (old side, in the
                    // undrained source region); otherwise at its raw bucket.
                    match view {
                        Some(v) if v.table == i => {
                            use super::migration::Route;
                            match v.route(&self.shape.hashes[i], k) {
                                Route::Old(expect) if expect == b => {}
                                route => {
                                    return Err(format!(
                                        "key {k} in draining subtable {i} bucket {b}, \
                                         but the migration view routes it to {route:?}"
                                    ));
                                }
                            }
                        }
                        _ => {
                            let expect = self.shape.hashes[i].bucket(k, t.n_buckets());
                            if expect != b {
                                return Err(format!(
                                    "key {k} in subtable {i} bucket {b}, expected bucket {expect}"
                                ));
                            }
                        }
                    }
                }
            }
        }
        if let Some(d) = drain {
            let v = d.view();
            let t = &d.fresh;
            if t.occupied() != t.recount() {
                return Err(format!(
                    "fresh subtable {}: occupancy counter {} but {} live slots",
                    d.table,
                    t.occupied(),
                    t.recount()
                ));
            }
            for b in 0..t.n_buckets() {
                for &k in t.bucket_keys(b) {
                    if k == crate::subtable::EMPTY_KEY {
                        continue;
                    }
                    use super::migration::Route;
                    match v.route(&self.shape.hashes[d.table], k) {
                        Route::Fresh(expect) if expect == b => {}
                        route => {
                            return Err(format!(
                                "key {k} in fresh subtable {} bucket {b}, \
                                 but the migration view routes it to {route:?}",
                                d.table
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Debug-build invariant sweep after every mutating batch operation, so
    /// every existing test doubles as an integrity check and corruption is
    /// caught at the batch boundary where it is still attributable. Skipped
    /// under deliberate fault injection — a lost update is a *semantic*
    /// defect for the oracle, not a structural one for this sweep.
    #[inline]
    pub(super) fn debug_verify(&self, when: &str) {
        if cfg!(debug_assertions) && !self.shape.cfg.inject_lock_elision {
            if let Err(e) = self.verify_integrity() {
                panic!("integrity violated after {when}: {e}");
            }
        }
    }
}
