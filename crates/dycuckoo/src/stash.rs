//! Overflow stash — an implementation of the paper's future-work item.
//!
//! The paper observes (Section "Performance stability") that on several
//! datasets the filled factor drops sharply because "even after one time of
//! upsizing, the insertions fail due to too many evictions and it triggers
//! another round of upsizing. We leave it as a future work."
//!
//! The classic remedy for rare unplaceable keys in cuckoo hashing is a
//! small **stash**: a cache-line-sized side buffer that absorbs operations
//! whose eviction chains exceed the limit, instead of doubling a subtable
//! for the sake of a handful of keys. Find and delete check the stash only
//! when it is non-empty (one extra coalesced read); the table drains the
//! stash back into the subtables after every structural resize, so stash
//! residence is transient.
//!
//! Enabled with [`crate::Config::stash_capacity`] > 0; the default (0)
//! keeps the paper's exact behaviour.

use gpu_sim::RoundCtx;

use crate::subtable::EMPTY_KEY;

/// A small side buffer for keys whose eviction chains hit the limit.
#[derive(Debug, Clone)]
pub struct Stash {
    keys: Vec<u32>,
    vals: Vec<u32>,
    live: usize,
    /// Keys scanned per coalesced line — comes from the table's
    /// [`gpu_sim::LayoutConfig`], so stash probes are costed under the same
    /// layout as bucket probes.
    keys_per_line: usize,
}

impl Stash {
    /// Create a stash with room for `capacity` KV pairs, probed
    /// `keys_per_line` keys per read transaction.
    pub fn new(capacity: usize, keys_per_line: usize) -> Self {
        debug_assert!(keys_per_line > 0);
        Self {
            keys: vec![EMPTY_KEY; capacity],
            vals: vec![0; capacity],
            live: 0,
            keys_per_line,
        }
    }

    /// Capacity in KV pairs.
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// Live KV pairs currently stashed.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the stash holds no pairs (find/delete skip it entirely).
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of key lines the stash spans (cost of one stash probe).
    fn lines(&self) -> u64 {
        (self.keys.len() as u64)
            .div_ceil(self.keys_per_line as u64)
            .max(1)
    }

    /// Charge a stash probe: the whole stash is a few consecutive lines.
    fn charge_probe(&self, ctx: &mut RoundCtx) {
        for _ in 0..self.lines() {
            ctx.read_bucket();
        }
    }

    /// Try to stash a KV pair. Returns `false` when full.
    pub fn push(&mut self, key: u32, val: u32, ctx: &mut RoundCtx) -> bool {
        debug_assert_ne!(key, EMPTY_KEY);
        self.charge_probe(ctx);
        // Update in place if present.
        if let Some(i) = self.keys.iter().position(|&k| k == key) {
            self.vals[i] = val;
            ctx.write_line();
            return true;
        }
        match self.keys.iter().position(|&k| k == EMPTY_KEY) {
            Some(i) => {
                self.keys[i] = key;
                self.vals[i] = val;
                self.live += 1;
                ctx.write_line();
                true
            }
            None => false,
        }
    }

    /// Look a key up in the stash.
    pub fn find(&self, key: u32, ctx: &mut RoundCtx) -> Option<u32> {
        if self.is_empty() {
            return None;
        }
        self.charge_probe(ctx);
        self.keys
            .iter()
            .position(|&k| k == key)
            .map(|i| self.vals[i])
    }

    /// Erase a key from the stash; returns whether it was present.
    pub fn erase(&mut self, key: u32, ctx: &mut RoundCtx) -> bool {
        if self.is_empty() {
            return false;
        }
        self.charge_probe(ctx);
        match self.keys.iter().position(|&k| k == key) {
            Some(i) => {
                self.keys[i] = EMPTY_KEY;
                self.live -= 1;
                ctx.write_line();
                true
            }
            None => false,
        }
    }

    /// Update the value of a stashed key; returns whether it was present.
    pub fn update(&mut self, key: u32, val: u32, ctx: &mut RoundCtx) -> bool {
        if self.is_empty() {
            return false;
        }
        self.charge_probe(ctx);
        match self.keys.iter().position(|&k| k == key) {
            Some(i) => {
                self.vals[i] = val;
                ctx.write_line();
                true
            }
            None => false,
        }
    }

    /// Read-modify-write a stashed key's value; returns whether it was
    /// present. Costs one probe, one value-read line and one write — the
    /// stash analogue of the insert kernel's duplicate-merge path.
    pub fn update_with(
        &mut self,
        key: u32,
        f: impl FnOnce(u32) -> u32,
        ctx: &mut RoundCtx,
    ) -> bool {
        if self.is_empty() {
            return false;
        }
        self.charge_probe(ctx);
        match self.keys.iter().position(|&k| k == key) {
            Some(i) => {
                ctx.read_line();
                self.vals[i] = f(self.vals[i]);
                ctx.write_line();
                true
            }
            None => false,
        }
    }

    /// Drain every stashed pair (after a resize has made room in the
    /// subtables proper).
    pub fn drain(&mut self, ctx: &mut RoundCtx) -> Vec<(u32, u32)> {
        if self.is_empty() {
            return Vec::new();
        }
        self.charge_probe(ctx);
        let mut out = Vec::with_capacity(self.live);
        for i in 0..self.keys.len() {
            if self.keys[i] != EMPTY_KEY {
                out.push((self.keys[i], self.vals[i]));
                self.keys[i] = EMPTY_KEY;
            }
        }
        ctx.write_line();
        self.live = 0;
        out
    }

    /// Device bytes occupied (keys + values).
    pub fn device_bytes(&self) -> u64 {
        (self.keys.len() * 8) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::Metrics;

    fn with_ctx<R>(f: impl FnOnce(&mut RoundCtx) -> R) -> (R, Metrics) {
        let mut m = Metrics::default();
        let ctx = &mut RoundCtx::new(&mut m);
        let r = f(ctx);
        (r, m)
    }

    #[test]
    fn push_find_erase_roundtrip() {
        let mut s = Stash::new(8, 32);
        let ((), _) = with_ctx(|ctx| {
            assert!(s.push(5, 50, ctx));
            assert_eq!(s.find(5, ctx), Some(50));
            assert_eq!(s.find(6, ctx), None);
            assert!(s.erase(5, ctx));
            assert!(!s.erase(5, ctx));
            assert!(s.is_empty());
        });
    }

    #[test]
    fn push_updates_in_place() {
        let mut s = Stash::new(4, 32);
        with_ctx(|ctx| {
            assert!(s.push(9, 1, ctx));
            assert!(s.push(9, 2, ctx));
            assert_eq!(s.len(), 1);
            assert_eq!(s.find(9, ctx), Some(2));
        });
    }

    #[test]
    fn full_stash_rejects() {
        let mut s = Stash::new(2, 32);
        with_ctx(|ctx| {
            assert!(s.push(1, 1, ctx));
            assert!(s.push(2, 2, ctx));
            assert!(!s.push(3, 3, ctx));
            assert_eq!(s.len(), 2);
        });
    }

    #[test]
    fn drain_empties_and_returns_all() {
        let mut s = Stash::new(8, 32);
        with_ctx(|ctx| {
            for k in 1..=5u32 {
                s.push(k, k * 10, ctx);
            }
            let mut drained = s.drain(ctx);
            drained.sort_unstable();
            assert_eq!(drained, vec![(1, 10), (2, 20), (3, 30), (4, 40), (5, 50)]);
            assert!(s.is_empty());
            assert!(s.drain(ctx).is_empty());
        });
    }

    #[test]
    fn empty_stash_probes_are_free() {
        let s = Stash::new(64, 32);
        let (_, m) = with_ctx(|ctx| s.find(1, ctx));
        assert_eq!(m.read_transactions, 0, "empty stash must cost nothing");
    }

    #[test]
    fn probe_cost_scales_with_capacity() {
        let mut s = Stash::new(64, 32); // 2 lines
        let (_, m) = with_ctx(|ctx| {
            s.push(1, 1, ctx);
            s.find(1, ctx)
        });
        // push: 2-line probe + 1 write; find: 2-line probe.
        assert_eq!(m.read_transactions, 4);
    }
}
