//! Probe side of the table: the batched insert/find/delete entry points
//! that pack user operations into warps and drive the kernels in
//! [`crate::ops`], plus the stash fast paths wrapped around them.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use gpu_sim::ChargeKind;
use gpu_sim::SimContext;

use crate::error::{Error, Result};
use crate::ops::insert::{insert_batch as run_insert, InsertOp};
use crate::ops::{delete::delete_batch as run_delete, find::find_batch as run_find};
use crate::resize;
use crate::rmw::MergeRule;

use super::{BatchReport, DyCuckoo, UpsertReport, RESIZE_CHECK_INTERVAL};

impl DyCuckoo {
    /// Insert a batch of KV pairs. Duplicate handling follows
    /// [`crate::DupPolicy`]; resizes triggered by the batch are reported.
    pub fn insert_batch(
        &mut self,
        sim: &mut SimContext,
        kvs: &[(u32, u32)],
    ) -> Result<BatchReport> {
        if kvs.iter().any(|&(k, _)| k == 0) {
            return Err(Error::ZeroKey);
        }
        let mut report = BatchReport {
            attempted: kvs.len(),
            ..BatchReport::default()
        };
        let _attr = obs::attr::scope("dycuckoo/insert");
        sim.metrics.charge(ChargeKind::Ops, kvs.len() as u64);
        self.decision.note_batch();
        // Stashed keys are updated in place so a key never lives in both
        // the stash and a subtable.
        let filtered: Vec<(u32, u32)>;
        let mut rest: &[(u32, u32)] = kvs;
        if self.stash.as_ref().is_some_and(|s| !s.is_empty()) {
            let stash = self.stash.as_mut().expect("checked above");
            let _stash_attr = obs::attr::scope("stash");
            let mut ctx = gpu_sim::RoundCtx::new(&mut sim.metrics);
            filtered = kvs
                .iter()
                .copied()
                .filter(|&(k, v)| {
                    let in_stash = stash.update(k, v, &mut ctx);
                    if in_stash {
                        report.updated += 1;
                    }
                    !in_stash
                })
                .collect();
            ctx.finish();
            rest = &filtered;
        }
        while !rest.is_empty() {
            // Adaptive chunking: insert only up to the headroom below β
            // before re-checking the filled factor, so a huge batch cannot
            // drive the table far past its bound (where every bucket is
            // full and eviction chains explode) between checks.
            let step = (self.headroom_slots().max(512) as usize)
                .min(RESIZE_CHECK_INTERVAL)
                .min(rest.len());
            let (chunk, tail) = rest.split_at(step);
            rest = tail;
            let ops: Vec<InsertOp> = chunk
                .iter()
                .map(|&(k, v)| {
                    self.op_counter += 1;
                    InsertOp::fresh(k, v, self.op_counter)
                })
                .collect();
            let out = run_insert(
                &mut self.tables,
                &self.shape,
                ops,
                None,
                self.migration.kernel_ctx(),
                &mut sim.metrics,
            );
            report.inserted += out.inserted;
            report.updated += out.updated;
            self.retry_failed(sim, out, &mut report)?;
            self.rebalance(sim, resize::Direction::GrowOnly, &mut report)?;
        }
        self.debug_verify("insert_batch");
        Ok(report)
    }

    /// Read-modify-write a batch of `(key, arg)` pairs under `rule`:
    /// absent keys are inserted as `rule.initial(arg)`, present keys
    /// become `rule.merge(old, arg)` inside the insert kernel's claim
    /// critical section (exactly-once, even across eviction chains and
    /// upsize-and-retry cycles — unapplied merges are materialized before
    /// any retry re-inserts them).
    ///
    /// Duplicate keys within the batch are pre-coalesced in submission
    /// order into one kernel op per unique key carrying the batch's
    /// combined effect (`Count` occurrences normalize to one `Add`), since
    /// two lanes carrying the same absent key could otherwise steer to
    /// different candidate subtables and double-place it.
    pub fn upsert_batch(
        &mut self,
        sim: &mut SimContext,
        kvs: &[(u32, u32)],
        rule: MergeRule,
    ) -> Result<UpsertReport> {
        if kvs.iter().any(|&(k, _)| k == 0) {
            return Err(Error::ZeroKey);
        }
        let mut report = BatchReport {
            attempted: kvs.len(),
            ..BatchReport::default()
        };
        let _attr = obs::attr::scope("dycuckoo/upsert");
        sim.metrics.charge(ChargeKind::Ops, kvs.len() as u64);
        self.decision.note_batch();
        // Pre-coalesce: fold each key's occurrences into one (rule, arg),
        // keeping first-touch order. Only a key's first occurrence can be
        // fresh.
        let mut fresh = vec![false; kvs.len()];
        let mut entries: Vec<(u32, MergeRule, u32, usize)> = Vec::new();
        let mut index: HashMap<u32, usize> = HashMap::new();
        for (pos, &(k, arg)) in kvs.iter().enumerate() {
            let (r, a) = match rule {
                MergeRule::Count => (MergeRule::Add, 1),
                r => (r, arg),
            };
            match index.entry(k) {
                Entry::Occupied(e) => {
                    let u = &mut entries[*e.get()];
                    u.2 = u.1.fold_args(u.2, a).expect("Count normalized to Add");
                }
                Entry::Vacant(e) => {
                    e.insert(entries.len());
                    entries.push((k, r, a, pos));
                }
            }
        }
        // Stashed keys merge in place so a key never lives in both the
        // stash and a subtable.
        if self.stash.as_ref().is_some_and(|s| !s.is_empty()) {
            let stash = self.stash.as_mut().expect("checked above");
            let _stash_attr = obs::attr::scope("stash");
            let mut ctx = gpu_sim::RoundCtx::new(&mut sim.metrics);
            entries.retain(|&(k, r, a, _)| {
                let merged = stash.update_with(k, |old| r.merge(old, a), &mut ctx);
                if merged {
                    report.updated += 1;
                }
                !merged
            });
            ctx.finish();
        }
        for &(_, _, _, pos) in &entries {
            fresh[pos] = true;
        }
        let mut rest: &[(u32, MergeRule, u32, usize)] = &entries;
        let mut base = 0usize;
        while !rest.is_empty() {
            let step = (self.headroom_slots().max(512) as usize)
                .min(RESIZE_CHECK_INTERVAL)
                .min(rest.len());
            let (chunk, tail) = rest.split_at(step);
            rest = tail;
            let ops: Vec<InsertOp> = chunk
                .iter()
                .enumerate()
                .map(|(i, &(k, r, a, _))| {
                    self.op_counter += 1;
                    InsertOp::upsert(k, a, self.op_counter, r, (base + i) as u32)
                })
                .collect();
            let mut out = run_insert(
                &mut self.tables,
                &self.shape,
                ops,
                None,
                self.migration.kernel_ctx(),
                &mut sim.metrics,
            );
            for idx in std::mem::take(&mut out.merged) {
                fresh[entries[idx as usize].3] = false;
            }
            report.inserted += out.inserted;
            report.updated += out.updated;
            self.retry_failed(sim, out, &mut report)?;
            self.rebalance(sim, resize::Direction::GrowOnly, &mut report)?;
            base += step;
        }
        self.debug_verify("upsert_batch");
        Ok(UpsertReport {
            batch: report,
            fresh,
        })
    }

    /// Counting-table special case: bump each key's counter by its number
    /// of occurrences in the batch, inserting absent keys at their count.
    pub fn increment_batch(&mut self, sim: &mut SimContext, keys: &[u32]) -> Result<UpsertReport> {
        let kvs: Vec<(u32, u32)> = keys.iter().map(|&k| (k, 0)).collect();
        self.upsert_batch(sim, &kvs, MergeRule::Count)
    }

    /// Look up a batch of keys; returns one `Option<value>` per key.
    pub fn find_batch(&self, sim: &mut SimContext, keys: &[u32]) -> Vec<Option<u32>> {
        let _attr = obs::attr::scope("dycuckoo/find");
        sim.metrics.charge(ChargeKind::Ops, keys.len() as u64);
        let mut results = run_find(
            &self.tables,
            &self.shape,
            keys,
            self.migration.kernel_ctx_ro(),
            &mut sim.metrics,
        );
        if let Some(stash) = self.stash.as_ref().filter(|s| !s.is_empty()) {
            let _stash_attr = obs::attr::scope("stash");
            let mut ctx = gpu_sim::RoundCtx::new(&mut sim.metrics);
            for (key, r) in keys.iter().zip(results.iter_mut()) {
                if r.is_none() {
                    *r = stash.find(*key, &mut ctx);
                }
            }
            ctx.finish();
        }
        results
    }

    /// Delete a batch of keys, reporting erased count and any downsizes.
    pub fn delete_batch(&mut self, sim: &mut SimContext, keys: &[u32]) -> Result<BatchReport> {
        let mut report = BatchReport {
            attempted: keys.len(),
            ..BatchReport::default()
        };
        let _attr = obs::attr::scope("dycuckoo/delete");
        sim.metrics.charge(ChargeKind::Ops, keys.len() as u64);
        self.decision.note_batch();
        report.deleted = run_delete(
            &mut self.tables,
            &self.shape,
            keys,
            self.migration.kernel_ctx(),
            &mut sim.metrics,
        );
        if self.stash.as_ref().is_some_and(|s| !s.is_empty()) {
            let stash = self.stash.as_mut().expect("checked above");
            let _stash_attr = obs::attr::scope("stash");
            let mut ctx = gpu_sim::RoundCtx::new(&mut sim.metrics);
            for &key in keys {
                if stash.erase(key, &mut ctx) {
                    report.deleted += 1;
                }
                if stash.is_empty() {
                    break;
                }
            }
            ctx.finish();
        }
        self.rebalance(sim, resize::Direction::Both, &mut report)?;
        self.debug_verify("delete_batch");
        Ok(report)
    }

    /// Convenience single-key lookup (one-op batch).
    pub fn get(&self, sim: &mut SimContext, key: u32) -> Option<u32> {
        self.find_batch(sim, &[key])[0]
    }
}
