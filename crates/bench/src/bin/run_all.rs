//! Run the complete experiment suite — every table, figure and ablation —
//! in order. Equivalent to invoking each binary by hand; used to populate
//! `EXPERIMENTS.md` and `bench_output.txt`.
//!
//! `REPRO_SCALE` (default 0.02) and `REPRO_SEED` apply to every experiment.

use std::process::Command;

const BINARIES: &[&str] = &[
    "table2_datasets",
    "fig5_atomics",
    "fig6_vary_tables",
    "fig7_resize",
    "fig8_static",
    "fig9_filled_factor",
    "fig10_vary_r",
    "fig11_stability",
    "fig12_batch_size",
    "fig13_vary_alpha",
    "fig14_vary_beta",
    "appendix_static",
    "profiling",
    "ablation_voter",
    "ablation_two_layer",
    "ablation_distribution",
    "layout_sweep",
    "maintenance_sweep",
    "strkey_sweep",
    "negative_sweep",
    "agg_sweep",
    "perf_ledger",
];

fn main() {
    let exe_dir = std::env::current_exe()
        .expect("current_exe")
        .parent()
        .expect("exe dir")
        .to_path_buf();
    for bin in BINARIES {
        println!("\n################ {bin} ################");
        let status = Command::new(exe_dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} exited with {status}");
    }
    println!("\nAll experiments completed.");
}
