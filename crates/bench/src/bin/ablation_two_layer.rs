//! **Ablation: two-layer pairing vs. its alternatives** (Section "The
//! Two-layer Approach").
//!
//! Three layerings at d = 4:
//! * `TwoLayer`  — the paper's C(d,2)-pair scheme (≤ 2 lookups, skew heals);
//! * `DisjointPairs` — partition into d/2 fixed pairs (≤ 2 lookups, but a
//!   partition's load cannot spill over — the skew-prone strawman);
//! * `PlainD`   — plain d-ary cuckoo (up to d lookups).
//!
//! Part 1 measures static insert/find/miss cost. Part 2 reproduces the
//! paper's skew argument: delete most keys belonging to one partition,
//! then insert fresh keys — the disjoint layering is stuck cramming them
//! into their own pair while two-layer spreads the load.

use bench::measure;
use bench::report::{fmt_mops, Table};
use bench::seed;
use dycuckoo::{Config, DupPolicy, DyCuckoo, Layering};
use gpu_sim::SimContext;
use workloads::keygen::unique_keys;

const ITEMS: usize = 200_000;

fn cfg_for(layering: Layering, seed: u64) -> Config {
    Config {
        layering,
        dup_policy: DupPolicy::PaperInsert,
        seed,
        ..Config::default()
    }
}

fn main() {
    let seed = seed();
    let layerings = [
        ("TwoLayer", Layering::TwoLayer),
        ("DisjointPairs", Layering::DisjointPairs),
        ("PlainD", Layering::PlainD),
    ];

    // Part 1: static costs at θ = 0.85.
    println!("Ablation: layering schemes, {ITEMS} keys at θ=85%");
    let mut t = Table::new(&[
        "layering",
        "insert Mops",
        "find Mops",
        "miss lookups/key",
        "hit lookups/key",
    ]);
    let keys: Vec<u32> = unique_keys(seed, ITEMS).collect();
    let kvs: Vec<(u32, u32)> = keys.iter().map(|&k| (k, k ^ 5)).collect();
    for (name, layering) in layerings {
        let mut sim = SimContext::new();
        let mut table =
            DyCuckoo::with_capacity(cfg_for(layering, seed), ITEMS, 0.85, &mut sim).unwrap();
        let (_, ins) = measure(&mut sim, |sim| table.insert_batch(sim, &kvs).unwrap());
        let (_, hit) = measure(&mut sim, |sim| {
            table.find_batch(sim, &keys[..50_000]);
        });
        let misses: Vec<u32> = unique_keys(seed ^ 0xDEAD, 50_000)
            .map(|k| k | 1 << 31)
            .collect();
        let (_, miss) = measure(&mut sim, |sim| {
            table.find_batch(sim, &misses);
        });
        t.row(vec![
            name.to_string(),
            fmt_mops(ins.mops),
            fmt_mops(hit.mops),
            format!("{:.2}", miss.metrics.lookups as f64 / 50_000.0),
            format!("{:.2}", hit.metrics.lookups as f64 / 50_000.0),
        ]);
    }
    t.print("Part 1: static cost per layering");

    // Part 2: skew recovery. Delete every key homed in partition 0 (for
    // DisjointPairs, subtables {0,1}), then insert the same volume of new
    // keys and compare insert cost and the worst subtable fill.
    let mut t = Table::new(&[
        "layering",
        "re-insert Mops",
        "evictions",
        "max subtable fill",
        "min subtable fill",
    ]);
    for (name, layering) in layerings {
        let mut sim = SimContext::new();
        let cfg = cfg_for(layering, seed);
        let mut table = DyCuckoo::with_capacity(cfg, ITEMS, 0.80, &mut sim).unwrap();
        table.insert_batch(&mut sim, &kvs).unwrap();
        // Skewed deletion: drop 80% of the keys, biased by key parity so a
        // fixed partition empties under DisjointPairs-style hashing.
        let dels: Vec<u32> = keys
            .iter()
            .copied()
            .filter(|&k| workloads::mix64(k as u64) % 10 < 8)
            .collect();
        // Bounds are wide open so no resize masks the imbalance.
        table.delete_batch(&mut sim, &dels).unwrap();
        let fresh: Vec<(u32, u32)> = unique_keys(seed ^ 0xF00D, dels.len())
            .map(|k| (k, k))
            .collect();
        let (_, reins) = measure(&mut sim, |sim| table.insert_batch(sim, &fresh).unwrap());
        let stats = table.stats();
        let max_fill = stats.per_table.iter().map(|s| s.fill).fold(0.0, f64::max);
        let min_fill = stats.per_table.iter().map(|s| s.fill).fold(1.0, f64::min);
        t.row(vec![
            name.to_string(),
            fmt_mops(reins.mops),
            reins.metrics.evictions.to_string(),
            format!("{:.1}%", max_fill * 100.0),
            format!("{:.1}%", min_fill * 100.0),
        ]);
    }
    t.print("Part 2: skewed churn (delete 80%, re-insert fresh keys)");
}
