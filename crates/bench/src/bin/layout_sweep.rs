//! **Layout sweep** — throughput × filled factor × memory transactions for
//! every bucket layout the engine supports (scheme × width), on the
//! fig9/fig11-style dynamic workload (RAND, r = 0.2).
//!
//! The paper fixes one layout: split arrays with 32 four-byte slots per
//! bucket, so one bucket probe is exactly one coalesced transaction. The
//! engine (`gpu_sim::engine::layout`) makes that a parameter; this sweep
//! re-runs the *same logical execution* under each layout and reports what
//! the memory system sees. Expected shape:
//!
//! * `soa32` (default) — the paper's numbers, bit-for-bit.
//! * `soa16` / `soa8` — narrower buckets still probe in one line, but hold
//!   fewer keys, so θ pressure triggers earlier resizes.
//! * `aos16` / `aos8` — an interleaved bucket ≤ one cache line makes the
//!   value arrive with the probe (no second read) and a KV write touch one
//!   line instead of two: **fewer total transactions than the default**.
//! * `aos32` — 256-byte interleaved buckets straddle two lines; every probe
//!   pays double. The sweep shows why the paper did not pick this.

use baselines::{DyCuckooTable, GpuHashTable};
use bench::driver::run_batch;
use bench::report::{fmt_mops, fmt_pct, Table};
use bench::telemetry::Telemetry;
use bench::{measure, scale, seed};
use dycuckoo::{Config, DupPolicy};
use gpu_sim::{LayoutConfig, Metrics, SimContext};
use workloads::{dataset_by_name, DynamicWorkload};

/// The swept layouts: both schemes at every supported bucket width.
fn sweep_set() -> Vec<LayoutConfig> {
    ["soa32", "soa16", "soa8", "aos32", "aos16", "aos8"]
        .iter()
        .map(|s| LayoutConfig::parse(s, 4, 4).expect("valid layout spec"))
        .collect()
}

fn main() {
    let mut tel = Telemetry::from_env();
    let scale = scale();
    let seed = seed();
    let batch = ((100_000.0 * scale).round() as usize).max(1000);
    let ds = dataset_by_name("RAND")
        .unwrap()
        .scaled(scale)
        .generate(seed);
    let w = DynamicWorkload::build(&ds, batch, 0.2, seed);
    let n_ops: u64 = w
        .batches
        .iter()
        .map(|b| (b.inserts.len() + b.finds.len() + b.deletes.len()) as u64)
        .sum();
    println!(
        "Layout sweep: DyCuckoo on the dynamic workload (RAND, r=0.2, {} batches, {} ops)",
        w.batches.len(),
        n_ops
    );

    let mut t = Table::new(&[
        "layout", "Mops", "final θ", "reads", "writes", "total tx", "vs soa32",
    ]);
    let mut default_tx: Option<u64> = None;
    let mut best: Option<(String, u64)> = None;
    for layout in sweep_set() {
        let spec = layout.spec();
        let mut sim = SimContext::new();
        let cfg = Config {
            seed,
            initial_buckets: 64,
            dup_policy: DupPolicy::PaperInsert,
            layout,
            ..Config::default()
        };
        let mut table = DyCuckooTable::new(cfg, &mut sim).expect("DyCuckoo construction");
        let mut total = Metrics::default();
        let mut total_ns = 0.0;
        for b in &w.batches {
            let (_, m) = measure(&mut sim, |sim| run_batch(&mut table, sim, b));
            total.merge(&m.metrics);
            total_ns += m.ns;
        }
        let tx = total.transactions();
        total.register_into(
            tel.registry(),
            &[("figure", "layout_sweep"), ("layout", spec.as_str())],
        );
        if spec == "soa32" {
            default_tx = Some(tx);
        } else if best.as_ref().is_none_or(|(_, b)| tx < *b) {
            best = Some((spec.clone(), tx));
        }
        let vs = match default_tx {
            Some(d) if d > 0 => format!("{:+.1}%", (tx as f64 / d as f64 - 1.0) * 100.0),
            _ => "—".to_string(),
        };
        t.row(vec![
            spec,
            fmt_mops(if total_ns > 0.0 {
                total.ops as f64 / total_ns * 1e3
            } else {
                0.0
            }),
            fmt_pct(table.fill_factor()),
            total.read_transactions.to_string(),
            total.write_transactions.to_string(),
            tx.to_string(),
            vs,
        ]);
    }
    t.print("Layout sweep: Mops × filled factor × memory transactions per layout");

    // Headline for the abstraction's payoff: at least one non-default layout
    // must beat the paper's on total simulated memory traffic.
    let d = default_tx.expect("default layout ran");
    let (best_spec, best_tx) = best.expect("non-default layouts ran");
    println!(
        "\nBest non-default layout: {best_spec} with {best_tx} transactions \
         ({:+.1}% vs the paper's soa32 at {d})",
        (best_tx as f64 / d as f64 - 1.0) * 100.0
    );
    assert!(
        best_tx < d,
        "expected a non-default layout to issue fewer transactions than soa32"
    );
    tel.finish();
}
