//! Extensions beyond the paper: the overflow stash (the paper's
//! future-work item for upsize cascades) and wide 64-bit keys (the paper's
//! ">64-bit KV" design point).
//!
//! Run with: `cargo run --release --example extensions`

use dycuckoo::{Config, DyCuckoo, WideDyCuckoo};
use gpu_sim::SimContext;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Part 1: the overflow stash ----------------------------------
    // With a tight eviction limit and resizing enabled, compare growth
    // behaviour with and without a stash on the same hostile workload.
    println!("Part 1: overflow stash vs upsize cascades");
    for stash_capacity in [0usize, 64] {
        let mut sim = SimContext::new();
        let cfg = Config {
            stash_capacity,
            eviction_limit: 1, // hostile: chains give up immediately
            beta: 0.92,        // run hot, where failures actually happen
            initial_buckets: 2,
            ..Config::default()
        };
        let mut table = DyCuckoo::new(cfg, &mut sim)?;
        let mut resizes = 0;
        for wave in 0..20u32 {
            let kvs: Vec<(u32, u32)> = (0..5_000u32).map(|i| (wave * 5_000 + i + 1, i)).collect();
            resizes += table.insert_batch(&mut sim, &kvs)?.resizes.len();
        }
        println!(
            "  stash={stash_capacity:>3}: {} keys, {resizes} resizes, θ = {:.1}%, {} stashed, {} KiB",
            table.len(),
            table.fill_factor() * 100.0,
            table.stashed(),
            table.device_bytes() / 1024
        );
    }

    // ---- Part 2: wide 64-bit keys -------------------------------------
    // Session IDs, composite join keys and pointers don't fit in 32 bits.
    // The wide table keeps the two-layer ≤2-lookup guarantee with 16-slot
    // buckets (8-byte keys fill the same 128-byte line).
    println!("\nPart 2: 64-bit keys (16-slot buckets)");
    let mut sim = SimContext::new();
    let mut wide = WideDyCuckoo::new(4, 64, 11, &mut sim)?;
    let sessions: Vec<(u64, u64)> = (0..100_000u64)
        .map(|i| ((i + 1) << 20 | 0xBEEF, i * 31))
        .collect();
    wide.insert_batch(&mut sim, &sessions)?;
    println!(
        "  inserted {} wide keys, θ = {:.1}%, {} KiB",
        wide.len(),
        wide.fill_factor() * 100.0,
        wide.device_bytes() / 1024
    );
    sim.take_metrics();
    let keys: Vec<u64> = sessions.iter().map(|&(k, _)| k).collect();
    let found = wide.find_batch(&mut sim, &keys);
    let m = sim.take_metrics();
    assert!(found.iter().all(|f| f.is_some()));
    println!(
        "  probed {:.2} buckets per find (guarantee: ≤ 2), {:.0} Mops simulated",
        m.lookups as f64 / keys.len() as f64,
        gpu_sim::CostModel::new(sim.device.config()).mops(m.ops, &m)
    );
    Ok(())
}
