//! Incremental-migration integration tests (DESIGN.md §4f).
//!
//! A finite [`Config::migration_quantum`] turns each structural resize into
//! a resumable migration pumped one bounded chunk per batch. These tests
//! pin the contract: final contents are equivalent to stop-the-world mode,
//! every operation stays coherent *mid-migration* (the two-lookup bound
//! survives), the backlog drains monotonically, and no single batch pays
//! for more than one quantum of structural work.

use std::collections::HashMap;

use dycuckoo::{BatchReport, Config, DyCuckoo};
use gpu_sim::SimContext;

fn config(quantum: usize) -> Config {
    Config {
        initial_buckets: 4,
        migration_quantum: quantum,
        ..Config::default()
    }
}

fn kvs(range: std::ops::Range<u32>) -> Vec<(u32, u32)> {
    range.map(|k| (k, k.wrapping_mul(31) | 1)).collect()
}

/// Drive the same grow-heavy then shrink-heavy workload through a table and
/// return its final contents via lookups.
fn run_workload(quantum: usize) -> (HashMap<u32, Option<u32>>, u64) {
    let mut sim = SimContext::new();
    let mut table = DyCuckoo::new(config(quantum), &mut sim).unwrap();
    let pairs = kvs(1..4000);
    for chunk in pairs.chunks(256) {
        table.insert_batch(&mut sim, chunk).unwrap();
    }
    // Delete enough to trigger downsizes, in batches.
    let dels: Vec<u32> = (1..3500).collect();
    for chunk in dels.chunks(256) {
        table.delete_batch(&mut sim, chunk).unwrap();
    }
    // Let any in-flight migration finish so the comparison is of quiescent
    // tables (equivalence must hold regardless of when it completes).
    let mut report = BatchReport::default();
    while table.migration_in_flight() {
        table.migrate_quantum(&mut sim, &mut report).unwrap();
    }
    let keys: Vec<u32> = (1..4000).collect();
    let found = table.find_batch(&mut sim, &keys);
    let map = keys.iter().copied().zip(found).collect();
    (map, table.len())
}

/// Stop-the-world and incremental modes must agree on the final contents
/// for the same workload, for several quantum sizes.
#[test]
fn final_contents_match_stop_the_world() {
    let (reference, ref_len) = run_workload(usize::MAX);
    // Sanity: the workload leaves exactly the undeleted tail.
    assert_eq!(ref_len, 500);
    for quantum in [1, 7, 64, 1024] {
        let (incremental, len) = run_workload(quantum);
        assert_eq!(len, ref_len, "quantum={quantum}");
        assert_eq!(incremental, reference, "quantum={quantum}");
    }
}

/// Mid-migration coherence: with a tiny quantum a migration stays in
/// flight across many batches; every lookup, update, insert and delete in
/// that window must behave as if the table were quiescent.
#[test]
fn operations_stay_coherent_mid_migration() {
    let mut sim = SimContext::new();
    let mut table = DyCuckoo::new(config(2), &mut sim).unwrap();
    let mut reference: HashMap<u32, u32> = HashMap::new();

    let mut observed_in_flight = false;
    for round in 0..30u32 {
        let base = round * 200;
        let batch: Vec<(u32, u32)> = (1..=200).map(|i| (base + i, base + i + 7)).collect();
        table.insert_batch(&mut sim, &batch).unwrap();
        reference.extend(batch.iter().copied());

        if table.migration_in_flight() {
            observed_in_flight = true;
            // Reads of every live key while the machine is mid-drain.
            let keys: Vec<u32> = reference.keys().copied().collect();
            let results = table.find_batch(&mut sim, &keys);
            for (k, r) in keys.iter().zip(results) {
                assert_eq!(r, reference.get(k).copied(), "mid-migration find of {k}");
            }
            // Updates route to whichever side currently owns the key.
            let updates: Vec<(u32, u32)> = keys.iter().take(50).map(|&k| (k, k ^ 0xABCD)).collect();
            table.insert_batch(&mut sim, &updates).unwrap();
            reference.extend(updates.iter().copied());
            // Deletes likewise.
            let victims: Vec<u32> = keys.iter().skip(50).take(25).copied().collect();
            let rep = table.delete_batch(&mut sim, &victims).unwrap();
            assert_eq!(rep.deleted as usize, victims.len());
            for k in &victims {
                reference.remove(k);
            }
        }
    }
    assert!(
        observed_in_flight,
        "workload never left a migration in flight; weaken the quantum"
    );
    assert_eq!(table.len(), reference.len() as u64);
    let keys: Vec<u32> = reference.keys().copied().collect();
    for (k, r) in keys.iter().zip(table.find_batch(&mut sim, &keys)) {
        assert_eq!(r, reference.get(k).copied());
    }
}

/// The backlog gauge decreases by at least one per pump and reaches zero;
/// each pump drains at most one quantum of source buckets.
#[test]
fn backlog_drains_monotonically_and_stall_is_bounded() {
    let mut sim = SimContext::new();
    let quantum = 4usize;
    let mut table = DyCuckoo::new(config(quantum), &mut sim).unwrap();
    // Fill until a migration starts.
    let mut next = 1u32;
    while !table.migration_in_flight() {
        let batch: Vec<(u32, u32)> = (0..64).map(|i| (next + i, 1)).collect();
        next += 64;
        table.insert_batch(&mut sim, &batch).unwrap();
        assert!(next < 1 << 20, "no migration ever started");
    }
    let mut backlog = table.migration_backlog();
    assert!(backlog > 0);
    while table.migration_in_flight() {
        let mut report = BatchReport::default();
        table.migrate_quantum(&mut sim, &mut report).unwrap();
        let now = table.migration_backlog();
        assert!(now < backlog, "backlog must strictly decrease per pump");
        assert!(
            report.migrated_buckets <= quantum as u64,
            "one pump drained {} source buckets, quantum is {quantum}",
            report.migrated_buckets
        );
        // A draining pump moves buckets; the finalize pump moves none.
        assert!(report.resize_stall() || report.migrated_buckets == 0);
        backlog = now;
    }
    assert_eq!(table.migration_backlog(), 0);
}

/// A finite quantum bounds the structural work *per batch*: no insert or
/// delete batch in a grow-then-shrink workload drains more than one quantum
/// of source buckets (stop-the-world mode pays whole subtables instead).
#[test]
fn per_batch_structural_work_is_bounded_by_quantum() {
    let mut sim = SimContext::new();
    let quantum = 8usize;
    let mut table = DyCuckoo::new(config(quantum), &mut sim).unwrap();
    let pairs = kvs(1..3000);
    let mut max_batch_buckets = 0u64;
    for chunk in pairs.chunks(128) {
        let rep = table.insert_batch(&mut sim, chunk).unwrap();
        max_batch_buckets = max_batch_buckets.max(rep.migrated_buckets);
    }
    let dels: Vec<u32> = (1..2800).collect();
    for chunk in dels.chunks(128) {
        let rep = table.delete_batch(&mut sim, chunk).unwrap();
        max_batch_buckets = max_batch_buckets.max(rep.migrated_buckets);
    }
    assert!(
        max_batch_buckets > 0,
        "workload exercised no incremental migration"
    );
    assert!(
        max_batch_buckets <= quantum as u64,
        "a batch drained {max_batch_buckets} source buckets, quantum is {quantum}"
    );
}

/// The finalizing `ResizeEvent` reports the whole migration's totals, and
/// `migrated_kvs` across the pumping batches sums to the event's `moved`.
#[test]
fn finalizing_event_reports_migration_totals() {
    let mut sim = SimContext::new();
    let mut table = DyCuckoo::new(config(4), &mut sim).unwrap();
    // Fill until a migration is left in flight at a batch boundary. The
    // batch that starts it pumps its first chunk, so that batch's
    // `migrated_kvs` belongs to the current migration (any `resizes` in it
    // retire *earlier* migrations and are ignored).
    let mut next = 1u32;
    let mut moved_sum;
    loop {
        let batch: Vec<(u32, u32)> = (0..64).map(|i| (next + i, 1)).collect();
        next += 64;
        let rep = table.insert_batch(&mut sim, &batch).unwrap();
        if table.migration_in_flight() {
            moved_sum = rep.migrated_kvs;
            break;
        }
        assert!(next < 1 << 20, "no migration ever started");
    }
    let mut events = Vec::new();
    while table.migration_in_flight() {
        let mut report = BatchReport::default();
        table.migrate_quantum(&mut sim, &mut report).unwrap();
        moved_sum += report.migrated_kvs;
        events.extend(report.resizes);
    }
    assert_eq!(events.len(), 1, "exactly one finalizing event");
    assert_eq!(events[0].moved, moved_sum);
    assert_eq!(events[0].new_buckets, events[0].old_buckets * 2);
}
