//! Resize policy (Section "Structure Resizing").
//!
//! When the overall filled factor θ leaves `[α, β]`, exactly **one**
//! subtable is resized: the smallest is doubled for upsizing, the largest is
//! halved for downsizing. Only that subtable is locked; the others keep
//! serving operations. The policy maintains the invariant that no subtable
//! is more than twice the size of any other.

use crate::subtable::SubTable;

/// A single resize decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResizeOp {
    /// Double the subtable at this index.
    Upsize(usize),
    /// Halve the subtable at this index.
    Downsize(usize),
}

/// Overall filled factor `θ = Σm_i / Σn_i`.
pub fn overall_fill(tables: &[SubTable]) -> f64 {
    let m: u64 = tables.iter().map(|t| t.occupied()).sum();
    let n: u64 = tables.iter().map(|t| t.capacity_slots()).sum();
    if n == 0 {
        0.0
    } else {
        m as f64 / n as f64
    }
}

/// Index of the subtable to upsize: the smallest, breaking ties toward the
/// fullest (it benefits most) and then the lowest index (determinism).
pub fn upsize_candidate(tables: &[SubTable]) -> usize {
    (0..tables.len())
        .min_by_key(|&i| (tables[i].n_buckets(), u64::MAX - tables[i].occupied(), i))
        .expect("at least one subtable")
}

/// Index of the subtable to downsize: the largest whose bucket count can be
/// halved cleanly (even, > 1), breaking ties toward the emptiest (cheapest
/// merge, fewest residuals) and then the lowest index. `None` when no
/// subtable can shrink further.
pub fn downsize_candidate(tables: &[SubTable]) -> Option<usize> {
    (0..tables.len())
        .filter(|&i| tables[i].n_buckets() > 1 && tables[i].n_buckets().is_multiple_of(2))
        .max_by_key(|&i| {
            (
                tables[i].n_buckets(),
                u64::MAX - tables[i].occupied(),
                usize::MAX - i,
            )
        })
}

/// Which resize directions a rebalancing pass may take. Insert batches
/// only grow (θ is rising; shrinking mid-load would churn), delete batches
/// may do both (residual re-insertion during downsizing can push θ up).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Only upsizes (the insert path).
    GrowOnly,
    /// Upsizes and downsizes (the delete path).
    Both,
}

/// Decide whether a resize is needed to bring θ back inside `[alpha, beta]`.
///
/// Downsizing stops at single-bucket subtables; an empty table simply stays
/// at its minimum footprint.
pub fn decide(tables: &[SubTable], alpha: f64, beta: f64, dir: Direction) -> Option<ResizeOp> {
    let theta = overall_fill(tables);
    if theta > beta {
        return Some(ResizeOp::Upsize(upsize_candidate(tables)));
    }
    if dir == Direction::Both && theta < alpha {
        if let Some(cand) = downsize_candidate(tables) {
            return Some(ResizeOp::Downsize(cand));
        }
    }
    None
}

/// The structural invariant of the policy: max subtable size ≤ 2 × min.
pub fn size_ratio_invariant(tables: &[SubTable]) -> bool {
    let min = tables.iter().map(|t| t.n_buckets()).min().unwrap_or(1);
    let max = tables.iter().map(|t| t.n_buckets()).max().unwrap_or(1);
    max <= 2 * min
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BUCKET_SLOTS;

    fn table(n_buckets: usize, filled: u64) -> SubTable {
        let mut t = SubTable::new(n_buckets, gpu_sim::LayoutConfig::default());
        let mut written = 0;
        'outer: for b in 0..n_buckets {
            for _ in 0..BUCKET_SLOTS {
                if written == filled {
                    break 'outer;
                }
                let s = t.find_empty(b).unwrap();
                t.write_new(b, s, written as u32 + 1, 0);
                written += 1;
            }
        }
        t
    }

    #[test]
    fn overall_fill_weights_by_capacity() {
        let tables = vec![table(2, 32), table(2, 0)];
        assert!((overall_fill(&tables) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn decide_upsizes_smallest_when_over_beta() {
        let tables = vec![table(4, 120), table(2, 60), table(4, 120)];
        // θ = 300/320 ≈ 0.94 > 0.85.
        assert_eq!(
            decide(&tables, 0.3, 0.85, Direction::Both),
            Some(ResizeOp::Upsize(1))
        );
        // Growing is allowed in both directions' modes.
        assert_eq!(
            decide(&tables, 0.3, 0.85, Direction::GrowOnly),
            Some(ResizeOp::Upsize(1))
        );
    }

    #[test]
    fn decide_downsizes_largest_when_under_alpha() {
        let tables = vec![table(4, 10), table(2, 10), table(2, 10)];
        // θ = 30/256 ≈ 0.12 < 0.3.
        assert_eq!(
            decide(&tables, 0.3, 0.85, Direction::Both),
            Some(ResizeOp::Downsize(0))
        );
        // The insert path never shrinks mid-batch.
        assert_eq!(decide(&tables, 0.3, 0.85, Direction::GrowOnly), None);
    }

    #[test]
    fn decide_none_in_range() {
        let tables = vec![table(2, 40), table(2, 40)];
        // θ = 80/128 = 0.625.
        assert_eq!(decide(&tables, 0.3, 0.85, Direction::Both), None);
    }

    #[test]
    fn no_downsize_below_one_bucket() {
        let tables = vec![table(1, 0), table(1, 0)];
        assert_eq!(decide(&tables, 0.3, 0.85, Direction::Both), None);
    }

    #[test]
    fn upsize_tie_break_prefers_fullest() {
        let tables = vec![table(2, 10), table(2, 60), table(2, 30)];
        assert_eq!(upsize_candidate(&tables), 1);
    }

    #[test]
    fn downsize_tie_break_prefers_emptiest() {
        let tables = vec![table(4, 100), table(4, 5), table(2, 0)];
        assert_eq!(downsize_candidate(&tables), Some(1));
    }

    #[test]
    fn downsize_skips_odd_sized_tables() {
        let tables = vec![table(5, 0), table(4, 0)];
        assert_eq!(downsize_candidate(&tables), Some(1));
        let tables = vec![table(1, 0), table(1, 0)];
        assert_eq!(downsize_candidate(&tables), None);
    }

    #[test]
    fn size_ratio_invariant_detects_violations() {
        assert!(size_ratio_invariant(&[table(2, 0), table(4, 0)]));
        assert!(!size_ratio_invariant(&[table(2, 0), table(8, 0)]));
    }
}
