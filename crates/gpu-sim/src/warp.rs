//! Warp-level primitives: lane masks, ballot, and broadcast.
//!
//! A warp is 32 lanes executing in lockstep. The paper's kernels coordinate
//! lanes with two CUDA primitives, both of which we reproduce faithfully:
//!
//! * `__ballot(pred)` — every lane evaluates a predicate; the result is a
//!   32-bit mask with bit `l` set iff lane `l`'s predicate held.
//! * `__shfl(v, src)` — every lane receives lane `src`'s value (broadcast).
//!
//! In the simulator a warp's lanes are simply indices `0..32`; per-lane
//! state lives in arrays owned by the kernel's warp-state struct.

/// Number of lanes in a warp — fixed at 32 on all NVIDIA architectures the
/// paper targets, and the reason the paper's buckets hold 32 keys.
pub const WARP_SIZE: usize = 32;

/// A 32-bit mask with one bit per lane, as returned by [`ballot`].
pub type LaneMask = u32;

/// CUDA `__ballot`: evaluate `pred` on every lane and collect the results
/// into a lane mask.
#[inline]
pub fn ballot(mut pred: impl FnMut(usize) -> bool) -> LaneMask {
    let mut mask = 0u32;
    for lane in 0..WARP_SIZE {
        if pred(lane) {
            mask |= 1 << lane;
        }
    }
    mask
}

/// Index of the first set lane in a ballot result, if any. This is how the
/// paper's Algorithm 1 elects the leader (`l'`) of a vote.
#[inline]
pub fn first_set_lane(mask: LaneMask) -> Option<usize> {
    if mask == 0 {
        None
    } else {
        Some(mask.trailing_zeros() as usize)
    }
}

/// CUDA `__shfl`: broadcast lane `src`'s value to the whole warp. In the
/// simulator per-lane values live in a slice indexed by lane.
#[inline]
pub fn broadcast<T: Copy>(values: &[T], src: usize) -> T {
    values[src]
}

/// Iterate over the lanes set in a mask, in ascending lane order.
#[inline]
pub fn lanes(mask: LaneMask) -> impl Iterator<Item = usize> {
    (0..WARP_SIZE).filter(move |l| mask & (1 << l) != 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ballot_collects_predicates() {
        let m = ballot(|l| l % 2 == 0);
        assert_eq!(m, 0x5555_5555);
    }

    #[test]
    fn ballot_empty_and_full() {
        assert_eq!(ballot(|_| false), 0);
        assert_eq!(ballot(|_| true), u32::MAX);
    }

    #[test]
    fn first_set_lane_picks_lowest() {
        assert_eq!(first_set_lane(0), None);
        assert_eq!(first_set_lane(0b1000), Some(3));
        assert_eq!(first_set_lane(u32::MAX), Some(0));
        assert_eq!(first_set_lane(1 << 31), Some(31));
    }

    #[test]
    fn broadcast_returns_source_lane_value() {
        let vals: Vec<u32> = (0..32).map(|l| l * 10).collect();
        assert_eq!(broadcast(&vals, 7), 70);
    }

    #[test]
    fn lanes_iterates_set_bits() {
        let collected: Vec<usize> = lanes(0b1010_0001).collect();
        assert_eq!(collected, vec![0, 5, 7]);
    }

    #[test]
    fn ballot_roundtrips_through_lanes() {
        let m = ballot(|l| l == 3 || l == 31);
        let collected: Vec<usize> = lanes(m).collect();
        assert_eq!(collected, vec![3, 31]);
    }
}
