//! Universal hash functions, as used by the paper:
//! `h_i(k) = ((a_i·k + b_i) mod p) mod |h^i|`.
//!
//! The crucial property exploited by the conflict-free upsize kernel is that
//! the *raw* hash value `(a·k + b) mod p` is independent of the table size;
//! only the final reduction `mod n` changes when a subtable is resized.
//! Because `n` divides `2n`, doubling a table from `n` to `2n` buckets moves
//! a key from bucket `loc` to either `loc` or `loc + n` — never anywhere
//! else — for *any* table size, so bucket counts need not be powers of two.

/// The largest prime below 2^32 (2^32 − 5), the paper's "large prime" `p`.
pub const HASH_PRIME: u64 = 4_294_967_291;

/// SplitMix64: a tiny, high-quality mixer used for seeding hash-function
/// parameters and for the deterministic per-operation coin flips of the
/// KV-distribution strategy.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Murmur3's 32-bit finalizer: a fast bijective mixer applied to the key
/// before the linear universal step. Pure linear hashing correlates badly
/// across functions on structured key sets (all keys sharing a bucket in
/// one subtable land together in every other subtable, so eviction chains
/// avalanche); the paper notes that its approach also applies to other hash
/// functions, and pre-mixing is the standard hardening.
#[inline]
pub fn fmix32(mut x: u32) -> u32 {
    x ^= x >> 16;
    x = x.wrapping_mul(0x85EB_CA6B);
    x ^= x >> 13;
    x = x.wrapping_mul(0xC2B2_AE35);
    x ^= x >> 16;
    x
}

/// One member of the universal family `h(k) = (a·mix(k) + b) mod p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniversalHash {
    a: u64,
    b: u64,
}

impl UniversalHash {
    /// Derive a hash function deterministically from a seed. `a` is drawn
    /// from `[1, p)` and `b` from `[0, p)`.
    pub fn from_seed(seed: u64) -> Self {
        let a = 1 + splitmix64(seed) % (HASH_PRIME - 1);
        let b = splitmix64(seed ^ 0xA5A5_A5A5_5A5A_5A5A) % HASH_PRIME;
        Self { a, b }
    }

    /// The raw hash value `(a·mix(k) + b) mod p`, before reduction to a
    /// bucket index. Stable across resizes.
    #[inline]
    pub fn raw(&self, key: u32) -> u64 {
        (self.a.wrapping_mul(fmix32(key) as u64).wrapping_add(self.b)) % HASH_PRIME
    }

    /// Bucket index within a table of `n_buckets` buckets.
    #[inline]
    pub fn bucket(&self, key: u32, n_buckets: usize) -> usize {
        (self.raw(key) % n_buckets as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_is_below_prime() {
        let h = UniversalHash::from_seed(7);
        for k in [0u32, 1, 17, u32::MAX, 123_456_789] {
            assert!(h.raw(k) < HASH_PRIME);
        }
    }

    #[test]
    fn different_seeds_give_different_functions() {
        let h1 = UniversalHash::from_seed(1);
        let h2 = UniversalHash::from_seed(2);
        assert_ne!(h1, h2);
        // Overwhelmingly likely to disagree somewhere in a small range.
        assert!((0..1000u32).any(|k| h1.raw(k) != h2.raw(k)));
    }

    #[test]
    fn doubling_preserves_bucket_or_shifts_by_n() {
        // The conflict-free upsize property: bucket under 2n is either the
        // bucket under n, or that plus n.
        let h = UniversalHash::from_seed(42);
        for n in [1usize, 2, 3, 8, 24, 64, 100, 1024] {
            for k in 0..2000u32 {
                let small = h.bucket(k, n);
                let large = h.bucket(k, 2 * n);
                assert!(large == small || large == small + n, "k={k} n={n}");
            }
        }
    }

    #[test]
    fn buckets_are_reasonably_uniform() {
        let h = UniversalHash::from_seed(9);
        let n = 64;
        let mut counts = vec![0u32; n];
        let total = 64_000u32;
        for k in 0..total {
            counts[h.bucket(k, n)] += 1;
        }
        let expect = total / n as u32;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c > expect / 2 && c < expect * 2,
                "bucket {i} count {c} vs expected {expect}"
            );
        }
    }

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}
