//! The common interface all compared hash tables implement.
//!
//! The paper's evaluation drives every scheme through the same batched
//! operations; this trait is that harness-facing surface. Each
//! implementation charges its work to the shared [`gpu_sim::SimContext`],
//! so throughput comparisons are apples-to-apples.

use gpu_sim::{SchedulePolicy, SimContext};

/// Errors surfaced by baseline tables.
#[derive(Debug, Clone, PartialEq)]
pub enum TableError {
    /// The operation is not supported by this scheme (e.g. CUDPP deletes).
    Unsupported(&'static str),
    /// Key 0 is reserved as the empty sentinel.
    ZeroKey,
    /// The simulated device ran out of memory.
    Device(gpu_sim::device::DeviceError),
    /// The scheme could not place all keys even after its recovery strategy
    /// (rebuilds / resizes) hit its iteration bound.
    CapacityExhausted {
        /// Operations that could not be placed.
        failed_ops: usize,
    },
    /// Error bubbled up from the DyCuckoo core.
    Core(String),
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableError::Unsupported(what) => write!(f, "operation not supported: {what}"),
            TableError::ZeroKey => write!(f, "key 0 is reserved"),
            TableError::Device(e) => write!(f, "device error: {e}"),
            TableError::CapacityExhausted { failed_ops } => {
                write!(f, "could not place {failed_ops} operations")
            }
            TableError::Core(msg) => write!(f, "core error: {msg}"),
        }
    }
}

impl std::error::Error for TableError {}

impl From<gpu_sim::device::DeviceError> for TableError {
    fn from(e: gpu_sim::device::DeviceError) -> Self {
        TableError::Device(e)
    }
}

impl From<dycuckoo::Error> for TableError {
    fn from(e: dycuckoo::Error) -> Self {
        match e {
            dycuckoo::Error::ZeroKey => TableError::ZeroKey,
            dycuckoo::Error::Device(d) => TableError::Device(d),
            other => TableError::Core(other.to_string()),
        }
    }
}

/// Result alias for baseline operations.
pub type Result<T> = std::result::Result<T, TableError>;

/// A batched GPU hash table under test.
pub trait GpuHashTable {
    /// Scheme name as printed by the harness (matches the paper's labels).
    fn name(&self) -> &'static str;

    /// Insert a batch of KV pairs (upserting on duplicates where the scheme
    /// supports it). Schemes with a resize strategy apply it here.
    fn insert_batch(&mut self, sim: &mut SimContext, kvs: &[(u32, u32)]) -> Result<()>;

    /// Look up a batch of keys.
    fn find_batch(&mut self, sim: &mut SimContext, keys: &[u32]) -> Vec<Option<u32>>;

    /// Delete a batch of keys, returning the number of keys erased.
    fn delete_batch(&mut self, sim: &mut SimContext, keys: &[u32]) -> Result<u64>;

    /// Read-modify-write a batch of `(key, arg)` pairs under `rule`:
    /// absent keys store `rule.initial(arg)`, present keys
    /// `rule.merge(old, arg)`, applied exactly once per pair. Only schemes
    /// whose insert path can merge in place support this; the default
    /// reports [`TableError::Unsupported`].
    fn upsert_batch(
        &mut self,
        _sim: &mut SimContext,
        _kvs: &[(u32, u32)],
        _rule: dycuckoo::MergeRule,
    ) -> Result<()> {
        Err(TableError::Unsupported("upsert_batch"))
    }

    /// Whether the scheme supports [`GpuHashTable::upsert_batch`].
    fn supports_upsert(&self) -> bool {
        false
    }

    /// Live KV pairs.
    fn len(&self) -> u64;

    /// Whether the table is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total key slots currently allocated.
    fn capacity_slots(&self) -> u64;

    /// Filled factor: live pairs over allocated slots.
    fn fill_factor(&self) -> f64 {
        if self.capacity_slots() == 0 {
            0.0
        } else {
            self.len() as f64 / self.capacity_slots() as f64
        }
    }

    /// Device bytes currently held by the table (including, for SlabHash,
    /// its allocator pool — the paper's point about dedicated allocators).
    fn device_bytes(&self) -> u64;

    /// Whether the scheme supports deletion (CUDPP does not).
    fn supports_delete(&self) -> bool {
        true
    }

    /// Set the within-round warp ordering for this scheme's kernels (the
    /// exploration harness sweeps these; benchmarks keep the default fixed
    /// order). Default is a no-op for schemes whose kernels have no
    /// interleaving freedom.
    fn set_schedule(&mut self, _policy: SchedulePolicy) {}
}
