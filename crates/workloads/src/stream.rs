//! Open-loop request streams: flattening a [`DynamicWorkload`] into the
//! per-client, per-tick arrival sequence a service front-end consumes.
//!
//! The dynamic workload is batch-granular (the paper drives the raw table
//! API with it); a *service* sees individual requests arriving over time
//! from many clients instead. This adapter performs that conversion
//! deterministically:
//!
//! * each batch's operation groups keep their order (inserts, then finds,
//!   then deletes — preserving the workload's hit-rate semantics);
//! * requests are attributed to `clients` logical clients round-robin;
//! * [`RequestStream::paced`] chops the sequence into per-tick arrival
//!   slices at a configurable offered load (requests per tick), using a
//!   deterministic fractional accumulator so non-integer rates average
//!   out exactly.

use crate::dynamic::DynamicWorkload;

/// One service-level operation (the stream-side mirror of a KV op).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamOp {
    /// Insert or update a key.
    Insert(u32, u32),
    /// Look up a key.
    Find(u32),
    /// Remove a key.
    Delete(u32),
}

impl StreamOp {
    /// The key this operation addresses.
    pub fn key(&self) -> u32 {
        match *self {
            StreamOp::Insert(k, _) | StreamOp::Find(k) | StreamOp::Delete(k) => k,
        }
    }
}

/// One arrival: an operation attributed to a logical client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamRequest {
    /// The submitting logical client (round-robin assigned).
    pub client: u32,
    /// The operation.
    pub op: StreamOp,
}

/// A flattened, client-attributed request sequence.
#[derive(Debug, Clone)]
pub struct RequestStream {
    /// The arrivals, in workload order.
    pub requests: Vec<StreamRequest>,
    /// Number of requests belonging to the growth phase (phase 1).
    pub phase1_requests: usize,
}

impl RequestStream {
    /// Flatten `workload` into an arrival sequence over `clients` logical
    /// clients (must be ≥ 1).
    pub fn from_workload(workload: &DynamicWorkload, clients: u32) -> Self {
        assert!(clients >= 1, "need at least one client");
        let mut requests = Vec::with_capacity(workload.total_ops());
        let mut next_client = 0u32;
        let mut claim = |requests: &mut Vec<StreamRequest>, op: StreamOp| {
            requests.push(StreamRequest {
                client: next_client,
                op,
            });
            next_client = (next_client + 1) % clients;
        };
        let mut phase1_requests = 0;
        for (i, batch) in workload.batches.iter().enumerate() {
            for &(k, v) in &batch.inserts {
                claim(&mut requests, StreamOp::Insert(k, v));
            }
            for &k in &batch.finds {
                claim(&mut requests, StreamOp::Find(k));
            }
            for &k in &batch.deletes {
                claim(&mut requests, StreamOp::Delete(k));
            }
            if i + 1 == workload.phase1_len {
                phase1_requests = requests.len();
            }
        }
        RequestStream {
            requests,
            phase1_requests,
        }
    }

    /// Number of requests in the stream.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Chop the stream into per-tick arrival slices at `rate` requests per
    /// tick (open-loop pacing). Fractional rates accumulate exactly: at
    /// rate 2.5 the slices alternate 2, 3, 2, 3, …
    pub fn paced(&self, rate: f64) -> Paced<'_> {
        assert!(rate > 0.0, "offered load must be positive");
        Paced {
            requests: &self.requests,
            rate,
            pos: 0,
            credit: 0.0,
        }
    }
}

/// Iterator over per-tick arrival slices (see [`RequestStream::paced`]).
#[derive(Debug)]
pub struct Paced<'a> {
    requests: &'a [StreamRequest],
    rate: f64,
    pos: usize,
    credit: f64,
}

impl<'a> Iterator for Paced<'a> {
    type Item = &'a [StreamRequest];

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.requests.len() {
            return None;
        }
        self.credit += self.rate;
        let take = (self.credit as usize).min(self.requests.len() - self.pos);
        self.credit -= take as f64;
        let slice = &self.requests[self.pos..self.pos + take];
        self.pos += take;
        Some(slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::DatasetSpec;

    fn stream() -> RequestStream {
        let ds = DatasetSpec {
            name: "T",
            total_pairs: 400,
            unique_keys: 380,
            zipf_s: 1.0,
            max_dup: 3,
        }
        .generate(7);
        let w = DynamicWorkload::build(&ds, 100, 0.2, 9);
        RequestStream::from_workload(&w, 8)
    }

    #[test]
    fn flattening_preserves_every_operation() {
        let ds = DatasetSpec {
            name: "T",
            total_pairs: 400,
            unique_keys: 380,
            zipf_s: 1.0,
            max_dup: 3,
        }
        .generate(7);
        let w = DynamicWorkload::build(&ds, 100, 0.2, 9);
        let s = RequestStream::from_workload(&w, 8);
        assert_eq!(s.len(), w.total_ops());
        assert!(s.phase1_requests > 0 && s.phase1_requests < s.len());
    }

    #[test]
    fn clients_are_assigned_round_robin() {
        let s = stream();
        for (i, r) in s.requests.iter().enumerate() {
            assert_eq!(r.client, (i % 8) as u32);
        }
    }

    #[test]
    fn integer_pacing_yields_uniform_slices() {
        let s = stream();
        let sizes: Vec<usize> = s.paced(50.0).map(|sl| sl.len()).collect();
        assert!(sizes[..sizes.len() - 1].iter().all(|&n| n == 50));
        assert_eq!(sizes.iter().sum::<usize>(), s.len());
    }

    #[test]
    fn fractional_pacing_accumulates_exactly() {
        let s = stream();
        let sizes: Vec<usize> = s.paced(2.5).map(|sl| sl.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), s.len());
        // Rate 2.5 alternates 2 and 3.
        assert!(sizes[..20].windows(2).all(|w| w[0] + w[1] == 5));
    }

    #[test]
    fn pacing_is_deterministic() {
        let s = stream();
        let a: Vec<Vec<StreamRequest>> = s.paced(7.3).map(|sl| sl.to_vec()).collect();
        let b: Vec<Vec<StreamRequest>> = s.paced(7.3).map(|sl| sl.to_vec()).collect();
        assert_eq!(a, b);
    }
}
