//! Schedule-exploration fuzzing: differential oracle, shrinker and repro
//! artifacts over every scheme in the repository.
//!
//! The exploration stack has three pieces:
//!
//! 1. **Workload generator** ([`gen_ops`]) — a deterministic stream of
//!    single-key operations drawn from a small hot key range (contention)
//!    plus periodic wide-range insert bursts and delete bursts (upsize /
//!    downsize pressure, so schedules interleave with resizing).
//! 2. **Differential oracle** ([`run_case`]) — executes a [`Case`] (target
//!    scheme, schedule policy, op sequence) and checks every batch against
//!    a reference `HashMap`: finds must return exactly the reference value,
//!    deletes must erase exactly the reference count, and after the final
//!    batch the whole table contents and length must match. Because every
//!    scheme upserts and the generator never puts two copies of one key in
//!    a single insert batch, the reference semantics are exact under *any*
//!    schedule — a mismatch is a real linearizability violation, not an
//!    artifact of reordering.
//! 3. **Shrinker + repro** ([`shrink_case`], [`Repro`]) — on a violation,
//!    ddmin ([`gpu_sim::shrink_ops`]) minimizes the op sequence while the
//!    oracle keeps failing (policy and seeds held fixed), and the result is
//!    serialized as a `repro-*.ron` artifact that `schedule_fuzz --replay`
//!    (and [`Repro::from_ron`]) can re-execute bit-identically.
//!
//! Everything here is deterministic: a (workload seed, schedule policy)
//! pair always produces the same ops, the same interleavings and the same
//! verdict, so a discovered failure is a committable regression test.

use std::collections::{HashMap, HashSet};
use std::fmt;

use baselines::{
    Cudpp, DyCuckooTable, GpuHashTable, LinearProbing, MegaKv, ResizeBounds, SlabHash,
};
use dycuckoo::{Config, DupPolicy, MergeRule, ParTable, UnsizedConfig, UnsizedTable, WideDyCuckoo};
use gpu_sim::explore::mix64;
use gpu_sim::{LayoutConfig, SchedulePolicy, SimContext};
use kv_service::{Backend, KvService, Op, Reply, ServiceConfig, Tier};
use workloads::LengthDist;

/// Which implementation a fuzz case drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Target {
    /// The DyCuckoo core behind the baseline adapter.
    DyCuckoo,
    /// The 64-bit wide-entry variant.
    WideDyCuckoo,
    /// MegaKV bucketized cuckoo baseline.
    MegaKv,
    /// SlabHash chaining baseline.
    SlabHash,
    /// Linear-probing baseline.
    LinearProbing,
    /// CUDPP cuckoo baseline (no deletes — the oracle skips them).
    Cudpp,
    /// The sharded batching service layer over DyCuckoo.
    KvService,
}

impl Target {
    /// Every fuzzable target, in the order the driver sweeps them.
    pub const ALL: [Target; 7] = [
        Target::DyCuckoo,
        Target::WideDyCuckoo,
        Target::MegaKv,
        Target::SlabHash,
        Target::LinearProbing,
        Target::Cudpp,
        Target::KvService,
    ];

    /// CLI / artifact name.
    pub fn name(self) -> &'static str {
        match self {
            Target::DyCuckoo => "dycuckoo",
            Target::WideDyCuckoo => "wide",
            Target::MegaKv => "megakv",
            Target::SlabHash => "slab",
            Target::LinearProbing => "linear",
            Target::Cudpp => "cudpp",
            Target::KvService => "service",
        }
    }

    /// Inverse of [`Target::name`].
    pub fn from_name(name: &str) -> Option<Target> {
        Target::ALL.into_iter().find(|t| t.name() == name)
    }
}

/// One single-key operation of a fuzz workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuzzOp {
    /// Upsert `key -> val`.
    Insert(u32, u32),
    /// Look `key` up.
    Find(u32),
    /// Erase `key`.
    Delete(u32),
    /// Read-modify-write `key` with `arg` under a merge rule. Only the
    /// RMW-armed generator ([`gen_ops_rmw`]) emits these, so the historical
    /// seed sweep — and its pinned digests — never sees them.
    Upsert(u32, u32, MergeRule),
    /// Counting-table increment (`Upsert` under [`MergeRule::Count`]),
    /// driven through the dedicated `increment_batch` entry points.
    Increment(u32),
}

/// A replayable fuzz case: everything needed to re-run one execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Case {
    /// The scheme under test.
    pub target: Target,
    /// Warp / shard scheduling policy for the whole execution.
    pub policy: SchedulePolicy,
    /// Seed the workload (and table hash seeds) derive from.
    pub workload_seed: u64,
    /// Enable the planted lock-elision bug (DyCuckoo targets only).
    pub inject_lock_elision: bool,
    /// Bucket layout for the targets that support sweeping it (DyCuckoo,
    /// MegaKV, the service's shard tables; the wide table maps the same
    /// scheme × width onto its 8-byte words). The word sizes in this field
    /// are 4/4 — per-target runners substitute their own.
    pub layout: LayoutConfig,
    /// Source buckets a structural resize may drain per migration quantum.
    /// `usize::MAX` (the default sweep) keeps stop-the-world resizes; a
    /// finite value engages the incremental migration machine on the
    /// DyCuckoo and service targets, and makes the wide runner interleave
    /// manual `begin_upsize`/`migrate_quantum` pumps between batches — so
    /// the oracle checks every operation *mid-migration*.
    pub migration_quantum: usize,
    /// Which table tier the case drives. [`Tier::Fixed`] (the default and
    /// the historical shape) runs the per-target u32 oracles above;
    /// [`Tier::Unsized`] widens the same op stream into byte-string
    /// keys/values and drives a [`dycuckoo::UnsizedTable`] against a
    /// `HashMap<Vec<u8>, Vec<u8>>` reference (the `target` field is
    /// recorded in the artifact but does not select a runner).
    pub tier: Tier,
    /// Key-length distribution used to widen u32 keys into byte strings
    /// when `tier` is unsized (ignored by the fixed tier). Repro artifacts
    /// carry the stock distribution names.
    pub key_dist: LengthDist,
    /// Fingerprint-lane width forced onto the DyCuckoo-family layouts
    /// (core, wide, unsized, and the service's shard tables): 0 — the
    /// default and the historical shape — leaves `layout` untouched, 8/16
    /// overrides its `fp_bits` so every probe is fingerprint-gated. The
    /// oracle is gate-blind: results must stay reference-identical, and
    /// (because a gate charges lines, never lookups or rounds) digests
    /// must match the ungated run bit-for-bit.
    pub fingerprint: u8,
    /// Arm the service target's per-shard cuckoo-filter miss shield
    /// (8-bit tags). Shed gets must still produce reference-exact
    /// replies; non-service targets ignore the flag.
    pub miss_filter: bool,
    /// Run the host-par differential alongside the sim execution with this
    /// many OS threads. `0` — the default and the historical shape —
    /// disables it and leaves every digest untouched. Nonzero on a
    /// fixed-tier table target mirrors every batch into a
    /// [`dycuckoo::ParTable`] and requires the final logical map to match
    /// the reference exactly (the sim run already matched it, so this is a
    /// sim-vs-host-par differential by transitivity); on the service
    /// target the whole case re-runs under `Backend::HostPar` and its
    /// digest must equal the `Backend::Sim` digest bit-for-bit. The
    /// returned digest is always the sim execution's, so pinned values
    /// never move.
    pub host_par_threads: usize,
    /// The operation sequence.
    pub ops: Vec<FuzzOp>,
}

/// An oracle mismatch: what diverged from the reference model, and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Human-readable description of the divergence.
    pub detail: String,
}

impl Violation {
    fn new(detail: impl Into<String>) -> Self {
        Self {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.detail)
    }
}

/// Deterministic fingerprint of a passing execution: folds the schedule-
/// sensitive metrics (rounds, lock failures) with the final table length,
/// so two runs of one case agree on the digest iff the executions were
/// bit-identical.
pub type Digest = u64;

fn fold(digest: Digest, x: u64) -> Digest {
    mix64(digest ^ x.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

// ---------------------------------------------------------------------------
// Workload generation
// ---------------------------------------------------------------------------

/// Keys the hot range draws from (small: forces bucket contention).
const HOT_KEYS: u64 = 192;
/// Keys the burst range draws from (wide: forces upsizes).
const WIDE_KEYS: u64 = 4096;

struct Rng {
    s: u64,
}

impl Rng {
    fn new(seed: u64) -> Self {
        Self {
            s: mix64(seed ^ 0x5EED_F00D),
        }
    }

    fn next(&mut self) -> u64 {
        self.s = self.s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.s)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A deterministic op sequence for `seed`: mostly hot-range single ops with
/// occasional wide-range insert bursts (resize-overlap pressure) and delete
/// bursts (downsize pressure).
pub fn gen_ops(seed: u64, n: usize) -> Vec<FuzzOp> {
    let mut rng = Rng::new(seed);
    let mut ops = Vec::with_capacity(n);
    let any_key = |rng: &mut Rng| -> u32 {
        let wide = rng.below(4) == 0;
        let range = if wide { WIDE_KEYS } else { HOT_KEYS };
        1 + rng.below(range) as u32
    };
    while ops.len() < n {
        let val = |rng: &mut Rng| ((rng.next() as u32) & 0x00FF_FFFF) | 1;
        match rng.below(100) {
            // Upsize burst: a run of wide-range inserts in one window.
            0..=7 => {
                for _ in 0..(n - ops.len()).min(24) {
                    let k = 1 + rng.below(WIDE_KEYS) as u32;
                    let v = val(&mut rng);
                    ops.push(FuzzOp::Insert(k, v));
                }
            }
            // Downsize burst: a run of deletes.
            8..=13 => {
                for _ in 0..(n - ops.len()).min(16) {
                    let k = any_key(&mut rng);
                    ops.push(FuzzOp::Delete(k));
                }
            }
            14..=58 => {
                let k = 1 + rng.below(HOT_KEYS) as u32;
                let v = val(&mut rng);
                ops.push(FuzzOp::Insert(k, v));
            }
            59..=83 => ops.push(FuzzOp::Find(any_key(&mut rng))),
            _ => ops.push(FuzzOp::Delete(any_key(&mut rng))),
        }
    }
    ops.truncate(n);
    ops
}

/// The RMW-armed generator: the same deterministic stream shape as
/// [`gen_ops`] plus upserts (rules cycling through [`MergeRule::ALL`]) and
/// increments on the hot range — merge chains build up on contended keys,
/// which is exactly where voter-claim and eviction races would surface.
/// A separate function (rather than a flag on `gen_ops`) so the historical
/// sweep's op streams, and therefore its pinned digests, stay bit-identical.
pub fn gen_ops_rmw(seed: u64, n: usize) -> Vec<FuzzOp> {
    let mut rng = Rng::new(seed ^ 0x52_4D57);
    let mut ops = Vec::with_capacity(n);
    let any_key = |rng: &mut Rng| -> u32 {
        let wide = rng.below(4) == 0;
        let range = if wide { WIDE_KEYS } else { HOT_KEYS };
        1 + rng.below(range) as u32
    };
    while ops.len() < n {
        let val = |rng: &mut Rng| ((rng.next() as u32) & 0x00FF_FFFF) | 1;
        match rng.below(100) {
            0..=5 => {
                for _ in 0..(n - ops.len()).min(24) {
                    let k = 1 + rng.below(WIDE_KEYS) as u32;
                    let v = val(&mut rng);
                    ops.push(FuzzOp::Insert(k, v));
                }
            }
            6..=10 => {
                for _ in 0..(n - ops.len()).min(16) {
                    let k = any_key(&mut rng);
                    ops.push(FuzzOp::Delete(k));
                }
            }
            11..=35 => {
                let k = 1 + rng.below(HOT_KEYS) as u32;
                let v = val(&mut rng);
                ops.push(FuzzOp::Insert(k, v));
            }
            // Upsert burst on the hot range: one rule per burst, so the
            // batcher folds consecutive ops into a single RMW kernel with
            // plenty of intra-batch duplicate keys to pre-coalesce.
            36..=50 => {
                let rule = MergeRule::ALL[rng.below(MergeRule::ALL.len() as u64) as usize];
                for _ in 0..(n - ops.len()).min(12) {
                    let k = 1 + rng.below(HOT_KEYS) as u32;
                    ops.push(FuzzOp::Upsert(k, val(&mut rng), rule));
                }
            }
            51..=62 => ops.push(FuzzOp::Increment(1 + rng.below(HOT_KEYS) as u32)),
            63..=85 => ops.push(FuzzOp::Find(any_key(&mut rng))),
            _ => ops.push(FuzzOp::Delete(any_key(&mut rng))),
        }
    }
    ops.truncate(n);
    ops
}

// ---------------------------------------------------------------------------
// Batching
// ---------------------------------------------------------------------------

/// Consecutive same-kind ops execute as one kernel batch (capped), which is
/// how the batched APIs are actually driven. An insert batch is cut before
/// a duplicate key would enter it: duplicate keys *within* one batch race
/// for last-write-wins under reordering, which would make the reference
/// model schedule-dependent and the oracle vacuous. Upsert batches have no
/// such cut — the engines pre-coalesce duplicate keys in submission order
/// before the kernel launches, so the reference (apply ops in submission
/// order) is exact under any schedule, and letting duplicates through is
/// precisely what exercises that pre-coalescing path.
enum Batch {
    Insert(Vec<(u32, u32)>),
    Find(Vec<u32>),
    Delete(Vec<u32>),
    Upsert(Vec<(u32, u32)>, MergeRule),
    Increment(Vec<u32>),
}

const MAX_KERNEL_BATCH: usize = 48;

fn batches(ops: &[FuzzOp]) -> Vec<Batch> {
    let mut out: Vec<Batch> = Vec::new();
    let mut in_batch: HashSet<u32> = HashSet::new();
    for &op in ops {
        let fits = match (&op, out.last_mut()) {
            (FuzzOp::Insert(k, _), Some(Batch::Insert(kvs))) => {
                kvs.len() < MAX_KERNEL_BATCH && !in_batch.contains(k)
            }
            (FuzzOp::Find(_), Some(Batch::Find(ks))) => ks.len() < MAX_KERNEL_BATCH,
            (FuzzOp::Delete(_), Some(Batch::Delete(ks))) => ks.len() < MAX_KERNEL_BATCH,
            (FuzzOp::Upsert(_, _, r), Some(Batch::Upsert(kvs, rule))) => {
                kvs.len() < MAX_KERNEL_BATCH && r == rule
            }
            (FuzzOp::Increment(_), Some(Batch::Increment(ks))) => ks.len() < MAX_KERNEL_BATCH,
            _ => false,
        };
        match (op, fits) {
            (FuzzOp::Insert(k, v), true) => {
                if let Some(Batch::Insert(kvs)) = out.last_mut() {
                    kvs.push((k, v));
                    in_batch.insert(k);
                }
            }
            (FuzzOp::Insert(k, v), false) => {
                in_batch.clear();
                in_batch.insert(k);
                out.push(Batch::Insert(vec![(k, v)]));
            }
            (FuzzOp::Find(k), true) => {
                if let Some(Batch::Find(ks)) = out.last_mut() {
                    ks.push(k);
                }
            }
            (FuzzOp::Find(k), false) => out.push(Batch::Find(vec![k])),
            (FuzzOp::Delete(k), true) => {
                if let Some(Batch::Delete(ks)) = out.last_mut() {
                    ks.push(k);
                }
            }
            (FuzzOp::Delete(k), false) => out.push(Batch::Delete(vec![k])),
            (FuzzOp::Upsert(k, v, _), true) => {
                if let Some(Batch::Upsert(kvs, _)) = out.last_mut() {
                    kvs.push((k, v));
                }
            }
            (FuzzOp::Upsert(k, v, r), false) => out.push(Batch::Upsert(vec![(k, v)], r)),
            (FuzzOp::Increment(k), true) => {
                if let Some(Batch::Increment(ks)) = out.last_mut() {
                    ks.push(k);
                }
            }
            (FuzzOp::Increment(k), false) => out.push(Batch::Increment(vec![k])),
        }
    }
    out
}

/// Apply one RMW to the fixed-tier reference model.
fn model_upsert(model: &mut HashMap<u32, u32>, k: u32, arg: u32, rule: MergeRule) {
    let next = match model.get(&k) {
        Some(&old) => rule.merge(old, arg),
        None => rule.initial(arg),
    };
    model.insert(k, next);
}

// ---------------------------------------------------------------------------
// The oracle
// ---------------------------------------------------------------------------

/// Execute one case and check it against the reference model. `Ok` carries
/// a deterministic execution digest; `Err` is an oracle violation.
pub fn run_case(case: &Case) -> Result<Digest, Violation> {
    if case.tier == Tier::Unsized {
        return run_unsized_case(case);
    }
    match case.target {
        Target::KvService => run_service_case(case),
        Target::WideDyCuckoo => run_wide_case(case),
        _ => run_table_case(case),
    }
}

fn table_seed(case: &Case) -> u64 {
    mix64(case.workload_seed ^ 0xC0FF_EE00)
}

/// The case's layout with its fingerprint override applied. Only the
/// DyCuckoo-family runners use this — the baselines keep the raw layout,
/// since the fingerprint lane is a DyCuckoo engine feature.
fn fp_layout(case: &Case) -> LayoutConfig {
    if case.fingerprint > 0 {
        case.layout.with_fp(case.fingerprint)
    } else {
        case.layout
    }
}

fn setup_err(e: impl fmt::Display) -> Violation {
    Violation::new(format!("table construction failed: {e}"))
}

fn build_table(case: &Case, sim: &mut SimContext) -> Result<Box<dyn GpuHashTable>, Violation> {
    let seed = table_seed(case);
    let mut table: Box<dyn GpuHashTable> = match case.target {
        Target::DyCuckoo => Box::new(
            DyCuckooTable::new(
                Config {
                    initial_buckets: 4,
                    seed,
                    dup_policy: DupPolicy::Upsert,
                    schedule: case.policy,
                    inject_lock_elision: case.inject_lock_elision,
                    layout: fp_layout(case),
                    migration_quantum: case.migration_quantum,
                    ..Config::default()
                },
                sim,
            )
            .map_err(setup_err)?,
        ),
        Target::MegaKv => Box::new(
            MegaKv::with_layout(
                8,
                Some(ResizeBounds {
                    alpha: 0.3,
                    beta: 0.85,
                }),
                seed,
                case.layout,
                sim,
            )
            .map_err(setup_err)?,
        ),
        Target::SlabHash => Box::new(SlabHash::new(16, seed, sim).map_err(setup_err)?),
        Target::LinearProbing => {
            Box::new(LinearProbing::new(16 * 1024, seed, sim).map_err(setup_err)?)
        }
        Target::Cudpp => {
            Box::new(Cudpp::with_capacity(8 * 1024, 0.4, seed, sim).map_err(setup_err)?)
        }
        Target::WideDyCuckoo | Target::KvService => unreachable!("handled by dedicated runners"),
    };
    table.set_schedule(case.policy);
    Ok(table)
}

/// Check a slice of lookups against the reference.
fn check_finds(
    when: &str,
    keys: &[u32],
    got: &[Option<u32>],
    model: &HashMap<u32, u32>,
) -> Result<(), Violation> {
    for (&k, g) in keys.iter().zip(got) {
        let want = model.get(&k).copied();
        if *g != want {
            return Err(Violation::new(format!(
                "{when}: find({k}) = {g:?}, reference says {want:?}"
            )));
        }
    }
    Ok(())
}

fn run_table_case(case: &Case) -> Result<Digest, Violation> {
    let mut sim = SimContext::new();
    let mut table = build_table(case, &mut sim)?;
    let mut model: HashMap<u32, u32> = HashMap::new();
    for (i, batch) in batches(&case.ops).into_iter().enumerate() {
        match batch {
            Batch::Insert(kvs) => {
                table
                    .insert_batch(&mut sim, &kvs)
                    .map_err(|e| Violation::new(format!("insert batch {i} failed: {e}")))?;
                for &(k, v) in &kvs {
                    model.insert(k, v);
                }
                let keys: Vec<u32> = kvs.iter().map(|&(k, _)| k).collect();
                let got = table.find_batch(&mut sim, &keys);
                check_finds(&format!("after insert batch {i}"), &keys, &got, &model)?;
            }
            Batch::Find(keys) => {
                let got = table.find_batch(&mut sim, &keys);
                check_finds(&format!("find batch {i}"), &keys, &got, &model)?;
            }
            Batch::Delete(keys) => {
                if !table.supports_delete() {
                    continue;
                }
                let mut want = 0u64;
                for &k in &keys {
                    if model.remove(&k).is_some() {
                        want += 1;
                    }
                }
                let got = table
                    .delete_batch(&mut sim, &keys)
                    .map_err(|e| Violation::new(format!("delete batch {i} failed: {e}")))?;
                if got != want {
                    return Err(Violation::new(format!(
                        "delete batch {i}: erased {got} keys, reference says {want}"
                    )));
                }
            }
            Batch::Upsert(kvs, rule) => {
                if !table.supports_upsert() {
                    continue;
                }
                table
                    .upsert_batch(&mut sim, &kvs, rule)
                    .map_err(|e| Violation::new(format!("upsert batch {i} failed: {e}")))?;
                for &(k, v) in &kvs {
                    model_upsert(&mut model, k, v, rule);
                }
                let keys: Vec<u32> = kvs.iter().map(|&(k, _)| k).collect();
                let got = table.find_batch(&mut sim, &keys);
                check_finds(&format!("after upsert batch {i}"), &keys, &got, &model)?;
            }
            Batch::Increment(keys) => {
                if !table.supports_upsert() {
                    continue;
                }
                let kvs: Vec<(u32, u32)> = keys.iter().map(|&k| (k, 0)).collect();
                table
                    .upsert_batch(&mut sim, &kvs, MergeRule::Count)
                    .map_err(|e| Violation::new(format!("increment batch {i} failed: {e}")))?;
                for &k in &keys {
                    model_upsert(&mut model, k, 0, MergeRule::Count);
                }
                let got = table.find_batch(&mut sim, &keys);
                check_finds(&format!("after increment batch {i}"), &keys, &got, &model)?;
            }
        }
    }
    // Full final sweep: every reference key must be present with the right
    // value, a few never-inserted keys must miss, and the length must agree.
    let mut keys: Vec<u32> = model.keys().copied().collect();
    keys.sort_unstable();
    keys.extend((1..=4u32).map(|i| 0xFFF0_0000 + i));
    let got = table.find_batch(&mut sim, &keys);
    check_finds("final sweep", &keys, &got, &model)?;
    if table.len() != model.len() as u64 {
        return Err(Violation::new(format!(
            "final sweep: table.len() = {}, reference holds {} keys",
            table.len(),
            model.len()
        )));
    }
    let mut d = fold(0, sim.metrics.rounds);
    d = fold(d, sim.metrics.lock_failures);
    d = fold(d, table.len());
    if case.host_par_threads > 0 {
        run_host_par_table_diff(case)?;
    }
    Ok(d)
}

/// The host-par differential: replay the case's batches through a
/// [`ParTable`] on `host_par_threads` real OS threads and check every
/// batch — and the final logical map — against a reference `HashMap`.
///
/// The reference model is maintained independently of the sim runner's
/// (baselines like CUDPP skip deletes, which would skew a shared model),
/// so the check composes with every fixed-tier target: the sim execution
/// proved `sim == reference`, this proves `host-par == reference`, hence
/// `host-par == sim` on the final logical map. Physical placement and
/// grow counts are schedule-dependent by design and stay outside the
/// comparison — and outside the digest, which this function never touches.
fn run_host_par_table_diff(case: &Case) -> Result<(), Violation> {
    let cfg = Config {
        initial_buckets: 4,
        seed: table_seed(case),
        layout: fp_layout(case),
        ..Config::default()
    };
    let mut par = ParTable::new(cfg, case.host_par_threads)
        .map_err(|e| Violation::new(format!("host-par table construction failed: {e}")))?;
    let mut model: HashMap<u32, u32> = HashMap::new();
    for (i, batch) in batches(&case.ops).into_iter().enumerate() {
        match batch {
            Batch::Insert(kvs) => {
                par.insert_batch(&kvs)
                    .map_err(|e| Violation::new(format!("host-par insert batch {i}: {e}")))?;
                for &(k, v) in &kvs {
                    model.insert(k, v);
                }
                let keys: Vec<u32> = kvs.iter().map(|&(k, _)| k).collect();
                let got = par.find_batch(&keys);
                check_finds(
                    &format!("host-par after insert batch {i}"),
                    &keys,
                    &got,
                    &model,
                )?;
            }
            Batch::Find(keys) => {
                let got = par.find_batch(&keys);
                check_finds(&format!("host-par find batch {i}"), &keys, &got, &model)?;
            }
            Batch::Delete(keys) => {
                let mut want = 0u64;
                for &k in &keys {
                    if model.remove(&k).is_some() {
                        want += 1;
                    }
                }
                let got = par.delete_batch(&keys);
                if got != want {
                    return Err(Violation::new(format!(
                        "host-par delete batch {i}: erased {got} keys, reference says {want}"
                    )));
                }
            }
            Batch::Upsert(kvs, rule) => {
                par.upsert_batch(&kvs, rule)
                    .map_err(|e| Violation::new(format!("host-par upsert batch {i}: {e}")))?;
                for &(k, v) in &kvs {
                    model_upsert(&mut model, k, v, rule);
                }
                let keys: Vec<u32> = kvs.iter().map(|&(k, _)| k).collect();
                let got = par.find_batch(&keys);
                check_finds(
                    &format!("host-par after upsert batch {i}"),
                    &keys,
                    &got,
                    &model,
                )?;
            }
            Batch::Increment(keys) => {
                par.increment_batch(&keys)
                    .map_err(|e| Violation::new(format!("host-par increment batch {i}: {e}")))?;
                for &k in &keys {
                    model_upsert(&mut model, k, 0, MergeRule::Count);
                }
                let got = par.find_batch(&keys);
                check_finds(
                    &format!("host-par after increment batch {i}"),
                    &keys,
                    &got,
                    &model,
                )?;
            }
        }
    }
    // Final logical map, exactly: sorted live pairs against the reference.
    let mut live = par.live_pairs();
    live.sort_unstable();
    let mut want: Vec<(u32, u32)> = model.iter().map(|(&k, &v)| (k, v)).collect();
    want.sort_unstable();
    if live != want {
        let diff = live
            .iter()
            .filter(|p| !want.contains(p))
            .chain(want.iter().filter(|p| !live.contains(p)))
            .take(4)
            .collect::<Vec<_>>();
        return Err(Violation::new(format!(
            "host-par final map diverged from the reference ({} vs {} pairs; first diffs {diff:?})",
            live.len(),
            want.len()
        )));
    }
    par.verify()
        .map_err(|e| Violation::new(format!("host-par structural verify failed: {e}")))?;
    Ok(())
}

fn run_wide_case(case: &Case) -> Result<Digest, Violation> {
    let mut sim = SimContext::new();
    let wide_layout = LayoutConfig {
        key_bytes: 8,
        val_bytes: 8,
        ..fp_layout(case)
    };
    let mut table = WideDyCuckoo::with_layout(4, 4, table_seed(case), wide_layout, &mut sim)
        .map_err(setup_err)?;
    table.set_schedule(case.policy);
    let mut model: HashMap<u64, u64> = HashMap::new();
    // Exercise the 64-bit key space: spread the 32-bit fuzz keys across the
    // wide domain deterministically (same key always maps the same way).
    let widen = |k: u32| (k as u64) | (mix64(k as u64) & 0xFFFF_0000_0000_0000);
    // The wide table migrates only on explicit request; a finite quantum
    // makes this runner start an upsize every few batches and pump one
    // bounded chunk after every batch, so finds/inserts/deletes are checked
    // against the reference while a migration is in flight.
    let interleave = case.migration_quantum != usize::MAX;
    for (i, batch) in batches(&case.ops).into_iter().enumerate() {
        if interleave && i % 5 == 4 && !table.migration_in_flight() {
            table
                .begin_upsize(&mut sim)
                .map_err(|e| Violation::new(format!("begin_upsize before batch {i}: {e}")))?;
        }
        match batch {
            Batch::Insert(kvs) => {
                let kvs: Vec<(u64, u64)> = kvs
                    .iter()
                    .map(|&(k, v)| (widen(k), v as u64 | (k as u64) << 32))
                    .collect();
                table
                    .insert_batch(&mut sim, &kvs)
                    .map_err(|e| Violation::new(format!("insert batch {i} failed: {e}")))?;
                for &(k, v) in &kvs {
                    model.insert(k, v);
                }
                let keys: Vec<u64> = kvs.iter().map(|&(k, _)| k).collect();
                let got = table.find_batch(&mut sim, &keys);
                for (&k, g) in keys.iter().zip(&got) {
                    let want = model.get(&k).copied();
                    if *g != want {
                        return Err(Violation::new(format!(
                            "after insert batch {i}: find({k:#x}) = {g:?}, reference says {want:?}"
                        )));
                    }
                }
            }
            Batch::Find(keys) => {
                let keys: Vec<u64> = keys.iter().map(|&k| widen(k)).collect();
                let got = table.find_batch(&mut sim, &keys);
                for (&k, g) in keys.iter().zip(&got) {
                    let want = model.get(&k).copied();
                    if *g != want {
                        return Err(Violation::new(format!(
                            "find batch {i}: find({k:#x}) = {g:?}, reference says {want:?}"
                        )));
                    }
                }
            }
            Batch::Delete(keys) => {
                let keys: Vec<u64> = keys.iter().map(|&k| widen(k)).collect();
                let mut want = 0u64;
                for &k in &keys {
                    if model.remove(&k).is_some() {
                        want += 1;
                    }
                }
                let got = table.delete_batch(&mut sim, &keys);
                if got != want {
                    return Err(Violation::new(format!(
                        "delete batch {i}: erased {got} keys, reference says {want}"
                    )));
                }
            }
            Batch::Upsert(kvs, rule) => {
                // The arg stays the raw u32 (no key tag in the high half):
                // merge algebra over tagged values would be meaningless.
                let kvs: Vec<(u64, u64)> = kvs.iter().map(|&(k, v)| (widen(k), v as u64)).collect();
                table
                    .upsert_batch(&mut sim, &kvs, rule)
                    .map_err(|e| Violation::new(format!("upsert batch {i} failed: {e}")))?;
                for &(k, v) in &kvs {
                    let next = match model.get(&k) {
                        Some(&old) => rule.merge_u64(old, v),
                        None => rule.initial_u64(v),
                    };
                    model.insert(k, next);
                }
                let keys: Vec<u64> = kvs.iter().map(|&(k, _)| k).collect();
                let got = table.find_batch(&mut sim, &keys);
                for (&k, g) in keys.iter().zip(&got) {
                    let want = model.get(&k).copied();
                    if *g != want {
                        return Err(Violation::new(format!(
                            "after upsert batch {i}: find({k:#x}) = {g:?}, reference says {want:?}"
                        )));
                    }
                }
            }
            Batch::Increment(keys) => {
                let keys: Vec<u64> = keys.iter().map(|&k| widen(k)).collect();
                table
                    .increment_batch(&mut sim, &keys)
                    .map_err(|e| Violation::new(format!("increment batch {i} failed: {e}")))?;
                for &k in &keys {
                    let next = model.get(&k).map_or(1, |&old| old + 1);
                    model.insert(k, next);
                }
                let got = table.find_batch(&mut sim, &keys);
                for (&k, g) in keys.iter().zip(&got) {
                    let want = model.get(&k).copied();
                    if *g != want {
                        return Err(Violation::new(format!(
                            "after increment batch {i}: find({k:#x}) = {g:?}, reference says {want:?}"
                        )));
                    }
                }
            }
        }
        if interleave && table.migration_in_flight() {
            table
                .migrate_quantum(&mut sim, case.migration_quantum)
                .map_err(|e| Violation::new(format!("migrate_quantum after batch {i}: {e}")))?;
        }
    }
    // Quiesce so the length check compares settled tables.
    while table.migration_in_flight() {
        table
            .migrate_quantum(&mut sim, case.migration_quantum)
            .map_err(|e| Violation::new(format!("final migration drain: {e}")))?;
    }
    if table.len() != model.len() as u64 {
        return Err(Violation::new(format!(
            "final sweep: table.len() = {}, reference holds {} keys",
            table.len(),
            model.len()
        )));
    }
    let mut d = fold(1, sim.metrics.rounds);
    d = fold(d, sim.metrics.lock_failures);
    d = fold(d, table.len());
    Ok(d)
}

/// Widen a u32 fuzz key into a byte-string key. Injective: every key embeds
/// its 8-hex-digit u32 as a prefix, so distinct fuzz keys can never collide
/// whatever the random tail. The length follows the case's distribution
/// keyed on the fuzz key itself, so the same key always widens identically.
fn byte_key(case: &Case, k: u32) -> Vec<u8> {
    let len = case.key_dist.key_len(case.workload_seed, k as u64);
    let mut key = Vec::with_capacity(len);
    for shift in (0..8).rev() {
        key.push(b"0123456789abcdef"[((k >> (shift * 4)) & 0xF) as usize]);
    }
    let mut i = 0u64;
    while key.len() < len {
        let r = mix64(case.workload_seed ^ ((k as u64) << 8) ^ 0xF022_B17E ^ i);
        for b in r.to_le_bytes() {
            if key.len() == len {
                break;
            }
            key.push(b'!' + (b % 94));
        }
        i += 1;
    }
    key
}

/// Widen a u32 fuzz value into a byte payload of 0..=23 bytes — straddling
/// the 7-byte inline bound, so both value representations stay under test.
/// A pure function of `(workload_seed, v)`, so the reference map can store
/// and compare exact bytes.
fn byte_val(case: &Case, v: u32) -> Vec<u8> {
    let r = mix64(case.workload_seed ^ 0x5641_4C00 ^ v as u64);
    let len = (r % 24) as usize;
    let mut val = Vec::with_capacity(len);
    let mut i = 0u64;
    while val.len() < len {
        let r = mix64(case.workload_seed ^ ((v as u64) << 8) ^ 0xDA7A_B17E ^ i);
        for b in r.to_le_bytes() {
            if val.len() == len {
                break;
            }
            val.push(b);
        }
        i += 1;
    }
    val
}

/// The byte-KV oracle: widens the u32 op stream into byte-string keys and
/// values and drives an [`UnsizedTable`] against a byte-exact reference
/// map. Same batch discipline as the fixed oracles (insert batches never
/// contain duplicate keys), same mid-migration interleaving (a finite
/// quantum keeps a drain in flight across batches and the runner pumps it
/// between batches), plus a structural `verify_integrity` sweep at the end
/// so arena leaks or dangling spill handles fail the case even when every
/// lookup agreed.
fn run_unsized_case(case: &Case) -> Result<Digest, Violation> {
    let mut sim = SimContext::new();
    let cfg = UnsizedConfig {
        n_buckets: 4,
        seed: table_seed(case),
        schedule: case.policy,
        // Scheme and slot count sweep with the case; the word sizes are
        // the tier's own (16-byte key word, 8-byte value word).
        layout: LayoutConfig {
            key_bytes: 16,
            val_bytes: 8,
            ..fp_layout(case)
        },
        max_load: 0.8,
        migration_quantum: case.migration_quantum,
        ..UnsizedConfig::default()
    };
    let mut table = UnsizedTable::new(cfg, &mut sim).map_err(setup_err)?;
    let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
    let check = |when: &str,
                 keys: &[Vec<u8>],
                 got: &[Option<Vec<u8>>],
                 model: &HashMap<Vec<u8>, Vec<u8>>|
     -> Result<(), Violation> {
        for (k, g) in keys.iter().zip(got) {
            let want = model.get(k);
            if g.as_ref() != want {
                return Err(Violation::new(format!(
                    "{when}: find({:?}) = {g:?}, reference says {want:?}",
                    String::from_utf8_lossy(k)
                )));
            }
        }
        Ok(())
    };
    for (i, batch) in batches(&case.ops).into_iter().enumerate() {
        match batch {
            Batch::Insert(kvs) => {
                let pairs: Vec<(Vec<u8>, Vec<u8>)> = kvs
                    .iter()
                    .map(|&(k, v)| (byte_key(case, k), byte_val(case, v)))
                    .collect();
                let refs: Vec<(&[u8], &[u8])> = pairs
                    .iter()
                    .map(|(k, v)| (k.as_slice(), v.as_slice()))
                    .collect();
                table
                    .insert_batch(&mut sim, &refs)
                    .map_err(|e| Violation::new(format!("insert batch {i} failed: {e}")))?;
                for (k, v) in &pairs {
                    model.insert(k.clone(), v.clone());
                }
                let keys: Vec<Vec<u8>> = pairs.into_iter().map(|(k, _)| k).collect();
                let krefs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
                let got = table
                    .find_batch(&mut sim, &krefs)
                    .map_err(|e| Violation::new(format!("readback after batch {i}: {e}")))?;
                check(&format!("after insert batch {i}"), &keys, &got, &model)?;
            }
            Batch::Find(keys) => {
                let keys: Vec<Vec<u8>> = keys.iter().map(|&k| byte_key(case, k)).collect();
                let krefs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
                let got = table
                    .find_batch(&mut sim, &krefs)
                    .map_err(|e| Violation::new(format!("find batch {i} failed: {e}")))?;
                check(&format!("find batch {i}"), &keys, &got, &model)?;
            }
            Batch::Delete(keys) => {
                let keys: Vec<Vec<u8>> = keys.iter().map(|&k| byte_key(case, k)).collect();
                let krefs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
                let mut want = 0u64;
                for k in &keys {
                    if model.remove(k).is_some() {
                        want += 1;
                    }
                }
                let (removed, _) = table
                    .delete_batch(&mut sim, &krefs)
                    .map_err(|e| Violation::new(format!("delete batch {i} failed: {e}")))?;
                let got = removed.iter().filter(|&&r| r).count() as u64;
                if got != want {
                    return Err(Violation::new(format!(
                        "delete batch {i}: erased {got} keys, reference says {want}"
                    )));
                }
            }
            Batch::Upsert(kvs, rule) => {
                // The reference applies the same pure byte-merge functions
                // the engine uses, so the check is exact for every rule
                // (counter rules read the first 8 bytes little-endian).
                let pairs: Vec<(Vec<u8>, Vec<u8>)> = kvs
                    .iter()
                    .map(|&(k, v)| (byte_key(case, k), byte_val(case, v)))
                    .collect();
                let refs: Vec<(&[u8], &[u8])> = pairs
                    .iter()
                    .map(|(k, v)| (k.as_slice(), v.as_slice()))
                    .collect();
                table
                    .upsert_batch(&mut sim, &refs, rule)
                    .map_err(|e| Violation::new(format!("upsert batch {i} failed: {e}")))?;
                for (k, v) in &pairs {
                    let next = match model.get(k) {
                        Some(old) => rule.merge_bytes(old, v),
                        None => rule.initial_bytes(v),
                    };
                    model.insert(k.clone(), next);
                }
                let keys: Vec<Vec<u8>> = pairs.into_iter().map(|(k, _)| k).collect();
                let krefs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
                let got = table
                    .find_batch(&mut sim, &krefs)
                    .map_err(|e| Violation::new(format!("readback after batch {i}: {e}")))?;
                check(&format!("after upsert batch {i}"), &keys, &got, &model)?;
            }
            Batch::Increment(keys) => {
                let keys: Vec<Vec<u8>> = keys.iter().map(|&k| byte_key(case, k)).collect();
                let krefs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
                table
                    .increment_batch(&mut sim, &krefs)
                    .map_err(|e| Violation::new(format!("increment batch {i} failed: {e}")))?;
                for k in &keys {
                    let next = match model.get(k) {
                        Some(old) => MergeRule::Count.merge_bytes(old, &[]),
                        None => MergeRule::Count.initial_bytes(&[]),
                    };
                    model.insert(k.clone(), next);
                }
                let got = table
                    .find_batch(&mut sim, &krefs)
                    .map_err(|e| Violation::new(format!("readback after batch {i}: {e}")))?;
                check(&format!("after increment batch {i}"), &keys, &got, &model)?;
            }
        }
        // Find-only stretches would otherwise stall a drain forever under a
        // finite quantum; pump like the service layer's idle ticks do.
        if table.migration_in_flight() {
            table
                .pump_migration(&mut sim)
                .map_err(|e| Violation::new(format!("migration pump after batch {i}: {e}")))?;
        }
    }
    while table.migration_in_flight() {
        table
            .pump_migration(&mut sim)
            .map_err(|e| Violation::new(format!("final migration drain: {e}")))?;
    }
    // Full final sweep in sorted key order (deterministic), plus a few
    // never-inserted keys that must miss.
    let mut keys: Vec<Vec<u8>> = model.keys().cloned().collect();
    keys.sort_unstable();
    keys.extend((1..=4u32).map(|i| byte_key(case, 0xFFF0_0000 + i)));
    let krefs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
    let got = table
        .find_batch(&mut sim, &krefs)
        .map_err(|e| Violation::new(format!("final sweep failed: {e}")))?;
    check("final sweep", &keys, &got, &model)?;
    if table.len() != model.len() as u64 {
        return Err(Violation::new(format!(
            "final sweep: table.len() = {}, reference holds {} keys",
            table.len(),
            model.len()
        )));
    }
    table
        .verify_integrity()
        .map_err(|e| Violation::new(format!("structural integrity after final sweep: {e}")))?;
    let mut d = fold(3, sim.metrics.rounds);
    d = fold(d, sim.metrics.lock_failures);
    d = fold(d, table.len());
    Ok(d)
}

/// The service oracle, with the host-par differential layered on top: the
/// case always runs under `Backend::Sim` (whose digest is returned, so
/// pinned values never move), and with `host_par_threads > 0` it runs a
/// second time under `Backend::HostPar` — same workload, same reference
/// checks — and the two digests must agree bit-for-bit. The digest folds
/// every completion tick and the final key count, so agreement means the
/// threaded backend produced the same completions on the same simulated
/// ticks with the same final table sizes.
fn run_service_case(case: &Case) -> Result<Digest, Violation> {
    let d = run_service_backend(case, Backend::Sim)?;
    if case.host_par_threads > 0 {
        let threads = case.host_par_threads;
        let dp = run_service_backend(case, Backend::HostPar { threads })?;
        if dp != d {
            return Err(Violation::new(format!(
                "host-par({threads} threads) service digest {dp:#018x} \
                 diverged from sim digest {d:#018x}"
            )));
        }
    }
    Ok(d)
}

fn run_service_backend(case: &Case, backend: Backend) -> Result<Digest, Violation> {
    let mut sim = SimContext::new();
    let seed = table_seed(case);
    let cfg = ServiceConfig {
        shards: 4,
        table: Config {
            initial_buckets: 4,
            seed,
            dup_policy: DupPolicy::Upsert,
            schedule: case.policy,
            inject_lock_elision: case.inject_lock_elision,
            layout: fp_layout(case),
            ..Config::default()
        },
        max_batch: 16,
        max_delay_ticks: 2,
        queue_capacity: 1 << 14,
        shed_watermark: 1 << 14,
        seed: mix64(seed ^ 0x0A11),
        migration_quantum: case.migration_quantum,
        flush_order: case.policy,
        miss_filter_bits: if case.miss_filter { 8 } else { 0 },
        backend,
        ..ServiceConfig::default()
    };
    let mut svc = KvService::new(cfg, &mut sim).map_err(setup_err)?;
    // Reference replies are fixed at submission time: a key always routes
    // to one shard, shard queues are FIFO, and the flush planner provides
    // read-your-writes within a window — so per-key submission order IS the
    // linearization order, whatever the shard visit order.
    let mut model: HashMap<u32, u32> = HashMap::new();
    let mut expected: HashMap<u64, Reply> = HashMap::new();
    for (i, &op) in case.ops.iter().enumerate() {
        let op = match op {
            FuzzOp::Insert(k, v) => Op::Put(k, v),
            FuzzOp::Find(k) => Op::Get(k),
            FuzzOp::Delete(k) => Op::Delete(k),
            FuzzOp::Upsert(k, v, rule) => Op::Upsert(k, v, rule),
            FuzzOp::Increment(k) => Op::Increment(k),
        };
        let want = match op {
            Op::Get(k) => Reply::Value(model.get(&k).copied()),
            Op::Put(k, v) => {
                model.insert(k, v);
                Reply::Stored
            }
            Op::Delete(k) => {
                model.remove(&k);
                Reply::Deleted
            }
            Op::Upsert(k, v, rule) => {
                model_upsert(&mut model, k, v, rule);
                Reply::Merged
            }
            Op::Increment(k) => {
                model_upsert(&mut model, k, 0, MergeRule::Count);
                Reply::Merged
            }
        };
        match svc.submit((i % 7) as u32, op) {
            Ok(id) => {
                expected.insert(id, want);
            }
            Err(e) => {
                return Err(Violation::new(format!(
                    "op {i} refused by admission control under a roomy config: {e:?}"
                )));
            }
        }
        if i % 8 == 7 {
            svc.tick(&mut sim)
                .map_err(|e| Violation::new(format!("tick after op {i} failed: {e}")))?;
        }
    }
    svc.flush_all(&mut sim)
        .map_err(|e| Violation::new(format!("final drain failed: {e}")))?;
    let mut d = fold(2, sim.metrics.rounds);
    for c in svc.drain_completions() {
        let Some(want) = expected.remove(&c.id) else {
            return Err(Violation::new(format!(
                "request {} completed twice (or was never submitted)",
                c.id
            )));
        };
        if c.reply != want {
            return Err(Violation::new(format!(
                "request {} (key {}): reply {:?}, reference says {:?}",
                c.id, c.key, c.reply, want
            )));
        }
        d = fold(d, c.completed_tick);
    }
    if !expected.is_empty() {
        let mut ids: Vec<u64> = expected.keys().copied().collect();
        ids.sort_unstable();
        return Err(Violation::new(format!(
            "{} requests never completed after the final drain (first id {})",
            ids.len(),
            ids[0]
        )));
    }
    d = fold(d, svc.total_keys());
    Ok(d)
}

// ---------------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------------

/// Minimize a failing case with ddmin: the op list shrinks while the oracle
/// keeps failing; target, policy and seeds are held fixed so the artifact
/// replays the same interleaving family. Returns the minimized case and the
/// violation it still produces.
pub fn shrink_case(case: &Case) -> (Case, Violation) {
    debug_assert!(run_case(case).is_err(), "shrink_case needs a failing case");
    let ops = gpu_sim::shrink_ops(&case.ops, |sub| {
        let candidate = Case {
            ops: sub.to_vec(),
            ..case.clone()
        };
        run_case(&candidate).is_err()
    });
    let min = Case {
        ops,
        ..case.clone()
    };
    let violation = run_case(&min).expect_err("shrunk case must still fail");
    (min, violation)
}

// ---------------------------------------------------------------------------
// Repro artifacts (hand-rolled RON; the repo takes no serde dependency)
// ---------------------------------------------------------------------------

/// A serialized failing case: the [`Case`] plus the violation message it
/// produced when it was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Repro {
    /// The minimized failing case.
    pub case: Case,
    /// The oracle's message at discovery time (informational).
    pub violation: String,
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl Repro {
    /// Render as a RON document (fields in fixed order; see
    /// [`Repro::from_ron`]).
    pub fn to_ron(&self) -> String {
        let mut out = String::new();
        out.push_str("// schedule_fuzz repro artifact. Replay with:\n");
        out.push_str("//   cargo run --release -p bench --bin schedule_fuzz -- --replay <file>\n");
        out.push_str("(\n");
        out.push_str(&format!("    target: \"{}\",\n", self.case.target.name()));
        out.push_str(&format!("    policy: \"{}\",\n", self.case.policy.spec()));
        out.push_str(&format!(
            "    workload_seed: {},\n",
            self.case.workload_seed
        ));
        out.push_str(&format!(
            "    inject_lock_elision: {},\n",
            self.case.inject_lock_elision
        ));
        out.push_str(&format!("    layout: \"{}\",\n", self.case.layout.spec()));
        out.push_str(&format!(
            "    migration_quantum: {},\n",
            self.case.migration_quantum
        ));
        out.push_str(&format!("    tier: \"{}\",\n", self.case.tier.name()));
        out.push_str(&format!(
            "    key_dist: \"{}\",\n",
            self.case.key_dist.name()
        ));
        out.push_str(&format!("    fingerprint: {},\n", self.case.fingerprint));
        out.push_str(&format!("    miss_filter: {},\n", self.case.miss_filter));
        // Emitted only when armed, so artifacts from the historical sweep
        // shape stay byte-identical.
        if self.case.host_par_threads > 0 {
            out.push_str(&format!(
                "    host_par_threads: {},\n",
                self.case.host_par_threads
            ));
        }
        out.push_str(&format!(
            "    violation: \"{}\",\n",
            escape(&self.violation)
        ));
        out.push_str("    ops: [\n");
        for op in &self.case.ops {
            match *op {
                FuzzOp::Insert(k, v) => out.push_str(&format!("        Insert({k}, {v}),\n")),
                FuzzOp::Find(k) => out.push_str(&format!("        Find({k}),\n")),
                FuzzOp::Delete(k) => out.push_str(&format!("        Delete({k}),\n")),
                FuzzOp::Upsert(k, v, rule) => {
                    out.push_str(&format!("        Upsert({k}, {v}, \"{}\"),\n", rule.name()))
                }
                FuzzOp::Increment(k) => out.push_str(&format!("        Increment({k}),\n")),
            }
        }
        out.push_str("    ],\n");
        out.push_str(")\n");
        out
    }

    /// Parse a document produced by [`Repro::to_ron`]. The parser accepts
    /// exactly the writer's shape (fixed field order, `//` comments,
    /// arbitrary whitespace) — it is a repro loader, not a general RON
    /// implementation.
    pub fn from_ron(text: &str) -> Result<Repro, String> {
        let mut c = Cursor::new(text);
        c.expect('(')?;
        c.field("target")?;
        let target_name = c.string()?;
        let target = Target::from_name(&target_name)
            .ok_or_else(|| format!("unknown target {target_name:?}"))?;
        c.expect(',')?;
        c.field("policy")?;
        let policy_spec = c.string()?;
        let policy = SchedulePolicy::from_spec(&policy_spec)
            .ok_or_else(|| format!("unknown policy spec {policy_spec:?}"))?;
        c.expect(',')?;
        c.field("workload_seed")?;
        let workload_seed = c.number()?;
        c.expect(',')?;
        c.field("inject_lock_elision")?;
        let inject_lock_elision = c.boolean()?;
        c.expect(',')?;
        c.field("layout")?;
        let layout_spec = c.string()?;
        let layout = LayoutConfig::parse(&layout_spec, 4, 4)
            .ok_or_else(|| format!("unknown layout spec {layout_spec:?}"))?;
        c.expect(',')?;
        // Optional (absent in artifacts predating incremental migration);
        // absent means stop-the-world.
        let mark = c.pos;
        let migration_quantum = match c.ident() {
            Ok(name) if name == "migration_quantum" => {
                c.expect(':')?;
                let q = c.number()? as usize;
                c.expect(',')?;
                q
            }
            _ => {
                c.pos = mark;
                usize::MAX
            }
        };
        // Optional (absent in artifacts predating the unsized tier);
        // absent means the fixed tier.
        let mark = c.pos;
        let tier = match c.ident() {
            Ok(name) if name == "tier" => {
                c.expect(':')?;
                let tier_name = c.string()?;
                c.expect(',')?;
                Tier::from_name(&tier_name).ok_or_else(|| format!("unknown tier {tier_name:?}"))?
            }
            _ => {
                c.pos = mark;
                Tier::Fixed
            }
        };
        let mark = c.pos;
        let key_dist = match c.ident() {
            Ok(name) if name == "key_dist" => {
                c.expect(':')?;
                let dist_name = c.string()?;
                c.expect(',')?;
                LengthDist::parse(&dist_name)
                    .ok_or_else(|| format!("unknown key_dist {dist_name:?}"))?
            }
            _ => {
                c.pos = mark;
                LengthDist::Mixed
            }
        };
        // Optional (absent in artifacts predating fingerprint gating);
        // absent means no fingerprint lane.
        let mark = c.pos;
        let fingerprint = match c.ident() {
            Ok(name) if name == "fingerprint" => {
                c.expect(':')?;
                let bits = c.number()? as u8;
                c.expect(',')?;
                if !matches!(bits, 0 | 8 | 16) {
                    return Err(format!("bad fingerprint width {bits}"));
                }
                bits
            }
            _ => {
                c.pos = mark;
                0
            }
        };
        // Optional (absent in artifacts predating the miss shield);
        // absent means no filter.
        let mark = c.pos;
        let miss_filter = match c.ident() {
            Ok(name) if name == "miss_filter" => {
                c.expect(':')?;
                let b = c.boolean()?;
                c.expect(',')?;
                b
            }
            _ => {
                c.pos = mark;
                false
            }
        };
        // Optional (absent in artifacts predating the host-par backend, and
        // in any artifact that did not arm the differential); absent means
        // sim-only.
        let mark = c.pos;
        let host_par_threads = match c.ident() {
            Ok(name) if name == "host_par_threads" => {
                c.expect(':')?;
                let n = c.number()? as usize;
                c.expect(',')?;
                if n == 0 {
                    return Err("host_par_threads must be positive when present".to_string());
                }
                n
            }
            _ => {
                c.pos = mark;
                0
            }
        };
        c.field("violation")?;
        let violation = c.string()?;
        c.expect(',')?;
        c.field("ops")?;
        c.expect('[')?;
        let mut ops = Vec::new();
        loop {
            c.skip();
            if c.peek() == Some(']') {
                c.expect(']')?;
                break;
            }
            let kind = c.ident()?;
            c.expect('(')?;
            let op = match kind.as_str() {
                "Insert" => {
                    let k = c.number()? as u32;
                    c.expect(',')?;
                    let v = c.number()? as u32;
                    FuzzOp::Insert(k, v)
                }
                "Find" => FuzzOp::Find(c.number()? as u32),
                "Delete" => FuzzOp::Delete(c.number()? as u32),
                "Upsert" => {
                    let k = c.number()? as u32;
                    c.expect(',')?;
                    let v = c.number()? as u32;
                    c.expect(',')?;
                    let rule_name = c.string()?;
                    let rule = MergeRule::parse(&rule_name)
                        .ok_or_else(|| format!("unknown merge rule {rule_name:?}"))?;
                    FuzzOp::Upsert(k, v, rule)
                }
                "Increment" => FuzzOp::Increment(c.number()? as u32),
                other => return Err(format!("unknown op {other:?}")),
            };
            c.expect(')')?;
            c.expect(',')?;
            ops.push(op);
        }
        c.expect(',')?;
        c.expect(')')?;
        Ok(Repro {
            case: Case {
                target,
                policy,
                workload_seed,
                inject_lock_elision,
                layout,
                migration_quantum,
                tier,
                key_dist,
                fingerprint,
                miss_filter,
                host_par_threads,
                ops,
            },
            violation,
        })
    }
}

/// Minimal cursor over the repro text.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip(&mut self) {
        loop {
            while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
            if self.bytes[self.pos..].starts_with(b"//") {
                while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                return;
            }
        }
    }

    fn peek(&self) -> Option<char> {
        self.bytes.get(self.pos).map(|&b| b as char)
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        self.skip();
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {c:?} at byte {} (found {:?})",
                self.pos,
                self.peek()
            ))
        }
    }

    fn ident(&mut self) -> Result<String, String> {
        self.skip();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_')
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected identifier at byte {start}"));
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    fn field(&mut self, name: &str) -> Result<(), String> {
        let got = self.ident()?;
        if got != name {
            return Err(format!("expected field {name:?}, found {got:?}"));
        }
        self.expect(':')
    }

    fn number(&mut self) -> Result<u64, String> {
        self.skip();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected number at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .unwrap()
            .parse()
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }

    fn boolean(&mut self) -> Result<bool, String> {
        match self.ident()?.as_str() {
            "true" => Ok(true),
            "false" => Ok(false),
            other => Err(format!("expected bool, found {other:?}")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out: Vec<u8> = Vec::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return String::from_utf8(out).map_err(|e| format!("bad utf-8: {e}"));
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'\\') => out.push(b'\\'),
                        Some(b'"') => out.push(b'"'),
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    out.push(b);
                    self.pos += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_ops_is_deterministic_and_sized() {
        let a = gen_ops(7, 100);
        let b = gen_ops(7, 100);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        assert_ne!(a, gen_ops(8, 100));
        // All three op kinds appear in a non-trivial stream.
        assert!(a.iter().any(|o| matches!(o, FuzzOp::Insert(..))));
        assert!(a.iter().any(|o| matches!(o, FuzzOp::Find(_))));
        assert!(a.iter().any(|o| matches!(o, FuzzOp::Delete(_))));
    }

    #[test]
    fn insert_batches_never_contain_duplicate_keys() {
        for seed in 0..8 {
            for b in batches(&gen_ops(seed, 200)) {
                if let Batch::Insert(kvs) = b {
                    let mut keys: Vec<u32> = kvs.iter().map(|&(k, _)| k).collect();
                    keys.sort_unstable();
                    keys.dedup();
                    assert_eq!(keys.len(), kvs.len());
                }
            }
        }
    }

    #[test]
    fn oracle_passes_on_dycuckoo_fixed_order() {
        let case = Case {
            target: Target::DyCuckoo,
            policy: SchedulePolicy::FixedOrder,
            workload_seed: 1,
            inject_lock_elision: false,
            layout: LayoutConfig::default(),
            migration_quantum: usize::MAX,
            tier: Tier::Fixed,
            key_dist: LengthDist::Mixed,
            fingerprint: 0,
            miss_filter: false,
            host_par_threads: 0,
            ops: gen_ops(1, 96),
        };
        let a = run_case(&case).expect("no violation");
        let b = run_case(&case).expect("no violation");
        assert_eq!(a, b, "same case must produce the same digest");
    }

    /// A finite quantum keeps migrations in flight across batches on every
    /// target that supports them; the oracle must still pass, and the
    /// digest must stay deterministic.
    #[test]
    fn oracle_passes_mid_migration() {
        for target in [Target::DyCuckoo, Target::WideDyCuckoo, Target::KvService] {
            for quantum in [2usize, 16] {
                let case = Case {
                    target,
                    policy: SchedulePolicy::FixedOrder,
                    workload_seed: 5,
                    inject_lock_elision: false,
                    layout: LayoutConfig::default(),
                    migration_quantum: quantum,
                    tier: Tier::Fixed,
                    key_dist: LengthDist::Mixed,
                    fingerprint: 0,
                    miss_filter: false,
                    host_par_threads: 0,
                    ops: gen_ops(5, 160),
                };
                let a = run_case(&case)
                    .unwrap_or_else(|v| panic!("{} quantum={quantum}: {v}", target.name()));
                let b = run_case(&case).expect("second run");
                assert_eq!(a, b, "{} quantum={quantum}", target.name());
            }
        }
    }

    #[test]
    fn different_policies_change_the_digest_but_not_the_verdict() {
        let base = Case {
            target: Target::DyCuckoo,
            policy: SchedulePolicy::FixedOrder,
            workload_seed: 3,
            inject_lock_elision: false,
            layout: LayoutConfig::default(),
            migration_quantum: usize::MAX,
            tier: Tier::Fixed,
            key_dist: LengthDist::Mixed,
            fingerprint: 0,
            miss_filter: false,
            host_par_threads: 0,
            ops: gen_ops(3, 96),
        };
        let rev = Case {
            policy: SchedulePolicy::Reversed,
            ..base.clone()
        };
        let a = run_case(&base).expect("fixed order passes");
        let b = run_case(&rev).expect("reversed passes");
        // Not asserted unequal in general, but these workloads contend.
        let _ = (a, b);
    }

    #[test]
    fn ron_roundtrips() {
        let repro = Repro {
            case: Case {
                target: Target::WideDyCuckoo,
                policy: SchedulePolicy::Shuffled { seed: 42 },
                workload_seed: 9,
                inject_lock_elision: true,
                layout: LayoutConfig::default(),
                migration_quantum: 64,
                tier: Tier::Fixed,
                key_dist: LengthDist::Mixed,
                fingerprint: 0,
                miss_filter: false,
                host_par_threads: 0,
                ops: vec![FuzzOp::Insert(1, 2), FuzzOp::Find(1), FuzzOp::Delete(1)],
            },
            violation: "find(1) = None, reference says Some(2) — a \"lost\" key\\".to_string(),
        };
        let text = repro.to_ron();
        let back = Repro::from_ron(&text).expect("parse");
        assert_eq!(back, repro);
    }

    /// Artifacts written before the `migration_quantum` field existed still
    /// parse (the field defaults to stop-the-world).
    #[test]
    fn ron_accepts_legacy_artifacts_without_migration_quantum() {
        let repro = Repro {
            case: Case {
                target: Target::DyCuckoo,
                policy: SchedulePolicy::FixedOrder,
                workload_seed: 2,
                inject_lock_elision: false,
                layout: LayoutConfig::default(),
                migration_quantum: usize::MAX,
                tier: Tier::Fixed,
                key_dist: LengthDist::Mixed,
                fingerprint: 0,
                miss_filter: false,
                host_par_threads: 0,
                ops: vec![FuzzOp::Insert(3, 4)],
            },
            violation: "x".to_string(),
        };
        let text: String = repro
            .to_ron()
            .lines()
            .filter(|l| !l.contains("migration_quantum"))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(!text.contains("migration_quantum"));
        let back = Repro::from_ron(&text).expect("legacy artifact must parse");
        assert_eq!(back, repro);
    }

    #[test]
    fn ron_rejects_garbage() {
        assert!(Repro::from_ron("(target: 3)").is_err());
        assert!(Repro::from_ron("").is_err());
        let good = Repro {
            case: Case {
                target: Target::DyCuckoo,
                policy: SchedulePolicy::FixedOrder,
                workload_seed: 0,
                inject_lock_elision: false,
                layout: LayoutConfig::default(),
                migration_quantum: usize::MAX,
                tier: Tier::Fixed,
                key_dist: LengthDist::Mixed,
                fingerprint: 0,
                miss_filter: false,
                host_par_threads: 0,
                ops: vec![],
            },
            violation: String::new(),
        };
        let bad = good.to_ron().replace("\"dycuckoo\"", "\"nope\"");
        assert!(Repro::from_ron(&bad).is_err());
    }

    #[test]
    fn target_names_roundtrip() {
        for t in Target::ALL {
            assert_eq!(Target::from_name(t.name()), Some(t));
        }
        assert_eq!(Target::from_name("bogus"), None);
    }

    fn unsized_case(dist: LengthDist, quantum: usize, n: usize) -> Case {
        Case {
            target: Target::DyCuckoo,
            policy: SchedulePolicy::FixedOrder,
            workload_seed: 11,
            inject_lock_elision: false,
            layout: LayoutConfig::default(),
            migration_quantum: quantum,
            tier: Tier::Unsized,
            key_dist: dist,
            fingerprint: 0,
            miss_filter: false,
            host_par_threads: 0,
            ops: gen_ops(11, n),
        }
    }

    /// The byte-KV oracle passes under every stock length distribution and
    /// produces a stable digest.
    #[test]
    fn unsized_oracle_passes_on_every_stock_distribution() {
        for dist in LengthDist::STOCK {
            let case = unsized_case(dist, usize::MAX, 128);
            let a = run_case(&case).unwrap_or_else(|v| panic!("{}: {v}", dist.name()));
            let b = run_case(&case).expect("second run");
            assert_eq!(a, b, "{}", dist.name());
        }
    }

    /// A finite quantum keeps an arena-backed drain in flight across
    /// batches; every lookup is still byte-exact mid-migration.
    #[test]
    fn unsized_oracle_passes_mid_migration() {
        for quantum in [1usize, 4] {
            let case = unsized_case(LengthDist::Mixed, quantum, 192);
            let a = run_case(&case).unwrap_or_else(|v| panic!("quantum={quantum}: {v}"));
            let b = run_case(&case).expect("second run");
            assert_eq!(a, b, "quantum={quantum}");
        }
    }

    /// Widened keys must stay injective: the oracle's reference map keys on
    /// exact bytes, so a collision would silently weaken every check.
    #[test]
    fn byte_widening_is_injective_and_distribution_shaped() {
        let case = unsized_case(LengthDist::Mixed, usize::MAX, 0);
        let mut seen = HashSet::new();
        for k in 1..=4096u32 {
            assert!(seen.insert(byte_key(&case, k)), "key {k} collided");
        }
        assert!(seen.iter().any(|k| k.len() <= 12), "no inline keys");
        assert!(seen.iter().any(|k| k.len() > 12), "no spilled keys");
        let vals: HashSet<usize> = (1..=512u32).map(|v| byte_val(&case, v).len()).collect();
        assert!(vals.iter().any(|&l| l <= 7), "no inline values");
        assert!(vals.iter().any(|&l| l > 7), "no spilled values");
    }

    #[test]
    fn ron_roundtrips_unsized_tier() {
        let repro = Repro {
            case: Case {
                target: Target::DyCuckoo,
                policy: SchedulePolicy::Reversed,
                workload_seed: 17,
                inject_lock_elision: false,
                layout: LayoutConfig::default(),
                migration_quantum: 8,
                tier: Tier::Unsized,
                key_dist: LengthDist::AllSpill,
                fingerprint: 0,
                miss_filter: false,
                host_par_threads: 0,
                ops: vec![FuzzOp::Insert(9, 9), FuzzOp::Delete(9)],
            },
            violation: "arena leak".to_string(),
        };
        let text = repro.to_ron();
        assert!(text.contains("tier: \"unsized\""));
        assert!(text.contains("key_dist: \"all_spill\""));
        let back = Repro::from_ron(&text).expect("parse");
        assert_eq!(back, repro);
    }

    /// Artifacts written before the unsized tier existed still parse (the
    /// tier defaults to fixed, the distribution to mixed).
    #[test]
    fn ron_accepts_legacy_artifacts_without_tier_fields() {
        let repro = Repro {
            case: Case {
                target: Target::KvService,
                policy: SchedulePolicy::FixedOrder,
                workload_seed: 6,
                inject_lock_elision: false,
                layout: LayoutConfig::default(),
                migration_quantum: 32,
                tier: Tier::Fixed,
                key_dist: LengthDist::Mixed,
                fingerprint: 0,
                miss_filter: false,
                host_par_threads: 0,
                ops: vec![FuzzOp::Find(7)],
            },
            violation: "y".to_string(),
        };
        let text: String = repro
            .to_ron()
            .lines()
            .filter(|l| !l.contains("tier:") && !l.contains("key_dist:"))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(!text.contains("tier"));
        let back = Repro::from_ron(&text).expect("legacy artifact must parse");
        assert_eq!(back, repro);
    }

    #[test]
    fn ron_roundtrips_fingerprint_and_miss_filter() {
        let repro = Repro {
            case: Case {
                target: Target::KvService,
                policy: SchedulePolicy::Shuffled { seed: 3 },
                workload_seed: 21,
                inject_lock_elision: false,
                layout: LayoutConfig::parse("aos32", 4, 4).unwrap(),
                migration_quantum: usize::MAX,
                tier: Tier::Fixed,
                key_dist: LengthDist::Mixed,
                fingerprint: 16,
                miss_filter: true,
                host_par_threads: 0,
                ops: vec![FuzzOp::Insert(5, 6), FuzzOp::Find(5), FuzzOp::Find(99)],
            },
            violation: "shed get answered Some".to_string(),
        };
        let text = repro.to_ron();
        assert!(text.contains("fingerprint: 16"));
        assert!(text.contains("miss_filter: true"));
        let back = Repro::from_ron(&text).expect("parse");
        assert_eq!(back, repro);
    }

    /// Artifacts written before the fingerprint lane and the miss shield
    /// existed still parse: the width defaults to 0 and the shield to off,
    /// recovering the historical case shape exactly.
    #[test]
    fn ron_accepts_legacy_artifacts_without_fingerprint_fields() {
        let repro = Repro {
            case: Case {
                target: Target::DyCuckoo,
                policy: SchedulePolicy::FixedOrder,
                workload_seed: 4,
                inject_lock_elision: false,
                layout: LayoutConfig::default(),
                migration_quantum: usize::MAX,
                tier: Tier::Fixed,
                key_dist: LengthDist::Mixed,
                fingerprint: 0,
                miss_filter: false,
                host_par_threads: 0,
                ops: vec![FuzzOp::Insert(1, 1)],
            },
            violation: "z".to_string(),
        };
        let text: String = repro
            .to_ron()
            .lines()
            .filter(|l| !l.contains("fingerprint:") && !l.contains("miss_filter:"))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(!text.contains("fingerprint"));
        let back = Repro::from_ron(&text).expect("legacy artifact must parse");
        assert_eq!(back, repro);
    }

    #[test]
    fn ron_rejects_bad_fingerprint_width() {
        let good = Repro {
            case: Case {
                target: Target::DyCuckoo,
                policy: SchedulePolicy::FixedOrder,
                workload_seed: 0,
                inject_lock_elision: false,
                layout: LayoutConfig::default(),
                migration_quantum: usize::MAX,
                tier: Tier::Fixed,
                key_dist: LengthDist::Mixed,
                fingerprint: 8,
                miss_filter: false,
                host_par_threads: 0,
                ops: vec![],
            },
            violation: String::new(),
        };
        let bad = good.to_ron().replace("fingerprint: 8", "fingerprint: 7");
        assert!(Repro::from_ron(&bad).is_err());
    }

    /// A fingerprint gate charges memory lines, never lookups or rounds —
    /// so a gated run must not only pass the oracle on every gated tier
    /// but produce the *same digest* as the bare run, case for case.
    #[test]
    fn fingerprint_gate_leaves_every_digest_unchanged() {
        for (target, tier) in [
            (Target::DyCuckoo, Tier::Fixed),
            (Target::WideDyCuckoo, Tier::Fixed),
            (Target::KvService, Tier::Fixed),
            (Target::DyCuckoo, Tier::Unsized),
        ] {
            for quantum in [usize::MAX, 8] {
                let base = Case {
                    target,
                    policy: SchedulePolicy::Shuffled { seed: 13 },
                    workload_seed: 13,
                    inject_lock_elision: false,
                    layout: LayoutConfig::parse("aos32", 4, 4).unwrap(),
                    migration_quantum: quantum,
                    tier,
                    key_dist: LengthDist::Mixed,
                    fingerprint: 0,
                    miss_filter: false,
                    host_par_threads: 0,
                    ops: gen_ops(13, 160),
                };
                let bare = run_case(&base)
                    .unwrap_or_else(|v| panic!("{} bare q={quantum}: {v}", target.name()));
                for fp in [8u8, 16] {
                    let gated = Case {
                        fingerprint: fp,
                        ..base.clone()
                    };
                    let d = run_case(&gated)
                        .unwrap_or_else(|v| panic!("{} fp{fp} q={quantum}: {v}", target.name()));
                    assert_eq!(
                        d,
                        bare,
                        "{} fp{fp} q={quantum}: gate changed the digest",
                        target.name()
                    );
                }
            }
        }
    }

    /// The miss shield sheds provably-absent gets at submission time; the
    /// service oracle must stay reference-exact under every policy it
    /// sweeps, with and without in-flight migration.
    #[test]
    fn service_oracle_passes_with_miss_filter() {
        for seed in [0u64, 7, 19] {
            for quantum in [usize::MAX, 8] {
                let case = Case {
                    target: Target::KvService,
                    policy: SchedulePolicy::from_seed(seed),
                    workload_seed: seed,
                    inject_lock_elision: false,
                    layout: LayoutConfig::default(),
                    migration_quantum: quantum,
                    tier: Tier::Fixed,
                    key_dist: LengthDist::Mixed,
                    fingerprint: 0,
                    miss_filter: true,
                    host_par_threads: 0,
                    ops: gen_ops(seed, 160),
                };
                let a = run_case(&case).unwrap_or_else(|v| panic!("seed={seed} q={quantum}: {v}"));
                let b = run_case(&case).expect("second run");
                assert_eq!(a, b, "seed={seed} q={quantum}: digest unstable");
            }
        }
    }

    /// The host-par differential passes on the table and service targets
    /// at 1, 2 and 8 threads — and, because the returned digest is always
    /// the sim execution's, arming it must leave every digest untouched.
    #[test]
    fn host_par_diff_passes_and_leaves_the_digest_unchanged() {
        for target in [Target::DyCuckoo, Target::KvService] {
            for seed in [0u64, 9] {
                let base = Case {
                    target,
                    policy: SchedulePolicy::from_seed(seed),
                    workload_seed: seed,
                    inject_lock_elision: false,
                    layout: LayoutConfig::default(),
                    migration_quantum: usize::MAX,
                    tier: Tier::Fixed,
                    key_dist: LengthDist::Mixed,
                    fingerprint: 0,
                    miss_filter: false,
                    host_par_threads: 0,
                    ops: gen_ops(seed, 160),
                };
                let bare = run_case(&base)
                    .unwrap_or_else(|v| panic!("{} seed={seed} bare: {v}", target.name()));
                for threads in [1usize, 2, 8] {
                    let par = Case {
                        host_par_threads: threads,
                        ..base.clone()
                    };
                    let d = run_case(&par).unwrap_or_else(|v| {
                        panic!("{} seed={seed} threads={threads}: {v}", target.name())
                    });
                    assert_eq!(
                        d,
                        bare,
                        "{} seed={seed} threads={threads}: differential moved the digest",
                        target.name()
                    );
                }
            }
        }
    }

    /// The differential also holds mid-migration and with the miss shield
    /// armed on the service target — the threaded backend must track the
    /// sim through incremental drains and shed gets alike.
    #[test]
    fn host_par_diff_passes_mid_migration_and_with_miss_filter() {
        let case = Case {
            target: Target::KvService,
            policy: SchedulePolicy::Shuffled { seed: 23 },
            workload_seed: 23,
            inject_lock_elision: false,
            layout: LayoutConfig::default(),
            migration_quantum: 8,
            tier: Tier::Fixed,
            key_dist: LengthDist::Mixed,
            fingerprint: 0,
            miss_filter: true,
            host_par_threads: 4,
            ops: gen_ops(23, 160),
        };
        let a = run_case(&case).unwrap_or_else(|v| panic!("{v}"));
        let b = run_case(&case).expect("second run");
        assert_eq!(a, b, "digest unstable");
    }

    #[test]
    fn ron_roundtrips_host_par_threads() {
        let repro = Repro {
            case: Case {
                target: Target::KvService,
                policy: SchedulePolicy::FixedOrder,
                workload_seed: 31,
                inject_lock_elision: false,
                layout: LayoutConfig::default(),
                migration_quantum: usize::MAX,
                tier: Tier::Fixed,
                key_dist: LengthDist::Mixed,
                fingerprint: 0,
                miss_filter: false,
                host_par_threads: 8,
                ops: vec![FuzzOp::Insert(2, 3), FuzzOp::Find(2)],
            },
            violation: "host-par digest diverged".to_string(),
        };
        let text = repro.to_ron();
        assert!(text.contains("host_par_threads: 8"));
        let back = Repro::from_ron(&text).expect("parse");
        assert_eq!(back, repro);
        // A sim-only case emits no field at all, keeping the historical
        // artifact shape byte-identical.
        let sim_only = Repro {
            case: Case {
                host_par_threads: 0,
                ..repro.case.clone()
            },
            violation: String::new(),
        };
        assert!(!sim_only.to_ron().contains("host_par_threads"));
        let back = Repro::from_ron(&sim_only.to_ron()).expect("parse sim-only");
        assert_eq!(back, sim_only);
    }

    #[test]
    fn gen_ops_rmw_is_deterministic_and_emits_every_verb() {
        let a = gen_ops_rmw(7, 300);
        assert_eq!(a, gen_ops_rmw(7, 300));
        assert_eq!(a.len(), 300);
        assert!(a.iter().any(|o| matches!(o, FuzzOp::Insert(..))));
        assert!(a.iter().any(|o| matches!(o, FuzzOp::Find(_))));
        assert!(a.iter().any(|o| matches!(o, FuzzOp::Delete(_))));
        assert!(a.iter().any(|o| matches!(o, FuzzOp::Upsert(..))));
        assert!(a.iter().any(|o| matches!(o, FuzzOp::Increment(_))));
        // Duplicate keys inside one upsert batch must survive batching —
        // they are what exercises the engines' pre-coalescing.
        let mut saw_dup = false;
        for seed in 0..8 {
            for b in batches(&gen_ops_rmw(seed, 300)) {
                if let Batch::Upsert(kvs, _) = b {
                    let mut keys: Vec<u32> = kvs.iter().map(|&(k, _)| k).collect();
                    keys.sort_unstable();
                    let n = keys.len();
                    keys.dedup();
                    saw_dup |= keys.len() < n;
                }
            }
        }
        assert!(saw_dup, "no upsert batch ever held a duplicate key");
    }

    /// Eight concrete schedule policies — every variant, two parameter
    /// draws for the seeded ones. The RMW oracle must be reference-exact
    /// and digest-stable under each, on the core table and the service.
    #[test]
    fn rmw_oracle_passes_under_every_policy() {
        let policies = [
            SchedulePolicy::FixedOrder,
            SchedulePolicy::Reversed,
            SchedulePolicy::Rotating { stride: 1 },
            SchedulePolicy::Rotating { stride: 3 },
            SchedulePolicy::Shuffled { seed: 7 },
            SchedulePolicy::Shuffled { seed: 29 },
            SchedulePolicy::ContendedFirst { seed: 5 },
            SchedulePolicy::ContendedFirst { seed: 31 },
        ];
        for target in [Target::DyCuckoo, Target::KvService] {
            for policy in policies {
                let case = Case {
                    target,
                    policy,
                    workload_seed: 41,
                    inject_lock_elision: false,
                    layout: LayoutConfig::default(),
                    migration_quantum: usize::MAX,
                    tier: Tier::Fixed,
                    key_dist: LengthDist::Mixed,
                    fingerprint: 0,
                    miss_filter: false,
                    host_par_threads: 0,
                    ops: gen_ops_rmw(41, 200),
                };
                let a =
                    run_case(&case).unwrap_or_else(|v| panic!("{} {policy:?}: {v}", target.name()));
                let b = run_case(&case).expect("second run");
                assert_eq!(a, b, "{} {policy:?}: digest unstable", target.name());
            }
        }
    }

    /// RMW ops stay reference-exact while an incremental migration is in
    /// flight, on every tier that migrates: merge state must never be
    /// duplicated or dropped across the old/new table routing.
    #[test]
    fn rmw_oracle_passes_mid_migration_on_every_tier() {
        for (target, tier) in [
            (Target::DyCuckoo, Tier::Fixed),
            (Target::WideDyCuckoo, Tier::Fixed),
            (Target::KvService, Tier::Fixed),
            (Target::DyCuckoo, Tier::Unsized),
        ] {
            for quantum in [2usize, 8] {
                let case = Case {
                    target,
                    policy: SchedulePolicy::Shuffled { seed: 43 },
                    workload_seed: 43,
                    inject_lock_elision: false,
                    layout: LayoutConfig::default(),
                    migration_quantum: quantum,
                    tier,
                    key_dist: LengthDist::Mixed,
                    fingerprint: 0,
                    miss_filter: false,
                    host_par_threads: 0,
                    ops: gen_ops_rmw(43, 200),
                };
                let a = run_case(&case)
                    .unwrap_or_else(|v| panic!("{} {:?} q={quantum}: {v}", target.name(), tier));
                let b = run_case(&case).expect("second run");
                assert_eq!(a, b, "{} {tier:?} q={quantum}", target.name());
            }
        }
    }

    /// The host-par differential holds for RMW workloads at 1, 2 and 8
    /// threads on both the raw table and the service — the stripe-lock
    /// merge path must produce the same final logical map as the sim.
    #[test]
    fn rmw_host_par_diff_passes_at_every_thread_count() {
        for target in [Target::DyCuckoo, Target::KvService] {
            for threads in [1usize, 2, 8] {
                let case = Case {
                    target,
                    policy: SchedulePolicy::ContendedFirst { seed: 47 },
                    workload_seed: 47,
                    inject_lock_elision: false,
                    layout: LayoutConfig::default(),
                    migration_quantum: usize::MAX,
                    tier: Tier::Fixed,
                    key_dist: LengthDist::Mixed,
                    fingerprint: 0,
                    miss_filter: false,
                    host_par_threads: threads,
                    ops: gen_ops_rmw(47, 200),
                };
                run_case(&case)
                    .unwrap_or_else(|v| panic!("{} threads={threads}: {v}", target.name()));
            }
        }
    }

    /// The unsized-tier RMW oracle passes on every stock key-length
    /// distribution (inline and spilled values both hit the byte-merge
    /// path in the found-arm).
    #[test]
    fn rmw_unsized_oracle_passes_on_every_stock_distribution() {
        for dist in LengthDist::STOCK {
            let case = Case {
                ops: gen_ops_rmw(11, 160),
                ..unsized_case(dist, usize::MAX, 0)
            };
            let a = run_case(&case).unwrap_or_else(|v| panic!("{}: {v}", dist.name()));
            let b = run_case(&case).expect("second run");
            assert_eq!(a, b, "{}", dist.name());
        }
    }

    #[test]
    fn ron_roundtrips_rmw_ops() {
        let repro = Repro {
            case: Case {
                target: Target::DyCuckoo,
                policy: SchedulePolicy::FixedOrder,
                workload_seed: 51,
                inject_lock_elision: false,
                layout: LayoutConfig::default(),
                migration_quantum: usize::MAX,
                tier: Tier::Fixed,
                key_dist: LengthDist::Mixed,
                fingerprint: 0,
                miss_filter: false,
                host_par_threads: 0,
                ops: vec![
                    FuzzOp::Upsert(3, 9, MergeRule::Add),
                    FuzzOp::Upsert(3, 1, MergeRule::LastWrite),
                    FuzzOp::Increment(3),
                    FuzzOp::Find(3),
                ],
            },
            violation: "merge applied twice".to_string(),
        };
        let text = repro.to_ron();
        assert!(text.contains("Upsert(3, 9, \"add\")"));
        assert!(text.contains("Increment(3)"));
        let back = Repro::from_ron(&text).expect("parse");
        assert_eq!(back, repro);
        let bad = text.replace("\"add\"", "\"bogus\"");
        assert!(Repro::from_ron(&bad).is_err());
    }
}
