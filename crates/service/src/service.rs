//! The service proper: N sharded [`dycuckoo::DyCuckoo`] instances behind a
//! router, per-shard batching queues, and a simulated-clock tick loop.
//!
//! The lifecycle of a request:
//!
//! 1. [`KvService::submit`] routes the key to a shard and runs admission
//!    control against that shard's queue. Refusals return a typed
//!    [`AdmitError`]; admitted requests enter the shard's FIFO.
//! 2. [`KvService::tick`] advances the simulated clock one step. Each shard
//!    flushes while its queue holds a full batch (`max_batch`), or when its
//!    oldest request has waited `max_delay_ticks` — size-or-deadline
//!    batching on the deterministic clock.
//! 3. A flush compiles its window with [`crate::batcher::plan_flush`],
//!    runs at most one find / one insert / one delete kernel against the
//!    shard's table, and emits [`Completion`]s in submission order.
//! 4. [`KvService::drain_completions`] hands finished requests back.
//!
//! Kernel time is charged per flush in an **isolated metrics window** (the
//! roofline cost model is non-linear, so per-flush ns must be computed on
//! per-flush counters and then summed), after which the window is merged
//! back into the caller's running totals.

use std::collections::VecDeque;

use dycuckoo::hashfn::splitmix64;
use dycuckoo::{Config, DyCuckoo};
use gpu_sim::{CostModel, SchedulePolicy, SimContext};

use crate::admission::{AdmissionPolicy, AdmitError};
use crate::batcher::{plan_flush, PlannedReply};
use crate::metrics::{ServiceMetrics, Snapshot, SnapshotRow};
use crate::request::{Completion, Op, Pending, Reply};
use crate::router::ShardRouter;

/// Configuration of a [`KvService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of shards (power of two). Each owns one DyCuckoo instance.
    pub shards: usize,
    /// Per-shard table configuration. Each shard derives its own hash seed
    /// from `table.seed` and its shard index, so shards never share hash
    /// parameters with each other or with the router.
    pub table: Config,
    /// Flush a shard as soon as its queue reaches this many requests.
    pub max_batch: usize,
    /// Flush a shard once its oldest request has waited this many ticks.
    pub max_delay_ticks: u64,
    /// Hard bound on queued requests per shard.
    pub queue_capacity: usize,
    /// Queue depth above which reads are shed.
    pub shed_watermark: usize,
    /// Router seed (independent of the table seeds).
    pub seed: u64,
    /// Source buckets a structural resize may drain per migration quantum
    /// (overrides the embedded table config's `migration_quantum` for
    /// every shard). `usize::MAX` — the default — keeps the historical
    /// stop-the-world resizes; a finite value turns each resize into an
    /// incremental migration pumped once per flush and once per tick, so
    /// no flush window stalls on a whole-subtable rehash.
    pub migration_quantum: usize,
    /// Order in which shards are visited on each tick / drain pass.
    /// Shards are fully independent (disjoint tables, disjoint queues), so
    /// any order must produce identical replies — the exploration harness
    /// sweeps non-fixed orders to prove exactly that. Benchmarks keep the
    /// default fixed order.
    pub flush_order: SchedulePolicy,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            table: Config::default(),
            max_batch: 256,
            max_delay_ticks: 4,
            queue_capacity: 1024,
            shed_watermark: 768,
            seed: 0x5E1C_E000,
            migration_quantum: usize::MAX,
            flush_order: SchedulePolicy::FixedOrder,
        }
    }
}

impl ServiceConfig {
    /// Validate the composite configuration.
    pub fn validate(&self) -> Result<(), ServiceError> {
        self.table.validate().map_err(ServiceError::Table)?;
        if self.max_batch == 0 {
            return Err(ServiceError::InvalidConfig(
                "max_batch must be positive".to_string(),
            ));
        }
        if self.max_batch > self.queue_capacity {
            return Err(ServiceError::InvalidConfig(format!(
                "max_batch ({}) cannot exceed queue_capacity ({})",
                self.max_batch, self.queue_capacity
            )));
        }
        self.admission()
            .validate()
            .map_err(ServiceError::InvalidConfig)?;
        // Shard-count validation happens in ShardRouter::new.
        ShardRouter::new(self.shards, self.seed).map_err(ServiceError::InvalidConfig)?;
        Ok(())
    }

    fn admission(&self) -> AdmissionPolicy {
        AdmissionPolicy {
            queue_capacity: self.queue_capacity,
            shed_watermark: self.shed_watermark,
        }
    }
}

/// Service-level failures (admission refusals are [`AdmitError`] instead).
#[derive(Debug)]
pub enum ServiceError {
    /// The configuration cannot work.
    InvalidConfig(String),
    /// An underlying table operation failed.
    Table(dycuckoo::Error),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::InvalidConfig(msg) => write!(f, "invalid service config: {msg}"),
            ServiceError::Table(e) => write!(f, "table error: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<dycuckoo::Error> for ServiceError {
    fn from(e: dycuckoo::Error) -> Self {
        ServiceError::Table(e)
    }
}

/// One shard: an independent table plus its request queue.
struct Shard {
    table: DyCuckoo,
    queue: VecDeque<Pending>,
}

/// A sharded, batching KV service over DyCuckoo tables.
pub struct KvService {
    cfg: ServiceConfig,
    router: ShardRouter,
    admission: AdmissionPolicy,
    shards: Vec<Shard>,
    completions: VecDeque<Completion>,
    metrics: ServiceMetrics,
    clock: u64,
    next_id: u64,
}

impl KvService {
    /// Build the service: one DyCuckoo instance per shard, each with a
    /// distinct hash seed derived from the table seed and shard index.
    pub fn new(cfg: ServiceConfig, sim: &mut SimContext) -> Result<Self, ServiceError> {
        cfg.validate()?;
        let router = ShardRouter::new(cfg.shards, cfg.seed).map_err(ServiceError::InvalidConfig)?;
        let mut shards = Vec::with_capacity(cfg.shards);
        for i in 0..cfg.shards {
            let table_cfg = Config {
                seed: splitmix64(cfg.table.seed.wrapping_add(i as u64)),
                migration_quantum: cfg.migration_quantum,
                ..cfg.table
            };
            shards.push(Shard {
                table: DyCuckoo::new(table_cfg, sim)?,
                queue: VecDeque::new(),
            });
        }
        let metrics = ServiceMetrics::new(cfg.shards);
        let admission = cfg.admission();
        Ok(Self {
            cfg,
            router,
            admission,
            shards,
            completions: VecDeque::new(),
            metrics,
            clock: 0,
            next_id: 0,
        })
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// The key router (exposed so tests and load generators can place keys).
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Current simulated tick.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Submit one operation on behalf of `client`. Returns the request id,
    /// or a typed admission refusal (the queue is never grown past its
    /// bound). Refusals are counted per shard.
    pub fn submit(&mut self, client: u32, op: Op) -> Result<u64, AdmitError> {
        let shard = self.router.shard_of(op.key());
        let m = &mut self.metrics.per_shard[shard];
        m.submitted += 1;
        let depth = self.shards[shard].queue.len();
        match self.admission.admit(shard, depth, &op) {
            Ok(()) => {}
            Err(e) => {
                match e {
                    AdmitError::Overloaded { .. } => m.shed_overloaded += 1,
                    AdmitError::Shed { .. } => m.shed_reads += 1,
                    AdmitError::ZeroKey => {}
                }
                if obs::is_enabled() && !matches!(e, AdmitError::ZeroKey) {
                    obs::emit(obs::Event::Shed {
                        shard: shard as u32,
                        depth: depth as u32,
                        hard: matches!(e, AdmitError::Overloaded { .. }),
                    });
                }
                return Err(e);
            }
        }
        let id = self.next_id;
        self.next_id += 1;
        self.shards[shard].queue.push_back(Pending {
            id,
            client,
            op,
            submitted_tick: self.clock,
        });
        m.admitted += 1;
        m.max_queue_depth = m.max_queue_depth.max(depth + 1);
        Ok(id)
    }

    /// Backpressure signal in `[0, 1]` for the shard owning `key`.
    pub fn pressure_for(&self, key: u32) -> f64 {
        let shard = self.router.shard_of(key);
        self.admission.pressure(self.shards[shard].queue.len())
    }

    /// Current queue depth of every shard.
    pub fn queue_depths(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.queue.len()).collect()
    }

    /// Advance the simulated clock one tick, flushing **at most one batch
    /// per shard**: a shard flushes when its queue holds a full batch or
    /// its oldest request hit the deadline. One-batch-per-tick is the
    /// service's capacity model — sustained offered load beyond
    /// `shards × max_batch` requests per tick builds queues until
    /// admission control sheds, instead of being absorbed instantly.
    /// Returns the number of requests completed this tick.
    pub fn tick(&mut self, sim: &mut SimContext) -> Result<usize, ServiceError> {
        self.clock += 1;
        obs::set_clock(self.clock);
        let mut completed = 0;
        for shard in self.shard_visit_order() {
            let queue = &self.shards[shard].queue;
            let by_size = queue.len() >= self.cfg.max_batch;
            let by_deadline = queue
                .front()
                .is_some_and(|p| self.clock - p.submitted_tick >= self.cfg.max_delay_ticks);
            if !by_size && !by_deadline {
                continue;
            }
            self.metrics.per_shard[shard].batches += 1;
            if by_size {
                self.metrics.per_shard[shard].flush_by_size += 1;
            } else {
                self.metrics.per_shard[shard].flush_by_deadline += 1;
            }
            completed += self.flush(shard, sim)?;
        }
        self.pump_migrations(sim)?;
        Ok(completed)
    }

    /// Pump one migration quantum on every shard with a resize in flight,
    /// so backlogs drain even on shards whose queues have gone idle. Each
    /// pump is charged on an isolated metrics window like a flush. A no-op
    /// in stop-the-world mode (nothing is ever left in flight).
    fn pump_migrations(&mut self, sim: &mut SimContext) -> Result<(), ServiceError> {
        for shard in 0..self.shards.len() {
            if !self.shards[shard].table.migration_in_flight() {
                continue;
            }
            let saved = sim.take_metrics();
            let mut report = dycuckoo::BatchReport::default();
            let outcome = self.shards[shard].table.migrate_quantum(sim, &mut report);
            let window_metrics = sim.take_metrics();
            let pump_ns = CostModel::new(sim.device.config()).kernel_time_ns(&window_metrics);
            sim.metrics = saved;
            sim.metrics.merge(&window_metrics);
            outcome?;
            let backlog = self.shards[shard].table.migration_backlog();
            let m = &mut self.metrics.per_shard[shard];
            m.service_ns += pump_ns;
            m.migration_chunks += 1;
            m.migration_moved += report.migrated_kvs;
            m.migration_backlog = backlog;
            m.resize_events += report.resizes.len() as u64;
        }
        Ok(())
    }

    /// Flush every shard's remaining queue regardless of size or deadline
    /// (end-of-run drain). Advances the clock one tick.
    pub fn flush_all(&mut self, sim: &mut SimContext) -> Result<usize, ServiceError> {
        self.clock += 1;
        obs::set_clock(self.clock);
        let mut completed = 0;
        for shard in self.shard_visit_order() {
            while !self.shards[shard].queue.is_empty() {
                self.metrics.per_shard[shard].batches += 1;
                self.metrics.per_shard[shard].flush_by_deadline += 1;
                completed += self.flush(shard, sim)?;
            }
        }
        Ok(completed)
    }

    /// The shard visitation order for this tick, per the configured
    /// [`ServiceConfig::flush_order`] (salted with the clock so successive
    /// ticks explore different permutations).
    fn shard_visit_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.shards.len()).collect();
        self.cfg
            .flush_order
            .order_round(self.clock, &mut order, &[]);
        order
    }

    /// Execute one flush window for `shard`. Charges kernel time on an
    /// isolated metrics window (restored even on error paths).
    fn flush(&mut self, shard: usize, sim: &mut SimContext) -> Result<usize, ServiceError> {
        let window_len = self.shards[shard].queue.len().min(self.cfg.max_batch);
        let window: Vec<Pending> = self.shards[shard].queue.drain(..window_len).collect();
        let plan = plan_flush(&window);
        let recording = obs::is_enabled();
        if recording {
            obs::span_begin(obs::Event::BatchFlush {
                shard: shard as u32,
                window: window.len() as u32,
                probes: plan.probes.len() as u32,
                puts: plan.puts.len() as u32,
                deletes: plan.deletes.len() as u32,
                coalesced: (plan.coalesced_local + plan.dedup_saved + plan.writes_coalesced) as u32,
            });
        }

        // Isolated measurement window: the roofline is non-linear, so this
        // flush's ns must be computed on its own counters.
        type FlushKernels = (
            Vec<Option<u32>>,
            Option<dycuckoo::BatchReport>,
            Option<dycuckoo::BatchReport>,
        );
        let saved = sim.take_metrics();
        let run = |table: &mut DyCuckoo, sim: &mut SimContext| -> dycuckoo::Result<FlushKernels> {
            let found = if plan.probes.is_empty() {
                Vec::new()
            } else {
                table.find_batch(sim, &plan.probes)
            };
            let ins = if plan.puts.is_empty() {
                None
            } else {
                Some(table.insert_batch(sim, &plan.puts)?)
            };
            let del = if plan.deletes.is_empty() {
                None
            } else {
                Some(table.delete_batch(sim, &plan.deletes)?)
            };
            Ok((found, ins, del))
        };
        let outcome = run(&mut self.shards[shard].table, sim);
        let window_metrics = sim.take_metrics();
        let flush_ns = CostModel::new(sim.device.config()).kernel_time_ns(&window_metrics);
        sim.metrics = saved;
        sim.metrics.merge(&window_metrics);
        if recording {
            // Close before the `?` so the span balances on kernel errors.
            obs::span_end(obs::Event::BatchEnd {
                completed: if outcome.is_ok() {
                    window.len() as u32
                } else {
                    0
                },
            });
        }
        let (found, ins, del) = outcome?;

        let m = &mut self.metrics.per_shard[shard];
        m.batched_requests += window.len() as u64;
        m.table_probes += plan.probes.len() as u64;
        m.table_puts += plan.puts.len() as u64;
        m.table_deletes += plan.deletes.len() as u64;
        m.coalesced_local += plan.coalesced_local;
        m.dedup_saved += plan.dedup_saved;
        m.writes_coalesced += plan.writes_coalesced;
        m.service_ns += flush_ns;
        for report in [&ins, &del].into_iter().flatten() {
            m.resize_events += report.resizes.len() as u64;
            m.insert_retries += report.retries as u64;
            if report.resize_stall() {
                m.resize_stall_batches += 1;
            }
            m.migration_moved += report.migrated_kvs;
            if report.migrated_buckets > 0 {
                m.migration_chunks += 1;
            }
        }
        m.migration_backlog = self.shards[shard].table.migration_backlog();

        let completed_tick = self.clock;
        for (req, planned) in window.iter().zip(&plan.replies) {
            let (reply, coalesced) = match *planned {
                PlannedReply::FromTable(idx) => (Reply::Value(found[idx]), false),
                PlannedReply::Local(v) => (Reply::Value(v), true),
                PlannedReply::Stored => (Reply::Stored, false),
                PlannedReply::Deleted => (Reply::Deleted, false),
            };
            m.completed += 1;
            m.latency.record(completed_tick - req.submitted_tick);
            self.completions.push_back(Completion {
                id: req.id,
                client: req.client,
                key: req.op.key(),
                reply,
                submitted_tick: req.submitted_tick,
                completed_tick,
                coalesced,
            });
        }
        Ok(window.len())
    }

    /// Take every completion produced so far, in completion order
    /// (per shard: submission order).
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        self.completions.drain(..).collect()
    }

    /// Total live keys across all shards.
    pub fn total_keys(&self) -> u64 {
        self.shards.iter().map(|s| s.table.len()).sum()
    }

    /// The accumulated service metrics.
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// Snapshot current state (counters + table stats + queue depths) for
    /// text/CSV rendering.
    pub fn snapshot(&self) -> Snapshot {
        let rows: Vec<SnapshotRow> = self
            .shards
            .iter()
            .zip(&self.metrics.per_shard)
            .enumerate()
            .map(|(i, (s, m))| {
                let stats = s.table.stats();
                SnapshotRow {
                    label: format!("shard {i}"),
                    keys: stats.occupied,
                    fill: stats.fill,
                    queue_depth: s.queue.len(),
                    m: m.clone(),
                }
            })
            .collect();
        let total_keys = rows.iter().map(|r| r.keys).sum();
        let mean_fill = if rows.is_empty() {
            0.0
        } else {
            rows.iter().map(|r| r.fill).sum::<f64>() / rows.len() as f64
        };
        let total = SnapshotRow {
            label: "total".to_string(),
            keys: total_keys,
            fill: mean_fill,
            queue_depth: rows.iter().map(|r| r.queue_depth).sum(),
            m: self.metrics.total(),
        };
        Snapshot {
            shards: rows,
            total,
            clock: self.clock,
        }
    }

    /// Tear down, returning every shard's device memory to the simulator.
    pub fn release(self, sim: &mut SimContext) -> Result<(), ServiceError> {
        for shard in self.shards {
            shard.table.release(sim)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(shards: usize) -> ServiceConfig {
        ServiceConfig {
            shards,
            table: Config {
                initial_buckets: 8,
                ..Config::default()
            },
            max_batch: 8,
            max_delay_ticks: 2,
            queue_capacity: 64,
            shed_watermark: 48,
            seed: 11,
            migration_quantum: usize::MAX,
            flush_order: SchedulePolicy::FixedOrder,
        }
    }

    #[test]
    fn put_then_get_round_trips_across_shards() {
        let mut sim = SimContext::new();
        let mut svc = KvService::new(small_cfg(4), &mut sim).unwrap();
        for k in 1..=200u32 {
            svc.submit(0, Op::Put(k, k * 3)).unwrap();
        }
        while svc.queue_depths().iter().any(|&d| d > 0) {
            svc.tick(&mut sim).unwrap();
        }
        svc.drain_completions();
        for k in 1..=200u32 {
            svc.submit(0, Op::Get(k)).unwrap();
            if k % 16 == 0 {
                svc.tick(&mut sim).unwrap();
            }
        }
        svc.flush_all(&mut sim).unwrap();
        let got = svc.drain_completions();
        assert_eq!(got.len(), 200);
        for c in got {
            assert_eq!(c.reply, Reply::Value(Some(c.key * 3)), "key {}", c.key);
        }
    }

    #[test]
    fn deadline_flushes_partial_batches() {
        let mut sim = SimContext::new();
        let mut svc = KvService::new(small_cfg(1), &mut sim).unwrap();
        svc.submit(0, Op::Put(1, 1)).unwrap();
        assert_eq!(
            svc.tick(&mut sim).unwrap(),
            0,
            "one tick: still inside delay"
        );
        assert_eq!(svc.tick(&mut sim).unwrap(), 1, "deadline reached");
        let m = svc.metrics().total();
        assert_eq!(m.flush_by_deadline, 1);
        assert_eq!(m.flush_by_size, 0);
    }

    #[test]
    fn size_flush_fires_without_waiting() {
        let mut sim = SimContext::new();
        let mut svc = KvService::new(small_cfg(1), &mut sim).unwrap();
        for k in 1..=8u32 {
            svc.submit(0, Op::Put(k, k)).unwrap();
        }
        assert_eq!(svc.tick(&mut sim).unwrap(), 8);
        assert_eq!(svc.metrics().total().flush_by_size, 1);
    }

    #[test]
    fn overload_returns_typed_errors_and_bounds_queue() {
        let mut sim = SimContext::new();
        let mut svc = KvService::new(small_cfg(1), &mut sim).unwrap();
        let mut overloaded = 0;
        let mut shed = 0;
        for k in 1..=200u32 {
            match svc.submit(0, Op::Put(k, 1)) {
                Ok(_) => {}
                Err(AdmitError::Overloaded { .. }) => overloaded += 1,
                Err(e) => panic!("unexpected {e:?}"),
            }
            match svc.submit(0, Op::Get(k)) {
                Ok(_) => {}
                Err(AdmitError::Shed { .. }) => shed += 1,
                Err(AdmitError::Overloaded { .. }) => overloaded += 1,
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert!(overloaded > 0, "hard cap never hit");
        assert!(shed > 0, "watermark never shed a read");
        assert!(svc.queue_depths()[0] <= 64, "queue exceeded its bound");
        let m = svc.metrics().total();
        assert_eq!(m.shed_overloaded + m.shed_reads, overloaded + shed);
    }

    #[test]
    fn kernel_time_accrues_per_flush() {
        let mut sim = SimContext::new();
        let mut svc = KvService::new(small_cfg(2), &mut sim).unwrap();
        for k in 1..=64u32 {
            svc.submit(0, Op::Put(k, k)).unwrap();
        }
        svc.flush_all(&mut sim).unwrap();
        let m = svc.metrics().total();
        assert!(m.service_ns > 0.0);
        assert!(m.batches >= 2, "two shards must each have flushed");
        // The caller's running metrics still saw the kernels.
        assert!(sim.metrics.ops >= 64);
    }

    #[test]
    fn service_is_deterministic() {
        let run = || {
            let mut sim = SimContext::new();
            let mut svc = KvService::new(small_cfg(4), &mut sim).unwrap();
            for k in 1..=300u32 {
                let _ = svc.submit(k % 7, Op::Put(k, k ^ 0xABCD));
                if k % 3 == 0 {
                    let _ = svc.submit(k % 7, Op::Get(k / 3));
                }
                if k % 10 == 0 {
                    svc.tick(&mut sim).unwrap();
                }
            }
            svc.flush_all(&mut sim).unwrap();
            (svc.snapshot().to_csv(), svc.drain_completions())
        };
        let (csv_a, comp_a) = run();
        let (csv_b, comp_b) = run();
        assert_eq!(csv_a, csv_b);
        assert_eq!(comp_a, comp_b);
    }

    #[test]
    fn zero_key_is_rejected_without_counting_as_shed() {
        let mut sim = SimContext::new();
        let mut svc = KvService::new(small_cfg(1), &mut sim).unwrap();
        assert_eq!(svc.submit(0, Op::Get(0)), Err(AdmitError::ZeroKey));
        let m = svc.metrics().total();
        assert_eq!(m.shed_total(), 0);
        assert_eq!(m.admitted, 0);
    }

    #[test]
    fn validate_rejects_incoherent_configs() {
        let sim = &mut SimContext::new();
        let bad_batch = ServiceConfig {
            max_batch: 0,
            ..ServiceConfig::default()
        };
        assert!(KvService::new(bad_batch, sim).is_err());
        let batch_over_cap = ServiceConfig {
            max_batch: 2048,
            queue_capacity: 1024,
            ..ServiceConfig::default()
        };
        assert!(KvService::new(batch_over_cap, sim).is_err());
        let bad_shards = ServiceConfig {
            shards: 3,
            ..ServiceConfig::default()
        };
        assert!(KvService::new(bad_shards, sim).is_err());
    }

    #[test]
    fn resizes_stay_local_to_their_shard() {
        let mut sim = SimContext::new();
        let mut svc = KvService::new(small_cfg(4), &mut sim).unwrap();
        // Load enough keys that at least one shard resizes (8 buckets ×
        // 32 slots × 4 tables × β ≈ 870 slots per shard).
        for k in 1..=4000u32 {
            let _ = svc.submit(0, Op::Put(k, 1));
            svc.tick(&mut sim).unwrap();
        }
        svc.flush_all(&mut sim).unwrap();
        let resized: Vec<usize> = svc
            .metrics()
            .per_shard
            .iter()
            .enumerate()
            .filter(|(_, m)| m.resize_events > 0)
            .map(|(i, _)| i)
            .collect();
        assert!(!resized.is_empty(), "no shard ever resized");
        // The structural invariant: each shard's table grew independently —
        // shard tables are distinct instances, so a resize in one cannot
        // have touched another. Spot-check via per-shard stats.
        let snapshot = svc.snapshot();
        for row in &snapshot.shards {
            assert!(row.m.resize_events == 0 || row.keys > 0);
        }
    }

    #[test]
    fn non_default_layout_serves_identically() {
        // The bucket layout threads through ServiceConfig via the embedded
        // table Config. An interleaved layout must change only what the
        // memory system sees — every reply stays identical.
        let run = |layout: gpu_sim::LayoutConfig| {
            let mut cfg = small_cfg(4);
            cfg.table.layout = layout;
            let mut sim = SimContext::new();
            let mut svc = KvService::new(cfg, &mut sim).unwrap();
            for k in 1..=300u32 {
                let _ = svc.submit(0, Op::Put(k, k ^ 0xABCD));
                if k % 7 == 0 {
                    let _ = svc.submit(0, Op::Get(k / 2));
                }
                if k % 13 == 0 {
                    let _ = svc.submit(0, Op::Delete(k / 3));
                }
                svc.tick(&mut sim).unwrap();
            }
            svc.flush_all(&mut sim).unwrap();
            let replies: Vec<(u32, Reply)> = svc
                .drain_completions()
                .into_iter()
                .map(|c| (c.key, c.reply))
                .collect();
            (replies, sim.metrics.read_transactions)
        };
        let (soa_replies, soa_reads) = run(gpu_sim::LayoutConfig::default());
        let (aos_replies, aos_reads) = run(gpu_sim::LayoutConfig::aos(16, 4, 4));
        assert_eq!(soa_replies, aos_replies);
        // The layout did take effect: interleaved 16-slot buckets cost a
        // different number of coalesced reads for the same execution.
        assert_ne!(soa_reads, aos_reads);
    }

    /// With a finite quantum, a migration started by a flush keeps
    /// draining on idle ticks (no queued requests) until the backlog hits
    /// zero, and the pumps are accounted to the owning shard.
    #[test]
    fn tick_pumps_migrations_to_completion_on_idle_shards() {
        let mut sim = SimContext::new();
        let mut cfg = small_cfg(1);
        cfg.migration_quantum = 2;
        cfg.queue_capacity = 4096;
        cfg.shed_watermark = 4096;
        let mut svc = KvService::new(cfg, &mut sim).unwrap();
        let mut k = 1u32;
        while !svc.shards[0].table.migration_in_flight() {
            for _ in 0..8 {
                svc.submit(0, Op::Put(k, k ^ 5)).unwrap();
                k += 1;
            }
            svc.tick(&mut sim).unwrap();
            assert!(k < 1 << 20, "no migration ever started");
        }
        // Stop submitting: idle ticks alone must finish the drain.
        let mut idle_ticks = 0u32;
        while svc.shards[0].table.migration_in_flight() {
            svc.tick(&mut sim).unwrap();
            idle_ticks += 1;
            assert!(idle_ticks < 10_000, "migration never finished");
        }
        assert!(idle_ticks >= 1, "drain finished without an idle pump");
        let m = &svc.metrics().per_shard[0];
        assert!(m.migration_chunks > 0, "pumps were not accounted");
        assert!(m.migration_moved > 0);
        assert_eq!(m.migration_backlog, 0, "gauge must settle at zero");
        assert!(m.resize_events >= 1, "the finalize never retired an event");
        // The table stayed coherent through the incremental drain.
        svc.drain_completions();
        for key in 1..k {
            svc.submit(0, Op::Get(key)).unwrap();
        }
        svc.flush_all(&mut sim).unwrap();
        for c in svc.drain_completions() {
            assert_eq!(c.reply, Reply::Value(Some(c.key ^ 5)), "key {}", c.key);
        }
    }

    /// Two shards whose flushes both resize **in the same flush window**
    /// each account their own `resize_stall_batches` — stalls are charged
    /// to the shard that paid them, and the totals are the sum.
    #[test]
    fn resize_stalls_account_per_shard_within_one_window() {
        let mut sim = SimContext::new();
        let mut cfg = small_cfg(2);
        cfg.max_batch = 64;
        cfg.queue_capacity = 4096;
        cfg.shed_watermark = 4096;
        let router = ShardRouter::new(cfg.shards, cfg.seed).unwrap();
        let mut svc = KvService::new(cfg, &mut sim).unwrap();
        // Partition keys by shard so each shard's load is explicit.
        let mut per_shard: [Vec<u32>; 2] = [Vec::new(), Vec::new()];
        let mut k = 1u32;
        while per_shard.iter().any(|v| v.len() < 70) {
            let s = router.shard_of(k);
            if per_shard[s].len() < 70 {
                per_shard[s].push(k);
            }
            k += 1;
        }
        for keys in &per_shard {
            for &key in keys {
                svc.submit(0, Op::Put(key, 9)).unwrap();
            }
        }
        while svc.queue_depths().iter().any(|&d| d > 0) {
            svc.tick(&mut sim).unwrap();
        }
        let before: Vec<u64> = svc
            .metrics()
            .per_shard
            .iter()
            .map(|m| m.resize_stall_batches)
            .collect();
        // One full delete batch per shard, erasing nearly all of its keys:
        // both flushes leave their tables far under the downsize bound, so
        // both resize inside the same tick's flush window.
        for keys in &per_shard {
            for &key in keys.iter().take(64) {
                svc.submit(0, Op::Delete(key)).unwrap();
            }
        }
        svc.tick(&mut sim).unwrap();
        let m = svc.metrics();
        for (shard, &prior) in before.iter().enumerate() {
            assert_eq!(
                m.per_shard[shard].resize_stall_batches,
                prior + 1,
                "shard {shard} must charge exactly its own stalled flush"
            );
        }
        assert_eq!(
            m.total().resize_stall_batches,
            m.per_shard
                .iter()
                .map(|s| s.resize_stall_batches)
                .sum::<u64>(),
            "totals must be the per-shard sum"
        );
    }

    #[test]
    fn invalid_layout_is_rejected_at_service_construction() {
        let mut cfg = small_cfg(2);
        cfg.table.layout = gpu_sim::LayoutConfig::soa(12, 4, 4); // unsupported width
        let mut sim = SimContext::new();
        let err = match KvService::new(cfg, &mut sim) {
            Ok(_) => panic!("expected layout rejection"),
            Err(e) => e,
        };
        assert!(matches!(err, ServiceError::Table(_)), "unexpected: {err}");
    }
}
