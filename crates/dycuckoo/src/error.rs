//! Error types for the DyCuckoo library.

use gpu_sim::device::DeviceError;

/// Errors surfaced by table construction and batched operations.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The configuration is internally inconsistent (see message).
    InvalidConfig(String),
    /// Key 0 is reserved as the empty-slot sentinel, matching the CUDA
    /// implementations the paper compares against.
    ZeroKey,
    /// The simulated device ran out of memory.
    Device(DeviceError),
    /// Resizing failed to bring the filled factor into range within the
    /// iteration bound (indicates bounds so tight they ping-pong, which
    /// [`crate::Config::validate`] should have rejected).
    ResizeDiverged {
        /// Number of resize iterations attempted.
        iterations: u32,
    },
    /// Inserts kept failing even after repeated upsizing (pathological hash
    /// behaviour or a device too small to grow into).
    InsertStuck {
        /// Operations that could not be placed.
        failed_ops: usize,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::ZeroKey => write!(f, "key 0 is reserved as the empty-slot sentinel"),
            Error::Device(e) => write!(f, "device error: {e}"),
            Error::ResizeDiverged { iterations } => {
                write!(f, "resizing did not converge after {iterations} iterations")
            }
            Error::InsertStuck { failed_ops } => {
                write!(
                    f,
                    "{failed_ops} inserts failed even after repeated upsizing"
                )
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DeviceError> for Error {
    fn from(e: DeviceError) -> Self {
        Error::Device(e)
    }
}

/// Result alias for DyCuckoo operations.
pub type Result<T> = std::result::Result<T, Error>;
