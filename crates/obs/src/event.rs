//! The flight-recorder event schema.
//!
//! Events are small `Copy` structs (one enum) so that recording is a plain
//! ring-buffer push with no allocation. Everything is integers: the stack
//! is deterministic, so two runs of the same workload produce bit-identical
//! event streams, which makes traces diffable CI artifacts.

/// Which kernel/operation family an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Cuckoo insert (voter-coordination kernel).
    Insert,
    /// Lookup kernel.
    Find,
    /// Delete kernel.
    Delete,
    /// Read-modify-write upsert (insert kernel with a merge rule).
    Upsert,
    /// Counting-table increment (`Upsert` under the `Count` rule).
    Increment,
}

impl OpKind {
    /// Stable lowercase name for exporters.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Insert => "insert",
            OpKind::Find => "find",
            OpKind::Delete => "delete",
            OpKind::Upsert => "upsert",
            OpKind::Increment => "increment",
        }
    }

    /// Whether the op reads the stored value before writing it (RMW).
    pub fn is_rmw(self) -> bool {
        matches!(self, OpKind::Upsert | OpKind::Increment)
    }
}

/// How an operation retired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpOutcome {
    /// A fresh key was placed.
    Inserted,
    /// An existing key's value was overwritten.
    Updated,
    /// A lookup found its key.
    Hit,
    /// A lookup or delete did not find its key.
    Miss,
    /// A delete erased its key.
    Deleted,
    /// An insert gave up (eviction limit / no victim); the driver retries
    /// after a resize.
    Failed,
}

impl OpOutcome {
    /// Stable lowercase name for exporters.
    pub fn name(self) -> &'static str {
        match self {
            OpOutcome::Inserted => "inserted",
            OpOutcome::Updated => "updated",
            OpOutcome::Hit => "hit",
            OpOutcome::Miss => "miss",
            OpOutcome::Deleted => "deleted",
            OpOutcome::Failed => "failed",
        }
    }
}

/// One structured flight-recorder event.
///
/// Span-opening events (`LaunchBegin`, `ResizeBegin`, `BatchFlush`) push a
/// fresh span id; their matching closers (`LaunchEnd`, `ResizeEnd`,
/// `BatchEnd`) pop it. All other events are instants attributed to the
/// innermost open span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A kernel launch started (opens a span).
    LaunchBegin {
        /// Kernel family.
        kind: OpKind,
        /// Number of warps in the launch.
        warps: u32,
    },
    /// A kernel launch finished (closes the `LaunchBegin` span).
    LaunchEnd {
        /// Scheduler rounds the launch consumed.
        rounds: u64,
    },
    /// An operation finished, with its accumulated per-op costs.
    OpRetired {
        /// Kernel family of the op.
        kind: OpKind,
        /// Chain id: the insert op's salt (constant across its whole
        /// eviction chain), 0 for finds/deletes.
        op: u64,
        /// The key the op retired on (for inserts, the last carried key).
        key: u64,
        /// How it retired.
        outcome: OpOutcome,
        /// Buckets probed by this op.
        probes: u32,
        /// Length of the eviction chain this op drove (inserts only).
        evict_depth: u32,
        /// Bucket-lock acquisitions that failed and forced a re-vote.
        lock_waits: u32,
    },
    /// One cuckoo displacement inside an insert's eviction chain.
    EvictStep {
        /// Chain id (the driving insert op's salt).
        op: u64,
        /// Key that was just placed into the victim's slot.
        placed_key: u64,
        /// Victim key now carried to another subtable.
        carried_key: u64,
        /// Subtable the displacement happened in.
        from_table: u8,
        /// Subtable the carried key will try next.
        to_table: u8,
        /// Chain depth after this step (1 = first displacement).
        depth: u32,
    },
    /// A bucket-lock CAS failed (contention on the atomic path).
    LockConflict {
        /// Memory space of the lock word (table index).
        space: u32,
        /// Bucket index of the lock word.
        index: u64,
    },
    /// A subtable resize started (opens a span).
    ResizeBegin {
        /// `true` for upsize (doubling), `false` for downsize (halving).
        grow: bool,
        /// Index of the resized subtable.
        table: u8,
        /// Bucket count before the resize.
        old_buckets: u64,
    },
    /// A subtable resize finished (closes the `ResizeBegin` span).
    ResizeEnd {
        /// Bucket count after the resize (0 if the resize failed).
        new_buckets: u64,
        /// Entries moved by the rehash kernels.
        moved: u64,
        /// Entries that could not stay in the halved subtable and were
        /// re-inserted elsewhere (downsize only).
        residuals: u64,
    },
    /// One bounded chunk of an incremental migration started (opens a
    /// span). Unlike `ResizeBegin`, a chunk span never outlives the batch
    /// that pumped it — the full migration is the sequence of chunk spans
    /// plus a finalizing `ResizeEvent` in the batch report.
    MigrateChunkBegin {
        /// `true` for upsize (doubling), `false` for downsize (halving).
        grow: bool,
        /// Index of the draining subtable.
        table: u8,
        /// Drain cursor (source-bucket index) at the start of the chunk.
        cursor: u64,
        /// Source buckets this chunk will drain.
        chunk: u64,
    },
    /// A migration chunk finished (closes the `MigrateChunkBegin` span).
    MigrateChunkEnd {
        /// Entries moved into the fresh subtable by this chunk.
        moved: u64,
        /// Downsize residuals re-inserted elsewhere by this chunk.
        residuals: u64,
        /// Source buckets still to drain after this chunk, plus the
        /// pending finalize swap (0 once the migration is complete).
        backlog: u64,
    },
    /// A service shard flushed its batch window (opens a span).
    BatchFlush {
        /// Shard index.
        shard: u32,
        /// Requests in the flushed window.
        window: u32,
        /// Planned probe (read) keys after coalescing.
        probes: u32,
        /// Planned puts after coalescing.
        puts: u32,
        /// Planned deletes after coalescing.
        deletes: u32,
        /// Requests answered locally by the coalescer (no kernel work).
        coalesced: u32,
    },
    /// A shard flush completed (closes the `BatchFlush` span).
    BatchEnd {
        /// Completions produced by the flush.
        completed: u32,
    },
    /// Admission control rejected a request.
    Shed {
        /// Shard index.
        shard: u32,
        /// Queue depth at rejection time.
        depth: u32,
        /// `true` for a hard `Overloaded` rejection (queue full), `false`
        /// for a soft `Shed` (read dropped above the watermark).
        hard: bool,
    },
    /// The cuckoo-filter miss shield answered a Get `Value(None)` at
    /// submission time (the key was provably absent; no batcher enqueue,
    /// no kernel work).
    FilterShed {
        /// Shard index.
        shard: u32,
        /// The absent key.
        key: u32,
    },
}

impl Event {
    /// Stable lowercase name for exporters and summaries.
    pub fn name(&self) -> &'static str {
        match self {
            Event::LaunchBegin { .. } => "launch_begin",
            Event::LaunchEnd { .. } => "launch_end",
            Event::OpRetired { .. } => "op_retired",
            Event::EvictStep { .. } => "evict_step",
            Event::LockConflict { .. } => "lock_conflict",
            Event::ResizeBegin { .. } => "resize_begin",
            Event::ResizeEnd { .. } => "resize_end",
            Event::MigrateChunkBegin { .. } => "migrate_chunk_begin",
            Event::MigrateChunkEnd { .. } => "migrate_chunk_end",
            Event::BatchFlush { .. } => "batch_flush",
            Event::BatchEnd { .. } => "batch_end",
            Event::Shed { .. } => "shed",
            Event::FilterShed { .. } => "filter_shed",
        }
    }

    /// Whether this event opens a causal span.
    pub fn opens_span(&self) -> bool {
        matches!(
            self,
            Event::LaunchBegin { .. }
                | Event::ResizeBegin { .. }
                | Event::MigrateChunkBegin { .. }
                | Event::BatchFlush { .. }
        )
    }

    /// Whether this event closes the innermost open span.
    pub fn closes_span(&self) -> bool {
        matches!(
            self,
            Event::LaunchEnd { .. }
                | Event::ResizeEnd { .. }
                | Event::MigrateChunkEnd { .. }
                | Event::BatchEnd { .. }
        )
    }
}

/// A recorded event with its stamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic sequence number (1-based, total order within a recording).
    pub seq: u64,
    /// Simulated service clock (tick) when the event fired; 0 below the
    /// service layer.
    pub clock: u64,
    /// Cumulative scheduler rounds of the executing simulation context.
    pub rounds: u64,
    /// Span the event belongs to: its own id for span-opening/closing
    /// events, the innermost open span for instants (0 = no open span).
    pub span: u32,
    /// The enclosing span (0 = top level).
    pub parent: u32,
    /// The event payload.
    pub event: Event,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_close_classification_is_disjoint() {
        let events = [
            Event::LaunchBegin {
                kind: OpKind::Insert,
                warps: 1,
            },
            Event::LaunchEnd { rounds: 0 },
            Event::OpRetired {
                kind: OpKind::Find,
                op: 0,
                key: 1,
                outcome: OpOutcome::Hit,
                probes: 1,
                evict_depth: 0,
                lock_waits: 0,
            },
            Event::EvictStep {
                op: 1,
                placed_key: 2,
                carried_key: 3,
                from_table: 0,
                to_table: 1,
                depth: 1,
            },
            Event::LockConflict { space: 0, index: 0 },
            Event::ResizeBegin {
                grow: true,
                table: 0,
                old_buckets: 2,
            },
            Event::ResizeEnd {
                new_buckets: 4,
                moved: 10,
                residuals: 0,
            },
            Event::MigrateChunkBegin {
                grow: false,
                table: 1,
                cursor: 0,
                chunk: 64,
            },
            Event::MigrateChunkEnd {
                moved: 12,
                residuals: 3,
                backlog: 5,
            },
            Event::BatchFlush {
                shard: 0,
                window: 4,
                probes: 2,
                puts: 2,
                deletes: 0,
                coalesced: 0,
            },
            Event::BatchEnd { completed: 4 },
            Event::Shed {
                shard: 0,
                depth: 9,
                hard: true,
            },
        ];
        let opens = events.iter().filter(|e| e.opens_span()).count();
        let closes = events.iter().filter(|e| e.closes_span()).count();
        assert_eq!(opens, 4);
        assert_eq!(closes, 4);
        for e in &events {
            assert!(!(e.opens_span() && e.closes_span()));
            assert!(!e.name().is_empty());
        }
    }
}
