//! The two-layer hashing scheme (Section "The Two-layer Approach").
//!
//! The first layer hashes every key to one of the `C(d,2)` *unordered pairs*
//! of subtables; the second layer stores the key in exactly one subtable of
//! its pair. Find and delete therefore probe **at most two** buckets no
//! matter how large `d` grows, while evictions can still ripple through all
//! `d` subtables (an evicted key moves to the *other* member of *its own*
//! pair, which generally differs from the evictor's pair) — this is what
//! lets the scheme re-balance skew that a static partition-into-pairs
//! approach cannot.

use crate::hashfn::UniversalHash;

/// First-layer hash: maps keys to subtable pairs.
#[derive(Debug, Clone, Copy)]
pub struct PairHash {
    hash: UniversalHash,
    num_tables: usize,
}

impl PairHash {
    /// Build a pair hash over `d` subtables from a seed.
    pub fn new(seed: u64, num_tables: usize) -> Self {
        assert!(num_tables >= 2);
        Self {
            hash: UniversalHash::from_seed(seed),
            num_tables,
        }
    }

    /// The raw first-layer hash value (used by alternative layerings that
    /// partition keys differently, e.g. disjoint pairs).
    #[inline]
    pub fn raw(&self, key: u32) -> u64 {
        self.hash.raw(key)
    }

    /// Number of pairs, `C(d, 2)`.
    pub fn num_pairs(&self) -> usize {
        self.num_tables * (self.num_tables - 1) / 2
    }

    /// The subtable pair `(i, j)`, `i < j`, assigned to `key`.
    #[inline]
    pub fn pair_of(&self, key: u32) -> (usize, usize) {
        let idx = (self.hash.raw(key) % self.num_pairs() as u64) as usize;
        unrank_pair(idx, self.num_tables)
    }

    /// Given a key stored in subtable `t`, the other member of its pair.
    /// Every stored key satisfies `t ∈ pair_of(key)`; this is the invariant
    /// the eviction and downsizing paths rely on.
    #[inline]
    pub fn partner(&self, key: u32, t: usize) -> usize {
        let (i, j) = self.pair_of(key);
        debug_assert!(t == i || t == j, "key {key} not homed in table {t}");
        if t == i {
            j
        } else {
            i
        }
    }
}

/// Unrank a pair index in `0..C(d,2)` to `(i, j)` with `i < j`, in
/// lexicographic order: (0,1), (0,2), …, (0,d−1), (1,2), ….
#[inline]
pub fn unrank_pair(mut idx: usize, d: usize) -> (usize, usize) {
    for i in 0..d - 1 {
        let row = d - 1 - i;
        if idx < row {
            return (i, i + 1 + idx);
        }
        idx -= row;
    }
    panic!("pair index out of range for d = {d}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn unrank_enumerates_all_pairs_exactly_once() {
        for d in 2..9 {
            let n = d * (d - 1) / 2;
            let mut seen = HashSet::new();
            for idx in 0..n {
                let (i, j) = unrank_pair(idx, d);
                assert!(i < j && j < d, "bad pair ({i},{j}) for d={d}");
                assert!(seen.insert((i, j)), "duplicate pair ({i},{j})");
            }
            assert_eq!(seen.len(), n);
        }
    }

    #[test]
    fn unrank_lexicographic_for_d4() {
        let pairs: Vec<_> = (0..6).map(|i| unrank_pair(i, 4)).collect();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
    }

    #[test]
    #[should_panic]
    fn unrank_out_of_range_panics() {
        unrank_pair(6, 4);
    }

    #[test]
    fn pair_of_is_deterministic_and_valid() {
        let ph = PairHash::new(3, 5);
        for k in 1..500u32 {
            let (i, j) = ph.pair_of(k);
            assert!(i < j && j < 5);
            assert_eq!(ph.pair_of(k), (i, j));
        }
    }

    #[test]
    fn partner_flips_within_pair() {
        let ph = PairHash::new(11, 4);
        for k in 1..200u32 {
            let (i, j) = ph.pair_of(k);
            assert_eq!(ph.partner(k, i), j);
            assert_eq!(ph.partner(k, j), i);
        }
    }

    #[test]
    fn pairs_cover_all_tables() {
        // Every subtable should be reachable: with d=4 and many keys, each
        // table index appears in some key's pair.
        let ph = PairHash::new(7, 4);
        let mut seen = [false; 4];
        for k in 1..1000u32 {
            let (i, j) = ph.pair_of(k);
            seen[i] = true;
            seen[j] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn pair_distribution_roughly_uniform() {
        let ph = PairHash::new(13, 4);
        let mut counts = [0u32; 6];
        let total = 60_000u32;
        for k in 1..=total {
            let (i, j) = ph.pair_of(k);
            // Rank back to an index for counting.
            let idx = (0..6).find(|&x| unrank_pair(x, 4) == (i, j)).unwrap();
            counts[idx] += 1;
        }
        let expect = total / 6;
        for &c in &counts {
            assert!(c > expect / 2 && c < expect * 2);
        }
    }
}
