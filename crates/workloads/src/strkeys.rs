//! String-key dataset generation for the unsized tier.
//!
//! Generates deterministic, duplicate-free byte-string KV pairs whose key
//! lengths follow a configurable distribution. The interesting axis for
//! the unsized tier is the **inline/spill split**: keys of ≤ 12 bytes are
//! stored inline in the bucket word (probes never touch the arena), longer
//! keys spill. The three stock distributions pin the two extremes and a
//! realistic middle:
//!
//! * [`LengthDist::AllInline`] — every key fits inline (4..=12 bytes).
//! * [`LengthDist::Mixed`] — bimodal straddle of the bound (half inline,
//!   half spilled).
//! * [`LengthDist::AllSpill`] — every key spills (16..=64 bytes).
//!
//! Uniqueness without a dedup set: every key embeds a Feistel-permuted
//! index as an 8-hex-digit prefix, so two distinct indices can never
//! collide regardless of the random tail.

use crate::keygen::Feistel;
use crate::mix64;

/// Key-length distribution of a string dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LengthDist {
    /// Uniform 4..=12 bytes: every key inline, zero arena traffic.
    AllInline,
    /// Straddles the inline bound: ~half inline, ~half spilled (8..=48).
    Mixed,
    /// Uniform 16..=64 bytes: every key spilled.
    AllSpill,
    /// Uniform in the given inclusive byte range (min ≥ 8 — the embedded
    /// uniqueness prefix needs 8 bytes).
    Uniform(usize, usize),
}

impl LengthDist {
    /// The stock distributions the sweeps iterate over.
    pub const STOCK: [LengthDist; 3] = [
        LengthDist::AllInline,
        LengthDist::Mixed,
        LengthDist::AllSpill,
    ];

    /// Parse a distribution name (`all_inline` / `mixed` / `all_spill`).
    pub fn parse(s: &str) -> Option<LengthDist> {
        match s {
            "all_inline" => Some(LengthDist::AllInline),
            "mixed" => Some(LengthDist::Mixed),
            "all_spill" => Some(LengthDist::AllSpill),
            _ => None,
        }
    }

    /// The distribution's display name.
    pub fn name(&self) -> &'static str {
        match self {
            LengthDist::AllInline => "all_inline",
            LengthDist::Mixed => "mixed",
            LengthDist::AllSpill => "all_spill",
            LengthDist::Uniform(..) => "uniform",
        }
    }

    /// Sample a key length for sample index `i` under seed `seed`.
    /// Deterministic: same `(dist, seed, i)` always yields the same length,
    /// so callers may use it to widen stable identifiers into byte keys.
    pub fn key_len(&self, seed: u64, i: u64) -> usize {
        let r = mix64(seed ^ 0x4C45_4E00 ^ i);
        match *self {
            // 4..=12, but the 8-byte uniqueness prefix floors us at 8.
            LengthDist::AllInline => 8 + (r % 5) as usize,
            LengthDist::Mixed => {
                // Even split across the inline bound: half short (8..=12),
                // half long (16..=48).
                if r & 1 == 0 {
                    8 + ((r >> 8) % 5) as usize
                } else {
                    16 + ((r >> 8) % 33) as usize
                }
            }
            LengthDist::AllSpill => 16 + (r % 49) as usize,
            LengthDist::Uniform(lo, hi) => {
                let lo = lo.max(8);
                let hi = hi.max(lo);
                lo + (r % (hi - lo + 1) as u64) as usize
            }
        }
    }
}

/// Specification of a string-key dataset.
#[derive(Debug, Clone, Copy)]
pub struct StrDatasetSpec {
    /// Distinct KV pairs to generate.
    pub pairs: usize,
    /// Key-length distribution.
    pub key_dist: LengthDist,
    /// Value length range (inclusive); values need no uniqueness prefix,
    /// so any bounds work (0 allowed).
    pub val_len: (usize, usize),
    /// Master seed.
    pub seed: u64,
}

impl StrDatasetSpec {
    /// Generate the dataset: `pairs` distinct keys with their values.
    pub fn generate(&self) -> Vec<(Vec<u8>, Vec<u8>)> {
        let f = Feistel::new(self.seed);
        (0..self.pairs as u64)
            .map(|i| {
                let uniq = f.permute(i as u32);
                let klen = self.key_dist.key_len(self.seed, i);
                let key = string_key(self.seed, uniq, klen);
                let (vlo, vhi) = self.val_len;
                let vhi = vhi.max(vlo);
                let r = mix64(self.seed ^ 0x5641_4C00 ^ i);
                let vlen = vlo + (r % (vhi - vlo + 1) as u64) as usize;
                let val = value_bytes(self.seed ^ uniq as u64, vlen);
                (key, val)
            })
            .collect()
    }
}

/// Build one key: an 8-hex-digit unique prefix plus a printable random
/// tail, `len` bytes total (`len ≥ 8`).
fn string_key(seed: u64, uniq: u32, len: usize) -> Vec<u8> {
    debug_assert!(len >= 8, "keys embed an 8-byte uniqueness prefix");
    let mut key = Vec::with_capacity(len);
    for shift in (0..8).rev() {
        let nibble = (uniq >> (shift * 4)) & 0xF;
        key.push(b"0123456789abcdef"[nibble as usize]);
    }
    let mut i = 0u64;
    while key.len() < len {
        let r = mix64(seed ^ ((uniq as u64) << 8) ^ i);
        for b in r.to_le_bytes() {
            if key.len() == len {
                break;
            }
            // Printable ASCII tail: realistic for URL/word-style keys.
            key.push(b'!' + (b % 94));
        }
        i += 1;
    }
    key
}

/// Deterministic value payload of `len` bytes.
fn value_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut val = Vec::with_capacity(len);
    let mut i = 0u64;
    while val.len() < len {
        let r = mix64(seed ^ 0xDA7A ^ i);
        for b in r.to_le_bytes() {
            if val.len() == len {
                break;
            }
            val.push(b);
        }
        i += 1;
    }
    val
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn spec(dist: LengthDist) -> StrDatasetSpec {
        StrDatasetSpec {
            pairs: 5_000,
            key_dist: dist,
            val_len: (0, 32),
            seed: 11,
        }
    }

    #[test]
    fn keys_are_distinct_and_deterministic() {
        for dist in LengthDist::STOCK {
            let a = spec(dist).generate();
            let b = spec(dist).generate();
            assert_eq!(a, b, "{}", dist.name());
            let set: HashSet<&[u8]> = a.iter().map(|(k, _)| k.as_slice()).collect();
            assert_eq!(set.len(), a.len(), "{} keys must be unique", dist.name());
        }
    }

    #[test]
    fn stock_distributions_pin_the_inline_spill_split() {
        const INLINE_MAX: usize = 12;
        let inline_frac = |d: LengthDist| {
            let data = spec(d).generate();
            data.iter().filter(|(k, _)| k.len() <= INLINE_MAX).count() as f64 / data.len() as f64
        };
        assert_eq!(inline_frac(LengthDist::AllInline), 1.0);
        assert_eq!(inline_frac(LengthDist::AllSpill), 0.0);
        let mixed = inline_frac(LengthDist::Mixed);
        assert!(
            (0.1..=0.9).contains(&mixed),
            "mixed distribution must straddle the inline bound, got {mixed}"
        );
    }

    #[test]
    fn lengths_respect_their_bounds() {
        for (dist, lo, hi) in [
            (LengthDist::AllInline, 8, 12),
            (LengthDist::Mixed, 8, 48),
            (LengthDist::AllSpill, 16, 64),
            (LengthDist::Uniform(10, 20), 10, 20),
        ] {
            for (k, _) in spec(dist).generate() {
                assert!((lo..=hi).contains(&k.len()), "{}: {}", dist.name(), k.len());
            }
        }
    }

    #[test]
    fn parse_round_trips_stock_names() {
        for d in LengthDist::STOCK {
            assert_eq!(LengthDist::parse(d.name()), Some(d));
        }
        assert_eq!(LengthDist::parse("bogus"), None);
    }
}
