//! # kv-service — a sharded, batching KV service layer over DyCuckoo
//!
//! The paper evaluates DyCuckoo as a raw batched hash table; this crate
//! wraps it in the serving architecture a real deployment would put in
//! front of it:
//!
//! ```text
//!                         ┌──────────────┐
//!   clients ── submit ──▶ │  ShardRouter │  top hash bits, router seed
//!                         └──────┬───────┘
//!              ┌─────────────────┼─────────────────┐
//!              ▼                 ▼                 ▼
//!        ┌──────────┐      ┌──────────┐      ┌──────────┐
//!        │ queue 0  │      │ queue 1  │  …   │ queue N-1│   bounded FIFOs,
//!        │ (batcher)│      │ (batcher)│      │ (batcher)│   admission ctl
//!        └────┬─────┘      └────┬─────┘      └────┬─────┘
//!             ▼ flush           ▼ flush           ▼ flush
//!        ┌──────────┐      ┌──────────┐      ┌──────────┐
//!        │ DyCuckoo │      │ DyCuckoo │  …   │ DyCuckoo │   independent
//!        │ shard 0  │      │ shard 1  │      │ shard N-1│   tables/resizes
//!        └──────────┘      └──────────┘      └──────────┘
//! ```
//!
//! * [`ShardRouter`] partitions the key space with a hash family disjoint
//!   from the tables' bucket hashes, so one shard's resize never involves
//!   (or stalls) another shard.
//! * Each shard queue batches requests — flush on size or deadline against
//!   the **simulated** clock (ticks), keeping everything deterministic —
//!   and coalesces duplicate keys within a window ([`crate::batcher`]).
//! * [`AdmissionPolicy`] bounds every queue: offered load beyond capacity
//!   gets typed [`AdmitError::Overloaded`]/[`AdmitError::Shed`] refusals
//!   instead of unbounded queue growth.
//! * [`ServiceMetrics`] tracks queue depths, batch occupancy, p50/p99
//!   simulated latency, shed counts, and resize stalls; [`Snapshot`]
//!   renders them as aligned text or CSV, bit-identically across runs.
//!
//! * With `ServiceConfig::tier = Tier::Unsized`, each shard additionally
//!   owns a [`dycuckoo::UnsizedTable`] serving byte-string keys/values
//!   through [`KvService::submit_bytes`] — same router independence, same
//!   bounded queues, same size-or-deadline batching, with arena gauges
//!   joining the registry only once byte traffic has actually flowed.
//!
//! The closed-loop load generator lives in
//! `crates/bench/src/bin/service_load.rs`.

mod admission;
mod batcher;
mod filter;
mod metrics;
mod request;
mod router;
mod service;

pub use admission::{AdmissionPolicy, AdmitError};
pub use filter::{CuckooFilter, MissFilter};
pub use metrics::{LatencyHistogram, ServiceMetrics, ShardMetrics, Snapshot, SnapshotRow};
pub use request::{ByteCompletion, ByteOp, ByteReply, Completion, Op, Reply};
pub use router::ShardRouter;
pub use service::{Backend, KvService, ServiceConfig, ServiceError, Tier};
