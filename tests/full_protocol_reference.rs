//! End-to-end oracle test: DyCuckoo driven through the paper's complete
//! two-phase dynamic protocol, with every find result checked against a
//! host-side reference map at every batch.

use std::collections::{HashMap, HashSet};

use dycuckoo::{Config, DyCuckoo};
use gpu_sim::SimContext;
use workloads::{dataset_by_name, DynamicWorkload};

#[test]
fn dycuckoo_matches_reference_through_entire_paper_protocol() {
    let ds = dataset_by_name("COM").unwrap().scaled(0.001).generate(77);
    let w = DynamicWorkload::build(&ds, 1000, 0.3, 77);
    let mut sim = SimContext::new();
    let mut table = DyCuckoo::new(
        Config {
            initial_buckets: 2,
            ..Config::default()
        },
        &mut sim,
    )
    .unwrap();
    // A key inserted several times within ONE batch ends with whichever of
    // that batch's values the warp schedule applied last — exactly as on a
    // real GPU — so the oracle tracks the *set* of admissible values.
    let mut reference: HashMap<u32, HashSet<u32>> = HashMap::new();

    for (i, batch) in w.batches.iter().enumerate() {
        table.insert_batch(&mut sim, &batch.inserts).unwrap();
        let mut this_batch: HashMap<u32, HashSet<u32>> = HashMap::new();
        for &(k, v) in &batch.inserts {
            this_batch.entry(k).or_default().insert(v);
        }
        for (k, vals) in this_batch {
            reference.insert(k, vals);
        }

        // Every find must return an admissible value, every batch.
        let got = table.find_batch(&mut sim, &batch.finds);
        for (k, g) in batch.finds.iter().zip(got) {
            match (g, reference.get(k)) {
                (Some(v), Some(vals)) => {
                    assert!(vals.contains(&v), "batch {i}, find {k}: {v} not admissible")
                }
                (None, None) => {}
                (g, r) => panic!("batch {i}, find {k}: got {g:?}, reference {r:?}"),
            }
        }

        let report = table.delete_batch(&mut sim, &batch.deletes).unwrap();
        let mut expected_deleted = 0u64;
        for &k in &batch.deletes {
            if reference.remove(&k).is_some() {
                expected_deleted += 1;
            }
        }
        // Deleting a doubly-stored key erases both copies (PaperInsert
        // semantics scan both buckets; Upsert keys are unique): the count
        // can exceed the reference by the standing duplicate drift.
        assert!(
            report.deleted >= expected_deleted
                && report.deleted <= expected_deleted + 1 + expected_deleted / 50,
            "batch {i} deletes: {} vs expected {expected_deleted}",
            report.deleted
        );

        // Structural invariants hold at every batch boundary. Population
        // may drift by a handful of entries: two concurrent inserts of the
        // same key can both pass the optimistic duplicate probe and store
        // two copies (both values admissible; later merged by a resize or
        // cleaned by a delete) — the same race the CUDA kernels have.
        let drift = table.len().abs_diff(reference.len() as u64);
        assert!(
            drift <= 1 + reference.len() as u64 / 100,
            "batch {i} population drift {drift} (table {}, reference {})",
            table.len(),
            reference.len()
        );
        assert!(table.size_ratio_ok(), "batch {i} size ratio");
        assert!(
            table.fill_factor() <= table.config().beta + 1e-9,
            "batch {i}: θ = {}",
            table.fill_factor()
        );
    }

    // After the mirrored phase 2, the survivors are exactly the reference's.
    table.verify_integrity().unwrap();
    let survivors: Vec<u32> = reference.keys().copied().collect();
    let found = table.find_batch(&mut sim, &survivors);
    for (k, f) in survivors.iter().zip(found) {
        let v = f.unwrap_or_else(|| panic!("final check: key {k} missing"));
        assert!(reference[k].contains(&v), "final check, key {k}");
    }

    // And the run produced sane simulated-throughput numbers.
    let m = sim.take_metrics();
    assert!(m.ops as usize >= w.total_ops());
    let mops = gpu_sim::CostModel::new(sim.device.config()).mops(m.ops, &m);
    assert!(mops > 20.0, "implausibly low simulated throughput: {mops}");
}

/// The same protocol under the stash extension: identical semantics.
#[test]
fn stash_variant_matches_reference_too() {
    let ds = dataset_by_name("TW").unwrap().scaled(0.0005).generate(78);
    let w = DynamicWorkload::build(&ds, 500, 0.2, 78);
    let mut sim = SimContext::new();
    let mut table = DyCuckoo::new(
        Config {
            initial_buckets: 2,
            stash_capacity: 32,
            ..Config::default()
        },
        &mut sim,
    )
    .unwrap();
    let mut reference: HashMap<u32, u32> = HashMap::new();
    for batch in &w.batches {
        table.insert_batch(&mut sim, &batch.inserts).unwrap();
        for &(k, v) in &batch.inserts {
            reference.insert(k, v);
        }
        table.delete_batch(&mut sim, &batch.deletes).unwrap();
        for k in &batch.deletes {
            reference.remove(k);
        }
        let drift = table.len().abs_diff(reference.len() as u64);
        assert!(drift <= 1 + reference.len() as u64 / 100, "drift {drift}");
    }
    table.verify_integrity().unwrap();
    let keys: Vec<u32> = reference.keys().copied().collect();
    let found = table.find_batch(&mut sim, &keys);
    for (k, f) in keys.iter().zip(found) {
        assert_eq!(f, reference.get(k).copied());
    }
}
