//! Linear probing — the `Linear` baseline of the paper's appendix,
//! modelled after the SIMD linear-probing tables the paper cites
//! (Medusa-style): **thread-centric, slot-granular** probing.
//!
//! Each thread walks the slot sequence `h(k), h(k)+1, …` until it finds
//! the key (find), an empty slot (miss / insert), with every probe an
//! uncoalesced single-slot access. Probe sequences lengthen quickly as the
//! filled factor grows (primary clustering), which is exactly the
//! appendix's observation: every cuckoo scheme has constant find cost in
//! θ, Linear does not. Deletion tombstones the slot (probes must not stop
//! at tombstones), so the scheme cannot shrink.

use gpu_sim::ChargeKind;
use gpu_sim::{
    run_rounds_with, RoundCtx, RoundKernel, SchedulePolicy, SimContext, SlotStore, StepOutcome,
    WARP_SIZE,
};

use dycuckoo::hashfn::UniversalHash;

use crate::api::{GpuHashTable, Result, TableError};

const EMPTY: u32 = 0;
const TOMB: u32 = u32::MAX;
const SLOT_SPACE: u32 = 300;

/// The linear-probing baseline. Storage is a flat engine [`SlotStore`]:
/// every probe is an uncoalesced single-slot access, so the accounting is
/// layout-free by construction.
pub struct LinearProbing {
    store: SlotStore<u32, u32>,
    n_slots: usize,
    live: u64,
    tombstones: u64,
    hash: UniversalHash,
    schedule: SchedulePolicy,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProbeGoal {
    Find,
    Insert,
    Delete,
}

/// One lane-owned op: a probe cursor walking the slot sequence.
#[derive(Debug, Clone, Copy)]
struct LinOp {
    key: u32,
    val: u32,
    /// Next slot to probe.
    cursor: usize,
    /// Slots probed so far (termination bound).
    probed: usize,
    /// First reusable (tombstone) slot seen, for inserts.
    first_free: Option<usize>,
    done: bool,
}

struct LinKernel<'a> {
    table: &'a mut LinearProbing,
    goal: ProbeGoal,
    results: Vec<Option<u32>>,
    out_base: usize,
    inserted: u64,
    updated: u64,
    deleted: u64,
    failed: usize,
}

impl RoundKernel<Vec<LinOp>> for LinKernel<'_> {
    fn step(&mut self, lanes: &mut Vec<LinOp>, ctx: &mut RoundCtx) -> StepOutcome {
        // Thread-centric: every active lane advances one slot per round,
        // each probe its own uncoalesced transaction.
        let mut pending = false;
        let n = self.table.n_slots;
        for (lane, op) in lanes.iter_mut().enumerate() {
            if op.done {
                continue;
            }
            let slot = op.cursor % n;
            ctx.read_slot();
            let k = self.table.store.key(slot);
            let result_idx = self.out_base + lane;
            match self.goal {
                ProbeGoal::Find => {
                    if k == op.key {
                        // Value shares no line with the key array: one more
                        // slot read.
                        ctx.read_slot();
                        self.results[result_idx] = Some(self.table.store.val(slot));
                        op.done = true;
                    } else if k == EMPTY {
                        op.done = true; // miss
                    }
                }
                ProbeGoal::Delete => {
                    if k == op.key {
                        self.table.store.set_key(slot, TOMB);
                        ctx.write_slot();
                        self.table.live -= 1;
                        self.table.tombstones += 1;
                        self.deleted += 1;
                        op.done = true;
                    } else if k == EMPTY {
                        op.done = true;
                    }
                }
                ProbeGoal::Insert => {
                    if k == op.key {
                        ctx.raw_atomic(SLOT_SPACE, slot);
                        self.table.store.set_val(slot, op.val);
                        ctx.write_slot();
                        self.updated += 1;
                        op.done = true;
                    } else if k == EMPTY {
                        // Claim the first tombstone seen, else this slot.
                        let claim = op.first_free.unwrap_or(slot);
                        ctx.raw_atomic(SLOT_SPACE, claim);
                        let (old_k, _) = self.table.store.exchange(claim, op.key, op.val);
                        if old_k == TOMB {
                            self.table.tombstones -= 1;
                        }
                        ctx.write_slot();
                        self.table.live += 1;
                        self.inserted += 1;
                        op.done = true;
                    } else if k == TOMB && op.first_free.is_none() {
                        op.first_free = Some(slot);
                    }
                }
            }
            if !op.done {
                op.cursor = (op.cursor + 1) % n;
                op.probed += 1;
                if op.probed >= n {
                    // Wrapped the whole table.
                    match self.goal {
                        ProbeGoal::Insert => match op.first_free {
                            Some(claim) => {
                                ctx.raw_atomic(SLOT_SPACE, claim);
                                let (old_k, _) = self.table.store.exchange(claim, op.key, op.val);
                                if old_k == TOMB {
                                    self.table.tombstones -= 1;
                                }
                                ctx.write_slot();
                                self.table.live += 1;
                                self.inserted += 1;
                            }
                            None => self.failed += 1,
                        },
                        _ => self.results[result_idx] = None,
                    }
                    op.done = true;
                }
            }
            pending |= !op.done;
        }
        if pending {
            StepOutcome::Pending
        } else {
            StepOutcome::Done
        }
    }
}

impl LinearProbing {
    /// Create a table with `n_slots` slots.
    pub fn new(n_slots: usize, seed: u64, sim: &mut SimContext) -> Result<Self> {
        let n_slots = n_slots.max(1);
        let store = SlotStore::new(n_slots);
        sim.device.alloc(store.device_bytes())?;
        Ok(Self {
            store,
            n_slots,
            live: 0,
            tombstones: 0,
            hash: UniversalHash::from_seed(seed ^ 0x11EA_A311),
            schedule: SchedulePolicy::FixedOrder,
        })
    }

    /// Size for `items` keys at `target_fill`.
    pub fn with_capacity(
        items: usize,
        target_fill: f64,
        seed: u64,
        sim: &mut SimContext,
    ) -> Result<Self> {
        let slots = (items as f64 / target_fill).ceil() as usize;
        Self::new(slots, seed, sim)
    }

    fn run(
        &mut self,
        sim: &mut SimContext,
        goal: ProbeGoal,
        ops: Vec<(u32, u32)>,
    ) -> (Vec<Option<u32>>, u64, u64, u64, usize) {
        let n = ops.len();
        let mut results = vec![None; n];
        let mut inserted = 0;
        let mut updated = 0;
        let mut deleted = 0;
        let mut failed = 0;
        // Warps of 32 lane-ops; the kernel's results buffer is shared, so
        // run the warps in chunks carrying their output offset.
        for (w, chunk) in ops.chunks(WARP_SIZE).enumerate() {
            let mut lanes: Vec<LinOp> = chunk
                .iter()
                .map(|&(key, val)| LinOp {
                    key,
                    val,
                    cursor: self.hash.bucket(key, self.n_slots),
                    probed: 0,
                    first_free: None,
                    done: false,
                })
                .collect();
            let schedule = self.schedule;
            let mut kernel = LinKernel {
                table: self,
                goal,
                results: std::mem::take(&mut results),
                out_base: w * WARP_SIZE,
                inserted: 0,
                updated: 0,
                deleted: 0,
                failed: 0,
            };
            let mut warps = vec![std::mem::take(&mut lanes)];
            run_rounds_with(&mut kernel, &mut warps, &mut sim.metrics, schedule);
            results = kernel.results;
            inserted += kernel.inserted;
            updated += kernel.updated;
            deleted += kernel.deleted;
            failed += kernel.failed;
        }
        sim.metrics.charge(ChargeKind::Ops, n as u64);
        (results, inserted, updated, deleted, failed)
    }
}

impl GpuHashTable for LinearProbing {
    fn name(&self) -> &'static str {
        "Linear"
    }

    fn set_schedule(&mut self, policy: SchedulePolicy) {
        self.schedule = policy;
    }

    fn insert_batch(&mut self, sim: &mut SimContext, kvs: &[(u32, u32)]) -> Result<()> {
        if kvs.iter().any(|&(k, _)| k == EMPTY || k == TOMB) {
            return Err(TableError::ZeroKey);
        }
        let (_, _, _, _, failed) = self.run(sim, ProbeGoal::Insert, kvs.to_vec());
        if failed > 0 {
            return Err(TableError::CapacityExhausted { failed_ops: failed });
        }
        Ok(())
    }

    fn find_batch(&mut self, sim: &mut SimContext, keys: &[u32]) -> Vec<Option<u32>> {
        let ops: Vec<(u32, u32)> = keys.iter().map(|&k| (k, 0)).collect();
        self.run(sim, ProbeGoal::Find, ops).0
    }

    fn delete_batch(&mut self, sim: &mut SimContext, keys: &[u32]) -> Result<u64> {
        let ops: Vec<(u32, u32)> = keys.iter().map(|&k| (k, 0)).collect();
        let (_, _, _, deleted, _) = self.run(sim, ProbeGoal::Delete, ops);
        Ok(deleted)
    }

    fn len(&self) -> u64 {
        self.live
    }

    fn capacity_slots(&self) -> u64 {
        self.n_slots as u64
    }

    fn device_bytes(&self) -> u64 {
        self.store.device_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_find_roundtrip() {
        let mut sim = SimContext::new();
        let mut t = LinearProbing::new(512, 3, &mut sim).unwrap();
        let kvs: Vec<(u32, u32)> = (1..=200u32).map(|k| (k, k + 1)).collect();
        t.insert_batch(&mut sim, &kvs).unwrap();
        assert_eq!(t.len(), 200);
        let keys: Vec<u32> = (1..=200).collect();
        let found = t.find_batch(&mut sim, &keys);
        for (k, v) in keys.iter().zip(found) {
            assert_eq!(v, Some(k + 1));
        }
        assert_eq!(t.find_batch(&mut sim, &[999]), vec![None]);
    }

    #[test]
    fn delete_leaves_tombstones_probes_continue_past_them() {
        let mut sim = SimContext::new();
        let mut t = LinearProbing::new(128, 3, &mut sim).unwrap();
        let kvs: Vec<(u32, u32)> = (1..=100u32).map(|k| (k, k)).collect();
        t.insert_batch(&mut sim, &kvs).unwrap();
        let dels: Vec<u32> = (1..=50).collect();
        assert_eq!(t.delete_batch(&mut sim, &dels).unwrap(), 50);
        // Keys that may have probed past the deleted ones must survive.
        let keys: Vec<u32> = (51..=100).collect();
        assert!(t.find_batch(&mut sim, &keys).iter().all(|f| f.is_some()));
        // Tombstones are reused by inserts.
        let kvs2: Vec<(u32, u32)> = (201..=250u32).map(|k| (k, k)).collect();
        t.insert_batch(&mut sim, &kvs2).unwrap();
        assert_eq!(t.len(), 100);
    }

    #[test]
    fn probe_cost_grows_with_fill() {
        let run = |fill: f64| {
            let mut sim = SimContext::new();
            let items = 2000;
            let mut t = LinearProbing::with_capacity(items, fill, 3, &mut sim).unwrap();
            let kvs: Vec<(u32, u32)> = (1..=items as u32).map(|k| (k, k)).collect();
            t.insert_batch(&mut sim, &kvs).unwrap();
            sim.take_metrics();
            let keys: Vec<u32> = (1..=items as u32).collect();
            t.find_batch(&mut sim, &keys);
            sim.take_metrics().random_transactions()
        };
        // Primary clustering: probe cost must grow substantially with θ.
        assert!(
            run(0.9) as f64 > 1.5 * run(0.5) as f64,
            "dense table must probe much more"
        );
    }

    #[test]
    fn full_table_insert_fails() {
        let mut sim = SimContext::new();
        let mut t = LinearProbing::new(32, 3, &mut sim).unwrap();
        let kvs: Vec<(u32, u32)> = (1..=32u32).map(|k| (k, k)).collect();
        t.insert_batch(&mut sim, &kvs).unwrap();
        assert!(matches!(
            t.insert_batch(&mut sim, &[(100, 1)]),
            Err(TableError::CapacityExhausted { .. })
        ));
    }

    #[test]
    fn update_in_place() {
        let mut sim = SimContext::new();
        let mut t = LinearProbing::new(64, 3, &mut sim).unwrap();
        t.insert_batch(&mut sim, &[(5, 1)]).unwrap();
        t.insert_batch(&mut sim, &[(5, 2)]).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.find_batch(&mut sim, &[5]), vec![Some(2)]);
    }

    #[test]
    fn wraparound_probing_works() {
        // Force keys whose home slots sit near the end of the array.
        let mut sim = SimContext::new();
        let mut t = LinearProbing::new(8, 3, &mut sim).unwrap();
        let kvs: Vec<(u32, u32)> = (1..=8u32).map(|k| (k, k)).collect();
        t.insert_batch(&mut sim, &kvs).unwrap();
        assert_eq!(t.len(), 8);
        let keys: Vec<u32> = (1..=8).collect();
        assert!(t.find_batch(&mut sim, &keys).iter().all(|f| f.is_some()));
    }
}
