//! Service demo: stand up a sharded, batching KV service over DyCuckoo,
//! push a mixed workload through it, watch a shard shed load under
//! pressure, and print the per-shard metrics snapshot.
//!
//! Run with: `cargo run --release --example service_demo`

use gpu_sim::SimContext;
use kv_service::{AdmitError, KvService, Op, Reply, ServiceConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sim = SimContext::new();

    // Four shards, each an independent DyCuckoo table. Requests queue per
    // shard and flush as batches of up to 64, or after 4 simulated ticks —
    // whichever comes first. Queues are bounded at 256 with reads shed
    // above 192.
    let cfg = ServiceConfig {
        shards: 4,
        max_batch: 64,
        max_delay_ticks: 4,
        queue_capacity: 256,
        shed_watermark: 192,
        ..ServiceConfig::default()
    };
    let mut svc = KvService::new(cfg, &mut sim)?;

    // Phase 1: 20k puts from 8 logical clients, ticking the service clock
    // every 200 submissions (one batch per shard per tick).
    for k in 1..=20_000u32 {
        svc.submit(k % 8, Op::Put(k, k.wrapping_mul(31)))?;
        if k % 200 == 0 {
            svc.tick(&mut sim)?;
        }
    }
    while svc.queue_depths().iter().any(|&d| d > 0) {
        svc.tick(&mut sim)?;
    }
    let stored = svc.drain_completions().len();
    println!("stored {stored} keys across {} shards", svc.config().shards);

    // Phase 2: reads — including a read-your-writes window, where a Get
    // right after a Put in the same flush window is answered locally.
    svc.submit(0, Op::Put(77, 1234))?;
    svc.submit(0, Op::Get(77))?;
    svc.flush_all(&mut sim)?;
    let completions = svc.drain_completions();
    let get = completions.iter().find(|c| c.key == 77 && c.coalesced);
    println!(
        "read-your-writes: Get(77) -> {:?} (answered from the batch window: {})",
        get.map(|c| c.reply),
        get.is_some()
    );

    // Phase 3: overload one shard with a write/read mix, faster than it
    // drains. Above the watermark (192) reads are shed with a typed error
    // while writes are still admitted; at the hard cap (256) everything is
    // refused — the queue itself never grows past its bound.
    let hot_key = (20_001..=u32::MAX)
        .find(|&k| svc.router().shard_of(k) == 0)
        .unwrap();
    let (mut ok, mut shed, mut overloaded) = (0u32, 0u32, 0u32);
    for i in 0..600u32 {
        let op = if i % 2 == 0 {
            Op::Put(hot_key, i)
        } else {
            Op::Get(hot_key)
        };
        match svc.submit(9, op) {
            Ok(_) => ok += 1,
            Err(AdmitError::Shed { .. }) => shed += 1,
            Err(AdmitError::Overloaded { .. }) => overloaded += 1,
            Err(e) => return Err(e.into()),
        }
    }
    println!(
        "overloading shard 0: {ok} admitted, {shed} reads shed, {overloaded} refused at capacity \
         (queue depth {} <= bound 256)",
        svc.queue_depths()[0]
    );
    while svc.queue_depths().iter().any(|&d| d > 0) {
        svc.tick(&mut sim)?;
    }
    let hot_gets = svc
        .drain_completions()
        .iter()
        .filter(|c| c.key == hot_key && matches!(c.reply, Reply::Value(_)))
        .count();
    println!("admitted hot-key reads answered: {hot_gets}");

    // The snapshot: per-shard queue depths, batch occupancy, latency
    // quantiles, shed counts — deterministic text (or CSV via to_csv()).
    println!("\n{}", svc.snapshot().to_text());
    svc.release(&mut sim)?;
    Ok(())
}
