//! Hash-join build & probe — the classic database use of GPU hash tables
//! (the paper cites relational hash joins as a primary application).
//!
//! Build side: a "dimension" relation of unique IDs. Probe side: a much
//! larger "fact" relation whose foreign keys hit the dimension with some
//! selectivity. The example builds a DyCuckoo table over the dimension,
//! probes it with the fact table in batches, and reports simulated build
//! and probe throughput — the numbers a query optimizer would care about.
//!
//! Run with: `cargo run --release --example join_build`

use dycuckoo::{Config, DyCuckoo};
use gpu_sim::{CostModel, SimContext};
use workloads::keygen::unique_keys;
use workloads::mix64;

const DIM_ROWS: usize = 100_000;
const FACT_ROWS: usize = 1_000_000;
const SELECTIVITY_PCT: u64 = 75;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sim = SimContext::new();

    // Dimension relation: (id, payload-offset) pairs.
    let dim: Vec<(u32, u32)> = unique_keys(42, DIM_ROWS)
        .enumerate()
        .map(|(row, id)| (id, row as u32))
        .collect();

    // Build: size the table for the build side at the paper's default θ.
    let mut table = DyCuckoo::with_capacity(Config::default(), DIM_ROWS, 0.85, &mut sim)?;
    let before = sim.take_metrics();
    table.insert_batch(&mut sim, &dim)?;
    let build = sim.take_metrics();
    sim.metrics = before;
    let model = CostModel::new(sim.device.config());
    println!(
        "build:  {DIM_ROWS} rows in {:.2} simulated ms ({:.0} Mops), θ = {:.1}%",
        model.kernel_time_ns(&build) / 1e6,
        model.mops(build.ops, &build),
        table.fill_factor() * 100.0
    );

    // Probe: fact-table foreign keys, ~75% matching the dimension.
    let dim_ids: Vec<u32> = dim.iter().map(|&(id, _)| id).collect();
    let mut matches = 0u64;
    let mut probe_total = gpu_sim::Metrics::default();
    for chunk_start in (0..FACT_ROWS).step_by(100_000) {
        let probe_keys: Vec<u32> = (chunk_start..chunk_start + 100_000)
            .map(|i| {
                let r = mix64(i as u64 ^ 0xFAC7);
                if r % 100 < SELECTIVITY_PCT {
                    dim_ids[(r >> 8) as usize % dim_ids.len()]
                } else {
                    // A key outside the dimension (sentinel-safe).
                    (r as u32) | 0x8000_0001
                }
            })
            .collect();
        let before = sim.take_metrics();
        let results = table.find_batch(&mut sim, &probe_keys);
        probe_total.merge(&sim.take_metrics());
        sim.metrics = before;
        matches += results.iter().flatten().count() as u64;
    }
    println!(
        "probe:  {FACT_ROWS} rows in {:.2} simulated ms ({:.0} Mops), {} matches ({:.1}% observed selectivity)",
        model.kernel_time_ns(&probe_total) / 1e6,
        model.mops(probe_total.ops, &probe_total),
        matches,
        matches as f64 / FACT_ROWS as f64 * 100.0
    );
    println!(
        "probe cost: {:.2} bucket lookups per row (two-layer guarantee: ≤ 2)",
        probe_total.lookups as f64 / FACT_ROWS as f64
    );
    assert!(probe_total.lookups <= 2 * FACT_ROWS as u64);
    Ok(())
}
