//! **Profiling figure** — the paper's (in the end unpublished) GPU
//! profiling comparison: warp efficiency, cache-line utilization and
//! memory-bandwidth composition of every scheme's INSERT kernel.
//!
//! The simulator's counters map onto the profiler metrics:
//! * *warp efficiency* ≈ productive warp-steps over total warp-steps —
//!   failed lock acquisitions (spinning or re-voting) are unproductive.
//! * *line utilization* ≈ useful bytes over bytes moved: coalesced bucket
//!   transactions use the full 128-byte line; per-slot accesses use 8 of
//!   128 bytes.
//! * the memory mix (coalesced / uncoalesced / pointer-chased) shows each
//!   scheme's access pattern directly.
//!
//! All derived ratios are computed from counters read back out of the
//! unified telemetry registry (`bench::telemetry`), so `TELEMETRY_SNAP`
//! captures exactly the inputs of this table.

use bench::driver::{build_static, run_static, Scheme};
use bench::report::{fmt_pct, Table};
use bench::telemetry::{metrics_from_registry, Telemetry};
use bench::{scale, seed};
use gpu_sim::SimContext;
use workloads::dataset_by_name;

fn main() {
    let mut tel = Telemetry::from_env();
    let scale = scale();
    let seed = seed();
    let ds = dataset_by_name("RAND")
        .unwrap()
        .scaled(scale)
        .generate(seed);
    println!(
        "Profiling: INSERT kernel behaviour (RAND, {} pairs, θ=85%)",
        ds.len()
    );

    for scheme in Scheme::static_set() {
        let mut sim = SimContext::new();
        let mut table = build_static(scheme, ds.unique_keys, 0.85, seed, &mut sim);
        let r = run_static(table.as_mut(), &mut sim, &ds, 0, seed);
        r.insert.metrics.register_into(
            tel.registry(),
            &[
                ("figure", "profiling"),
                ("kernel", "insert"),
                ("scheme", scheme.label()),
            ],
        );
    }

    let mut t = Table::new(&[
        "scheme",
        "warp efficiency",
        "line utilization",
        "coalesced",
        "uncoalesced",
        "chained",
        "atomics/op",
        "evictions/op",
    ]);
    for scheme in Scheme::static_set() {
        let labels = [
            ("figure", "profiling"),
            ("kernel", "insert"),
            ("scheme", scheme.label()),
        ];
        let m = metrics_from_registry(tel.registry(), &labels);
        let total_mem = m.transactions() + m.random_transactions() + m.dependent_read_transactions;
        // Productive steps ≈ one per op completion event; lock failures are
        // pure waste.
        let productive = m.ops + m.evictions;
        let steps = productive + m.lock_failures;
        let warp_eff = productive as f64 / steps.max(1) as f64;
        // Coalesced and chained lines are fully used; random slot accesses
        // use 8 of 128 bytes.
        let useful = (m.transactions() + m.dependent_read_transactions) as f64
            + m.random_transactions() as f64 * (8.0 / 128.0);
        t.row(vec![
            scheme.label().to_string(),
            fmt_pct(warp_eff),
            fmt_pct(useful / total_mem.max(1) as f64),
            fmt_pct(m.transactions() as f64 / total_mem.max(1) as f64),
            fmt_pct(m.random_transactions() as f64 / total_mem.max(1) as f64),
            fmt_pct(m.dependent_read_transactions as f64 / total_mem.max(1) as f64),
            format!("{:.2}", m.atomic_ops as f64 / m.ops.max(1) as f64),
            format!("{:.3}", m.evictions as f64 / m.ops.max(1) as f64),
        ]);
    }
    t.print("Profiling: INSERT kernels at θ=85% (RAND)");
    tel.finish();
}
