//! Offline stand-in for a [loom](https://crates.io/crates/loom)-style
//! interleaving explorer.
//!
//! This workspace must build and test **without registry access** (the
//! tier-1 gate is `cargo build --release && cargo test -q` on an offline
//! machine), so the real loom cannot be resolved — and loom's model of
//! real `std::sync` types is heavier than the host-par lock protocol
//! needs. This vendored crate implements the subset the workspace's
//! interleaving tests use: **exhaustive depth-first exploration of every
//! schedule of a small, explicitly modeled protocol**, with deadlock
//! detection.
//!
//! The model is deliberately simple:
//!
//! * Shared state is a plain value `S` the test defines — locks are
//!   boolean flags, slots are `Option`s, whatever the protocol needs.
//! * Each thread is a closure `FnMut(&mut S) -> Step` that performs **one
//!   atomic step per call** and reports [`Step::Ready`] (made progress),
//!   [`Step::Blocked`] (cannot progress until another thread changes the
//!   state — the call must not have mutated `S`), or [`Step::Done`].
//! * [`explore`] rebuilds the whole execution from the `factory` closure
//!   once per schedule and drives the threads through every possible
//!   interleaving: at each scheduling point it branches over every thread
//!   that is neither done nor known-blocked. A thread that returns
//!   `Blocked` leaves the candidate set until *any* other thread makes
//!   progress (progress may unblock it); if every live thread is blocked,
//!   the schedule is a **deadlock** and is recorded in the [`Report`].
//!
//! Everything is deterministic: schedules are enumerated in a fixed
//! depth-first order, so a failure always reproduces and the schedule
//! that produced it (a sequence of thread indices) is a committable
//! artifact.
//!
//! ```
//! use interleave::{explore, Step};
//!
//! // Two threads each increment a shared counter twice.
//! let report = explore(
//!     || {
//!         let mk = || {
//!             let mut left = 2u32;
//!             Box::new(move |s: &mut u32| {
//!                 *s += 1;
//!                 left -= 1;
//!                 if left == 0 { Step::Done } else { Step::Ready }
//!             }) as interleave::ThreadFn<u32>
//!         };
//!         (0u32, vec![mk(), mk()])
//!     },
//!     |state, _schedule| assert_eq!(*state, 4),
//! );
//! assert_eq!(report.completed, 6); // C(4,2) interleavings of 2+2 steps
//! assert_eq!(report.deadlocks, 0);
//! ```

/// What one thread step did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// The thread made progress and has more steps to run.
    Ready,
    /// The thread cannot progress until another thread changes the shared
    /// state (e.g. a modeled lock is held). The step must not have
    /// mutated the state — the explorer treats it as a no-op and will not
    /// reschedule the thread until some other thread progresses.
    Blocked,
    /// The thread finished; it is never scheduled again.
    Done,
}

/// One modeled thread: a state machine advanced one atomic step per call.
pub type ThreadFn<S> = Box<dyn FnMut(&mut S) -> Step>;

/// What an exploration found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// Schedules executed (completed + deadlocked).
    pub schedules: u64,
    /// Schedules on which every thread reached [`Step::Done`].
    pub completed: u64,
    /// Schedules on which every live thread was blocked.
    pub deadlocks: u64,
    /// The first deadlocking schedule, as the sequence of thread indices
    /// that was stepped (a committable repro).
    pub first_deadlock: Option<Vec<usize>>,
    /// The exploration hit the schedule cap before exhausting the tree;
    /// counts above are lower bounds, not totals.
    pub truncated: bool,
}

/// Default schedule cap for [`explore`]: far beyond any protocol small
/// enough to model here, but a hard stop against an accidental state-space
/// explosion hanging the test suite.
pub const DEFAULT_CAP: u64 = 1 << 20;

/// Per-schedule step cap: a thread looping `Ready` forever is a test bug
/// (the explorer can only terminate if every thread eventually finishes),
/// so it panics rather than hanging.
const MAX_STEPS_PER_SCHEDULE: usize = 100_000;

/// Exhaustively explore every interleaving of the threads built by
/// `factory`, calling `on_complete(&final_state, &schedule)` once per
/// schedule on which every thread finished. Deadlocks do not call
/// `on_complete`; they are counted (and the first one recorded) in the
/// returned [`Report`]. Equivalent to [`explore_capped`] with
/// [`DEFAULT_CAP`].
pub fn explore<S>(
    factory: impl Fn() -> (S, Vec<ThreadFn<S>>),
    on_complete: impl FnMut(&S, &[usize]),
) -> Report {
    explore_capped(DEFAULT_CAP, factory, on_complete)
}

/// [`explore`] with an explicit schedule cap. When the cap is hit the
/// report's `truncated` flag is set and exploration stops early.
pub fn explore_capped<S>(
    cap: u64,
    factory: impl Fn() -> (S, Vec<ThreadFn<S>>),
    mut on_complete: impl FnMut(&S, &[usize]),
) -> Report {
    // The DFS frontier: at decision point `d` of the current schedule,
    // `stack[d]` indexes into that point's candidate list. Each iteration
    // replays the prefix recorded in `stack` from a fresh `factory()`
    // execution (threads carry internal state, so there is no way to
    // rewind them — rebuilding is the loom approach too), extends it with
    // first-candidate choices to a terminal state, then backtracks to the
    // deepest point with an untried alternative.
    let mut stack: Vec<usize> = Vec::new();
    let mut report = Report::default();
    loop {
        if report.schedules >= cap {
            report.truncated = true;
            return report;
        }
        let (mut state, mut threads) = factory();
        let n = threads.len();
        let mut done = vec![false; n];
        let mut blocked = vec![false; n];
        let mut schedule: Vec<usize> = Vec::new();
        // Candidate-set size at each decision point of THIS schedule,
        // aligned with `stack`; consulted by the backtracking step below.
        let mut width: Vec<usize> = Vec::new();
        let deadlocked = loop {
            let cands: Vec<usize> = (0..n).filter(|&t| !done[t] && !blocked[t]).collect();
            if cands.is_empty() {
                break !done.iter().all(|&d| d);
            }
            let depth = width.len();
            if depth >= stack.len() {
                stack.push(0);
            }
            let t = cands[stack[depth]];
            width.push(cands.len());
            schedule.push(t);
            assert!(
                schedule.len() <= MAX_STEPS_PER_SCHEDULE,
                "a modeled thread never finishes (over {MAX_STEPS_PER_SCHEDULE} steps)"
            );
            match threads[t](&mut state) {
                Step::Ready => blocked.fill(false),
                Step::Done => {
                    done[t] = true;
                    blocked.fill(false);
                }
                Step::Blocked => blocked[t] = true,
            }
        };
        report.schedules += 1;
        if deadlocked {
            report.deadlocks += 1;
            if report.first_deadlock.is_none() {
                report.first_deadlock = Some(schedule.clone());
            }
        } else {
            report.completed += 1;
            on_complete(&state, &schedule);
        }
        // Backtrack: drop exhausted tail decisions, advance the deepest
        // one that still has an untried candidate.
        stack.truncate(width.len());
        while let (Some(&choice), Some(&w)) = (stack.last(), width.last()) {
            if choice + 1 < w {
                *stack.last_mut().unwrap() += 1;
                break;
            }
            stack.pop();
            width.pop();
        }
        if stack.is_empty() {
            return report;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A thread that runs `steps` unconditional increments.
    fn incrementer(steps: u32) -> ThreadFn<u32> {
        let mut left = steps;
        Box::new(move |s: &mut u32| {
            *s += 1;
            left -= 1;
            if left == 0 {
                Step::Done
            } else {
                Step::Ready
            }
        })
    }

    #[test]
    fn enumerates_every_interleaving_exactly_once() {
        // 2 threads x 2 steps: C(4,2) = 6 interleavings, each seen once.
        let mut seen = Vec::new();
        let report = explore(
            || (0u32, vec![incrementer(2), incrementer(2)]),
            |state, schedule| {
                assert_eq!(*state, 4);
                seen.push(schedule.to_vec());
            },
        );
        assert_eq!(report.completed, 6);
        assert_eq!(report.deadlocks, 0);
        assert!(!report.truncated);
        let mut dedup = seen.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), seen.len(), "a schedule repeated");
    }

    #[test]
    fn single_thread_has_one_schedule() {
        let report = explore(
            || (0u32, vec![incrementer(3)]),
            |state, schedule| {
                assert_eq!(*state, 3);
                assert_eq!(schedule, [0, 0, 0]);
            },
        );
        assert_eq!(report.schedules, 1);
    }

    /// Lock-ordered acquisition: both threads take flag locks 0 then 1 —
    /// blocking (without state change) when the flag is held — and every
    /// schedule completes.
    fn ordered_locker(order: [usize; 2]) -> ThreadFn<[bool; 2]> {
        let mut pc = 0usize;
        Box::new(move |locks: &mut [bool; 2]| match pc {
            0 | 1 => {
                let l = order[pc];
                if locks[l] {
                    Step::Blocked
                } else {
                    locks[l] = true;
                    pc += 1;
                    Step::Ready
                }
            }
            2 => {
                locks[order[1]] = false;
                pc += 1;
                Step::Ready
            }
            _ => {
                locks[order[0]] = false;
                Step::Done
            }
        })
    }

    #[test]
    fn consistent_lock_order_never_deadlocks() {
        let report = explore(
            || {
                (
                    [false; 2],
                    vec![ordered_locker([0, 1]), ordered_locker([0, 1])],
                )
            },
            |locks, _| assert_eq!(*locks, [false; 2]),
        );
        assert!(report.completed > 0);
        assert_eq!(report.deadlocks, 0);
    }

    #[test]
    fn opposite_lock_order_deadlocks_and_reports_the_schedule() {
        let report = explore(
            || {
                (
                    [false; 2],
                    vec![ordered_locker([0, 1]), ordered_locker([1, 0])],
                )
            },
            |_, _| {},
        );
        assert!(report.deadlocks > 0, "AB/BA must deadlock on some schedule");
        assert!(report.completed > 0, "and complete on others");
        let repro = report.first_deadlock.expect("deadlock schedule recorded");
        // The classic repro: each thread takes its first lock, then both
        // block on the other's.
        assert!(repro.contains(&0) && repro.contains(&1));
    }

    #[test]
    fn blocked_thread_resumes_after_progress() {
        // Thread 1 blocks until thread 0 sets the flag; every schedule
        // must still complete.
        let report = explore(
            || {
                let setter: ThreadFn<bool> = Box::new(|flag: &mut bool| {
                    *flag = true;
                    Step::Done
                });
                let waiter: ThreadFn<bool> =
                    Box::new(|flag: &mut bool| if *flag { Step::Done } else { Step::Blocked });
                (false, vec![setter, waiter])
            },
            |flag, _| assert!(*flag),
        );
        assert!(report.completed > 0);
        assert_eq!(report.deadlocks, 0);
    }

    #[test]
    fn cap_truncates_instead_of_hanging() {
        let report = explore_capped(
            3,
            || (0u32, vec![incrementer(4), incrementer(4), incrementer(4)]),
            |_, _| {},
        );
        assert!(report.truncated);
        assert_eq!(report.schedules, 3);
    }
}
