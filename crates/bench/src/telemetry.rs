//! Opt-in telemetry plumbing for the figure binaries.
//!
//! Every experiment binary that participates in the unified-telemetry CI
//! job creates one [`Telemetry`] at the top of `main` and calls
//! [`Telemetry::finish`] at the end. Between the two, it registers its
//! per-run counters into [`Telemetry::registry`] — the same
//! [`obs::Registry`] namespace the library crates feed
//! (`gpu_sim::Metrics::register_into`, `ShardMetrics::register_into`).
//!
//! Control is entirely environmental, so the default run of every binary
//! is byte-identical to a build without the recorder:
//!
//! * `TELEMETRY_SNAP=<path>` — write the registry as deterministic text
//!   (`Registry::to_text`) at exit. CI diffs this against a pinned
//!   baseline.
//! * `TELEMETRY_TRACE=<path>` — write the flight-recorder ring as a
//!   Chrome `trace_event` JSON document (loads in Perfetto /
//!   `chrome://tracing`).
//!
//! Setting either variable arms the flight recorder for the whole process
//! so the snapshot proves the recording-on path, not just the registry.

use std::path::PathBuf;

/// Ring capacity used by the figure binaries: large enough that scaled CI
/// runs never wrap (wrapping is counted, not fatal — see `trace_dropped`
/// in the snapshot).
pub const RING_CAPACITY: usize = 1 << 20;

/// Environment-driven telemetry session for one experiment binary.
pub struct Telemetry {
    snap: Option<PathBuf>,
    trace: Option<PathBuf>,
    registry: obs::Registry,
}

impl Telemetry {
    /// Read `TELEMETRY_SNAP` / `TELEMETRY_TRACE` and, if either is set,
    /// arm the flight recorder. With neither set this is free: the
    /// recorder stays disarmed and [`Telemetry::finish`] writes nothing.
    pub fn from_env() -> Self {
        let path = |name: &str| std::env::var_os(name).map(PathBuf::from);
        let tel = Self {
            snap: path("TELEMETRY_SNAP"),
            trace: path("TELEMETRY_TRACE"),
            registry: obs::Registry::new(),
        };
        if tel.active() {
            obs::start(RING_CAPACITY);
        }
        tel
    }

    /// Whether any telemetry output was requested.
    pub fn active(&self) -> bool {
        self.snap.is_some() || self.trace.is_some()
    }

    /// The unified registry this session accumulates into.
    pub fn registry(&mut self) -> &mut obs::Registry {
        &mut self.registry
    }

    /// Disarm the recorder and write the requested artifacts. Exits with
    /// code 1 on I/O failure so CI cannot silently pass on a missing
    /// snapshot.
    pub fn finish(mut self) {
        if !self.active() {
            return;
        }
        let trace = obs::stop();
        // Fold the recorder's own accounting into the snapshot: proof the
        // recording-on path ran, and a tripwire for ring wrap-around.
        self.registry
            .counter("trace_events", &[], trace.events.len() as u64);
        self.registry.counter("trace_dropped", &[], trace.dropped);
        let write = |path: &PathBuf, contents: &str| {
            if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                let _ = std::fs::create_dir_all(dir);
            }
            if let Err(e) = std::fs::write(path, contents) {
                eprintln!("telemetry: cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
        };
        if let Some(path) = &self.snap {
            write(path, &self.registry.to_text());
        }
        if let Some(path) = &self.trace {
            write(path, &obs::export::chrome_trace(&trace.events));
        }
    }
}

/// Read a [`gpu_sim::Metrics`] back out of a unified registry under the
/// `sim_` namespace — the inverse of `Metrics::register_into`. Missing
/// entries read as zero, so a label set that was never registered yields
/// `Metrics::default()`.
pub fn metrics_from_registry(reg: &obs::Registry, labels: &[(&str, &str)]) -> gpu_sim::Metrics {
    let g = |name: &str| reg.get_counter(name, labels).unwrap_or(0);
    gpu_sim::Metrics {
        read_transactions: g("sim_read_transactions"),
        write_transactions: g("sim_write_transactions"),
        random_read_transactions: g("sim_random_read_transactions"),
        random_write_transactions: g("sim_random_write_transactions"),
        dependent_read_transactions: g("sim_dependent_read_transactions"),
        atomic_ops: g("sim_atomic_ops"),
        atomic_serial_units: g("sim_atomic_serial_units"),
        rounds: g("sim_rounds"),
        lookups: g("sim_lookups"),
        evictions: g("sim_evictions"),
        lock_failures: g("sim_lock_failures"),
        ops: g("sim_ops"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_roundtrip_through_registry() {
        let m = gpu_sim::Metrics {
            read_transactions: 1,
            write_transactions: 2,
            random_read_transactions: 3,
            random_write_transactions: 4,
            dependent_read_transactions: 5,
            atomic_ops: 6,
            atomic_serial_units: 7,
            rounds: 8,
            lookups: 9,
            evictions: 10,
            lock_failures: 11,
            ops: 12,
        };
        let mut reg = obs::Registry::new();
        let labels = [("scheme", "dycuckoo"), ("kernel", "insert")];
        m.register_into(&mut reg, &labels);
        assert_eq!(metrics_from_registry(&reg, &labels), m);
        // An unknown label set reads back as all-zero, not a panic.
        assert_eq!(
            metrics_from_registry(&reg, &[("scheme", "nope")]),
            gpu_sim::Metrics::default()
        );
    }
}
