//! Warp-centric `delete`: no locking.
//!
//! As in the paper, deletion inspects the candidate buckets that could hold
//! the key (two under the two-layer scheme) and erases the key slot on a
//! match. Because each lane inspects a distinct slot and erasure only
//! writes the key line, no lock is required. Under
//! [`crate::DupPolicy::Upsert`] a key is unique, so the probe stops at the
//! first hit; under [`crate::DupPolicy::PaperInsert`] every candidate is
//! scanned so stray duplicates are cleaned up too.

use gpu_sim::{run_rounds_with, Metrics, RoundCtx, RoundKernel, StepOutcome};

use crate::config::DupPolicy;
use crate::subtable::SubTable;
use crate::table::migration::{MigrationView, Route};
use crate::table::TableShape;

pub(crate) struct DeleteWarp {
    keys: Vec<u32>,
    cur: usize,
    cand_idx: usize,
    /// Whether the current key has erased at least one slot so far
    /// (flight-recorder outcome accounting only).
    erased_cur: bool,
}

struct DeleteKernel<'a> {
    tables: &'a mut [SubTable],
    shape: &'a TableShape,
    /// In-flight incremental migration: probes of the draining subtable are
    /// routed per key to its old or fresh bucket — still exactly one probe
    /// per candidate subtable, so the two-lookup bound holds mid-migration.
    migration: Option<(MigrationView, &'a mut SubTable)>,
    deleted: u64,
}

impl RoundKernel<DeleteWarp> for DeleteKernel<'_> {
    fn step(&mut self, warp: &mut DeleteWarp, ctx: &mut RoundCtx) -> StepOutcome {
        let Some(&key) = warp.keys.get(warp.cur) else {
            return StepOutcome::Done;
        };
        let cands = self.shape.candidates(key);
        let t = cands.get(warp.cand_idx);
        let hash = &self.shape.hashes[t];
        let (table, bucket): (&mut SubTable, usize) = match self.migration.as_mut() {
            Some((view, fresh)) if view.table == t => match view.route(hash, key) {
                Route::Old(b) => (&mut self.tables[t], b),
                Route::Fresh(b) => (&mut **fresh, b),
            },
            _ => {
                let n = self.tables[t].n_buckets();
                (&mut self.tables[t], hash.bucket(key, n))
            }
        };
        let mut finished = false;
        if let Some(slot) = table.probe_find(bucket, key, ctx) {
            table.erase(bucket, slot);
            self.shape.cfg.layout.charge_key_write(ctx);
            self.deleted += 1;
            warp.erased_cur = true;
            // Keys are unique under Upsert: done with this op. Under
            // PaperInsert, keep scanning the remaining candidates to clean
            // up potential duplicates.
            if self.shape.cfg.dup_policy == DupPolicy::Upsert {
                finished = true;
            }
        }
        warp.cand_idx += 1;
        if finished || warp.cand_idx == cands.len() {
            if obs::is_enabled() {
                obs::emit(obs::Event::OpRetired {
                    kind: obs::OpKind::Delete,
                    op: 0,
                    key: key as u64,
                    outcome: if warp.erased_cur {
                        obs::OpOutcome::Deleted
                    } else {
                        obs::OpOutcome::Miss
                    },
                    probes: warp.cand_idx as u32,
                    evict_depth: 0,
                    lock_waits: 0,
                });
            }
            warp.erased_cur = false;
            warp.cur += 1;
            warp.cand_idx = 0;
        }
        if warp.cur == warp.keys.len() {
            StepOutcome::Done
        } else {
            StepOutcome::Pending
        }
    }
}

/// Execute a batched delete. Returns the number of erased slots.
pub(crate) fn delete_batch<'a>(
    tables: &'a mut [SubTable],
    shape: &'a TableShape,
    keys: &[u32],
    migration: Option<(MigrationView, &'a mut SubTable)>,
    metrics: &mut Metrics,
) -> u64 {
    let mut warps: Vec<DeleteWarp> = keys
        .chunks(gpu_sim::WARP_SIZE)
        .map(|chunk| DeleteWarp {
            keys: chunk.to_vec(),
            cur: 0,
            cand_idx: 0,
            erased_cur: false,
        })
        .collect();
    let mut kernel = DeleteKernel {
        tables,
        shape,
        migration,
        deleted: 0,
    };
    let recording = obs::is_enabled();
    let rounds_before = metrics.rounds;
    if recording {
        obs::span_begin(obs::Event::LaunchBegin {
            kind: obs::OpKind::Delete,
            warps: warps.len() as u32,
        });
    }
    run_rounds_with(&mut kernel, &mut warps, metrics, shape.cfg.schedule);
    if recording {
        obs::span_end(obs::Event::LaunchEnd {
            rounds: metrics.rounds - rounds_before,
        });
    }
    kernel.deleted
}
