//! Stream counting — the paper's motivating scenario: tracking retweet
//! counts for active Twitter accounts over a sliding window. Accounts
//! appear and expire continuously, so the active set grows and shrinks and
//! a static table would either overflow or waste memory.
//!
//! This example replays a synthetic skewed action stream in batches:
//! each batch increments counters for the accounts it mentions (read +
//! upsert), then expires accounts idle for too long (batch delete). The
//! DyCuckoo table tracks the active population, resizing itself both ways.
//!
//! Run with: `cargo run --release --example stream_counter`

use std::collections::HashMap;

use dycuckoo::{Config, DyCuckoo};
use gpu_sim::SimContext;
use workloads::zipf::Zipf;

const BATCHES: usize = 40;
const ACTIONS_PER_BATCH: usize = 20_000;
const ACCOUNT_UNIVERSE: u64 = 400_000;
/// Batches of inactivity before an account expires from the window.
const EXPIRE_AFTER: usize = 3;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sim = SimContext::new();
    let mut table = DyCuckoo::new(Config::default(), &mut sim)?;

    // Host-side bookkeeping for expiry (the table stores the counters).
    let mut last_seen: HashMap<u32, usize> = HashMap::new();
    let zipf = Zipf::new(ACCOUNT_UNIVERSE, 1.05);

    for batch in 0..BATCHES {
        // The stream drifts: later batches mention a shifted slice of the
        // account universe, so old accounts go idle.
        let drift = (batch as u64) * 12_000;
        let mentions: Vec<u32> = (0..ACTIONS_PER_BATCH)
            .map(|i| {
                let rank = zipf.sample(workloads::mix64((batch * ACTIONS_PER_BATCH + i) as u64));
                ((rank + drift) % ACCOUNT_UNIVERSE) as u32 + 1
            })
            .collect();

        // Aggregate increments host-side (one upsert per distinct account,
        // as a real pipeline would), then apply as one batch.
        let mut increments: HashMap<u32, u32> = HashMap::new();
        for &account in &mentions {
            *increments.entry(account).or_insert(0) += 1;
            last_seen.insert(account, batch);
        }
        let current = table.find_batch(&mut sim, &increments.keys().copied().collect::<Vec<_>>());
        let updates: Vec<(u32, u32)> = increments
            .iter()
            .zip(current)
            .map(|((&account, &delta), old)| (account, old.unwrap_or(0) + delta))
            .collect();
        table.insert_batch(&mut sim, &updates)?;

        // Expire idle accounts.
        let expired: Vec<u32> = last_seen
            .iter()
            .filter(|(_, &seen)| batch >= EXPIRE_AFTER && seen + EXPIRE_AFTER <= batch)
            .map(|(&account, _)| account)
            .collect();
        for account in &expired {
            last_seen.remove(account);
        }
        table.delete_batch(&mut sim, &expired)?;

        if batch % 5 == 4 {
            println!(
                "batch {batch:2}: {:>7} active accounts, θ = {:>5.1}%, {:>6} KiB on device",
                table.len(),
                table.fill_factor() * 100.0,
                table.device_bytes() / 1024
            );
        }
    }

    let metrics = sim.take_metrics();
    println!(
        "\nprocessed {} table ops in {:.2} simulated ms ({:.0} Mops)",
        metrics.ops,
        gpu_sim::CostModel::new(sim.device.config()).kernel_time_ns(&metrics) / 1e6,
        gpu_sim::CostModel::new(sim.device.config()).mops(metrics.ops, &metrics)
    );
    println!(
        "filled factor stayed in [{:.0}%, {:.0}%] by design; final table: {} KiB",
        table.config().alpha * 100.0,
        table.config().beta * 100.0,
        table.device_bytes() / 1024
    );
    Ok(())
}
