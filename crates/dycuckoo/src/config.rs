//! Configuration of a [`crate::DyCuckoo`] table.

use gpu_sim::{LayoutConfig, SchedulePolicy};

use crate::error::Error;

/// Number of key slots per bucket under the default layout. The paper
/// sizes buckets so that 32 four-byte keys fill one 128-byte cache line,
/// letting one warp probe a whole bucket with a single coalesced
/// transaction. Non-default [`Config::layout`] values sweep other widths.
pub const BUCKET_SLOTS: usize = 32;

/// How duplicate keys are handled by `insert`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DupPolicy {
    /// Library semantics: a fresh insert first probes both buckets of the
    /// key's first-layer pair; if the key exists anywhere, its value is
    /// updated in place. Guarantees each key resides in at most one slot.
    Upsert,
    /// Paper semantics (Algorithm 1): only the single bucket being inserted
    /// into is inspected for a match. A key already stored in the *other*
    /// subtable of its pair is not detected, which mirrors the original
    /// kernels' cost profile exactly. Used by the experiment harness.
    PaperInsert,
}

/// How keys are mapped to candidate subtables — the paper's two-layer
/// scheme and the two alternatives it argues against (Section "The
/// Two-layer Approach"), kept for ablation experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layering {
    /// The paper's scheme: a first-layer hash picks one of the `C(d,2)`
    /// subtable pairs; the key lives in one member. ≤ 2 lookups, and any
    /// subtable can absorb skew.
    TwoLayer,
    /// Partition-into-pairs: the first layer picks one of `d/2` *disjoint*
    /// pairs. Still ≤ 2 lookups, but a partition's load cannot spill into
    /// other subtables — the skew problem the paper calls out. Requires an
    /// even `d`.
    DisjointPairs,
    /// Plain d-ary cuckoo: a key may live in any subtable, so find and
    /// delete probe up to `d` buckets.
    PlainD,
}

/// How a warp reacts to a failed bucket-lock acquisition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coordination {
    /// The paper's voter scheme: re-vote a different leader and come back
    /// to the contended bucket later.
    Voter,
    /// Spin on the same bucket until the lock is acquired (the direct
    /// warp-centric approach the paper argues against).
    Spin,
}

/// How an insert choosing between the two subtables of a pair (and an
/// eviction choosing its victim) is steered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// Theorem 1 of the paper: pick subtable `i` with probability
    /// proportional to `n_i / C(m_i, 2)`, equalizing expected conflicts.
    Balanced,
    /// Uniform random choice (ablation baseline).
    Uniform,
}

/// Tunable parameters of a DyCuckoo table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Config {
    /// Number of subtables `d` (the paper's default for the evaluation is 4).
    pub num_tables: usize,
    /// Initial number of buckets per subtable. Even counts are
    /// recommended: a subtable with an odd bucket count cannot be halved
    /// cleanly, so it stops downsizing at that size.
    pub initial_buckets: usize,
    /// Lower bound `α` on the overall filled factor; falling below triggers
    /// a downsize of the largest subtable.
    pub alpha: f64,
    /// Upper bound `β` on the overall filled factor; exceeding it triggers
    /// an upsize of the smallest subtable.
    pub beta: f64,
    /// Maximum cuckoo evictions per insert before the operation is declared
    /// failed (which triggers an upsize and a retry).
    pub eviction_limit: u32,
    /// Seed for hash-function parameters and distribution coin flips.
    pub seed: u64,
    /// Duplicate-key handling.
    pub dup_policy: DupPolicy,
    /// Insert/eviction steering strategy.
    pub distribution: Distribution,
    /// Key-to-subtable mapping scheme.
    pub layering: Layering,
    /// Lock-contention reaction.
    pub coordination: Coordination,
    /// Whether a fresh insert may try its remaining candidate buckets
    /// before evicting (standard bucketized-cuckoo practice; default).
    /// `false` reproduces Algorithm 1 literally: the chosen bucket is
    /// inspected once and a full bucket evicts immediately.
    pub reroute_before_evict: bool,
    /// Capacity of the overflow stash (see [`crate::stash`]) that absorbs
    /// failed eviction chains instead of cascading upsizes — this crate's
    /// implementation of the paper's future-work item. 0 (the default)
    /// disables it, reproducing the paper's exact behaviour.
    pub stash_capacity: usize,
    /// Within-round warp ordering for every kernel launch this table
    /// performs. The default fixed order is what the experiment harness
    /// measures; the exploration harness sweeps the other policies.
    pub schedule: SchedulePolicy,
    /// Bucket memory layout (scheme × width) for every subtable. The
    /// default — split arrays, 32 four-byte slots — is the paper's layout
    /// and charges exactly the transaction sequence the original kernels
    /// did; other layouts re-cost the same logical execution (see
    /// `gpu_sim::engine::layout`).
    pub layout: LayoutConfig,
    /// Fault injection for the exploration harness: when set, the insert
    /// kernel skips bucket locking and operates on stale bucket snapshots
    /// (held for a whole kernel launch), recreating the classic "two
    /// threads claim the same empty slot" lost-update race. Exists so the
    /// oracle + shrinker can be
    /// demonstrated against a real bug; never enable outside tests.
    pub inject_lock_elision: bool,
    /// Maximum buckets rehashed per migration quantum. The default,
    /// `usize::MAX`, performs each structural resize as one stop-the-world
    /// pass inside the triggering batch — the paper's behaviour, preserved
    /// bit-for-bit. Any finite value turns resizes into an incremental
    /// migration: the [`crate::table::MigrationMachine`] drains at most
    /// this many buckets per quantum while foreground operations keep
    /// serving from a coherent old/new view (see `table/migration.rs`).
    pub migration_quantum: usize,
    /// Resize hysteresis: after a resize in one direction, a resize in the
    /// *opposite* direction is suppressed until this many batches have
    /// completed. 0 (the default) disables hysteresis, reproducing the
    /// historical decide-every-batch behaviour. Same-direction resizes are
    /// never suppressed — convergence under sustained growth or shrinkage
    /// is unaffected.
    pub resize_cooldown: u32,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            num_tables: 4,
            initial_buckets: 64,
            alpha: 0.30,
            beta: 0.85,
            eviction_limit: 64,
            seed: 0xDC0C_2021,
            dup_policy: DupPolicy::Upsert,
            distribution: Distribution::Balanced,
            layering: Layering::TwoLayer,
            coordination: Coordination::Voter,
            reroute_before_evict: true,
            stash_capacity: 0,
            schedule: SchedulePolicy::FixedOrder,
            layout: LayoutConfig::soa(BUCKET_SLOTS, 4, 4),
            inject_lock_elision: false,
            migration_quantum: usize::MAX,
            resize_cooldown: 0,
        }
    }
}

impl Config {
    /// Validate the configuration, returning a descriptive error for any
    /// parameter combination that cannot work.
    pub fn validate(&self) -> Result<(), Error> {
        if self.num_tables < 2 || self.num_tables > 16 {
            return Err(Error::InvalidConfig(format!(
                "num_tables must be in 2..=16, got {}",
                self.num_tables
            )));
        }
        if self.initial_buckets == 0 {
            return Err(Error::InvalidConfig(
                "initial_buckets must be positive".to_string(),
            ));
        }
        if !(0.0..1.0).contains(&self.alpha) || !(0.0..=1.0).contains(&self.beta) {
            return Err(Error::InvalidConfig(format!(
                "filled-factor bounds must lie in [0,1): alpha={}, beta={}",
                self.alpha, self.beta
            )));
        }
        // Resizing must converge: one upsize from θ slightly above β lands at
        // θ·(d+d')/(d+d'+1) ≥ β·d/(d+1), which must still exceed α, and the
        // mirror condition holds for downsizing. Both reduce to the bound
        // below (Section "Filled factor analysis" of the paper).
        let d = self.num_tables as f64;
        if self.alpha >= self.beta * d / (d + 1.0) {
            return Err(Error::InvalidConfig(format!(
                "alpha ({}) must be below beta·d/(d+1) = {:.3} for resizing to converge",
                self.alpha,
                self.beta * d / (d + 1.0)
            )));
        }
        if self.layering == Layering::DisjointPairs && !self.num_tables.is_multiple_of(2) {
            return Err(Error::InvalidConfig(format!(
                "DisjointPairs layering needs an even number of subtables, got {}",
                self.num_tables
            )));
        }
        if self.eviction_limit == 0 {
            return Err(Error::InvalidConfig(
                "eviction_limit must be positive".to_string(),
            ));
        }
        if let Err(e) = self.layout.validate() {
            return Err(Error::InvalidConfig(e));
        }
        if self.layout.key_bytes != 4 || self.layout.val_bytes != 4 {
            return Err(Error::InvalidConfig(format!(
                "DyCuckoo stores 4-byte keys and values; layout declares {}/{}",
                self.layout.key_bytes, self.layout.val_bytes
            )));
        }
        if self.migration_quantum == 0 {
            return Err(Error::InvalidConfig(
                "migration_quantum must be positive (usize::MAX = stop-the-world)".to_string(),
            ));
        }
        if self.stash_capacity > 4096 {
            return Err(Error::InvalidConfig(format!(
                "stash_capacity {} is unreasonably large (max 4096); a stash                  is a cache-line-scale overflow buffer",
                self.stash_capacity
            )));
        }
        Ok(())
    }

    /// Number of first-layer pairs, `C(d, 2)`.
    pub fn num_pairs(&self) -> usize {
        self.num_tables * (self.num_tables - 1) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        Config::default().validate().unwrap();
    }

    #[test]
    fn rejects_single_table() {
        let cfg = Config {
            num_tables: 1,
            ..Config::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_zero_buckets() {
        let cfg = Config {
            initial_buckets: 0,
            ..Config::default()
        };
        assert!(cfg.validate().is_err());
        // Non-power-of-two counts are fine: the hash reduces modulo n.
        let cfg = Config {
            initial_buckets: 48,
            ..Config::default()
        };
        cfg.validate().unwrap();
    }

    #[test]
    fn rejects_overlapping_bounds() {
        // α too close to β for d = 2: one upsize would immediately allow a
        // downsize, ping-ponging forever.
        let cfg = Config {
            num_tables: 2,
            alpha: 0.60,
            beta: 0.85,
            ..Config::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn paper_default_parameters_are_valid() {
        // Table "Parameters": α = 30%, β = 85%, d = 4.
        let cfg = Config {
            num_tables: 4,
            alpha: 0.30,
            beta: 0.85,
            ..Config::default()
        };
        cfg.validate().unwrap();
        assert_eq!(cfg.num_pairs(), 6);
    }

    #[test]
    fn disjoint_pairs_needs_even_d() {
        let cfg = Config {
            num_tables: 5,
            layering: Layering::DisjointPairs,
            ..Config::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = Config {
            num_tables: 6,
            layering: Layering::DisjointPairs,
            ..Config::default()
        };
        cfg.validate().unwrap();
    }

    #[test]
    fn rejects_bad_layouts() {
        let cfg = Config {
            layout: LayoutConfig::soa(12, 4, 4),
            ..Config::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = Config {
            layout: LayoutConfig::aos(16, 8, 8),
            ..Config::default()
        };
        assert!(cfg.validate().is_err(), "8-byte words are the wide table's");
        let cfg = Config {
            layout: LayoutConfig::aos(16, 4, 4),
            ..Config::default()
        };
        cfg.validate().unwrap();
    }

    #[test]
    fn num_pairs_matches_binomial() {
        for d in 2..8 {
            let cfg = Config {
                num_tables: d,
                ..Config::default()
            };
            assert_eq!(cfg.num_pairs(), d * (d - 1) / 2);
        }
    }
}
