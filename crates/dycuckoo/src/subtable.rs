//! One cuckoo subtable `h^i`: bucketed key and value arrays plus per-bucket
//! locks.
//!
//! Storage and transaction accounting live in the shared probe/storage
//! engine ([`gpu_sim::engine`]); a subtable is the engine's
//! [`BucketStore`] instantiated for this crate's 4-byte keys and values.
//! Under the default layout (the paper's Figure "hash table structure"):
//!
//! * keys of one bucket are stored consecutively — 32 four-byte keys fill
//!   exactly one 128-byte line, so one warp probes a bucket with a single
//!   coalesced transaction;
//! * values live in a **separate** array so operations that do not need
//!   them (missed finds, deletes) touch no value lines;
//! * each bucket has a lock flag driven by `atomicCAS`/`atomicExch`.
//!
//! Key 0 is the empty-slot sentinel. Non-default layouts (AoS,
//! 8/16-slot buckets) change the geometry and the per-operation line
//! counts, not the placement logic.

use gpu_sim::BucketStore;

/// The reserved key marking an empty slot.
pub const EMPTY_KEY: u32 = 0;

/// A single subtable: the engine's bucket store over 4-byte words.
pub type SubTable = BucketStore<u32, u32>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BUCKET_SLOTS;
    use gpu_sim::LayoutConfig;

    fn sub(n_buckets: usize) -> SubTable {
        SubTable::new(n_buckets, LayoutConfig::default())
    }

    #[test]
    fn new_table_is_empty() {
        let t = sub(8);
        assert_eq!(t.n_buckets(), 8);
        assert_eq!(t.capacity_slots(), 8 * 32);
        assert_eq!(t.occupied(), 0);
        assert_eq!(t.fill_factor(), 0.0);
        assert!(t.find_empty(0).is_some());
        assert!(t.find_slot(0, 42).is_none());
    }

    #[test]
    fn write_find_erase_roundtrip() {
        let mut t = sub(4);
        let s = t.find_empty(2).unwrap();
        t.write_new(2, s, 99, 7);
        assert_eq!(t.occupied(), 1);
        let found = t.find_slot(2, 99).unwrap();
        assert_eq!(t.slot(2, found), (99, 7));
        t.erase(2, found);
        assert_eq!(t.occupied(), 0);
        assert!(t.find_slot(2, 99).is_none());
    }

    #[test]
    fn swap_returns_old_pair_and_keeps_occupancy() {
        let mut t = sub(2);
        t.write_new(1, 0, 5, 50);
        let old = t.swap(1, 0, 6, 60);
        assert_eq!(old, (5, 50));
        assert_eq!(t.slot(1, 0), (6, 60));
        assert_eq!(t.occupied(), 1);
    }

    #[test]
    fn update_val_changes_value_only() {
        let mut t = sub(2);
        t.write_new(0, 3, 11, 1);
        t.update_val(0, 3, 2);
        assert_eq!(t.slot(0, 3), (11, 2));
        assert_eq!(t.occupied(), 1);
    }

    #[test]
    fn fill_factor_and_recount_agree() {
        let mut t = sub(2);
        for i in 0..10u32 {
            let b = (i % 2) as usize;
            let s = t.find_empty(b).unwrap();
            t.write_new(b, s, i + 1, i);
        }
        assert_eq!(t.occupied(), 10);
        assert_eq!(t.recount(), 10);
        assert!((t.fill_factor() - 10.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn full_bucket_has_no_empty_slot() {
        let mut t = sub(1);
        for i in 0..BUCKET_SLOTS as u32 {
            let s = t.find_empty(0).unwrap();
            t.write_new(0, s, i + 1, 0);
        }
        assert!(t.find_empty(0).is_none());
    }

    #[test]
    fn iter_live_yields_all_pairs() {
        let mut t = sub(2);
        t.write_new(0, 0, 1, 10);
        t.write_new(1, 5, 2, 20);
        let mut live: Vec<_> = t.iter_live().collect();
        live.sort_unstable();
        assert_eq!(live, vec![(1, 10), (2, 20)]);
    }

    #[test]
    fn device_bytes_counts_keys_values_locks() {
        let t = sub(4);
        assert_eq!(t.device_bytes(), (4 * 32 * 8 + 4 * 4) as u64);
        assert_eq!(
            LayoutConfig::default().device_bytes_for(4),
            t.device_bytes()
        );
    }

    #[test]
    fn narrow_layouts_shrink_the_footprint() {
        let aos16 = SubTable::new(8, LayoutConfig::aos(16, 4, 4));
        let soa32 = sub(8);
        assert_eq!(aos16.capacity_slots(), 8 * 16);
        assert!(aos16.device_bytes() < soa32.device_bytes());
    }
}
