//! Rehashing kernels: conflict-free upsize and merging downsize.
//!
//! **Upsize** doubles one subtable. Because the raw hash value is stable, a
//! KV in old bucket `loc` lands in new bucket `loc` or `loc + n` — two
//! distinct old buckets can never collide in the new table, so one warp per
//! old bucket rehashes with **no locks at all** and the kernel runs at full
//! memory bandwidth (a single scheduler round).
//!
//! **Downsize** halves one subtable: old buckets `loc` and `loc + n/2`
//! merge into new bucket `loc`. The merge itself is equally conflict-free,
//! but the merged population can exceed one bucket's slots; the excess
//! (*residuals*) is re-inserted into the **other** subtables via the voter
//! insert kernel with the downsizing subtable excluded — by the two-layer
//! invariant every residual's only legal destination is its partner table.
//!
//! Per-bucket drain traffic is layout-dependent: the configured
//! [`gpu_sim::LayoutConfig`] says how many lines one whole bucket spans
//! (key + value lines under SoA, interleaved bucket lines under AoS).
//! Every alloc/free here also updates the caller's device-byte ledger so
//! [`crate::DyCuckoo::verify_integrity`] can cross-check the footprint.

use gpu_sim::ChargeKind;
use gpu_sim::{Metrics, SimContext};

use crate::error::Result;
use crate::ops::insert::InsertOp;
use crate::subtable::SubTable;
use crate::table::TableShape;

/// Statistics of one resize kernel execution.
#[derive(Debug, Clone, PartialEq)]
pub struct RehashReport {
    /// KVs rehashed within the resized subtable.
    pub moved: u64,
    /// KVs that did not fit the downsized table and were re-inserted into
    /// partner subtables (always 0 for upsizing).
    pub residuals: u64,
}

/// Double subtable `idx` in place. Conflict-free: no locks, one round.
pub(crate) fn upsize(
    tables: &mut [SubTable],
    idx: usize,
    shape: &TableShape,
    sim: &mut SimContext,
    ledger: &mut u64,
) -> Result<RehashReport> {
    let layout = shape.cfg.layout;
    let drain = layout.drain_lines();
    let old_n = tables[idx].n_buckets();
    let new_n = old_n * 2;
    let new_bytes = layout.device_bytes_for(new_n);
    sim.device.alloc(new_bytes)?;
    *ledger += new_bytes;

    let hash = &shape.hashes[idx];
    let mut fresh = SubTable::new(new_n, layout);
    let m = &mut sim.metrics;
    m.charge(ChargeKind::Rounds, 1); // every old bucket is handled by an independent warp
    let old = &tables[idx];
    let mut moved = 0u64;
    for b in 0..old_n {
        // One warp: read the old bucket's lines (keys + values).
        m.charge(ChargeKind::ReadTx, drain);
        let mut wrote_lo = false;
        let mut wrote_hi = false;
        for s in 0..old.slots_per_bucket() {
            let (k, v) = old.slot(b, s);
            if k == crate::subtable::EMPTY_KEY {
                continue;
            }
            let nb = hash.bucket(k, new_n);
            debug_assert!(
                nb == b || nb == b + old_n,
                "upsize moved key across buckets"
            );
            let slot = fresh
                .find_empty(nb)
                .expect("doubled bucket cannot overflow");
            fresh.write_new(nb, slot, k, v);
            moved += 1;
            if nb == b {
                wrote_lo = true;
            } else {
                wrote_hi = true;
            }
        }
        // The full bucket lines per destination bucket actually written.
        m.charge(
            ChargeKind::WriteTx,
            drain * (wrote_lo as u64 + wrote_hi as u64),
        );
    }
    let old_bytes = tables[idx].device_bytes();
    tables[idx] = fresh;
    sim.device.free(old_bytes)?;
    *ledger -= old_bytes;
    Ok(RehashReport {
        moved,
        residuals: 0,
    })
}

/// Halve subtable `idx`. Residual KVs that overflow the merged buckets are
/// returned as re-insert operations targeted at their partner subtables;
/// the caller runs them through the insert kernel with `idx` excluded.
pub(crate) fn downsize_collect(
    tables: &mut [SubTable],
    idx: usize,
    sim: &mut SimContext,
    ledger: &mut u64,
) -> Result<(RehashReport, Vec<InsertOp>)> {
    let layout = *tables[idx].layout();
    let drain = layout.drain_lines();
    let old_n = tables[idx].n_buckets();
    assert!(
        old_n >= 2 && old_n.is_multiple_of(2),
        "downsizing requires an even bucket count (subtable {idx} has {old_n});          the resize policy only selects even-sized tables"
    );
    let new_n = old_n / 2;
    let new_bytes = layout.device_bytes_for(new_n);
    sim.device.alloc(new_bytes)?;
    *ledger += new_bytes;

    let mut fresh = SubTable::new(new_n, layout);
    let mut residuals: Vec<InsertOp> = Vec::new();
    let m = &mut sim.metrics;
    m.charge(ChargeKind::Rounds, 1);
    let old = &tables[idx];
    let mut moved = 0u64;
    for nb in 0..new_n {
        // One warp reads both source buckets in full.
        m.charge(ChargeKind::ReadTx, 2 * drain);
        let mut wrote = false;
        for ob in [nb, nb + new_n] {
            for s in 0..old.slots_per_bucket() {
                let (k, v) = old.slot(ob, s);
                if k == crate::subtable::EMPTY_KEY {
                    continue;
                }
                if let Some(slot) = fresh.find_empty(nb) {
                    fresh.write_new(nb, slot, k, v);
                    moved += 1;
                    wrote = true;
                } else {
                    let salt = (nb as u64) << 8 | residuals.len() as u64;
                    residuals.push(InsertOp::reinsert(k, v, salt));
                }
            }
        }
        if wrote {
            m.charge(ChargeKind::WriteTx, drain);
        }
    }
    let old_bytes = tables[idx].device_bytes();
    tables[idx] = fresh;
    sim.device.free(old_bytes)?;
    *ledger -= old_bytes;
    let report = RehashReport {
        moved,
        residuals: residuals.len() as u64,
    };
    Ok((report, residuals))
}

/// Rehash *everything* into freshly sized subtables — the naive strategy the
/// paper's resize experiment compares against (and the strategy MegaKV is
/// forced to use). Exposed for the F7 resize experiment and ablations.
pub fn full_rehash_cost_reference(tables: &[SubTable]) -> Metrics {
    // Reference cost of reading every bucket and rewriting every KV; used
    // only for documentation-level sanity checks in tests.
    let mut m = Metrics::default();
    for t in tables {
        let drain = t.layout().drain_lines();
        m.read_transactions += drain * t.n_buckets() as u64;
        m.write_transactions += drain * t.n_buckets() as u64;
    }
    m
}
