//! Read-modify-write merge rules for the unified batch-op pipeline.
//!
//! An `upsert_with` batch op generalizes insert: if the key is absent the
//! table stores `rule.initial(arg)`; if the key is present the table stores
//! `rule.merge(old, arg)` *inside the same claim critical section* the
//! insert kernel already holds (bucket lock on the sim tier, stripe guards
//! on the host-par tier). Every rule is a pure function of `(old, arg)`, so
//! the op stays deterministic, serializable into RON fuzz repros, and
//! replayable by the differential oracle's `BTreeMap` reference model.
//!
//! `LastWrite` is the degenerate rule under which `upsert_with` is exactly
//! the existing insert (`DupPolicy::Upsert`) — the plain insert path is the
//! `LastWrite` instance of this pipeline and charges identically.

/// A deterministic merge rule applied when an upsert finds its key present.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MergeRule {
    /// `merge(old, arg) = arg`: plain insert-or-overwrite. The identity
    /// rule — an upsert with `LastWrite` is bit-identical to an insert.
    #[default]
    LastWrite,
    /// `merge(old, arg) = old + arg` (wrapping): per-key accumulator.
    Add,
    /// `merge(old, arg) = max(old, arg)`.
    Max,
    /// `merge(old, arg) = min(old, arg)`.
    Min,
    /// Counting-table rule: the argument is ignored; an absent key starts
    /// at 1 and every further upsert adds 1. `increment(key)` is
    /// `upsert_with(key, _, Count)`.
    Count,
}

impl MergeRule {
    /// The value stored when the key is absent.
    #[inline]
    pub fn initial(self, arg: u32) -> u32 {
        match self {
            MergeRule::LastWrite | MergeRule::Add | MergeRule::Max | MergeRule::Min => arg,
            MergeRule::Count => 1,
        }
    }

    /// The value stored when the key is present with value `old`.
    #[inline]
    pub fn merge(self, old: u32, arg: u32) -> u32 {
        match self {
            MergeRule::LastWrite => arg,
            MergeRule::Add => old.wrapping_add(arg),
            MergeRule::Max => old.max(arg),
            MergeRule::Min => old.min(arg),
            MergeRule::Count => old.wrapping_add(1),
        }
    }

    /// 64-bit analogue of [`MergeRule::initial`] for the wide tier.
    #[inline]
    pub fn initial_u64(self, arg: u64) -> u64 {
        match self {
            MergeRule::Count => 1,
            _ => arg,
        }
    }

    /// 64-bit analogue of [`MergeRule::merge`] for the wide tier.
    #[inline]
    pub fn merge_u64(self, old: u64, arg: u64) -> u64 {
        match self {
            MergeRule::LastWrite => arg,
            MergeRule::Add => old.wrapping_add(arg),
            MergeRule::Max => old.max(arg),
            MergeRule::Min => old.min(arg),
            MergeRule::Count => old.wrapping_add(1),
        }
    }

    /// Byte-string analogue of [`MergeRule::initial`] for the unsized
    /// tier: `Add`/`Count` normalize the value to an 8-byte little-endian
    /// counter; the other rules store the argument bytes as-is.
    pub fn initial_bytes(self, arg: &[u8]) -> Vec<u8> {
        match self {
            MergeRule::LastWrite | MergeRule::Max | MergeRule::Min => arg.to_vec(),
            MergeRule::Add => counter_of(arg).to_le_bytes().to_vec(),
            MergeRule::Count => 1u64.to_le_bytes().to_vec(),
        }
    }

    /// Byte-string analogue of [`MergeRule::merge`]: `LastWrite` replaces,
    /// `Add`/`Count` add little-endian u64 counters, `Max`/`Min` keep the
    /// lexicographically larger/smaller byte string.
    pub fn merge_bytes(self, old: &[u8], arg: &[u8]) -> Vec<u8> {
        match self {
            MergeRule::LastWrite => arg.to_vec(),
            MergeRule::Add => counter_of(old)
                .wrapping_add(counter_of(arg))
                .to_le_bytes()
                .to_vec(),
            MergeRule::Max => std::cmp::max(old, arg).to_vec(),
            MergeRule::Min => std::cmp::min(old, arg).to_vec(),
            MergeRule::Count => counter_of(old).wrapping_add(1).to_le_bytes().to_vec(),
        }
    }

    /// Whether the merge must *read* the old value. `LastWrite` blind-writes
    /// (the existing insert's charge profile); every other rule costs one
    /// value read on the duplicate path.
    #[inline]
    pub fn reads_old(self) -> bool {
        !matches!(self, MergeRule::LastWrite)
    }

    /// Whether a batch of upserts under this rule commutes: any submission
    /// order yields the same final map. (`LastWrite` depends on order.)
    #[inline]
    pub fn is_commutative(self) -> bool {
        !matches!(self, MergeRule::LastWrite)
    }

    /// Stable lowercase name (RON repros, trace exporters, snapshots).
    pub fn name(self) -> &'static str {
        match self {
            MergeRule::LastWrite => "last_write",
            MergeRule::Add => "add",
            MergeRule::Max => "max",
            MergeRule::Min => "min",
            MergeRule::Count => "count",
        }
    }

    /// Parse a [`MergeRule::name`] back; `None` for unknown strings.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "last_write" => MergeRule::LastWrite,
            "add" => MergeRule::Add,
            "max" => MergeRule::Max,
            "min" => MergeRule::Min,
            "count" => MergeRule::Count,
            _ => return None,
        })
    }

    /// Every rule, in a stable order (sweep drivers, fuzz generators).
    pub const ALL: [MergeRule; 5] = [
        MergeRule::LastWrite,
        MergeRule::Add,
        MergeRule::Max,
        MergeRule::Min,
        MergeRule::Count,
    ];

    /// Fold two *pending* upserts of the same rule into one, where the
    /// algebra allows it: `merge(merge(v, a), b) = merge(v, fold(a, b))`.
    /// Returns `None` when the pair cannot be folded into a single op of
    /// the same rule (never happens for the stock rules, but the batcher
    /// treats `None` as "keep both").
    pub fn fold_args(self, first: u32, second: u32) -> Option<u32> {
        Some(match self {
            MergeRule::LastWrite => second,
            MergeRule::Add => first.wrapping_add(second),
            MergeRule::Max => first.max(second),
            MergeRule::Min => first.min(second),
            // Count ignores its argument; two counts are two increments,
            // which the batcher represents by re-expressing the pair as a
            // single Count whose *effect* is +2 only via the chain — so a
            // bare fold is not possible. (See `service::batcher`.)
            MergeRule::Count => return None,
        })
    }

    /// Apply a whole pending chain of `(rule, arg)` upserts to an optional
    /// current value, in order. `None` means the key is absent.
    pub fn apply_chain(chain: &[(MergeRule, u32)], mut cur: Option<u32>) -> Option<u32> {
        for &(rule, arg) in chain {
            cur = Some(match cur {
                None => rule.initial(arg),
                Some(old) => rule.merge(old, arg),
            });
        }
        cur
    }
}

/// A byte value viewed as a little-endian u64 counter (zero-padded;
/// bytes past the eighth are ignored).
fn counter_of(bytes: &[u8]) -> u64 {
    let mut w = [0u8; 8];
    for (i, &b) in bytes.iter().take(8).enumerate() {
        w[i] = b;
    }
    u64::from_le_bytes(w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_counters_add_and_compare() {
        let one = MergeRule::Count.initial_bytes(b"ignored");
        assert_eq!(one, 1u64.to_le_bytes().to_vec());
        let two = MergeRule::Count.merge_bytes(&one, b"x");
        assert_eq!(two, 2u64.to_le_bytes().to_vec());
        let sum = MergeRule::Add.merge_bytes(&5u64.to_le_bytes(), &7u64.to_le_bytes());
        assert_eq!(sum, 12u64.to_le_bytes().to_vec());
        assert_eq!(MergeRule::Max.merge_bytes(b"abc", b"abd"), b"abd".to_vec());
        assert_eq!(MergeRule::Min.merge_bytes(b"abc", b""), Vec::<u8>::new());
    }

    #[test]
    fn last_write_is_identity_insert() {
        assert_eq!(MergeRule::LastWrite.initial(7), 7);
        assert_eq!(MergeRule::LastWrite.merge(3, 7), 7);
        assert!(!MergeRule::LastWrite.reads_old());
    }

    #[test]
    fn count_ignores_argument() {
        assert_eq!(MergeRule::Count.initial(99), 1);
        assert_eq!(MergeRule::Count.merge(4, 99), 5);
    }

    #[test]
    fn add_wraps() {
        assert_eq!(MergeRule::Add.merge(u32::MAX, 2), 1);
    }

    #[test]
    fn names_round_trip() {
        for r in MergeRule::ALL {
            assert_eq!(MergeRule::parse(r.name()), Some(r));
        }
        assert_eq!(MergeRule::parse("bogus"), None);
    }

    #[test]
    fn fold_matches_sequential_merge() {
        for r in [
            MergeRule::LastWrite,
            MergeRule::Add,
            MergeRule::Max,
            MergeRule::Min,
        ] {
            for v in [0u32, 5, 1000] {
                for (a, b) in [(3u32, 9u32), (9, 3), (0, u32::MAX)] {
                    let folded = r.fold_args(a, b).unwrap();
                    assert_eq!(r.merge(r.merge(v, a), b), r.merge(v, folded));
                }
            }
        }
        assert_eq!(MergeRule::Count.fold_args(1, 2), None);
    }

    #[test]
    fn apply_chain_walks_absent_then_present() {
        let chain = [
            (MergeRule::Count, 0),
            (MergeRule::Count, 0),
            (MergeRule::Add, 10),
        ];
        assert_eq!(MergeRule::apply_chain(&chain, None), Some(12));
        assert_eq!(MergeRule::apply_chain(&chain, Some(100)), Some(112));
        assert_eq!(MergeRule::apply_chain(&[], Some(5)), Some(5));
        assert_eq!(MergeRule::apply_chain(&[], None), None);
    }
}
