//! Schedule exploration: pluggable warp orderings for the round scheduler.
//!
//! [`crate::scheduler::run_rounds`] executes the pending warps of every
//! round in one fixed order, so a test that passes under it has only ever
//! seen a single interleaving — yet the kernels' correctness claims
//! (voter-coordinated inserts, lock-guarded evictions) are claims about
//! *all* interleavings. A [`SchedulePolicy`] perturbs the within-round warp
//! order deterministically: a given (workload, policy) pair always replays
//! bit-identically, so an interleaving that exposes a bug is a committable
//! regression test, not a flake.
//!
//! Policies:
//!
//! * [`SchedulePolicy::FixedOrder`] — the historical order; all paper
//!   figures are pinned to it.
//! * [`SchedulePolicy::Reversed`] — warps run back-to-front, flipping every
//!   lock-acquisition race to its opposite winner.
//! * [`SchedulePolicy::Rotating`] — the start position rotates by `stride`
//!   each round, so every warp eventually goes first.
//! * [`SchedulePolicy::Shuffled`] — a seeded Fisher–Yates permutation per
//!   round; the workhorse of randomized exploration.
//! * [`SchedulePolicy::ContendedFirst`] — adversarial heuristic: warps
//!   whose previous step lost a lock race are scheduled *first* the next
//!   round (before the holder's deferred release is re-observed), which
//!   maximizes consecutive conflicts on hot buckets; ties are broken by a
//!   seeded shuffle.
//!
//! The per-round permutation is salted with the kernel's **cumulative**
//! round counter ([`crate::Metrics::rounds`]), so consecutive kernel
//! launches within one run explore different permutations without any
//! mutable scheduler state.

/// SplitMix64 — the statelessly seedable mixer used for schedule
/// randomness. (Deliberately a local copy: `gpu-sim` sits below the hash
/// crates in the dependency order.)
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// How the round scheduler orders pending warps within each round.
///
/// `Copy` + cheaply serializable (see [`SchedulePolicy::spec`]) so a policy
/// can ride along in a repro artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulePolicy {
    /// Warp-index order, every round (the historical behaviour).
    #[default]
    FixedOrder,
    /// Back-to-front warp order, every round.
    Reversed,
    /// Rotate the starting warp by `stride` positions each round.
    Rotating {
        /// Positions the start index advances per round.
        stride: u64,
    },
    /// Seeded Fisher–Yates shuffle, re-drawn per round.
    Shuffled {
        /// Base seed; the effective per-round seed mixes in the round salt.
        seed: u64,
    },
    /// Warps that failed a lock acquisition on their previous step run
    /// first (seeded shuffle within the contended / uncontended groups).
    ContendedFirst {
        /// Base seed for the within-group tie-break shuffle.
        seed: u64,
    },
}

impl SchedulePolicy {
    /// Map a fuzzing seed onto a policy, cycling through every non-fixed
    /// flavor so a seed sweep explores all of them.
    pub fn from_seed(seed: u64) -> Self {
        match seed % 4 {
            0 => SchedulePolicy::Shuffled { seed: mix64(seed) },
            1 => SchedulePolicy::ContendedFirst { seed: mix64(seed) },
            2 => SchedulePolicy::Rotating {
                stride: 1 + mix64(seed) % 7,
            },
            _ => SchedulePolicy::Reversed,
        }
    }

    /// Compact textual form, e.g. `"shuffled:42"` — what repro artifacts
    /// and the `schedule_fuzz` CLI speak. Inverse of
    /// [`SchedulePolicy::from_spec`].
    pub fn spec(&self) -> String {
        match *self {
            SchedulePolicy::FixedOrder => "fixed".to_string(),
            SchedulePolicy::Reversed => "reversed".to_string(),
            SchedulePolicy::Rotating { stride } => format!("rotating:{stride}"),
            SchedulePolicy::Shuffled { seed } => format!("shuffled:{seed}"),
            SchedulePolicy::ContendedFirst { seed } => format!("contended:{seed}"),
        }
    }

    /// Parse a [`SchedulePolicy::spec`] string.
    pub fn from_spec(spec: &str) -> Option<Self> {
        let (name, arg) = match spec.split_once(':') {
            Some((n, a)) => (n, Some(a)),
            None => (spec, None),
        };
        let num = |a: Option<&str>| a.and_then(|s| s.parse::<u64>().ok());
        match name {
            "fixed" => Some(SchedulePolicy::FixedOrder),
            "reversed" => Some(SchedulePolicy::Reversed),
            "rotating" => Some(SchedulePolicy::Rotating { stride: num(arg)? }),
            "shuffled" => Some(SchedulePolicy::Shuffled { seed: num(arg)? }),
            "contended" => Some(SchedulePolicy::ContendedFirst { seed: num(arg)? }),
            _ => None,
        }
    }

    /// Permute `pending` (warp indices) for the round with salt
    /// `round_salt`. `contended[w]` reports whether warp `w` failed a lock
    /// acquisition on its previous step (only [`SchedulePolicy::ContendedFirst`]
    /// reads it).
    pub fn order_round(&self, round_salt: u64, pending: &mut [usize], contended: &[bool]) {
        match *self {
            SchedulePolicy::FixedOrder => {}
            SchedulePolicy::Reversed => pending.reverse(),
            SchedulePolicy::Rotating { stride } => {
                if !pending.is_empty() {
                    let k = ((round_salt.wrapping_mul(stride)) % pending.len() as u64) as usize;
                    pending.rotate_left(k);
                }
            }
            SchedulePolicy::Shuffled { seed } => {
                shuffle(pending, seed ^ round_salt);
            }
            SchedulePolicy::ContendedFirst { seed } => {
                // Stable partition: contended warps first, then shuffle
                // within each group so the adversary also varies ties.
                pending.sort_by_key(|&w| !contended.get(w).copied().unwrap_or(false));
                let split = pending
                    .iter()
                    .position(|&w| !contended.get(w).copied().unwrap_or(false))
                    .unwrap_or(pending.len());
                let (hot, cold) = pending.split_at_mut(split);
                shuffle(hot, seed ^ round_salt ^ 0xA5A5);
                shuffle(cold, seed ^ round_salt ^ 0x5A5A);
            }
        }
    }
}

/// Deterministic Fisher–Yates driven by [`mix64`].
fn shuffle(slice: &mut [usize], seed: u64) {
    let n = slice.len();
    for i in (1..n).rev() {
        let j = (mix64(seed ^ (i as u64) << 17) % (i as u64 + 1)) as usize;
        slice.swap(i, j);
    }
}

/// Delta-debugging shrinker: minimize a failing input list while the
/// failure predicate keeps holding.
///
/// Classic ddmin over `items`: try dropping large chunks first, halving the
/// chunk size down to single elements, then a final one-by-one sweep until
/// a fixpoint. `fails` must be deterministic (it is re-run many times);
/// the returned list is 1-minimal — removing any single remaining element
/// makes the failure disappear.
pub fn shrink_ops<T: Clone>(items: &[T], mut fails: impl FnMut(&[T]) -> bool) -> Vec<T> {
    debug_assert!(fails(items), "shrink_ops needs a failing input to start");
    let mut cur: Vec<T> = items.to_vec();
    let mut chunk = (cur.len() / 2).max(1);
    loop {
        let mut progressed = false;
        while chunk >= 1 {
            let mut start = 0;
            while start < cur.len() {
                let end = (start + chunk).min(cur.len());
                let mut candidate = Vec::with_capacity(cur.len() - (end - start));
                candidate.extend_from_slice(&cur[..start]);
                candidate.extend_from_slice(&cur[end..]);
                if !candidate.is_empty() && fails(&candidate) {
                    cur = candidate;
                    progressed = true;
                    // Re-test from the same offset: the list shrank.
                } else {
                    start = end;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
        if !progressed {
            return cur;
        }
        chunk = (cur.len() / 2).max(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_roundtrips_every_flavor() {
        let policies = [
            SchedulePolicy::FixedOrder,
            SchedulePolicy::Reversed,
            SchedulePolicy::Rotating { stride: 3 },
            SchedulePolicy::Shuffled { seed: 42 },
            SchedulePolicy::ContendedFirst { seed: 7 },
        ];
        for p in policies {
            assert_eq!(SchedulePolicy::from_spec(&p.spec()), Some(p), "{p:?}");
        }
        assert_eq!(SchedulePolicy::from_spec("bogus"), None);
        assert_eq!(SchedulePolicy::from_spec("shuffled:x"), None);
    }

    #[test]
    fn fixed_order_is_identity() {
        let mut v = vec![0, 1, 2, 3];
        SchedulePolicy::FixedOrder.order_round(9, &mut v, &[false; 4]);
        assert_eq!(v, vec![0, 1, 2, 3]);
    }

    #[test]
    fn reversed_reverses() {
        let mut v = vec![0, 1, 2, 3];
        SchedulePolicy::Reversed.order_round(1, &mut v, &[false; 4]);
        assert_eq!(v, vec![3, 2, 1, 0]);
    }

    #[test]
    fn shuffle_is_deterministic_and_a_permutation() {
        let base: Vec<usize> = (0..50).collect();
        let mut a = base.clone();
        let mut b = base.clone();
        let p = SchedulePolicy::Shuffled { seed: 99 };
        p.order_round(5, &mut a, &[]);
        p.order_round(5, &mut b, &[]);
        assert_eq!(a, b, "same salt must replay identically");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, base, "must remain a permutation");
        let mut c = base.clone();
        p.order_round(6, &mut c, &[]);
        assert_ne!(a, c, "different rounds draw different permutations");
    }

    #[test]
    fn contended_first_front_loads_contended_warps() {
        let mut v = vec![0, 1, 2, 3, 4, 5];
        let contended = [false, true, false, true, false, false];
        SchedulePolicy::ContendedFirst { seed: 3 }.order_round(8, &mut v, &contended);
        let hot: Vec<usize> = v[..2].to_vec();
        assert!(hot.contains(&1) && hot.contains(&3), "{v:?}");
    }

    #[test]
    fn rotating_rotates_by_stride_each_round() {
        let mut v = vec![0, 1, 2, 3, 4];
        SchedulePolicy::Rotating { stride: 2 }.order_round(1, &mut v, &[]);
        assert_eq!(v, vec![2, 3, 4, 0, 1]);
    }

    #[test]
    fn from_seed_covers_all_flavors() {
        let specs: std::collections::HashSet<String> = (0..8)
            .map(|s| {
                SchedulePolicy::from_seed(s)
                    .spec()
                    .split(':')
                    .next()
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert!(
            specs.len() >= 4,
            "seed sweep must cycle the flavors: {specs:?}"
        );
    }

    #[test]
    fn shrinker_minimizes_to_the_culprit_pair() {
        // Failure: the list contains both 7 and 13.
        let items: Vec<u32> = (0..40).collect();
        let min = shrink_ops(&items, |c| c.contains(&7) && c.contains(&13));
        assert_eq!(min, vec![7, 13]);
    }

    #[test]
    fn shrinker_handles_single_element_failures() {
        let items: Vec<u32> = (0..33).collect();
        let min = shrink_ops(&items, |c| c.contains(&31));
        assert_eq!(min, vec![31]);
    }
}
