//! # dycuckoo-repro — workspace root
//!
//! Re-exports the workspace crates so the examples under `examples/` and
//! the integration tests under `tests/` can use everything through one
//! dependency. See the individual crates for the real APIs:
//!
//! * [`gpu_sim`] — the deterministic SIMT execution model and cost model.
//! * [`dycuckoo`] — the paper's dynamic two-layer cuckoo hash table.
//! * [`baselines`] — CUDPP, MegaKV, SlabHash and linear probing behind the
//!   common [`baselines::GpuHashTable`] trait.
//! * [`workloads`] — the paper's datasets and dynamic batch workloads.
//! * [`bench`] — experiment drivers shared by the figure binaries.

pub use baselines;
// `bench` is re-exported via its crate path: a bare `bench` identifier
// collides with rustc's unstable custom-test-framework attribute.
pub use ::bench as bench_harness;
pub use dycuckoo;
pub use gpu_sim;
pub use workloads;
