//! The CUDPP cuckoo hash (Alcantara et al., SIGGRAPH Asia 2009), as shipped
//! in the CUDPP library and used as the paper's `CUDPP` baseline.
//!
//! Characteristics reproduced here:
//!
//! * **One KV per hash value** (64-bit packed pair), not a bucket — every
//!   probe is an uncoalesced single-slot access that still occupies a full
//!   128-byte transaction, which is why CUDPP trails the bucketized schemes.
//! * **Thread-centric** insertion with `atomicExch`: a thread swaps its KV
//!   into the slot and adopts whatever was evicted, moving it to that key's
//!   *next* hash function (cyclically), à la random-walk cuckoo.
//! * The number of hash functions is **auto-chosen from the requested load
//!   factor** (2–5) — the paper observes this is why CUDPP's find
//!   throughput drops at high fill.
//! * Exceeding the iteration cap means a **full rebuild with fresh hash
//!   functions**; deletion is unsupported.

use gpu_sim::ChargeKind;
use gpu_sim::{
    run_rounds_with, Metrics, RoundCtx, RoundKernel, SchedulePolicy, SimContext, SlotStore,
    StepOutcome, WARP_SIZE,
};

use dycuckoo::hashfn::UniversalHash;

use crate::api::{GpuHashTable, Result, TableError};

const EMPTY: u32 = 0;
/// Address space tag for conflict grouping of slot atomics.
const SLOT_SPACE: u32 = 100;

/// Pick the number of hash functions the CUDPP heuristic would use for a
/// target load factor.
pub fn functions_for_load(load: f64) -> usize {
    if load <= 0.4 {
        2
    } else if load <= 0.6 {
        3
    } else if load <= 0.8 {
        4
    } else {
        5
    }
}

/// The CUDPP baseline table. Storage is a flat engine [`SlotStore`]: one
/// packed KV per hash value, every access its own uncoalesced transaction.
pub struct Cudpp {
    store: SlotStore<u32, u32>,
    n_slots: usize,
    d: usize,
    hashes: Vec<UniversalHash>,
    max_iter: u32,
    occupied: u64,
    seed: u64,
    rebuilds: u32,
    schedule: SchedulePolicy,
}

#[derive(Debug, Clone, Copy)]
struct CuOp {
    key: u32,
    val: u32,
    /// Index of the hash function to use next.
    fn_idx: usize,
    iters: u32,
    done: bool,
    failed: bool,
}

struct CuInsertKernel<'a> {
    store: &'a mut SlotStore<u32, u32>,
    n_slots: usize,
    hashes: &'a [UniversalHash],
    max_iter: u32,
    inserted: u64,
    failed: Vec<(u32, u32)>,
}

impl CuInsertKernel<'_> {
    fn slot_of(&self, key: u32, fn_idx: usize) -> usize {
        (self.hashes[fn_idx].raw(key) % self.n_slots as u64) as usize
    }

    /// The hash function index that maps `key` to `slot`, so an evicted key
    /// can continue with the *next* function (random-walk cuckoo).
    fn fn_of_slot(&self, key: u32, slot: usize) -> usize {
        for (i, h) in self.hashes.iter().enumerate() {
            if (h.raw(key) % self.n_slots as u64) as usize == slot {
                return i;
            }
        }
        // Unreachable for keys that were stored via these functions, but be
        // defensive: restart the walk at function 0.
        0
    }
}

impl RoundKernel<Vec<CuOp>> for CuInsertKernel<'_> {
    fn step(&mut self, lanes: &mut Vec<CuOp>, ctx: &mut RoundCtx) -> StepOutcome {
        // Thread-centric: EVERY active lane advances one eviction step per
        // round; each lane's access is its own (uncoalesced) transaction.
        let mut any_pending = false;
        for op in lanes.iter_mut() {
            if op.done || op.failed {
                continue;
            }
            let slot = self.slot_of(op.key, op.fn_idx);
            // atomicExch of the packed 64-bit KV.
            ctx.raw_atomic(SLOT_SPACE, slot);
            ctx.write_slot();
            let (old_key, old_val) = self.store.exchange(slot, op.key, op.val);
            if old_key == EMPTY {
                op.done = true;
                self.inserted += 1;
                continue;
            }
            if old_key == op.key {
                // Same key swapped out: value replaced in place.
                op.done = true;
                continue;
            }
            // Adopt the evicted key; its next location is the function after
            // the one that put it here.
            let prev_fn = self.fn_of_slot(old_key, slot);
            op.key = old_key;
            op.val = old_val;
            op.fn_idx = (prev_fn + 1) % self.hashes.len();
            op.iters += 1;
            ctx.metrics.charge(ChargeKind::Evictions, 1);
            if op.iters >= self.max_iter {
                op.failed = true;
                self.failed.push((op.key, op.val));
            } else {
                any_pending = true;
            }
        }
        if any_pending {
            StepOutcome::Pending
        } else {
            StepOutcome::Done
        }
    }
}

impl Cudpp {
    /// Create a table sized for `items` keys at `load` fill, choosing the
    /// hash-function count with the CUDPP heuristic.
    pub fn with_capacity(items: usize, load: f64, seed: u64, sim: &mut SimContext) -> Result<Self> {
        let n_slots = ((items as f64 / load).ceil() as usize).max(1);
        let d = functions_for_load(load);
        let store = SlotStore::new(n_slots);
        sim.device.alloc(store.device_bytes())?;
        let mut table = Self {
            store,
            n_slots,
            d,
            hashes: Vec::new(),
            // CUDPP uses ~7·lg(n) as its iteration cap.
            max_iter: (7.0 * (n_slots.max(2) as f64).log2()).ceil() as u32,
            occupied: 0,
            seed,
            rebuilds: 0,
            schedule: SchedulePolicy::FixedOrder,
        };
        table.reseed();
        Ok(table)
    }

    /// Number of hash functions in use.
    pub fn num_functions(&self) -> usize {
        self.hashes.len()
    }

    fn reseed(&mut self) {
        self.seed = self.seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        self.hashes = (0..self.d)
            .map(|i| UniversalHash::from_seed(self.seed ^ ((i as u64 + 1) << 32)))
            .collect();
    }

    /// Create with an explicit hash-function count (used by the θ-sweep
    /// experiment to mirror CUDPP's auto-selection).
    pub fn with_capacity_and_functions(
        items: usize,
        load: f64,
        d: usize,
        seed: u64,
        sim: &mut SimContext,
    ) -> Result<Self> {
        let mut t = Self::with_capacity(items, load, seed, sim)?;
        t.d = d;
        t.reseed();
        Ok(t)
    }

    fn run_insert(&mut self, metrics: &mut Metrics, kvs: &[(u32, u32)]) -> Vec<(u32, u32)> {
        let mut warps: Vec<Vec<CuOp>> = kvs
            .chunks(WARP_SIZE)
            .map(|c| {
                c.iter()
                    .map(|&(key, val)| CuOp {
                        key,
                        val,
                        fn_idx: 0,
                        iters: 0,
                        done: false,
                        failed: false,
                    })
                    .collect()
            })
            .collect();
        let before = self.occupied;
        let mut kernel = CuInsertKernel {
            store: &mut self.store,
            n_slots: self.n_slots,
            hashes: &self.hashes,
            max_iter: self.max_iter,
            inserted: 0,
            failed: Vec::new(),
        };
        run_rounds_with(&mut kernel, &mut warps, metrics, self.schedule);
        self.occupied = before + kernel.inserted;
        kernel.failed
    }

    /// Rebuild the whole table with fresh hash functions (CUDPP's response
    /// to an insertion failure), re-inserting all live KVs plus `extra`.
    fn rebuild(&mut self, sim: &mut SimContext, extra: Vec<(u32, u32)>) -> Result<()> {
        self.rebuilds += 1;
        if self.rebuilds > 8 {
            return Err(TableError::CapacityExhausted {
                failed_ops: extra.len(),
            });
        }
        let mut live: Vec<(u32, u32)> = self.store.iter_live_except(EMPTY).collect();
        sim.metrics
            .charge(ChargeKind::ReadTx, self.n_slots as u64 / 16); // drain scan (coalesced)
        live.extend(extra);
        self.store.clear();
        self.occupied = 0;
        self.reseed();
        let failed = self.run_insert(&mut sim.metrics, &live);
        if failed.is_empty() {
            Ok(())
        } else {
            self.rebuild(sim, failed)
        }
    }
}

impl GpuHashTable for Cudpp {
    fn name(&self) -> &'static str {
        "CUDPP"
    }

    fn set_schedule(&mut self, policy: SchedulePolicy) {
        self.schedule = policy;
    }

    fn insert_batch(&mut self, sim: &mut SimContext, kvs: &[(u32, u32)]) -> Result<()> {
        if kvs.iter().any(|&(k, _)| k == EMPTY) {
            return Err(TableError::ZeroKey);
        }
        sim.metrics.charge(ChargeKind::Ops, kvs.len() as u64);
        let failed = self.run_insert(&mut sim.metrics, kvs);
        if failed.is_empty() {
            Ok(())
        } else {
            self.rebuild(sim, failed)
        }
    }

    fn find_batch(&mut self, sim: &mut SimContext, keys: &[u32]) -> Vec<Option<u32>> {
        let metrics = &mut sim.metrics;
        let mut results = Vec::with_capacity(keys.len());
        let mut rounds = 0u64;
        for chunk in keys.chunks(WARP_SIZE) {
            // Thread-centric: lanes probe in parallel; the warp finishes when
            // its slowest lane does (max probes in the chunk).
            let mut max_probes = 0u64;
            for &key in chunk {
                let mut found = None;
                let mut probes = 0u64;
                for h in &self.hashes {
                    let slot = (h.raw(key) % self.n_slots as u64) as usize;
                    probes += 1;
                    metrics.charge(ChargeKind::RandomReadTx, 1);
                    metrics.charge(ChargeKind::Lookups, 1);
                    if self.store.key(slot) == key {
                        found = Some(self.store.val(slot));
                        break;
                    }
                    if self.store.key(slot) == EMPTY {
                        // Classic CUDPP probes all d functions; an empty slot
                        // cannot rule the key out (evictions move keys), so
                        // keep probing.
                        continue;
                    }
                }
                max_probes = max_probes.max(probes);
                results.push(found);
            }
            rounds += max_probes;
        }
        metrics.charge(ChargeKind::Rounds, rounds);
        metrics.charge(ChargeKind::Ops, keys.len() as u64);
        results
    }

    fn delete_batch(&mut self, _sim: &mut SimContext, _keys: &[u32]) -> Result<u64> {
        Err(TableError::Unsupported("CUDPP does not support deletion"))
    }

    fn len(&self) -> u64 {
        self.occupied
    }

    fn capacity_slots(&self) -> u64 {
        self.n_slots as u64
    }

    fn device_bytes(&self) -> u64 {
        self.store.device_bytes()
    }

    fn supports_delete(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn function_count_tracks_load() {
        assert_eq!(functions_for_load(0.3), 2);
        assert_eq!(functions_for_load(0.5), 3);
        assert_eq!(functions_for_load(0.7), 4);
        assert_eq!(functions_for_load(0.9), 5);
    }

    #[test]
    fn insert_find_roundtrip() {
        let mut sim = SimContext::new();
        let mut t = Cudpp::with_capacity(500, 0.7, 3, &mut sim).unwrap();
        let kvs: Vec<(u32, u32)> = (1..=350u32).map(|k| (k, k + 7)).collect();
        t.insert_batch(&mut sim, &kvs).unwrap();
        assert_eq!(t.len(), 350);
        let keys: Vec<u32> = (1..=350).collect();
        let found = t.find_batch(&mut sim, &keys);
        for (k, v) in keys.iter().zip(found) {
            assert_eq!(v, Some(k + 7), "key {k}");
        }
        assert_eq!(t.find_batch(&mut sim, &[5000]), vec![None]);
    }

    #[test]
    fn duplicate_insert_replaces_value() {
        let mut sim = SimContext::new();
        let mut t = Cudpp::with_capacity(100, 0.5, 3, &mut sim).unwrap();
        t.insert_batch(&mut sim, &[(9, 1)]).unwrap();
        t.insert_batch(&mut sim, &[(9, 2)]).unwrap();
        assert_eq!(t.find_batch(&mut sim, &[9]), vec![Some(2)]);
    }

    #[test]
    fn delete_is_unsupported() {
        let mut sim = SimContext::new();
        let mut t = Cudpp::with_capacity(10, 0.5, 3, &mut sim).unwrap();
        assert!(matches!(
            t.delete_batch(&mut sim, &[1]),
            Err(TableError::Unsupported(_))
        ));
        assert!(!t.supports_delete());
    }

    #[test]
    fn high_load_fills_with_five_functions() {
        let mut sim = SimContext::new();
        let items = 2000;
        let mut t = Cudpp::with_capacity(items, 0.85, 3, &mut sim).unwrap();
        assert_eq!(t.num_functions(), 5);
        let kvs: Vec<(u32, u32)> = (1..=items as u32).map(|k| (k, k)).collect();
        t.insert_batch(&mut sim, &kvs).unwrap();
        assert_eq!(t.len(), items as u64);
        assert!(t.fill_factor() > 0.8);
        let keys: Vec<u32> = (1..=items as u32).collect();
        assert!(t.find_batch(&mut sim, &keys).iter().all(|f| f.is_some()));
    }

    #[test]
    fn eviction_work_grows_with_load() {
        let run = |load: f64| {
            let mut sim = SimContext::new();
            let items = 4000;
            let mut t = Cudpp::with_capacity(items, load, 11, &mut sim).unwrap();
            let kvs: Vec<(u32, u32)> = (1..=items as u32).map(|k| (k, k)).collect();
            t.insert_batch(&mut sim, &kvs).unwrap();
            sim.metrics.evictions
        };
        assert!(
            run(0.85) > run(0.4),
            "higher load must cause more evictions"
        );
    }
}
