//! Roofline cost model: metrics → simulated nanoseconds → Mops.
//!
//! A throughput-oriented GPU kernel is bound by whichever resource it
//! saturates. We take the maximum of three terms:
//!
//! * **Memory**: `(coalesced + derate × uncoalesced) × line_bytes /
//!   bandwidth`. Hash-table kernels on real GPUs are memory-bound (the
//!   paper's profiling section confirms this for MegaKV and DyCuckoo), so
//!   this term usually dominates. Uncoalesced single-slot accesses (CUDPP's
//!   probes) pay a bandwidth derate because they waste most of each line.
//! * **Atomics**: the max of a throughput term (total atomics spread over
//!   the SMs) and a serial term (conflict chains to one address serialize).
//!   Dominates only under heavy contention — exactly the regime the
//!   paper's atomic-profiling figure studies.
//! * **Issue**: rounds × per-round issue cost. Dominates only for tiny
//!   kernels that can't fill the machine.
//!
//! Absolute numbers are calibration-dependent; the experiment harness relies
//! only on *relative* comparisons, which the model preserves because all
//! schemes are charged by the same rules.

use crate::device::DeviceConfig;
use crate::metrics::Metrics;

/// Converts [`Metrics`] into simulated time for a given device.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    config: DeviceConfig,
}

impl CostModel {
    /// Build a cost model for a device configuration.
    pub fn new(config: &DeviceConfig) -> Self {
        Self { config: *config }
    }

    /// Memory-bound time component in nanoseconds.
    pub fn memory_time_ns(&self, m: &Metrics) -> f64 {
        let effective = m.transactions() as f64
            + m.random_transactions() as f64 * self.config.random_access_derate
            + m.dependent_read_transactions as f64 * self.config.dependent_access_derate;
        effective * self.config.line_bytes as f64 / self.config.bandwidth_bytes_per_sec * 1e9
    }

    /// Atomic time component: max of aggregate throughput and the
    /// serialized same-address conflict chains (which pay the much larger
    /// L2 round-trip latency per step).
    pub fn atomic_time_ns(&self, m: &Metrics) -> f64 {
        let throughput = m.atomic_ops as f64 * self.config.atomic_unit_ns;
        let serial = m.atomic_serial_units as f64 * self.config.atomic_serial_ns;
        throughput.max(serial)
    }

    /// Issue/latency time component in nanoseconds.
    pub fn issue_time_ns(&self, m: &Metrics) -> f64 {
        m.rounds as f64 * self.config.round_issue_ns
    }

    /// Simulated kernel time: the roofline max of the three components.
    pub fn kernel_time_ns(&self, m: &Metrics) -> f64 {
        self.memory_time_ns(m)
            .max(self.atomic_time_ns(m))
            .max(self.issue_time_ns(m))
    }

    /// Throughput in million operations per second.
    pub fn mops(&self, ops: u64, m: &Metrics) -> f64 {
        let ns = self.kernel_time_ns(m);
        if ns == 0.0 {
            return 0.0;
        }
        ops as f64 / ns * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::new(&DeviceConfig::default())
    }

    #[test]
    fn memory_term_scales_with_transactions() {
        let m1 = Metrics {
            read_transactions: 1000,
            ..Metrics::default()
        };
        let m2 = Metrics {
            read_transactions: 2000,
            ..Metrics::default()
        };
        let model = model();
        let t1 = model.memory_time_ns(&m1);
        let t2 = model.memory_time_ns(&m2);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn roofline_takes_the_max() {
        let model = model();
        // Atomic-heavy metrics: huge serialized cost, tiny memory traffic.
        let m = Metrics {
            read_transactions: 1,
            atomic_serial_units: 1_000_000,
            rounds: 1,
            ..Metrics::default()
        };
        let t = model.kernel_time_ns(&m);
        assert!((t - model.atomic_time_ns(&m)).abs() < 1e-9);
        assert!(t > model.memory_time_ns(&m));
    }

    #[test]
    fn random_transactions_cost_a_derate() {
        let model = model();
        let coalesced = Metrics {
            read_transactions: 1000,
            ..Metrics::default()
        };
        let random = Metrics {
            random_read_transactions: 1000,
            ..Metrics::default()
        };
        let ratio = model.memory_time_ns(&random) / model.memory_time_ns(&coalesced);
        assert!((ratio - 4.0).abs() < 1e-9, "derate ratio = {ratio}");
    }

    #[test]
    fn mops_inverse_to_time() {
        let model = model();
        let m = Metrics {
            read_transactions: 2500, // 2500 × 128 B / 320 GB/s = 1000 ns
            ..Metrics::default()
        };
        let mops = model.mops(1000, &m);
        // 1000 ops in 1000 ns = 1000 Mops.
        assert!((mops - 1000.0).abs() < 1.0, "mops = {mops}");
    }

    #[test]
    fn zero_metrics_zero_mops() {
        assert_eq!(model().mops(100, &Metrics::default()), 0.0);
    }

    #[test]
    fn uncontended_atomics_cheaper_than_memory_equivalent() {
        // With default calibration, n uncontended atomics spread over 20 SMs
        // must not dominate n coalesced transactions: the paper's figure
        // shows atomics ≈ sequential IO at conflict count 1.
        let model = model();
        let m = Metrics {
            read_transactions: 10_000,
            atomic_ops: 10_000,
            atomic_serial_units: 10, // 10 rounds, no conflicts
            ..Metrics::default()
        };
        assert!(model.atomic_time_ns(&m) <= model.memory_time_ns(&m));
        // And at conflict count 1, atomic throughput matches sequential IO
        // exactly (the left edge of the paper's profiling figure).
        assert!((model.atomic_time_ns(&m) - model.memory_time_ns(&m)).abs() < 1e-9);
    }

    #[test]
    fn contended_atomics_dominate() {
        // One address hammered by everything: the serial chain rules.
        let model = model();
        let m = Metrics {
            read_transactions: 100,
            atomic_ops: 10_000,
            atomic_serial_units: 10_000,
            ..Metrics::default()
        };
        assert!(model.atomic_time_ns(&m) > model.memory_time_ns(&m));
        let serial_only = m.atomic_serial_units as f64 * 16.0;
        assert!((model.atomic_time_ns(&m) - serial_only).abs() < 1e-9);
    }
}
