//! **Figure 9** — "Throughput for varying the filled factor θ against the
//! RAND dataset" (static setting, all schemes).
//!
//! Paper shape to reproduce: cuckoo schemes degrade mildly on insert at
//! high θ, with DyCuckoo the most stable (two-layer + steering keeps
//! relocations cheap even at 90%); find is flat for bucketized cuckoo;
//! CUDPP's find *drops* with θ because it auto-selects more hash functions;
//! SlabHash degrades dramatically in both (longer chains), with DyCuckoo
//! better by over 2× at θ = 90%.

use bench::driver::{build_static, run_static, Scheme};
use bench::report::{fmt_mops, Table};
use bench::telemetry::Telemetry;
use bench::{scale, seed};
use gpu_sim::SimContext;
use workloads::dataset_by_name;

fn main() {
    let mut tel = Telemetry::from_env();
    let scale = scale();
    let seed = seed();
    let ds = dataset_by_name("RAND")
        .unwrap()
        .scaled(scale)
        .generate(seed);
    let n_queries = (1_000_000.0 * scale).round() as usize;
    println!(
        "Figure 9: static throughput vs filled factor θ (RAND, {} pairs)",
        ds.len()
    );

    let thetas = [0.70, 0.75, 0.80, 0.85, 0.90];
    let mut insert_tbl = Table::new(&["theta", "CUDPP", "MegaKV", "Slab", "DyCuckoo"]);
    let mut find_tbl = Table::new(&["theta", "CUDPP", "MegaKV", "Slab", "DyCuckoo"]);
    for &theta in &thetas {
        let mut ins = vec![format!("{:.0}%", theta * 100.0)];
        let mut fnd = vec![format!("{:.0}%", theta * 100.0)];
        let theta_label = format!("{:.2}", theta);
        for scheme in Scheme::static_set() {
            let mut sim = SimContext::new();
            let mut table = build_static(scheme, ds.unique_keys, theta, seed, &mut sim);
            let r = run_static(table.as_mut(), &mut sim, &ds, n_queries, seed ^ 0xF9);
            let labels = |kernel| {
                [
                    ("figure", "fig9"),
                    ("kernel", kernel),
                    ("scheme", scheme.label()),
                    ("theta", theta_label.as_str()),
                ]
            };
            r.insert
                .metrics
                .register_into(tel.registry(), &labels("insert"));
            r.find
                .metrics
                .register_into(tel.registry(), &labels("find"));
            ins.push(fmt_mops(r.insert.mops));
            fnd.push(fmt_mops(r.find.mops));
        }
        insert_tbl.row(ins);
        find_tbl.row(fnd);
    }
    insert_tbl.print("Figure 9 (left): INSERT Mops vs θ");
    find_tbl.print("Figure 9 (right): FIND Mops vs θ");
    tel.finish();
}
