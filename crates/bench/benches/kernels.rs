//! Criterion microbenchmarks of the hot simulated kernels.
//!
//! These measure **host-side wall-clock** of the simulator executing each
//! kernel — the regression-tracking complement to the figure binaries,
//! which report *simulated* GPU throughput. If one of these regresses, the
//! simulator (and thus every experiment) got slower.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use baselines::{Cudpp, GpuHashTable, LinearProbing, MegaKv, SlabHash};
use dycuckoo::{Config, DupPolicy, DyCuckoo, ResizeOp};
use gpu_sim::SimContext;
use workloads::keygen::unique_keys;

const N: usize = 50_000;

fn keyset(seed: u64) -> Vec<(u32, u32)> {
    unique_keys(seed, N).map(|k| (k, k ^ 0xABCD)).collect()
}

fn static_cfg() -> Config {
    Config {
        alpha: 0.0,
        beta: 1.0,
        dup_policy: DupPolicy::PaperInsert,
        ..Config::default()
    }
}

fn bench_insert(c: &mut Criterion) {
    let kvs = keyset(1);
    let mut g = c.benchmark_group("insert_50k_at_0.85");
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("dycuckoo_voter", |b| {
        b.iter(|| {
            let mut sim = SimContext::new();
            let mut t = DyCuckoo::with_capacity(static_cfg(), N, 0.85, &mut sim).unwrap();
            t.insert_batch(&mut sim, &kvs).unwrap();
            t.len()
        })
    });
    g.bench_function("megakv", |b| {
        b.iter(|| {
            let mut sim = SimContext::new();
            let mut t = MegaKv::with_capacity(N, 0.85, None, 1, &mut sim).unwrap();
            t.insert_batch(&mut sim, &kvs).unwrap();
            t.len()
        })
    });
    g.bench_function("slab", |b| {
        b.iter(|| {
            let mut sim = SimContext::new();
            let mut t = SlabHash::with_capacity(N, 0.85, 1, &mut sim).unwrap();
            t.insert_batch(&mut sim, &kvs).unwrap();
            t.len()
        })
    });
    g.bench_function("cudpp", |b| {
        b.iter(|| {
            let mut sim = SimContext::new();
            let mut t = Cudpp::with_capacity(N, 0.85, 1, &mut sim).unwrap();
            t.insert_batch(&mut sim, &kvs).unwrap();
            t.len()
        })
    });
    g.bench_function("linear", |b| {
        b.iter(|| {
            let mut sim = SimContext::new();
            let mut t = LinearProbing::with_capacity(N, 0.85, 1, &mut sim).unwrap();
            t.insert_batch(&mut sim, &kvs).unwrap();
            t.len()
        })
    });
    g.finish();
}

fn bench_find(c: &mut Criterion) {
    let kvs = keyset(2);
    let keys: Vec<u32> = kvs.iter().map(|&(k, _)| k).collect();
    let mut sim = SimContext::new();
    let mut table = DyCuckoo::with_capacity(static_cfg(), N, 0.85, &mut sim).unwrap();
    table.insert_batch(&mut sim, &kvs).unwrap();

    let mut g = c.benchmark_group("find_50k");
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("dycuckoo_hits", |b| {
        b.iter(|| table.find_batch(&mut sim, &keys))
    });
    let misses: Vec<u32> = keys.iter().map(|&k| k | 1 << 31).collect();
    g.bench_function("dycuckoo_misses", |b| {
        b.iter(|| table.find_batch(&mut sim, &misses))
    });
    g.finish();
}

fn bench_delete(c: &mut Criterion) {
    let kvs = keyset(3);
    let keys: Vec<u32> = kvs.iter().map(|&(k, _)| k).collect();
    let mut g = c.benchmark_group("delete_50k");
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("dycuckoo", |b| {
        b.iter(|| {
            let mut sim = SimContext::new();
            let mut t = DyCuckoo::with_capacity(static_cfg(), N, 0.85, &mut sim).unwrap();
            t.insert_batch(&mut sim, &kvs).unwrap();
            t.delete_batch(&mut sim, &keys).unwrap().deleted
        })
    });
    g.finish();
}

fn bench_resize(c: &mut Criterion) {
    let kvs = keyset(4);
    let mut g = c.benchmark_group("resize_one_subtable");
    for (name, grow, fill) in [
        ("upsize_at_0.85", true, 0.85),
        ("downsize_at_0.30", false, 0.30),
    ] {
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let mut sim = SimContext::new();
                let mut t = DyCuckoo::with_capacity(static_cfg(), N, fill, &mut sim).unwrap();
                t.insert_batch(&mut sim, &kvs).unwrap();
                let op = if grow {
                    ResizeOp::Upsize(0)
                } else {
                    ResizeOp::Downsize(0)
                };
                t.force_resize(&mut sim, op).unwrap().moved
            })
        });
    }
    g.finish();
}

fn bench_workload_generation(c: &mut Criterion) {
    use workloads::{dataset_by_name, DynamicWorkload};
    let mut g = c.benchmark_group("workload_generation");
    g.bench_function("dataset_tw_scaled", |b| {
        let spec = dataset_by_name("TW").unwrap().scaled(0.002);
        b.iter(|| spec.generate(1).len())
    });
    g.bench_function("dynamic_workload_build", |b| {
        let ds = dataset_by_name("TW").unwrap().scaled(0.002).generate(1);
        b.iter(|| DynamicWorkload::build(&ds, 5_000, 0.2, 1).total_ops())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    // Small sample count: each iteration simulates tens of thousands of
    // operations, so 15 samples already give tight confidence intervals,
    // and the suite must stay runnable on one core.
    config = Criterion::default().sample_size(15);
    targets = bench_insert,
    bench_find,
    bench_delete,
    bench_resize,
    bench_workload_generation
}
criterion_main!(benches);
