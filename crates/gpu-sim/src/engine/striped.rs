//! Lock-striped, thread-safe access mode for the bucketized store.
//!
//! [`StripedStore`] holds the same logical content as a [`BucketStore`] —
//! bucketed key/value arrays with an optional fingerprint lane — but
//! partitions the buckets into contiguous **stripes**, each guarded by its
//! own mutex, so real OS threads can operate on disjoint stripes
//! concurrently. This is the storage half of the `host-par` backend: the
//! simulated path keeps using [`BucketStore`] under the round scheduler's
//! `atomicCAS` bucket locks, while the host-parallel path locks a stripe
//! and performs the identical slot transitions under it.
//!
//! ## Locking protocol
//!
//! * A bucket `b` belongs to exactly one stripe, [`StripedStore::stripe_of`]
//!   `(b)`. All reads and writes of a bucket's slots require holding that
//!   stripe's guard ([`StripedStore::lock_stripe`]).
//! * Operations that touch several buckets (cuckoo inserts probe every
//!   candidate bucket of a key) must acquire the distinct stripes in
//!   **canonical order** — ascending `(table index, stripe index)` — and
//!   never acquire a lower-ordered stripe while holding a higher one.
//!   Callers own this ordering; `vendor/interleave`'s exhaustive schedule
//!   explorer pins the protocol (canonical order is deadlock-free, the
//!   reversed order deadlocks) and the claim semantics (a slot is claimed
//!   only while its stripe is held, so concurrent inserts cannot lose
//!   updates the way the `inject_lock_elision` fault does).
//! * [`StripedStore::try_lock_stripe`] is the voter-style non-blocking
//!   acquire: a failed attempt is counted (the host-par analogue of a
//!   failed `atomicCAS` re-vote) and the caller may go do other work.
//!
//! ## Memory ordering
//!
//! Slot data is published by the stripe mutexes' release/acquire pairs;
//! no slot word is ever read outside a guard. The only lock-free state is
//! bookkeeping: `occupied` and the contention counter are relaxed atomics,
//! read at quiesce points (between batches, after `std::thread::scope`
//! joins) where the joining thread already synchronizes-with every worker.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use super::layout::LayoutConfig;
use super::store::{BucketStore, SlotWord};

/// One stripe's share of the key/value/fingerprint lanes.
#[derive(Debug)]
struct Stripe<K, V> {
    keys: Vec<K>,
    vals: Vec<V>,
    /// Per-slot fingerprints; empty when the layout carries no lane.
    /// Invariant (mirrors [`BucketStore`]): `fps[idx] == 0` ⟺ empty slot.
    fps: Vec<u16>,
}

/// A bucketized key/value store whose buckets are partitioned into
/// mutex-guarded stripes. Logical slot transitions (`write_new`,
/// `update_val`, `swap`, `erase`) are exactly [`BucketStore`]'s, so a
/// store converted in either direction holds the identical content.
#[derive(Debug)]
pub struct StripedStore<K: SlotWord, V: SlotWord> {
    stripes: Vec<Mutex<Stripe<K, V>>>,
    /// Buckets per stripe (the last stripe may be shorter).
    buckets_per_stripe: usize,
    n_buckets: usize,
    layout: LayoutConfig,
    fp_fn: fn(K) -> u64,
    /// Live slots across all stripes. Relaxed: a monotonic counter whose
    /// exact value is only inspected at quiesce points.
    occupied: AtomicU64,
    /// Failed [`StripedStore::try_lock_stripe`] attempts (the host-par
    /// analogue of failed `atomicCAS` lock acquisitions).
    contended: AtomicU64,
}

impl<K: SlotWord, V: SlotWord> StripedStore<K, V> {
    /// Create an empty striped store of `n_buckets` buckets under
    /// `layout`, with `buckets_per_stripe` buckets per lock.
    pub fn new(n_buckets: usize, layout: LayoutConfig, buckets_per_stripe: usize) -> Self {
        assert!(n_buckets >= 1, "bucket count must be positive");
        assert!(buckets_per_stripe >= 1, "stripe width must be positive");
        let slots = layout.slots;
        let has_fp = layout.has_fp();
        let n_stripes = n_buckets.div_ceil(buckets_per_stripe);
        let stripes = (0..n_stripes)
            .map(|s| {
                let lo = s * buckets_per_stripe;
                let hi = (lo + buckets_per_stripe).min(n_buckets);
                let n = (hi - lo) * slots;
                Mutex::new(Stripe {
                    keys: vec![K::EMPTY; n],
                    vals: vec![V::EMPTY; n],
                    fps: vec![0; if has_fp { n } else { 0 }],
                })
            })
            .collect();
        Self {
            stripes,
            buckets_per_stripe,
            n_buckets,
            layout,
            fp_fn: K::fp_hash,
            occupied: AtomicU64::new(0),
            contended: AtomicU64::new(0),
        }
    }

    /// Install a custom fingerprint hash. Must be called before any key
    /// is stored — the lane is not recomputed retroactively.
    pub fn set_fp_fn(&mut self, f: fn(K) -> u64) {
        debug_assert_eq!(
            self.occupied.load(Ordering::Relaxed),
            0,
            "set_fp_fn on a populated store"
        );
        self.fp_fn = f;
    }

    /// The stripe bucket `b` belongs to.
    #[inline]
    pub fn stripe_of(&self, b: usize) -> usize {
        debug_assert!(b < self.n_buckets);
        b / self.buckets_per_stripe
    }

    /// Number of stripes (locks).
    #[inline]
    pub fn n_stripes(&self) -> usize {
        self.stripes.len()
    }

    /// Number of buckets.
    #[inline]
    pub fn n_buckets(&self) -> usize {
        self.n_buckets
    }

    /// The layout this store was created under.
    #[inline]
    pub fn layout(&self) -> &LayoutConfig {
        &self.layout
    }

    /// Slots per bucket.
    #[inline]
    pub fn slots_per_bucket(&self) -> usize {
        self.layout.slots
    }

    /// Total key slots.
    #[inline]
    pub fn capacity_slots(&self) -> u64 {
        (self.n_buckets * self.layout.slots) as u64
    }

    /// Live slots. Exact only at quiesce points (no stripe held for
    /// writing elsewhere).
    #[inline]
    pub fn occupied(&self) -> u64 {
        self.occupied.load(Ordering::Relaxed)
    }

    /// Filled factor `θ_i`. Exact only at quiesce points.
    #[inline]
    pub fn fill_factor(&self) -> f64 {
        self.occupied() as f64 / self.capacity_slots() as f64
    }

    /// Device bytes under the layout (same accounting as the bucket
    /// store: padded bucket strides plus one lock word per bucket).
    pub fn device_bytes(&self) -> u64 {
        self.layout.device_bytes_for(self.n_buckets)
    }

    /// Failed non-blocking lock attempts so far.
    #[inline]
    pub fn contended(&self) -> u64 {
        self.contended.load(Ordering::Relaxed)
    }

    /// Block until stripe `s` is held. Callers locking several stripes
    /// must acquire them in ascending `(table, stripe)` order.
    pub fn lock_stripe(&self, s: usize) -> StripeGuard<'_, K, V> {
        StripeGuard {
            store: self,
            stripe: s,
            guard: self.stripes[s].lock().expect("stripe lock poisoned"),
        }
    }

    /// Voter-style non-blocking acquire: `None` (counted as contention)
    /// when another thread holds stripe `s`.
    pub fn try_lock_stripe(&self, s: usize) -> Option<StripeGuard<'_, K, V>> {
        match self.stripes[s].try_lock() {
            Ok(guard) => Some(StripeGuard {
                store: self,
                stripe: s,
                guard,
            }),
            Err(std::sync::TryLockError::WouldBlock) => {
                self.contended.fetch_add(1, Ordering::Relaxed);
                None
            }
            Err(std::sync::TryLockError::Poisoned(_)) => panic!("stripe lock poisoned"),
        }
    }

    /// All live `(key, value)` pairs, in bucket-then-slot order.
    /// `&mut self` proves quiescence, so no stripe lock is taken.
    pub fn live_pairs(&mut self) -> Vec<(K, V)> {
        let mut out = Vec::with_capacity(self.occupied() as usize);
        for stripe in &mut self.stripes {
            let stripe = stripe.get_mut().expect("stripe lock poisoned");
            for (k, v) in stripe.keys.iter().zip(stripe.vals.iter()) {
                if !k.is_empty_word() {
                    out.push((*k, *v));
                }
            }
        }
        out
    }

    /// Recount occupancy from the key lanes (accounting-drift checks).
    pub fn recount(&mut self) -> u64 {
        let mut n = 0;
        for stripe in &mut self.stripes {
            let stripe = stripe.get_mut().expect("stripe lock poisoned");
            n += stripe.keys.iter().filter(|k| !k.is_empty_word()).count() as u64;
        }
        n
    }

    /// Copy this store's content into a fresh [`BucketStore`] (same
    /// layout, same bucket/slot placement). `&mut self` proves quiescence.
    pub fn to_bucket_store(&mut self) -> BucketStore<K, V> {
        let mut out = BucketStore::new(self.n_buckets, self.layout);
        out.set_fp_fn(self.fp_fn);
        let slots = self.layout.slots;
        for (si, stripe) in self.stripes.iter_mut().enumerate() {
            let stripe = stripe.get_mut().expect("stripe lock poisoned");
            let base = si * self.buckets_per_stripe;
            for (i, (k, v)) in stripe.keys.iter().zip(stripe.vals.iter()).enumerate() {
                if !k.is_empty_word() {
                    out.write_new(base + i / slots, i % slots, *k, *v);
                }
            }
        }
        out
    }
}

impl<K: SlotWord, V: SlotWord> BucketStore<K, V> {
    /// Copy this store's content into a striped thread-safe twin (same
    /// layout, same bucket/slot placement, same fingerprint hash).
    pub fn to_striped(&self, buckets_per_stripe: usize) -> StripedStore<K, V> {
        let mut out = StripedStore::new(self.n_buckets(), *self.layout(), buckets_per_stripe);
        out.set_fp_fn(self.fp_fn());
        for b in 0..self.n_buckets() {
            let mut g = out.lock_stripe(out.stripe_of(b));
            for (s, &k) in self.bucket_keys(b).iter().enumerate() {
                if !k.is_empty_word() {
                    g.write_new(b, s, k, self.bucket_vals(b)[s]);
                }
            }
        }
        out
    }
}

/// Exclusive access to one stripe's buckets. All slot reads and writes of
/// the stripe's buckets go through this guard; releasing it publishes the
/// writes to the next holder.
#[derive(Debug)]
pub struct StripeGuard<'a, K: SlotWord, V: SlotWord> {
    store: &'a StripedStore<K, V>,
    guard: MutexGuard<'a, Stripe<K, V>>,
    stripe: usize,
}

impl<K: SlotWord, V: SlotWord> StripeGuard<'_, K, V> {
    /// The stripe this guard holds.
    #[inline]
    pub fn stripe(&self) -> usize {
        self.stripe
    }

    /// Flat index of `(b, s)` within the stripe's lanes.
    #[inline]
    fn idx(&self, b: usize, s: usize) -> usize {
        debug_assert_eq!(
            self.store.stripe_of(b),
            self.stripe,
            "bucket outside stripe"
        );
        debug_assert!(s < self.store.layout.slots);
        (b - self.stripe * self.store.buckets_per_stripe) * self.store.layout.slots + s
    }

    /// The keys of bucket `b` (must belong to this stripe).
    #[inline]
    pub fn bucket_keys(&self, b: usize) -> &[K] {
        let lo = self.idx(b, 0);
        &self.guard.keys[lo..lo + self.store.layout.slots]
    }

    /// The slot in bucket `b` holding `key`, if any.
    #[inline]
    pub fn find_slot(&self, b: usize, key: K) -> Option<usize> {
        self.bucket_keys(b).iter().position(|&k| k == key)
    }

    /// An empty slot in bucket `b`, if any.
    #[inline]
    pub fn find_empty(&self, b: usize) -> Option<usize> {
        self.find_slot(b, K::EMPTY)
    }

    /// Read the KV pair at `(bucket, slot)`.
    #[inline]
    pub fn slot(&self, b: usize, s: usize) -> (K, V) {
        let idx = self.idx(b, s);
        (self.guard.keys[idx], self.guard.vals[idx])
    }

    /// Write a KV pair into an **empty** slot, growing the occupancy
    /// count and maintaining the fingerprint lane.
    pub fn write_new(&mut self, b: usize, s: usize, key: K, val: V) {
        let idx = self.idx(b, s);
        debug_assert!(
            self.guard.keys[idx].is_empty_word(),
            "write_new over a live slot"
        );
        debug_assert!(!key.is_empty_word());
        if self.store.layout.has_fp() {
            let fp = (self.store.fp_fn)(key) % self.store.layout.fp_max() + 1;
            self.guard.fps[idx] = fp as u16;
        }
        self.guard.keys[idx] = key;
        self.guard.vals[idx] = val;
        self.store.occupied.fetch_add(1, Ordering::Relaxed);
    }

    /// Overwrite the value of a live slot (in-place update).
    pub fn update_val(&mut self, b: usize, s: usize, val: V) {
        let idx = self.idx(b, s);
        debug_assert!(!self.guard.keys[idx].is_empty_word());
        self.guard.vals[idx] = val;
    }

    /// Swap the KV at `(b, s)` with the given pair, returning the evicted
    /// occupant. Occupancy is unchanged; the fingerprint lane follows.
    pub fn swap(&mut self, b: usize, s: usize, key: K, val: V) -> (K, V) {
        let idx = self.idx(b, s);
        debug_assert!(
            !self.guard.keys[idx].is_empty_word(),
            "swap with an empty slot"
        );
        let old = (self.guard.keys[idx], self.guard.vals[idx]);
        if self.store.layout.has_fp() {
            let fp = (self.store.fp_fn)(key) % self.store.layout.fp_max() + 1;
            self.guard.fps[idx] = fp as u16;
        }
        self.guard.keys[idx] = key;
        self.guard.vals[idx] = val;
        old
    }

    /// Erase the key at `(b, s)`, shrinking the occupancy count. The
    /// value is deliberately untouched (SoA deletion pays no value
    /// traffic), matching [`BucketStore::erase`].
    pub fn erase(&mut self, b: usize, s: usize) {
        let idx = self.idx(b, s);
        debug_assert!(
            !self.guard.keys[idx].is_empty_word(),
            "erasing an empty slot"
        );
        if self.store.layout.has_fp() {
            self.guard.fps[idx] = 0;
        }
        self.guard.keys[idx] = K::EMPTY;
        self.store.occupied.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(n_buckets: usize) -> StripedStore<u32, u32> {
        StripedStore::new(n_buckets, LayoutConfig::default(), 2)
    }

    #[test]
    fn roundtrip_matches_bucket_store_semantics() {
        let mut t = store(8);
        {
            let mut g = t.lock_stripe(t.stripe_of(5));
            let s = g.find_empty(5).unwrap();
            g.write_new(5, s, 99, 7);
            assert_eq!(g.find_slot(5, 99), Some(s));
            assert_eq!(g.slot(5, s), (99, 7));
            g.update_val(5, s, 8);
            assert_eq!(g.slot(5, s), (99, 8));
            let old = g.swap(5, s, 100, 9);
            assert_eq!(old, (99, 8));
        }
        assert_eq!(t.occupied(), 1);
        {
            let mut g = t.lock_stripe(t.stripe_of(5));
            let s = g.find_slot(5, 100).unwrap();
            g.erase(5, s);
        }
        assert_eq!(t.occupied(), 0);
        assert_eq!(t.recount(), 0);
    }

    #[test]
    fn stripe_mapping_partitions_buckets() {
        let t = store(7); // 2 buckets per stripe → stripes {0,1} {2,3} {4,5} {6}
        assert_eq!(t.n_stripes(), 4);
        assert_eq!(t.stripe_of(0), 0);
        assert_eq!(t.stripe_of(1), 0);
        assert_eq!(t.stripe_of(6), 3);
        // The short tail stripe still addresses its bucket.
        let mut g = t.lock_stripe(3);
        g.write_new(6, 0, 42, 1);
        assert_eq!(g.find_slot(6, 42), Some(0));
    }

    #[test]
    fn fp_lane_tracks_mutations() {
        let mut t: StripedStore<u32, u32> =
            StripedStore::new(4, LayoutConfig::default().with_fp(8), 2);
        let reference: BucketStore<u32, u32> =
            BucketStore::new(4, LayoutConfig::default().with_fp(8));
        {
            let mut g = t.lock_stripe(0);
            g.write_new(1, 3, 42, 7);
            let old = g.swap(1, 3, 99, 8);
            assert_eq!(old, (42, 7));
            g.erase(1, 3);
            g.write_new(1, 3, 42, 7);
        }
        // Same fingerprint value as the bucket store computes for the key.
        let bs = t.to_bucket_store();
        assert_eq!(bs.bucket_fps(1)[3], reference.fp_of(42));
    }

    #[test]
    fn conversions_preserve_placement_and_content() {
        let mut bs: BucketStore<u32, u32> = BucketStore::new(6, LayoutConfig::default());
        for k in 1..=50u32 {
            let b = (k % 6) as usize;
            if let Some(s) = bs.find_empty(b) {
                bs.write_new(b, s, k, k * 3);
            }
        }
        let mut striped = bs.to_striped(2);
        assert_eq!(striped.occupied(), bs.occupied());
        let back = striped.to_bucket_store();
        assert_eq!(back.occupied(), bs.occupied());
        for b in 0..6 {
            assert_eq!(back.bucket_keys(b), bs.bucket_keys(b), "bucket {b}");
            assert_eq!(back.bucket_vals(b), bs.bucket_vals(b), "bucket {b}");
        }
    }

    #[test]
    fn try_lock_counts_contention() {
        let t = store(4);
        let g = t.lock_stripe(0);
        assert!(t.try_lock_stripe(0).is_none());
        assert!(t.try_lock_stripe(1).is_some());
        drop(g);
        assert!(t.try_lock_stripe(0).is_some());
        assert_eq!(t.contended(), 1);
    }

    #[test]
    fn threads_on_disjoint_stripes_do_not_lose_updates() {
        let t = store(8); // 4 stripes
        std::thread::scope(|scope| {
            for stripe in 0..4usize {
                let t = &t;
                scope.spawn(move || {
                    for i in 0..40u32 {
                        let b = stripe * 2 + (i % 2) as usize;
                        let key = 1 + stripe as u32 * 1000 + i;
                        let mut g = t.lock_stripe(stripe);
                        if let Some(s) = g.find_empty(b) {
                            g.write_new(b, s, key, i);
                        }
                    }
                });
            }
        });
        let mut t = t;
        assert_eq!(t.occupied(), 4 * 40);
        assert_eq!(t.recount(), 4 * 40);
        assert_eq!(t.live_pairs().len(), 4 * 40);
    }

    #[test]
    fn contending_threads_on_one_stripe_serialize() {
        let t = store(2); // a single stripe: every write contends
        std::thread::scope(|scope| {
            for thread in 0..4u32 {
                let t = &t;
                scope.spawn(move || {
                    for i in 0..16u32 {
                        let key = 1 + thread * 100 + i;
                        loop {
                            // Voter-style: retry on a contended stripe.
                            let Some(mut g) = t.try_lock_stripe(0) else {
                                std::hint::spin_loop();
                                continue;
                            };
                            let b = (key % 2) as usize;
                            if let Some(s) = g.find_empty(b) {
                                g.write_new(b, s, key, i);
                            }
                            break;
                        }
                    }
                });
            }
        });
        let mut t = t;
        // 64 slots per bucket-pair; all 64 distinct keys must have landed.
        assert_eq!(t.recount(), 64);
        assert_eq!(t.occupied(), 64);
    }
}
