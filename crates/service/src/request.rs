//! Request/response types of the service boundary.

use dycuckoo::MergeRule;

/// A single-key operation submitted by a logical client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Read the value of a key.
    Get(u32),
    /// Insert or update a key.
    Put(u32, u32),
    /// Remove a key.
    Delete(u32),
    /// Read-modify-write: store `rule.initial(arg)` if the key is absent,
    /// `rule.merge(old, arg)` if present.
    Upsert(u32, u32, MergeRule),
    /// Counting-table increment: `Upsert(key, _, MergeRule::Count)`.
    Increment(u32),
}

impl Op {
    /// The key this operation addresses (what the router shards on).
    pub fn key(&self) -> u32 {
        match *self {
            Op::Get(k) | Op::Put(k, _) | Op::Delete(k) | Op::Upsert(k, _, _) | Op::Increment(k) => {
                k
            }
        }
    }

    /// Whether this is a read (reads are shed first under pressure).
    pub fn is_read(&self) -> bool {
        matches!(self, Op::Get(_))
    }
}

/// The answer to one completed operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reply {
    /// Get result: the value, or `None` for a miss.
    Value(Option<u32>),
    /// Put acknowledged (inserted or updated).
    Stored,
    /// Delete acknowledged (whether or not the key existed).
    Deleted,
    /// Upsert/Increment acknowledged (the merge was applied exactly once).
    Merged,
}

/// A finished request, handed back to the submitting client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Service-assigned request id (monotonic per service).
    pub id: u64,
    /// The submitting logical client.
    pub client: u32,
    /// The key the request addressed.
    pub key: u32,
    /// The answer.
    pub reply: Reply,
    /// Simulated tick at which the request was admitted.
    pub submitted_tick: u64,
    /// Simulated tick at which its batch flushed.
    pub completed_tick: u64,
    /// Whether the reply was served from the coalescing window (a write in
    /// the same flush window answered this read locally — no table probe).
    pub coalesced: bool,
}

impl Completion {
    /// Queueing + batching latency in simulated ticks.
    pub fn latency_ticks(&self) -> u64 {
        self.completed_tick - self.submitted_tick
    }
}

/// A request sitting in a shard queue, waiting to be batched.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Pending {
    pub id: u64,
    pub client: u32,
    pub op: Op,
    pub submitted_tick: u64,
}

/// A byte-string operation for the unsized tier
/// (`ServiceConfig::tier = Tier::Unsized`). Keys and values are arbitrary
/// byte strings — including empty ones — up to the tier's blob bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ByteOp {
    /// Read the value of a key.
    Get(Vec<u8>),
    /// Insert or update a key.
    Put(Vec<u8>, Vec<u8>),
    /// Remove a key.
    Delete(Vec<u8>),
}

impl ByteOp {
    /// The key this operation addresses (what the router shards on).
    pub fn key(&self) -> &[u8] {
        match self {
            ByteOp::Get(k) | ByteOp::Put(k, _) | ByteOp::Delete(k) => k,
        }
    }

    /// Whether this is a read (reads are shed first under pressure).
    pub fn is_read(&self) -> bool {
        matches!(self, ByteOp::Get(_))
    }
}

/// The answer to one completed byte-string operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ByteReply {
    /// Get result: the value's bytes, or `None` for a miss.
    Value(Option<Vec<u8>>),
    /// Put acknowledged (inserted or updated).
    Stored,
    /// Delete acknowledged; `true` if the key existed.
    Deleted(bool),
}

/// A finished byte-string request, handed back to the submitting client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ByteCompletion {
    /// Service-assigned request id (shared sequence with the fixed tier).
    pub id: u64,
    /// The submitting logical client.
    pub client: u32,
    /// The key the request addressed.
    pub key: Vec<u8>,
    /// The answer.
    pub reply: ByteReply,
    /// Simulated tick at which the request was admitted.
    pub submitted_tick: u64,
    /// Simulated tick at which its batch flushed.
    pub completed_tick: u64,
}

impl ByteCompletion {
    /// Queueing + batching latency in simulated ticks.
    pub fn latency_ticks(&self) -> u64 {
        self.completed_tick - self.submitted_tick
    }
}

/// A byte-string request sitting in a shard's byte queue.
#[derive(Debug, Clone)]
pub(crate) struct BytePending {
    pub id: u64,
    pub client: u32,
    pub op: ByteOp,
    pub submitted_tick: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_key_and_read_classification() {
        assert_eq!(Op::Get(7).key(), 7);
        assert_eq!(Op::Put(8, 1).key(), 8);
        assert_eq!(Op::Delete(9).key(), 9);
        assert!(Op::Get(1).is_read());
        assert!(!Op::Put(1, 2).is_read());
        assert!(!Op::Delete(1).is_read());
    }

    #[test]
    fn byte_op_key_and_read_classification() {
        assert_eq!(ByteOp::Get(b"k".to_vec()).key(), b"k");
        assert_eq!(ByteOp::Put(b"ab".to_vec(), b"v".to_vec()).key(), b"ab");
        assert_eq!(ByteOp::Delete(Vec::new()).key(), b"");
        assert!(ByteOp::Get(Vec::new()).is_read());
        assert!(!ByteOp::Put(Vec::new(), Vec::new()).is_read());
        assert!(!ByteOp::Delete(Vec::new()).is_read());
    }

    #[test]
    fn byte_completion_latency_is_tick_delta() {
        let c = ByteCompletion {
            id: 1,
            client: 2,
            key: b"spam".to_vec(),
            reply: ByteReply::Deleted(true),
            submitted_tick: 3,
            completed_tick: 9,
        };
        assert_eq!(c.latency_ticks(), 6);
    }

    #[test]
    fn completion_latency_is_tick_delta() {
        let c = Completion {
            id: 1,
            client: 2,
            key: 3,
            reply: Reply::Stored,
            submitted_tick: 10,
            completed_tick: 14,
            coalesced: false,
        };
        assert_eq!(c.latency_ticks(), 4);
    }
}
