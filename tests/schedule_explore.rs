//! Integration tests for the schedule-exploration harness (`bench::fuzz`
//! plus `gpu_sim::explore`): the differential oracle stays clean on every
//! scheme under adversarial warp schedules, the planted lock-elision bug is
//! caught and minimized to a hand-readable repro, and repro artifacts
//! round-trip through their RON form bit-identically.

use bench::fuzz::{gen_ops, run_case, shrink_case, Case, Repro, Target};
use gpu_sim::{LayoutConfig, SchedulePolicy};

/// Every scheme in the repository passes the differential oracle under
/// every schedule-policy flavor. This is the integration-level version of
/// the CI `schedule_fuzz` sweep, trimmed so it stays fast in debug builds
/// (the `debug_verify` integrity assertions are active here).
#[test]
fn oracle_clean_on_all_targets_under_varied_schedules() {
    for target in Target::ALL {
        for seed in 0..4u64 {
            let case = Case {
                target,
                policy: SchedulePolicy::from_seed(seed),
                workload_seed: seed,
                inject_lock_elision: false,
                layout: LayoutConfig::default(),
                migration_quantum: usize::MAX,
                tier: kv_service::Tier::Fixed,
                key_dist: workloads::LengthDist::Mixed,
                fingerprint: 0,
                miss_filter: false,
                host_par_threads: 0,
                ops: gen_ops(seed, 64),
            };
            if let Err(v) = run_case(&case) {
                panic!(
                    "oracle violation on {} seed {seed} under {}: {v}",
                    target.name(),
                    case.policy.spec()
                );
            }
        }
    }
}

/// A passing execution is deterministic: re-running the identical case
/// yields the identical digest (which folds rounds, lock failures, and
/// final table size — i.e. the whole schedule-sensitive trace).
#[test]
fn identical_case_yields_identical_digest() {
    for target in [Target::DyCuckoo, Target::WideDyCuckoo, Target::KvService] {
        let case = Case {
            target,
            policy: SchedulePolicy::Shuffled { seed: 0xFEED },
            workload_seed: 7,
            inject_lock_elision: false,
            layout: LayoutConfig::default(),
            migration_quantum: usize::MAX,
            tier: kv_service::Tier::Fixed,
            key_dist: workloads::LengthDist::Mixed,
            fingerprint: 0,
            miss_filter: false,
            host_par_threads: 0,
            ops: gen_ops(7, 64),
        };
        let first = run_case(&case).expect("clean case");
        let second = run_case(&case).expect("clean case");
        assert_eq!(
            first,
            second,
            "digest not reproducible for {}",
            target.name()
        );
    }
}

/// The planted lock-elision bug (insert kernel skips bucket locks and works
/// on stale snapshots) is caught by the oracle and ddmin shrinks it to a
/// tiny repro — at most 10 ops — that still fails.
#[test]
fn injected_lock_elision_is_caught_and_shrunk() {
    let mut caught = 0;
    for seed in 0..8u64 {
        let case = Case {
            target: Target::DyCuckoo,
            policy: SchedulePolicy::from_seed(seed),
            workload_seed: seed,
            inject_lock_elision: true,
            layout: LayoutConfig::default(),
            migration_quantum: usize::MAX,
            tier: kv_service::Tier::Fixed,
            key_dist: workloads::LengthDist::Mixed,
            fingerprint: 0,
            miss_filter: false,
            host_par_threads: 0,
            ops: gen_ops(seed, 96),
        };
        if run_case(&case).is_ok() {
            continue;
        }
        caught += 1;
        let (min, violation) = shrink_case(&case);
        assert!(
            min.ops.len() <= 10,
            "seed {seed}: shrunk repro still has {} ops",
            min.ops.len()
        );
        assert!(!violation.detail.is_empty());
        // The minimized case must itself still fail — ddmin only ever
        // returns subsets it re-validated.
        assert!(
            run_case(&min).is_err(),
            "seed {seed}: shrunk case no longer fails"
        );
    }
    assert!(
        caught >= 4,
        "lock elision escaped the oracle on {}/8 seeds",
        8 - caught
    );
}

/// Repro artifacts survive the RON round trip exactly, and the parsed case
/// reproduces the recorded violation.
#[test]
fn repro_round_trips_and_replays() {
    // Deterministically derive a failing case the same way the fuzzer does.
    let case = Case {
        target: Target::DyCuckoo,
        policy: SchedulePolicy::from_seed(3),
        workload_seed: 3,
        inject_lock_elision: true,
        layout: LayoutConfig::default(),
        migration_quantum: usize::MAX,
        tier: kv_service::Tier::Fixed,
        key_dist: workloads::LengthDist::Mixed,
        fingerprint: 0,
        miss_filter: false,
        host_par_threads: 0,
        ops: gen_ops(3, 96),
    };
    let violation = run_case(&case).expect_err("injected bug must fire");
    let (min, min_violation) = shrink_case(&case);
    let repro = Repro {
        case: min.clone(),
        violation: min_violation.detail.clone(),
    };
    let text = repro.to_ron();
    let parsed = Repro::from_ron(&text).expect("self-produced RON parses");
    assert_eq!(parsed.case, min, "case mangled by the RON round trip");
    assert_eq!(parsed.violation, min_violation.detail);
    // Replaying the parsed artifact reproduces a violation, like
    // `schedule_fuzz --replay` would.
    let replayed = run_case(&parsed.case).expect_err("replay must still fail");
    assert!(!replayed.detail.is_empty());
    // And the original (unshrunk) violation was a real divergence too.
    assert!(!violation.detail.is_empty());
}

/// Layout-equivalence property: an equal-slot interleaved (AoS) layout and
/// the paper's split-array (SoA) layout must be *the same logical
/// execution* — identical find/insert/delete results against the oracle,
/// and an identical schedule-sensitive digest (rounds, lock failures,
/// final length) — under every schedule-policy flavor. Only what the
/// memory system is charged may differ, and it must actually differ
/// (otherwise the sweep in `layout_sweep` measures nothing).
#[test]
fn aos_and_soa_layouts_agree_under_every_schedule() {
    for target in [Target::DyCuckoo, Target::MegaKv, Target::KvService] {
        for seed in 0..8u64 {
            let case_with = |layout| Case {
                target,
                policy: SchedulePolicy::from_seed(seed),
                workload_seed: seed,
                inject_lock_elision: false,
                layout,
                migration_quantum: usize::MAX,
                tier: kv_service::Tier::Fixed,
                key_dist: workloads::LengthDist::Mixed,
                fingerprint: 0,
                miss_filter: false,
                host_par_threads: 0,
                ops: gen_ops(seed, 96),
            };
            let soa = run_case(&case_with(LayoutConfig::default()))
                .unwrap_or_else(|v| panic!("{} soa32 seed {seed}: {v}", target.name()));
            let aos = run_case(&case_with(LayoutConfig::aos(32, 4, 4)))
                .unwrap_or_else(|v| panic!("{} aos32 seed {seed}: {v}", target.name()));
            assert_eq!(
                soa,
                aos,
                "{} seed {seed}: layouts diverged beyond charging",
                target.name()
            );
        }
    }
}

/// The layout-equivalence property at the metrics level: driving the same
/// batches under SoA and equal-slot AoS leaves every *logical* counter
/// (probes, evictions, scheduler rounds, lock failures) identical per
/// batch, while the *transaction* counters diverge — charging is the only
/// degree of freedom a layout has.
#[test]
fn layouts_differ_only_in_transaction_counters() {
    use baselines::{DyCuckooTable, GpuHashTable};
    use dycuckoo::{Config, DupPolicy};
    use gpu_sim::SimContext;

    for seed in 0..8u64 {
        let policy = SchedulePolicy::from_seed(seed);
        let run = |layout: LayoutConfig| {
            let mut sim = SimContext::new();
            let mut table = DyCuckooTable::new(
                Config {
                    initial_buckets: 4,
                    seed: seed ^ 0xC0FF_EE00,
                    dup_policy: DupPolicy::Upsert,
                    schedule: policy,
                    layout,
                    ..Config::default()
                },
                &mut sim,
            )
            .expect("table");
            let mut results: Vec<Option<u32>> = Vec::new();
            let mut probe_evict_digest: Vec<(u64, u64, u64, u64)> = Vec::new();
            let mut tx = 0u64;
            for (i, op) in gen_ops(seed, 96).iter().enumerate() {
                let before = sim.metrics.clone();
                match *op {
                    bench::fuzz::FuzzOp::Insert(k, v) => {
                        table.insert_batch(&mut sim, &[(k, v)]).expect("insert");
                    }
                    bench::fuzz::FuzzOp::Find(k) => {
                        results.extend(table.find_batch(&mut sim, &[k]));
                    }
                    bench::fuzz::FuzzOp::Delete(k) => {
                        table.delete_batch(&mut sim, &[k]).expect("delete");
                    }
                    // gen_ops never emits RMW verbs (only gen_ops_rmw
                    // does), but the match stays exhaustive.
                    bench::fuzz::FuzzOp::Upsert(k, v, rule) => {
                        table
                            .upsert_batch(&mut sim, &[(k, v)], rule)
                            .expect("upsert");
                    }
                    bench::fuzz::FuzzOp::Increment(k) => {
                        table
                            .upsert_batch(&mut sim, &[(k, 0)], dycuckoo::MergeRule::Count)
                            .expect("increment");
                    }
                }
                let _ = i;
                probe_evict_digest.push((
                    sim.metrics.lookups - before.lookups,
                    sim.metrics.evictions - before.evictions,
                    sim.metrics.rounds - before.rounds,
                    sim.metrics.lock_failures - before.lock_failures,
                ));
                tx += (sim.metrics.read_transactions - before.read_transactions)
                    + (sim.metrics.write_transactions - before.write_transactions);
            }
            (results, probe_evict_digest, tx)
        };
        let (soa_res, soa_digest, soa_tx) = run(LayoutConfig::default());
        let (aos_res, aos_digest, aos_tx) = run(LayoutConfig::aos(32, 4, 4));
        assert_eq!(soa_res, aos_res, "seed {seed}: results diverged");
        assert_eq!(
            soa_digest, aos_digest,
            "seed {seed}: per-op probe/eviction trace diverged"
        );
        assert_ne!(
            soa_tx, aos_tx,
            "seed {seed}: layouts were charged identically — the sweep is vacuous"
        );
    }
}

/// Regression pin for a real schedule-dependent bug this harness found in
/// the MegaKV baseline: an in-flight (kicked) KV pair could re-land after a
/// newer upsert of the same key was applied, resurrecting a stale value
/// under `Shuffled` scheduling. These exact parameters produced
/// `find(64) = Some(11801845), reference says Some(4957699)` before the
/// fix (`in_flight` tracking in `baselines::megakv`).
#[test]
fn megakv_stale_eviction_regression() {
    let case = Case {
        target: Target::MegaKv,
        policy: SchedulePolicy::Shuffled {
            seed: 3900778703475868044,
        },
        workload_seed: 20,
        inject_lock_elision: false,
        layout: LayoutConfig::default(),
        migration_quantum: usize::MAX,
        tier: kv_service::Tier::Fixed,
        key_dist: workloads::LengthDist::Mixed,
        fingerprint: 0,
        miss_filter: false,
        host_par_threads: 0,
        ops: gen_ops(20, 96),
    };
    if let Err(v) = run_case(&case) {
        panic!("MegaKV stale-eviction regression resurfaced: {v}");
    }
}
