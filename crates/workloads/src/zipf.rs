//! Approximate Zipf sampling for duplicate-key profiles.
//!
//! The real datasets' duplicate keys are heavily skewed (a few Twitter
//! celebrities receive thousands of retweets). We reproduce that shape with
//! a standard bounded Zipf(s) sampler over rank `1..=n`, implemented by
//! inverting the continuous CDF — accurate enough for workload generation
//! and allocation-free.

/// Bounded Zipf(s) sampler over ranks `1..=n`.
#[derive(Debug, Clone, Copy)]
pub struct Zipf {
    n: u64,
    s: f64,
    /// Normalizer: ∫₁ⁿ x^(−s) dx (continuous approximation of H_{n,s}).
    norm: f64,
}

impl Zipf {
    /// Create a sampler over `1..=n` with exponent `s > 0`, `s ≠ 1` handled
    /// via the closed-form integral, `s = 1` via the logarithm.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n >= 1 && s > 0.0);
        let nf = n as f64;
        let norm = if (s - 1.0).abs() < 1e-9 {
            nf.ln()
        } else {
            (nf.powf(1.0 - s) - 1.0) / (1.0 - s)
        };
        Self { n, s, norm }
    }

    /// Map a uniform `u ∈ [0,1)` to a rank in `1..=n` (inverse CDF).
    pub fn rank(&self, u: f64) -> u64 {
        let x = if (self.s - 1.0).abs() < 1e-9 {
            (u * self.norm).exp()
        } else {
            (u * self.norm * (1.0 - self.s) + 1.0).powf(1.0 / (1.0 - self.s))
        };
        (x.floor() as u64).clamp(1, self.n)
    }

    /// Sample from a 64-bit random word.
    pub fn sample(&self, word: u64) -> u64 {
        let u = (word >> 11) as f64 / (1u64 << 53) as f64;
        self.rank(u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix64;

    #[test]
    fn ranks_stay_in_bounds() {
        let z = Zipf::new(1000, 1.0);
        for i in 0..10_000u64 {
            let r = z.sample(mix64(i));
            assert!((1..=1000).contains(&r));
        }
    }

    #[test]
    fn low_ranks_dominate() {
        let z = Zipf::new(10_000, 1.0);
        let mut top10 = 0;
        let total = 100_000;
        for i in 0..total {
            if z.sample(mix64(i)) <= 10 {
                top10 += 1;
            }
        }
        // Under Zipf(1) over 10k ranks, the top-10 share is
        // ln(10)/ln(10000) ≈ 25%; uniform would give 0.1%.
        assert!(
            top10 > total / 10,
            "top-10 ranks got only {top10}/{total} draws"
        );
    }

    #[test]
    fn higher_exponent_is_more_skewed() {
        let count_top1 = |s: f64| {
            let z = Zipf::new(1000, s);
            (0..50_000u64)
                .filter(|&i| z.sample(mix64(i ^ 0xABCD)) == 1)
                .count()
        };
        assert!(count_top1(1.5) > count_top1(0.5));
    }

    #[test]
    fn single_rank_degenerate_case() {
        let z = Zipf::new(1, 1.0);
        assert_eq!(z.sample(12345), 1);
    }
}
