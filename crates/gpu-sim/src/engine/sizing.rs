//! Capacity sizing shared by every bucketized table.
//!
//! One place answers "how many buckets do `items` keys need at filled
//! factor θ" for all schemes and all bucket widths — DyCuckoo's
//! constructors, the baseline adapters and the benchmark harness all
//! delegate here, so a layout with narrower buckets automatically gets
//! proportionally more of them.

/// Smallest power-of-two bucket count per subtable such that `items` keys
/// fill `d` such subtables to at most `target_fill` (uniform sizing; see
/// [`mixed_bucket_sizes`] for the finer-grained allocation used by
/// capacity-targeted construction).
pub fn buckets_for_load(items: usize, d: usize, target_fill: f64, slots: usize) -> usize {
    assert!(target_fill > 0.0 && target_fill <= 1.0);
    let slots_needed = (items as f64 / target_fill).ceil() as usize;
    let per_table = slots_needed.div_ceil(d * slots);
    per_table.next_power_of_two().max(1)
}

/// Per-subtable bucket counts whose total capacity covers
/// `items / target_fill` slots as tightly as possible: an equal split,
/// rounded up to even counts so every subtable can later halve cleanly.
pub fn mixed_bucket_sizes(items: usize, d: usize, target_fill: f64, slots: usize) -> Vec<usize> {
    assert!(target_fill > 0.0 && target_fill <= 1.0 && d >= 1);
    let slots_needed = (items as f64 / target_fill).ceil() as usize;
    let buckets_needed = slots_needed.div_ceil(slots).max(1);
    let per_table = buckets_needed.div_ceil(d).next_multiple_of(2);
    vec![per_table; d]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_for_load_rounds_to_power_of_two() {
        assert_eq!(buckets_for_load(10_000, 4, 0.85, 32), 128);
        assert_eq!(buckets_for_load(1, 2, 1.0, 32), 1);
    }

    #[test]
    fn narrower_buckets_mean_more_of_them() {
        let wide = buckets_for_load(10_000, 4, 0.85, 32);
        let narrow = buckets_for_load(10_000, 4, 0.85, 16);
        assert_eq!(narrow, wide * 2);
    }

    #[test]
    fn mixed_sizes_cover_tightly_and_stay_even() {
        for items in [100, 1000, 9999, 123_456] {
            for d in [2, 3, 4] {
                for slots in [8, 16, 32] {
                    let sizes = mixed_bucket_sizes(items, d, 0.85, slots);
                    assert_eq!(sizes.len(), d);
                    let cap: usize = sizes.iter().map(|b| b * slots).sum();
                    assert!(cap as f64 * 0.85 >= items as f64, "capacity too tight");
                    assert!(sizes.iter().all(|b| b % 2 == 0), "must halve cleanly");
                }
            }
        }
    }
}
