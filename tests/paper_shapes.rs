//! Regression tests that lock in the *shapes* of the paper's headline
//! results at a small scale. If a model or algorithm change breaks one of
//! these, the corresponding figure no longer reproduces.

use bench::driver::{build_dynamic, build_static, run_dynamic, run_static, Scheme};
use bench::measure;
use dycuckoo::{Config, DupPolicy, DyCuckoo, ResizeOp};
use gpu_sim::{CostModel, Locks, Metrics, RoundCtx, SimContext};
use workloads::{dataset_by_name, DynamicWorkload};

const SCALE: f64 = 0.002;

/// Fig. 5 shape: atomics match sequential IO when uncontended and degrade
/// monotonically as same-address conflicts grow.
#[test]
fn atomics_degrade_with_conflicts() {
    let mops = |conflicts: u64| {
        let mut sim = SimContext::new();
        let total = 1u64 << 15;
        let mut locks = Locks::new((total / conflicts) as usize);
        let mut ctx = RoundCtx::new(&mut sim.metrics);
        for g in 0..(total / conflicts) {
            for _ in 0..conflicts {
                ctx.atomic_cas_lock(&mut locks, 0, g as usize);
            }
        }
        ctx.finish();
        sim.metrics.rounds = 1;
        CostModel::new(sim.device.config()).mops(total, &sim.metrics)
    };
    let io = {
        let sim = SimContext::new();
        let m = Metrics {
            read_transactions: 1 << 15,
            rounds: 1,
            ..Metrics::default()
        };
        CostModel::new(sim.device.config()).mops(1 << 15, &m)
    };
    let uncontended = mops(1);
    assert!((uncontended / io - 1.0).abs() < 0.01, "uncontended ≈ IO");
    assert!(
        mops(1 << 12) < uncontended / 2.0,
        "heavy conflicts collapse"
    );
    assert!(mops(1 << 14) < mops(1 << 12), "monotone degradation");
}

/// Fig. 7 shape: the conflict-free single-subtable resize beats naive
/// reinsertion by a wide margin in both directions.
#[test]
fn resize_kernels_beat_naive_rehash() {
    let ds = dataset_by_name("RAND").unwrap().scaled(SCALE).generate(9);
    let run = |grow: bool, naive: bool| {
        let mut sim = SimContext::new();
        let cfg = Config {
            alpha: 0.0,
            beta: 1.0,
            dup_policy: DupPolicy::PaperInsert,
            ..Config::default()
        };
        let fill = if grow { 0.85 } else { 0.30 };
        let mut t = DyCuckoo::with_capacity(cfg, ds.unique_keys, fill, &mut sim).unwrap();
        t.insert_batch(&mut sim, &ds.pairs).unwrap();
        let (moved, m) = measure(&mut sim, |sim| {
            if naive {
                t.rehash_subtable_naive(sim, 0, grow).unwrap()
            } else {
                let op = if grow {
                    ResizeOp::Upsize(0)
                } else {
                    ResizeOp::Downsize(0)
                };
                t.force_resize(sim, op).unwrap().moved
            }
        });
        CostModel::new(sim.device.config()).mops(moved, &m.metrics)
    };
    assert!(
        run(true, false) > 3.0 * run(true, true),
        "upsize should dominate naive rehash"
    );
    assert!(
        run(false, false) > 3.0 * run(false, true),
        "downsize should dominate naive rehash"
    );
}

/// Fig. 8 shape: CUDPP trails the bucketized schemes on both ops; MegaKV
/// has the best find; DyCuckoo's find is within 15% of MegaKV's.
#[test]
fn static_ordering_matches_paper() {
    let ds = dataset_by_name("RAND").unwrap().scaled(SCALE).generate(3);
    let mut results = std::collections::HashMap::new();
    for scheme in Scheme::static_set() {
        let mut sim = SimContext::new();
        let mut t = build_static(scheme, ds.unique_keys, 0.85, 3, &mut sim);
        let r = run_static(t.as_mut(), &mut sim, &ds, 2000, 3);
        results.insert(scheme.label(), (r.insert.mops, r.find.mops));
    }
    let (cud_i, cud_f) = results["CUDPP"];
    let (mk_i, mk_f) = results["MegaKV"];
    let (slab_i, slab_f) = results["Slab"];
    let (dy_i, dy_f) = results["DyCuckoo"];
    assert!(
        cud_i < mk_i && cud_i < dy_i && cud_i < slab_i,
        "CUDPP slowest insert"
    );
    assert!(
        cud_f < mk_f && cud_f < dy_f && cud_f < slab_f,
        "CUDPP slowest find"
    );
    assert!(mk_f >= dy_f, "MegaKV wins find");
    assert!(dy_f > 0.85 * mk_f, "DyCuckoo find only slightly behind");
    assert!(
        slab_f < mk_f && slab_f < dy_f,
        "Slab find trails the cuckoo schemes"
    );
}

/// Fig. 9 shape: SlabHash degrades with the filled factor while the
/// two-layer scheme stays stable, and CUDPP's find drops as its function
/// count grows.
#[test]
fn filled_factor_sensitivity_matches_paper() {
    let ds = dataset_by_name("RAND").unwrap().scaled(SCALE).generate(4);
    let run = |scheme, theta| {
        let mut sim = SimContext::new();
        let mut t = build_static(scheme, ds.unique_keys, theta, 4, &mut sim);
        let r = run_static(t.as_mut(), &mut sim, &ds, 2000, 4);
        (r.insert.mops, r.find.mops)
    };
    let (slab_low_i, slab_low_f) = run(Scheme::Slab, 0.70);
    let (slab_high_i, slab_high_f) = run(Scheme::Slab, 0.90);
    assert!(slab_high_i < slab_low_i, "slab insert degrades with θ");
    assert!(slab_high_f < slab_low_f, "slab find degrades with θ");

    let (_, dy_low_f) = run(Scheme::DyCuckoo, 0.70);
    let (_, dy_high_f) = run(Scheme::DyCuckoo, 0.90);
    assert!(
        dy_high_f > 0.9 * dy_low_f,
        "two-layer find is θ-insensitive ({dy_low_f} -> {dy_high_f})"
    );
    let (_, dy_f) = run(Scheme::DyCuckoo, 0.90);
    let (_, slab_f) = run(Scheme::Slab, 0.90);
    assert!(dy_f > 1.5 * slab_f, "DyCuckoo well ahead of slab at θ=90%");

    let (_, cud_low_f) = run(Scheme::Cudpp, 0.40); // 2 hash functions
    let (_, cud_high_f) = run(Scheme::Cudpp, 0.90); // 5 hash functions
    assert!(
        cud_high_f < cud_low_f,
        "CUDPP find drops with more functions"
    );
}

/// Figs. 10/11 shape: over the dynamic two-phase workload DyCuckoo beats
/// MegaKV and Slab on throughput; MegaKV's peak memory (full rehash) is
/// well above DyCuckoo's; Slab's filled factor decays while DyCuckoo ends
/// inside its bounds.
#[test]
fn dynamic_workload_matches_paper() {
    let ds = dataset_by_name("TW").unwrap().scaled(SCALE).generate(6);
    let batch = 2000;
    let w = DynamicWorkload::build(&ds, batch, 0.2, 6);
    let mut peak = std::collections::HashMap::new();
    let mut mops = std::collections::HashMap::new();
    let mut final_fill = std::collections::HashMap::new();
    for scheme in Scheme::dynamic_set() {
        let mut sim = SimContext::new();
        let mut t = build_dynamic(scheme, 0.30, 0.85, batch, 6, &mut sim);
        let r = run_dynamic(t.as_mut(), &mut sim, &w);
        peak.insert(scheme.label(), r.peak_bytes);
        mops.insert(scheme.label(), r.mops);
        final_fill.insert(scheme.label(), t.fill_factor());
        if scheme == Scheme::DyCuckoo {
            // θ stayed within bounds at the end of every batch.
            for tr in &r.traces {
                assert!(
                    tr.fill <= 0.85 + 1e-9,
                    "DyCuckoo θ {} above β at batch {}",
                    tr.fill,
                    tr.batch
                );
            }
        }
    }
    assert!(mops["DyCuckoo"] > mops["MegaKV"], "DyCuckoo beats MegaKV");
    assert!(mops["DyCuckoo"] > mops["Slab"], "DyCuckoo beats Slab");
    assert!(
        final_fill["Slab"] < 0.30,
        "slab's symbolic deletion decays its filled factor (got {})",
        final_fill["Slab"]
    );
}

/// Memory headline: across the dynamic run, DyCuckoo's peak footprint is
/// well below MegaKV's (whose full rehash holds two generations at once).
/// Slab can pack chains densely at small scales, but its memory never
/// shrinks and its fill decays (asserted in `dynamic_workload_matches_paper`).
#[test]
fn dycuckoo_peak_memory_beats_megakv() {
    let ds = dataset_by_name("COM").unwrap().scaled(SCALE).generate(8);
    let batch = 2000;
    let w = DynamicWorkload::build(&ds, batch, 0.2, 8);
    let mut peaks = Vec::new();
    for scheme in Scheme::dynamic_set() {
        let mut sim = SimContext::new();
        let mut t = build_dynamic(scheme, 0.30, 0.85, batch, 8, &mut sim);
        run_dynamic(t.as_mut(), &mut sim, &w);
        peaks.push((scheme.label(), sim.device.peak_bytes()));
    }
    let dy = peaks.iter().find(|(l, _)| *l == "DyCuckoo").unwrap().1;
    let mk = peaks.iter().find(|(l, _)| *l == "MegaKV").unwrap().1;
    assert!(
        mk as f64 > 1.3 * dy as f64,
        "MegaKV peak ({mk}) should clearly exceed DyCuckoo's ({dy})"
    );
}
