//! Maintenance side of the table: resize triggering, failed-insert retry
//! and the structural rehash paths (including the naive strategy the
//! paper's resize experiment compares against).

use gpu_sim::SimContext;

use crate::config::Config;
use crate::error::{Error, Result};
use crate::ops::insert::{insert_batch as run_insert, InsertOp, InsertOutcome};
use crate::rehash;
use crate::resize::{self, ResizeOp};
use crate::subtable::SubTable;

use super::{BatchReport, DyCuckoo, ResizeEvent, TableShape, MAX_INSERT_RETRIES, MAX_RESIZE_ITERS};

impl DyCuckoo {
    /// Upsize-and-retry loop for operations that exceeded the eviction
    /// limit — the paper's "insertion failure triggers resizing".
    pub(super) fn retry_failed(
        &mut self,
        sim: &mut SimContext,
        mut out: InsertOutcome,
        report: &mut BatchReport,
    ) -> Result<()> {
        while !out.failed.is_empty() {
            // Stash first: a handful of unplaceable keys should not force a
            // structural resize (the future-work mitigation).
            if let Some(stash) = self.stash.as_mut() {
                let mut ctx = gpu_sim::RoundCtx::new(&mut sim.metrics);
                out.failed.retain(|op| {
                    let stashed = stash.push(op.key, op.val, &mut ctx);
                    if stashed {
                        report.inserted += 1;
                    }
                    !stashed
                });
                ctx.finish();
                if out.failed.is_empty() {
                    return Ok(());
                }
            }
            report.retries += 1;
            if report.retries > MAX_INSERT_RETRIES {
                return Err(Error::InsertStuck {
                    failed_ops: out.failed.len(),
                });
            }
            let event = self.apply_resize(
                ResizeOp::Upsize(resize::upsize_candidate(&self.tables)),
                sim,
            )?;
            report.resizes.push(event);
            // Restart each failed op fresh: it carries whatever KV its
            // eviction chain held, which re-routes through the two-layer
            // pair of that key.
            let retry_ops: Vec<InsertOp> = out
                .failed
                .iter()
                .map(|op| {
                    self.op_counter += 1;
                    InsertOp::reinsert(op.key, op.val, self.op_counter)
                })
                .collect();
            out = run_insert(
                &mut self.tables,
                &self.shape,
                retry_ops,
                None,
                &mut sim.metrics,
            );
            report.inserted += out.inserted;
            report.updated += out.updated;
        }
        Ok(())
    }

    /// Resize until θ returns to `[α, β]` (insert batches grow only; see
    /// [`resize::Direction`]).
    pub(super) fn rebalance(
        &mut self,
        sim: &mut SimContext,
        dir: resize::Direction,
        events: &mut Vec<ResizeEvent>,
    ) -> Result<()> {
        for _ in 0..MAX_RESIZE_ITERS {
            match resize::decide(&self.tables, self.shape.cfg.alpha, self.shape.cfg.beta, dir) {
                None => return Ok(()),
                Some(op) => events.push(self.apply_resize(op, sim)?),
            }
        }
        Err(Error::ResizeDiverged {
            iterations: MAX_RESIZE_ITERS,
        })
    }

    /// Perform one resize operation, including residual placement for
    /// downsizing, then drain the overflow stash back into the subtables
    /// (a resize has just changed where keys belong or made room).
    fn apply_resize(&mut self, op: ResizeOp, sim: &mut SimContext) -> Result<ResizeEvent> {
        let recording = obs::is_enabled();
        if recording {
            let (grow, i) = match op {
                ResizeOp::Upsize(i) => (true, i),
                ResizeOp::Downsize(i) => (false, i),
            };
            obs::span_begin(obs::Event::ResizeBegin {
                grow,
                table: i as u8,
                old_buckets: self.tables[i].n_buckets() as u64,
            });
        }
        let result = self.apply_resize_and_drain(op, sim);
        if recording {
            // Close the span even on error so the span stack stays balanced.
            let (new_buckets, moved, residuals) = match &result {
                Ok(e) => (e.new_buckets as u64, e.moved, e.residuals),
                Err(_) => (0, 0, 0),
            };
            obs::span_end(obs::Event::ResizeEnd {
                new_buckets,
                moved,
                residuals,
            });
        }
        result
    }

    /// The resize itself plus the post-resize stash drain (the span-free
    /// body of [`Self::apply_resize`]).
    fn apply_resize_and_drain(
        &mut self,
        op: ResizeOp,
        sim: &mut SimContext,
    ) -> Result<ResizeEvent> {
        let event = self.apply_resize_inner(op, sim)?;
        if self.stash.as_ref().is_some_and(|s| !s.is_empty()) {
            let stash = self.stash.as_mut().expect("checked above");
            let mut ctx = gpu_sim::RoundCtx::new(&mut sim.metrics);
            let drained = stash.drain(&mut ctx);
            ctx.finish();
            let ops: Vec<InsertOp> = drained
                .into_iter()
                .map(|(k, v)| {
                    self.op_counter += 1;
                    InsertOp::reinsert(k, v, self.op_counter)
                })
                .collect();
            let out = run_insert(&mut self.tables, &self.shape, ops, None, &mut sim.metrics);
            // Whatever still fails goes straight back to the stash (room is
            // guaranteed: we just drained it).
            if !out.failed.is_empty() {
                let stash = self.stash.as_mut().expect("still present");
                let mut ctx = gpu_sim::RoundCtx::new(&mut sim.metrics);
                for op in &out.failed {
                    let ok = stash.push(op.key, op.val, &mut ctx);
                    debug_assert!(ok, "stash was just drained");
                }
                ctx.finish();
            }
        }
        Ok(event)
    }

    fn apply_resize_inner(&mut self, op: ResizeOp, sim: &mut SimContext) -> Result<ResizeEvent> {
        match op {
            ResizeOp::Upsize(i) => {
                let old = self.tables[i].n_buckets();
                let rep = rehash::upsize(
                    &mut self.tables,
                    i,
                    &self.shape,
                    sim,
                    &mut self.ledger_bytes,
                )?;
                Ok(ResizeEvent {
                    op,
                    old_buckets: old,
                    new_buckets: old * 2,
                    moved: rep.moved,
                    residuals: 0,
                })
            }
            ResizeOp::Downsize(i) => {
                let old = self.tables[i].n_buckets();
                let (rep, residuals) =
                    rehash::downsize_collect(&mut self.tables, i, sim, &mut self.ledger_bytes)?;
                let n_res = residuals.len() as u64;
                if !residuals.is_empty() {
                    // Residuals go to their partner subtables; the
                    // downsizing table is excluded within this "kernel".
                    let out = run_insert(
                        &mut self.tables,
                        &self.shape,
                        residuals,
                        Some(i),
                        &mut sim.metrics,
                    );
                    // Leftovers (pathological) are retried without the
                    // exclusion — the downsize itself has completed.
                    let mut leftovers = out.failed;
                    let mut guard = 0;
                    while !leftovers.is_empty() {
                        guard += 1;
                        if guard > MAX_INSERT_RETRIES {
                            return Err(Error::InsertStuck {
                                failed_ops: leftovers.len(),
                            });
                        }
                        let target = resize::upsize_candidate(&self.tables);
                        rehash::upsize(
                            &mut self.tables,
                            target,
                            &self.shape,
                            sim,
                            &mut self.ledger_bytes,
                        )?;
                        let retry: Vec<InsertOp> = leftovers
                            .iter()
                            .map(|f| {
                                self.op_counter += 1;
                                InsertOp::reinsert(f.key, f.val, self.op_counter)
                            })
                            .collect();
                        leftovers = run_insert(
                            &mut self.tables,
                            &self.shape,
                            retry,
                            None,
                            &mut sim.metrics,
                        )
                        .failed;
                    }
                }
                Ok(ResizeEvent {
                    op,
                    old_buckets: old,
                    new_buckets: old / 2,
                    moved: rep.moved,
                    residuals: n_res,
                })
            }
        }
    }

    /// Force one resize operation regardless of θ (used by the F7 resize
    /// experiment, which measures a single upsize/downsize in isolation).
    pub fn force_resize(&mut self, sim: &mut SimContext, op: ResizeOp) -> Result<ResizeEvent> {
        let event = self.apply_resize(op, sim);
        self.debug_verify("force_resize");
        event
    }

    /// The *naive* alternative the paper's resize experiment compares
    /// against: resize subtable `idx` by draining all its entries and
    /// re-inserting them one by one through the normal insert kernel
    /// (Algorithm 1), instead of the conflict-free rehash. Returns the
    /// number of KVs moved.
    pub fn rehash_subtable_naive(
        &mut self,
        sim: &mut SimContext,
        idx: usize,
        grow: bool,
    ) -> Result<u64> {
        let layout = self.shape.cfg.layout;
        let old = &self.tables[idx];
        let old_buckets = old.n_buckets();
        let new_buckets = if grow {
            old_buckets * 2
        } else {
            (old_buckets / 2).max(1)
        };
        // Drain: read every key and value line of the subtable.
        sim.metrics.read_transactions += layout.drain_lines() * old_buckets as u64;
        let drained: Vec<(u32, u32)> = old.iter_live().collect();
        let old_bytes = old.device_bytes();
        let new_bytes = layout.device_bytes_for(new_buckets);
        sim.device.alloc(new_bytes)?;
        self.ledger_bytes += new_bytes;
        self.tables[idx] = SubTable::new(new_buckets, layout);
        sim.device.free(old_bytes)?;
        self.ledger_bytes -= old_bytes;
        // Re-insert through the ordinary voter kernel: each key routes
        // through its two-layer pair (which contains `idx`), competing with
        // whatever is already in the partner subtables. The naive strategy
        // has no Theorem-1 steering (that is part of what it lacks), so
        // half the reinserts land in the other, possibly nearly full,
        // subtable — which is exactly why the paper finds naive upsizing
        // "severely limited".
        let naive_shape = TableShape {
            cfg: Config {
                distribution: crate::config::Distribution::Uniform,
                ..self.shape.cfg
            },
            pair: self.shape.pair,
            hashes: self.shape.hashes.clone(),
        };
        let moved = drained.len() as u64;
        let ops: Vec<InsertOp> = drained
            .into_iter()
            .map(|(k, v)| {
                self.op_counter += 1;
                InsertOp::fresh(k, v, self.op_counter)
            })
            .collect();
        let out = run_insert(&mut self.tables, &naive_shape, ops, None, &mut sim.metrics);
        let mut report = BatchReport::default();
        self.retry_failed(sim, out, &mut report)?;
        Ok(moved)
    }

    /// The policy invariant: no subtable more than twice any other.
    pub fn size_ratio_ok(&self) -> bool {
        resize::size_ratio_invariant(&self.tables)
    }
}
