//! The slab byte-arena: page-granular storage for spilled key/value bytes.
//!
//! Every byte string too long for its slot word lives here. The arena is a
//! pool of fixed-size **pages**, each backed by a
//! [`gpu_sim::engine::SlotStore`]`<u32, u32>` (8 payload bytes per slot,
//! packed four into the key word and four into the value word), so the
//! arena's device footprint is layout-derived like every other store in
//! the workspace. Blobs larger than a page get a dedicated page sized to
//! the blob.
//!
//! * **Allocation** is bump-pointer within the open page; an exact-fit
//!   free list (one bucket per block length) is consulted first so deleted
//!   blobs are reused before fresh page space is consumed.
//! * **Deletion** returns the block to the free list and accounts it as
//!   fragmentation until reused. A page whose bump space is exhausted and
//!   whose live bytes drop to zero is released back to the device — this
//!   is how migration drains arena pages: re-homing each moved entry's
//!   blob frees its old block, and fully-dead pages evaporate.
//! * **Accounting**: `live_bytes + frag_bytes + unbumped tail = capacity`
//!   per page; [`ByteArena::verify`] recomputes all three from a table's
//!   live handles and the free list, and checks blocks never overlap.
//!
//! Arena traffic is charged at the call sites via [`charge_blob_read`] /
//! [`charge_blob_write`] — `ceil(len / 128)` line transactions, matching
//! the [`SlotStore`] convention of call-site accounting.

use std::collections::BTreeMap;

use gpu_sim::engine::LINE_BYTES;
use gpu_sim::{RoundCtx, SlotStore};

use super::encoding::{SpillRef, MAX_BLOB_LEN, MAX_PAGES, MAX_PAGE_OFF};

/// Default payload bytes per arena page.
pub const PAGE_BYTES: u32 = 4096;

/// Line transactions a blob of `len` bytes costs to stream.
#[inline]
pub fn blob_lines(len: u32) -> u64 {
    (len as u64).div_ceil(LINE_BYTES).max(1)
}

/// Charge reading a blob of `len` bytes. Attributed to an `arena-deref`
/// child of whatever domain is active, so folded views separate payload
/// streaming from bucket probes.
#[inline]
pub fn charge_blob_read(ctx: &mut RoundCtx, len: u32) {
    let _attr = obs::attr::scope("arena-deref");
    for _ in 0..blob_lines(len) {
        ctx.read_line();
    }
}

/// Charge writing a blob of `len` bytes.
#[inline]
pub fn charge_blob_write(ctx: &mut RoundCtx, len: u32) {
    let _attr = obs::attr::scope("arena-deref");
    for _ in 0..blob_lines(len) {
        ctx.write_line();
    }
}

/// One arena page: a slot store plus its bump/occupancy accounting.
#[derive(Debug)]
struct Page {
    store: SlotStore<u32, u32>,
    /// Payload capacity in bytes (slot count × 8).
    capacity: u32,
    /// Next unallocated byte.
    bump: u32,
    /// Bytes referenced by live handles.
    live: u64,
    /// Freed bytes awaiting reuse.
    frag: u64,
}

impl Page {
    fn new(capacity: u32) -> Self {
        debug_assert_eq!(capacity % 8, 0);
        Self {
            store: SlotStore::new(capacity as usize / 8),
            capacity,
            bump: 0,
            live: 0,
            frag: 0,
        }
    }

    fn device_bytes(&self) -> u64 {
        self.store.device_bytes()
    }

    #[inline]
    fn read_byte(&self, i: u32) -> u8 {
        let (slot, j) = ((i / 8) as usize, i % 8);
        if j < 4 {
            (self.store.key(slot) >> (8 * j)) as u8
        } else {
            (self.store.val(slot) >> (8 * (j - 4))) as u8
        }
    }

    #[inline]
    fn write_byte(&mut self, i: u32, b: u8) {
        let (slot, j) = ((i / 8) as usize, i % 8);
        if j < 4 {
            let w = self.store.key(slot) & !(0xFFu32 << (8 * j));
            self.store.set_key(slot, w | (b as u32) << (8 * j));
        } else {
            let w = self.store.val(slot) & !(0xFFu32 << (8 * (j - 4)));
            self.store.set_val(slot, w | (b as u32) << (8 * (j - 4)));
        }
    }
}

/// The slab byte-arena. One per [`super::UnsizedTable`].
#[derive(Debug)]
pub struct ByteArena {
    /// Page table; released pages leave `None` holes that are reused.
    pages: Vec<Option<Page>>,
    /// Indices of released page slots.
    free_pages: Vec<u32>,
    /// Exact-fit free list: block length → blocks of that length.
    free_blocks: BTreeMap<u32, Vec<SpillRef>>,
    /// The page currently bump-allocated from.
    open: Option<u32>,
    /// Payload bytes per regular page.
    page_bytes: u32,
    live_bytes: u64,
    frag_bytes: u64,
    /// Device bytes of all live pages (mirrors `sim.device` allocations at
    /// batch boundaries — see [`super::UnsizedTable`]'s ledger sync).
    ledger_bytes: u64,
}

impl ByteArena {
    /// An empty arena with the given page payload size (bytes, multiple of
    /// 8, at most the handle's in-page offset bound).
    pub fn new(page_bytes: u32) -> Self {
        assert!(page_bytes >= 8 && page_bytes.is_multiple_of(8));
        assert!(page_bytes <= MAX_PAGE_OFF);
        Self {
            pages: Vec::new(),
            free_pages: Vec::new(),
            free_blocks: BTreeMap::new(),
            open: None,
            page_bytes,
            live_bytes: 0,
            frag_bytes: 0,
            ledger_bytes: 0,
        }
    }

    /// Live (non-released) pages.
    pub fn pages(&self) -> u64 {
        self.pages.iter().filter(|p| p.is_some()).count() as u64
    }

    /// Bytes referenced by live handles.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Freed bytes awaiting reuse (the fragmentation gauge).
    pub fn frag_bytes(&self) -> u64 {
        self.frag_bytes
    }

    /// Device bytes of all live pages.
    pub fn device_bytes(&self) -> u64 {
        self.ledger_bytes
    }

    fn page(&self, idx: u32) -> &Page {
        self.pages[idx as usize]
            .as_ref()
            .expect("handle into released arena page")
    }

    fn page_mut(&mut self, idx: u32) -> &mut Page {
        self.pages[idx as usize]
            .as_mut()
            .expect("handle into released arena page")
    }

    fn add_page(&mut self, capacity: u32) -> u32 {
        let page = Page::new(capacity);
        self.ledger_bytes += page.device_bytes();
        let idx = match self.free_pages.pop() {
            Some(i) => {
                self.pages[i as usize] = Some(page);
                i
            }
            None => {
                self.pages.push(Some(page));
                (self.pages.len() - 1) as u32
            }
        };
        assert!((idx as u64) < MAX_PAGES as u64, "arena page index overflow");
        idx
    }

    fn write_blob(&mut self, r: SpillRef, bytes: &[u8]) {
        let page = self.page_mut(r.page);
        for (i, &b) in bytes.iter().enumerate() {
            page.write_byte(r.off + i as u32, b);
        }
    }

    /// Store `bytes` (1..=[`MAX_BLOB_LEN`] long) and return its handle.
    pub fn alloc(&mut self, bytes: &[u8]) -> SpillRef {
        let len = bytes.len() as u32;
        assert!(!bytes.is_empty() && bytes.len() <= MAX_BLOB_LEN);
        // Exact-fit reuse of a freed block first.
        if let Some(blocks) = self.free_blocks.get_mut(&len) {
            let r = blocks.pop().expect("empty free-list bucket");
            if blocks.is_empty() {
                self.free_blocks.remove(&len);
            }
            self.page_mut(r.page).frag -= len as u64;
            self.page_mut(r.page).live += len as u64;
            self.frag_bytes -= len as u64;
            self.live_bytes += len as u64;
            self.write_blob(r, bytes);
            return r;
        }
        let idx = if len > self.page_bytes {
            // Oversized blob: a dedicated page sized to the blob.
            self.add_page(len.div_ceil(8) * 8)
        } else {
            match self.open {
                Some(i) if self.page(i).bump + len <= self.page(i).capacity => i,
                _ => {
                    let i = self.add_page(self.page_bytes);
                    self.open = Some(i);
                    i
                }
            }
        };
        let page = self.page_mut(idx);
        let r = SpillRef {
            page: idx,
            off: page.bump,
            len,
        };
        page.bump += len;
        page.live += len as u64;
        self.live_bytes += len as u64;
        self.write_blob(r, bytes);
        r
    }

    /// Release the block behind `r`. The bytes become fragmentation until
    /// an equal-length allocation reuses them; a fully-consumed page whose
    /// last live block dies is released entirely.
    pub fn free(&mut self, r: SpillRef) {
        let page = self.page_mut(r.page);
        debug_assert!(r.off + r.len <= page.bump, "freeing an unallocated block");
        page.live -= r.len as u64;
        page.frag += r.len as u64;
        self.live_bytes -= r.len as u64;
        self.frag_bytes += r.len as u64;
        let dead = {
            let page = self.page(r.page);
            page.live == 0 && page.bump == page.capacity
        };
        if dead {
            self.release_page(r.page);
        } else {
            self.free_blocks.entry(r.len).or_default().push(r);
        }
    }

    fn release_page(&mut self, idx: u32) {
        let page = self.pages[idx as usize]
            .take()
            .expect("releasing a released page");
        self.ledger_bytes -= page.device_bytes();
        self.frag_bytes -= page.frag;
        debug_assert_eq!(page.live, 0);
        self.free_blocks.retain(|_, blocks| {
            blocks.retain(|b| b.page != idx);
            !blocks.is_empty()
        });
        if self.open == Some(idx) {
            self.open = None;
        }
        self.free_pages.push(idx);
    }

    /// Read the blob behind `r`.
    pub fn read(&self, r: SpillRef) -> Vec<u8> {
        let page = self.page(r.page);
        (r.off..r.off + r.len).map(|i| page.read_byte(i)).collect()
    }

    /// Whether the blob behind `r` equals `needle` byte for byte.
    pub fn bytes_eq(&self, r: SpillRef, needle: &[u8]) -> bool {
        if r.len as usize != needle.len() {
            return false;
        }
        let page = self.page(r.page);
        needle
            .iter()
            .enumerate()
            .all(|(i, &b)| page.read_byte(r.off + i as u32) == b)
    }

    /// Check the arena against the set of handles a table holds live:
    /// per-page byte accounting, block bounds, free-list/fragmentation
    /// agreement, and that no two blocks (live or free) overlap.
    pub fn verify(&self, live: &[SpillRef]) -> Result<(), String> {
        let mut per_page: BTreeMap<u32, Vec<(u32, u32, bool)>> = BTreeMap::new();
        for r in live {
            per_page
                .entry(r.page)
                .or_default()
                .push((r.off, r.len, true));
        }
        for blocks in self.free_blocks.values() {
            for r in blocks {
                per_page
                    .entry(r.page)
                    .or_default()
                    .push((r.off, r.len, false));
            }
        }
        let (mut live_sum, mut frag_sum, mut ledger_sum) = (0u64, 0u64, 0u64);
        for (idx, page) in self.pages.iter().enumerate() {
            let Some(page) = page else {
                if per_page.contains_key(&(idx as u32)) {
                    return Err(format!("blocks reference released page {idx}"));
                }
                continue;
            };
            ledger_sum += page.device_bytes();
            if page.bump > page.capacity {
                return Err(format!("page {idx} bump past capacity"));
            }
            let mut blocks = per_page.remove(&(idx as u32)).unwrap_or_default();
            blocks.sort_unstable();
            let (mut end, mut live_here, mut frag_here) = (0u32, 0u64, 0u64);
            for (off, len, is_live) in blocks {
                if off < end {
                    return Err(format!("overlapping blocks in page {idx} at {off}"));
                }
                if off + len > page.bump {
                    return Err(format!("block past bump in page {idx} at {off}"));
                }
                end = off + len;
                if is_live {
                    live_here += len as u64;
                } else {
                    frag_here += len as u64;
                }
            }
            if live_here != page.live || frag_here != page.frag {
                return Err(format!(
                    "page {idx} accounting drift: live {live_here} vs {}, frag {frag_here} vs {}",
                    page.live, page.frag
                ));
            }
            if page.live + page.frag > page.bump as u64 {
                return Err(format!("page {idx} holds more bytes than it bumped"));
            }
            live_sum += live_here;
            frag_sum += frag_here;
        }
        if !per_page.is_empty() {
            return Err("blocks reference pages beyond the page table".into());
        }
        if live_sum != self.live_bytes || frag_sum != self.frag_bytes {
            return Err(format!(
                "arena totals drift: live {live_sum} vs {}, frag {frag_sum} vs {}",
                self.live_bytes, self.frag_bytes
            ));
        }
        if ledger_sum != self.ledger_bytes {
            return Err(format!(
                "arena ledger drift: {ledger_sum} vs {}",
                self.ledger_bytes
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(len: usize, tag: u8) -> Vec<u8> {
        (0..len).map(|i| (i as u8).wrapping_mul(31) ^ tag).collect()
    }

    #[test]
    fn alloc_read_round_trips_across_slots_and_pages() {
        let mut a = ByteArena::new(64);
        let b1 = blob(13, 1);
        let b2 = blob(40, 2);
        let b3 = blob(20, 3); // spills to a second page (13 + 40 + 20 > 64)
        let (r1, r2, r3) = (a.alloc(&b1), a.alloc(&b2), a.alloc(&b3));
        assert_eq!(a.read(r1), b1);
        assert_eq!(a.read(r2), b2);
        assert_eq!(a.read(r3), b3);
        assert!(a.bytes_eq(r2, &b2));
        assert!(!a.bytes_eq(r2, &b1));
        assert_eq!(a.pages(), 2);
        assert_eq!(a.live_bytes(), 73);
        assert_eq!(a.frag_bytes(), 0);
        a.verify(&[r1, r2, r3]).unwrap();
    }

    #[test]
    fn free_list_reuses_exact_fit_blocks() {
        let mut a = ByteArena::new(64);
        let r1 = a.alloc(&blob(24, 1));
        let _r2 = a.alloc(&blob(24, 2));
        a.free(r1);
        assert_eq!(a.frag_bytes(), 24);
        let r3 = a.alloc(&blob(24, 3));
        assert_eq!((r3.page, r3.off), (r1.page, r1.off), "exact-fit reuse");
        assert_eq!(a.frag_bytes(), 0);
        assert_eq!(a.read(r3), blob(24, 3));
        a.verify(&[_r2, r3]).unwrap();
    }

    #[test]
    fn fully_dead_consumed_pages_are_released() {
        let mut a = ByteArena::new(32);
        let r1 = a.alloc(&blob(32, 1)); // fills page 0 exactly
        let r2 = a.alloc(&blob(32, 2)); // fills page 1
        assert_eq!(a.pages(), 2);
        let held = a.device_bytes();
        a.free(r1);
        assert_eq!(a.pages(), 1, "dead consumed page released");
        assert!(a.device_bytes() < held);
        assert_eq!(a.frag_bytes(), 0, "released page carries no frag");
        // The released page slot is reused by the next page.
        let r3 = a.alloc(&blob(32, 3));
        assert_eq!(r3.page, r1.page);
        a.verify(&[r2, r3]).unwrap();
    }

    #[test]
    fn oversized_blobs_get_dedicated_pages() {
        let mut a = ByteArena::new(64);
        let big = blob(1000, 9);
        let r = a.alloc(&big);
        assert_eq!(r.off, 0);
        assert_eq!(a.read(r), big);
        assert_eq!(a.pages(), 1);
        assert_eq!(a.device_bytes(), 1000u64.div_ceil(8) * 8);
        a.free(r);
        assert_eq!(a.pages(), 0);
        assert_eq!(a.device_bytes(), 0);
        a.verify(&[]).unwrap();
    }

    #[test]
    fn verify_catches_a_forged_handle() {
        let mut a = ByteArena::new(64);
        let r = a.alloc(&blob(16, 1));
        let forged = SpillRef {
            page: r.page,
            off: r.off + 8,
            len: 16,
        };
        assert!(a.verify(&[r, forged]).is_err(), "overlap must be caught");
        assert!(a
            .verify(&[SpillRef {
                page: 7,
                off: 0,
                len: 4
            }])
            .is_err());
    }

    #[test]
    fn charging_is_line_granular() {
        let mut m = gpu_sim::Metrics::default();
        let mut ctx = RoundCtx::new(&mut m);
        charge_blob_read(&mut ctx, 1);
        charge_blob_read(&mut ctx, 129);
        charge_blob_write(&mut ctx, 300);
        ctx.finish();
        assert_eq!(m.read_transactions, 1 + 2);
        assert_eq!(m.write_transactions, 3);
    }
}
