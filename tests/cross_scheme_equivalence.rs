//! Cross-crate integration: every hash-table scheme implements the same
//! semantics. All schemes are driven through the shared [`GpuHashTable`]
//! trait against a reference map on randomized workloads.

use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::HashMap;

use baselines::{Cudpp, DyCuckooTable, GpuHashTable, LinearProbing, MegaKv, SlabHash};
use dycuckoo::Config;
use gpu_sim::SimContext;

fn build_all(sim: &mut SimContext, capacity: usize) -> Vec<Box<dyn GpuHashTable>> {
    let cfg = Config {
        initial_buckets: 2,
        ..Config::default()
    };
    vec![
        Box::new(DyCuckooTable::new(cfg, sim).unwrap()),
        Box::new(MegaKv::with_capacity(capacity, 0.5, None, 1, sim).unwrap()),
        Box::new(SlabHash::with_capacity(capacity, 0.5, 1, sim).unwrap()),
        Box::new(LinearProbing::with_capacity(capacity, 0.5, 1, sim).unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Insert-then-find equivalence across all schemes that support the
    /// full op set (unique keys: duplicate semantics differ by design).
    #[test]
    fn all_schemes_agree_with_reference(
        raw_keys in vec(1u32..1_000_000, 1..300),
        delete_mask in vec(any::<bool>(), 300),
    ) {
        // Deduplicate keys (cross-bucket duplicate handling is
        // scheme-specific; equivalence holds for unique-key workloads).
        let mut seen = std::collections::HashSet::new();
        let keys: Vec<u32> = raw_keys.into_iter().filter(|&k| seen.insert(k)).collect();
        let kvs: Vec<(u32, u32)> = keys.iter().map(|&k| (k, k.wrapping_mul(31))).collect();
        let deletes: Vec<u32> = keys
            .iter()
            .zip(delete_mask.iter().cycle())
            .filter(|(_, &d)| d)
            .map(|(&k, _)| k)
            .collect();

        let mut reference: HashMap<u32, u32> = kvs.iter().copied().collect();
        for k in &deletes {
            reference.remove(k);
        }

        let mut sim = SimContext::new();
        for table in build_all(&mut sim, keys.len().max(64)).iter_mut() {
            table.insert_batch(&mut sim, &kvs).unwrap();
            prop_assert_eq!(table.len(), kvs.len() as u64, "{} after insert", table.name());
            if !deletes.is_empty() {
                let deleted = table.delete_batch(&mut sim, &deletes).unwrap();
                prop_assert_eq!(deleted, deletes.len() as u64, "{} deletes", table.name());
            }
            let found = table.find_batch(&mut sim, &keys);
            for (k, f) in keys.iter().zip(found) {
                prop_assert_eq!(
                    f,
                    reference.get(k).copied(),
                    "{}: key {}",
                    table.name(),
                    k
                );
            }
            prop_assert_eq!(table.len(), reference.len() as u64, "{} len", table.name());
        }
    }

    /// CUDPP (insert/find only) agrees on lookups.
    #[test]
    fn cudpp_agrees_on_lookups(raw_keys in vec(1u32..1_000_000, 1..300)) {
        let mut seen = std::collections::HashSet::new();
        let keys: Vec<u32> = raw_keys.into_iter().filter(|&k| seen.insert(k)).collect();
        let kvs: Vec<(u32, u32)> = keys.iter().map(|&k| (k, k ^ 9)).collect();
        let mut sim = SimContext::new();
        let mut t = Cudpp::with_capacity(keys.len().max(16), 0.5, 3, &mut sim).unwrap();
        t.insert_batch(&mut sim, &kvs).unwrap();
        let found = t.find_batch(&mut sim, &keys);
        for (k, f) in keys.iter().zip(found) {
            prop_assert_eq!(f, Some(k ^ 9));
        }
        // Keys never inserted must miss.
        let misses: Vec<u32> = keys.iter().map(|&k| k.wrapping_add(2_000_000)).collect();
        let found = t.find_batch(&mut sim, &misses);
        prop_assert!(found.iter().all(|f| f.is_none()));
    }
}

/// Device-memory accounting balances for every scheme: what is allocated
/// during a grow/shrink cycle is tracked and never leaks into a negative
/// balance (the simulated device errors on over-free).
#[test]
fn device_accounting_survives_growth_and_shrink() {
    let mut sim = SimContext::new();
    let cfg = Config {
        initial_buckets: 2,
        ..Config::default()
    };
    let mut table = DyCuckooTable::new(cfg, &mut sim).unwrap();
    let kvs: Vec<(u32, u32)> = (1..=30_000u32).map(|k| (k, k)).collect();
    table.insert_batch(&mut sim, &kvs).unwrap();
    let grown = sim.device.allocated_bytes();
    assert_eq!(
        grown,
        table.device_bytes(),
        "device tracks exactly the table"
    );
    let dels: Vec<u32> = (1..=29_000).collect();
    table.delete_batch(&mut sim, &dels).unwrap();
    assert_eq!(sim.device.allocated_bytes(), table.device_bytes());
    assert!(table.device_bytes() < grown);
}

/// The per-batch single-op-type protocol of the paper works end-to-end for
/// every dynamic scheme on a scaled dataset.
#[test]
fn paper_protocol_smoke_all_dynamic_schemes() {
    use workloads::{dataset_by_name, DynamicWorkload};
    let ds = dataset_by_name("COM").unwrap().scaled(0.0005).generate(5);
    let w = DynamicWorkload::build(&ds, 500, 0.3, 5);

    let mut reference: HashMap<u32, u32> = HashMap::new();
    for b in &w.batches {
        for &(k, v) in &b.inserts {
            reference.insert(k, v);
        }
        for k in &b.deletes {
            reference.remove(k);
        }
    }

    let mut sim = SimContext::new();
    let mut schemes: Vec<Box<dyn GpuHashTable>> = vec![
        Box::new(
            DyCuckooTable::new(
                Config {
                    initial_buckets: 2,
                    ..Config::default()
                },
                &mut sim,
            )
            .unwrap(),
        ),
        Box::new(
            MegaKv::new(
                2,
                Some(baselines::ResizeBounds {
                    alpha: 0.3,
                    beta: 0.85,
                }),
                1,
                &mut sim,
            )
            .unwrap(),
        ),
        Box::new(SlabHash::with_capacity(1000, 0.6, 1, &mut sim).unwrap()),
    ];
    for table in schemes.iter_mut() {
        for b in &w.batches {
            table.insert_batch(&mut sim, &b.inserts).unwrap();
            table.find_batch(&mut sim, &b.finds);
            table.delete_batch(&mut sim, &b.deletes).unwrap();
        }
        assert_eq!(
            table.len(),
            reference.len() as u64,
            "{} final population",
            table.name()
        );
    }
}
