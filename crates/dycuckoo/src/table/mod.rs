//! The public DyCuckoo table: batched operations, resize triggering, and
//! accounting.
//!
//! The implementation is split by concern, mirroring the engine layering:
//!
//! * `storage` — construction, capacity/device-byte accounting (with a
//!   ledger mirroring every gpu-sim allocation) and integrity checks;
//! * `probe` — the batched insert/find/delete entry points that drive the
//!   warp kernels in [`crate::ops`];
//! * `maintenance` — resize triggering, failed-insert retry and the
//!   structural rehash paths.
//!
//! This file holds what all three share: the immutable [`TableShape`], the
//! candidate-set machinery, batch reports and the [`DyCuckoo`] struct
//! itself.

mod maintenance;
pub(crate) mod migration;
mod probe;
mod storage;

use gpu_sim::{Metrics, SimContext};

use crate::config::{Config, BUCKET_SLOTS};
use crate::hashfn::UniversalHash;
use crate::resize::ResizeOp;
use crate::stash::Stash;
use crate::subtable::SubTable;
use crate::two_layer::PairHash;

/// Operations processed between filled-factor checks within one batch.
/// Keeps θ from badly overshooting β in huge batches while preserving the
/// paper's batch-granular resize semantics at typical batch sizes.
const RESIZE_CHECK_INTERVAL: usize = 1 << 16;

/// Cap on consecutive resize operations while rebalancing; validated
/// configurations converge in a handful.
const MAX_RESIZE_ITERS: u32 = 64;

/// Cap on upsize-and-retry cycles for failed inserts (shared with the
/// host-par backend, whose sequential overflow drain retries the same way).
pub(crate) const MAX_INSERT_RETRIES: u32 = 40;

/// Immutable shape shared by all kernels: configuration and hash functions.
/// Hash functions are fixed at construction and survive every resize — the
/// bucket index is just the raw hash reduced to the current table size.
pub(crate) struct TableShape {
    pub cfg: Config,
    pub pair: PairHash,
    pub hashes: Vec<UniversalHash>,
}

/// The candidate subtables a key may reside in (a tiny fixed-capacity set:
/// 2 for the pair-based layerings, `d` for plain d-ary cuckoo).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Candidates {
    tables: [u8; MAX_TABLES],
    len: u8,
}

/// Upper bound on `d` (keeps the candidate set a small copyable array).
pub const MAX_TABLES: usize = 16;

impl Candidates {
    fn pair(i: usize, j: usize) -> Self {
        let mut tables = [0u8; MAX_TABLES];
        tables[0] = i as u8;
        tables[1] = j as u8;
        Self { tables, len: 2 }
    }

    fn all(d: usize) -> Self {
        let mut tables = [0u8; MAX_TABLES];
        for (t, slot) in tables.iter_mut().enumerate().take(d) {
            *slot = t as u8;
        }
        Self {
            tables,
            len: d as u8,
        }
    }

    pub fn len(&self) -> usize {
        self.len as usize
    }

    pub fn get(&self, i: usize) -> usize {
        debug_assert!(i < self.len());
        self.tables[i] as usize
    }

    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.tables[..self.len()].iter().map(|&t| t as usize)
    }

    pub fn contains(&self, t: usize) -> bool {
        self.iter().any(|c| c == t)
    }

    /// Position of table `t` within the candidate list.
    pub fn position(&self, t: usize) -> Option<usize> {
        self.iter().position(|c| c == t)
    }

    pub fn as_slice_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }
}

impl TableShape {
    /// Derive the shape — hash-function parameters and the config they
    /// came from — every backend shares. The sim backend
    /// ([`DyCuckoo::new`]) and the host-par backend
    /// ([`crate::host_par::ParTable`]) both construct their shape here,
    /// which is what makes their key→candidate-bucket routing identical.
    pub fn from_config(cfg: Config) -> Self {
        let pair = PairHash::new(cfg.seed ^ 0x9E37_79B9, cfg.num_tables);
        let hashes = (0..cfg.num_tables)
            .map(|i| {
                UniversalHash::from_seed(
                    cfg.seed
                        .wrapping_add(0x517C_C1B7_2722_0A95u64.wrapping_mul(i as u64 + 1)),
                )
            })
            .collect();
        Self { cfg, pair, hashes }
    }

    /// The subtables that may hold `key`, per the configured layering.
    pub fn candidates(&self, key: u32) -> Candidates {
        match self.cfg.layering {
            crate::config::Layering::TwoLayer => {
                let (i, j) = self.pair.pair_of(key);
                Candidates::pair(i, j)
            }
            crate::config::Layering::DisjointPairs => {
                let half = self.cfg.num_tables / 2;
                let p = (self.pair.raw(key) % half as u64) as usize;
                Candidates::pair(2 * p, 2 * p + 1)
            }
            crate::config::Layering::PlainD => Candidates::all(self.cfg.num_tables),
        }
    }

    /// Where a key evicted from subtable `t` goes next. For the pair-based
    /// layerings this is the pair's other member; for plain d-ary cuckoo it
    /// is a steered choice among the other subtables. `excluded` (a
    /// subtable mid-downsize) is avoided where legal; `None` means the key
    /// has no admissible destination.
    pub fn evict_destination(
        &self,
        tables: &[SubTable],
        key: u32,
        t: usize,
        excluded: Option<usize>,
        salt: u64,
    ) -> Option<usize> {
        let cands = self.candidates(key);
        debug_assert!(cands.contains(t), "key {key} not homed in table {t}");
        let viable: Vec<usize> = cands
            .iter()
            .filter(|&c| c != t && Some(c) != excluded)
            .collect();
        match viable.len() {
            0 => None,
            1 => Some(viable[0]),
            _ => Some(crate::distribute::choose_among(
                self.cfg.distribution,
                tables,
                &viable,
                self.cfg.seed,
                key,
                salt,
            )),
        }
    }
}

/// One structural resize performed while processing a batch.
#[derive(Debug, Clone, PartialEq)]
pub struct ResizeEvent {
    /// What was resized.
    pub op: ResizeOp,
    /// Bucket count before.
    pub old_buckets: usize,
    /// Bucket count after.
    pub new_buckets: usize,
    /// KVs rehashed within the resized subtable.
    pub moved: u64,
    /// KVs pushed out to partner subtables (downsizing only).
    pub residuals: u64,
}

/// Outcome of one batched operation, including any resizes it triggered.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchReport {
    /// Operations submitted.
    pub attempted: usize,
    /// KVs newly inserted.
    pub inserted: u64,
    /// KVs that updated an existing key.
    pub updated: u64,
    /// Keys erased (delete batches).
    pub deleted: u64,
    /// Upsize-and-retry cycles needed for failed inserts.
    pub retries: u32,
    /// Resizes performed during/after the batch. On the incremental path
    /// (finite [`crate::Config::migration_quantum`]) a resize appears here
    /// only in the batch whose quantum finalized it, carrying the totals
    /// across all its chunks.
    pub resizes: Vec<ResizeEvent>,
    /// Source buckets drained by incremental migration chunks during this
    /// batch — bounded by `migration_quantum` per batch. Always 0 on the
    /// stop-the-world path.
    pub migrated_buckets: u64,
    /// KVs rehashed by those migration chunks (counted per batch; the
    /// finalizing [`ResizeEvent`] reports the same work again as a total,
    /// so sum one or the other, not both).
    pub migrated_kvs: u64,
}

impl BatchReport {
    /// Whether this batch stalled on structural work (a resize ran, an
    /// insert needed upsize-and-retry cycles, or a migration chunk was
    /// pumped). Service layers use this to count resize stalls per shard.
    pub fn resize_stall(&self) -> bool {
        !self.resizes.is_empty() || self.retries > 0 || self.migrated_buckets > 0
    }

    /// Total KVs moved by resizes during the batch (rehashed plus pushed
    /// to partner subtables) — the structural-work volume the batch paid
    /// for beyond its own operations.
    pub fn total_moved(&self) -> u64 {
        self.resizes.iter().map(|e| e.moved + e.residuals).sum()
    }
}

/// Outcome of a batched read-modify-write ([`DyCuckoo::upsert_batch`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UpsertReport {
    /// The underlying batch outcome (insert/update/resize accounting).
    pub batch: BatchReport,
    /// One flag per input position: `true` iff the op placed its key
    /// fresh (the key was absent immediately before the op applied).
    /// Later occurrences of a duplicated key within the batch are never
    /// fresh — frontier-dedup workloads keep exactly the `true` positions.
    pub fresh: Vec<bool>,
}

impl UpsertReport {
    /// Number of input positions that placed a fresh key.
    pub fn fresh_count(&self) -> usize {
        self.fresh.iter().filter(|&&f| f).count()
    }
}

/// The dynamic two-layer cuckoo hash table of the paper.
///
/// All operations are batched and charged to a [`SimContext`], whose metrics
/// and cost model yield the simulated throughput. Keys and values are `u32`;
/// key `0` is reserved as the empty sentinel.
///
/// ```
/// use gpu_sim::SimContext;
/// use dycuckoo::{Config, DyCuckoo};
///
/// let mut sim = SimContext::new();
/// let mut table = DyCuckoo::new(Config::default(), &mut sim).unwrap();
/// table.insert_batch(&mut sim, &[(1, 10), (2, 20)]).unwrap();
/// let found = table.find_batch(&mut sim, &[1, 2, 3]);
/// assert_eq!(found, vec![Some(10), Some(20), None]);
/// ```
pub struct DyCuckoo {
    shape: TableShape,
    tables: Vec<SubTable>,
    /// Optional overflow stash (the paper's future-work mitigation for
    /// upsize cascades); `None` when `stash_capacity == 0`.
    stash: Option<Stash>,
    /// The incremental-migration state machine (always `Idle` under the
    /// default stop-the-world `migration_quantum = usize::MAX`).
    migration: migration::MigrationMachine,
    /// Resize hysteresis ([`crate::resize::Decision`]): suppresses
    /// direction flips within `Config::resize_cooldown` batches.
    decision: crate::resize::Decision,
    op_counter: u64,
    /// Mirror of every device byte this table has allocated minus freed on
    /// the gpu-sim ledger, updated at each alloc/free site. Layout-derived
    /// [`DyCuckoo::device_bytes`] must agree with it at every batch
    /// boundary — [`DyCuckoo::verify_integrity`] asserts the two stay in
    /// lock step, so a resize path that forgets either side is caught.
    ledger_bytes: u64,
}

/// Smallest power-of-two bucket count per subtable such that `items` keys
/// fill `d` such subtables to at most `target_fill` (uniform sizing; see
/// [`mixed_bucket_sizes`] for the finer-grained allocation
/// [`DyCuckoo::with_capacity`] uses). Delegates to the engine's shared
/// sizing with this crate's default bucket width.
pub fn buckets_for_load(items: usize, d: usize, target_fill: f64) -> usize {
    gpu_sim::engine::buckets_for_load(items, d, target_fill, BUCKET_SLOTS)
}

/// Per-subtable bucket counts whose total capacity covers
/// `items / target_fill` slots as tightly as possible: an equal split,
/// rounded up to even counts so every subtable can later halve cleanly.
pub fn mixed_bucket_sizes(items: usize, d: usize, target_fill: f64) -> Vec<usize> {
    gpu_sim::engine::mixed_bucket_sizes(items, d, target_fill, BUCKET_SLOTS)
}

/// Simulated elapsed time and throughput of a window of metrics — a small
/// convenience the harness uses around batched calls.
pub fn window_mops(sim: &SimContext, window: &Metrics, ops: u64) -> f64 {
    gpu_sim::CostModel::new(sim.device.config()).mops(ops, window)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Error;

    fn small_cfg() -> Config {
        Config {
            initial_buckets: 4,
            ..Config::default()
        }
    }

    #[test]
    fn insert_find_roundtrip() {
        let mut sim = SimContext::new();
        let mut t = DyCuckoo::new(small_cfg(), &mut sim).unwrap();
        let kvs: Vec<(u32, u32)> = (1..=500u32).map(|k| (k, k * 3)).collect();
        let rep = t.insert_batch(&mut sim, &kvs).unwrap();
        assert_eq!(rep.inserted, 500);
        assert_eq!(t.len(), 500);
        let keys: Vec<u32> = (1..=500).collect();
        let found = t.find_batch(&mut sim, &keys);
        for (k, v) in keys.iter().zip(found) {
            assert_eq!(v, Some(k * 3));
        }
        t.verify_integrity().unwrap();
    }

    #[test]
    fn missing_keys_return_none() {
        let mut sim = SimContext::new();
        let mut t = DyCuckoo::new(small_cfg(), &mut sim).unwrap();
        t.insert_batch(&mut sim, &[(7, 70)]).unwrap();
        assert_eq!(t.find_batch(&mut sim, &[8, 9]), vec![None, None]);
    }

    #[test]
    fn zero_key_rejected() {
        let mut sim = SimContext::new();
        let mut t = DyCuckoo::new(small_cfg(), &mut sim).unwrap();
        assert_eq!(t.insert_batch(&mut sim, &[(0, 1)]), Err(Error::ZeroKey));
    }

    #[test]
    fn upsert_updates_in_place() {
        let mut sim = SimContext::new();
        let mut t = DyCuckoo::new(small_cfg(), &mut sim).unwrap();
        t.insert_batch(&mut sim, &[(5, 1)]).unwrap();
        let rep = t.insert_batch(&mut sim, &[(5, 2)]).unwrap();
        assert_eq!(rep.updated, 1);
        assert_eq!(rep.inserted, 0);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&mut sim, 5), Some(2));
    }

    #[test]
    fn delete_removes_keys_and_reports_count() {
        let mut sim = SimContext::new();
        let mut t = DyCuckoo::new(small_cfg(), &mut sim).unwrap();
        let kvs: Vec<(u32, u32)> = (1..=100u32).map(|k| (k, k)).collect();
        t.insert_batch(&mut sim, &kvs).unwrap();
        let rep = t.delete_batch(&mut sim, &[1, 2, 3, 999]).unwrap();
        assert_eq!(rep.deleted, 3);
        assert_eq!(t.len(), 97);
        assert_eq!(t.get(&mut sim, 1), None);
        assert_eq!(t.get(&mut sim, 4), Some(4));
        t.verify_integrity().unwrap();
    }

    #[test]
    fn growth_keeps_fill_in_bounds_and_ratio_invariant() {
        let mut sim = SimContext::new();
        let mut t = DyCuckoo::new(small_cfg(), &mut sim).unwrap();
        for round in 0..20u32 {
            let kvs: Vec<(u32, u32)> = (0..200u32).map(|i| (round * 200 + i + 1, i)).collect();
            t.insert_batch(&mut sim, &kvs).unwrap();
            assert!(t.size_ratio_ok(), "size ratio violated at round {round}");
            assert!(
                t.fill_factor() <= t.config().beta + 1e-9,
                "θ = {} exceeds β after rebalance",
                t.fill_factor()
            );
        }
        assert_eq!(t.len(), 4000);
        t.verify_integrity().unwrap();
        // Everything findable after many resizes.
        let keys: Vec<u32> = (1..=4000).collect();
        let found = t.find_batch(&mut sim, &keys);
        assert!(found.iter().all(|f| f.is_some()));
    }

    #[test]
    fn shrink_after_mass_delete() {
        let mut sim = SimContext::new();
        let mut t = DyCuckoo::new(small_cfg(), &mut sim).unwrap();
        let kvs: Vec<(u32, u32)> = (1..=2000u32).map(|k| (k, k)).collect();
        t.insert_batch(&mut sim, &kvs).unwrap();
        let bytes_before = t.device_bytes();
        let dels: Vec<u32> = (1..=1900).collect();
        let rep = t.delete_batch(&mut sim, &dels).unwrap();
        assert_eq!(rep.deleted, 1900);
        assert!(
            !rep.resizes.is_empty(),
            "mass deletion should trigger downsizing"
        );
        assert!(t.device_bytes() < bytes_before);
        assert!(t.fill_factor() >= t.config().alpha - 1e-9);
        // Survivors still present.
        let keys: Vec<u32> = (1901..=2000).collect();
        assert!(t.find_batch(&mut sim, &keys).iter().all(|f| f.is_some()));
        t.verify_integrity().unwrap();
    }

    #[test]
    fn with_capacity_hits_target_fill() {
        for d in [2usize, 3, 4, 5, 6] {
            let mut sim = SimContext::new();
            let cfg = Config {
                num_tables: d,
                ..Config::default()
            };
            let t = DyCuckoo::with_capacity(cfg, 100_000, 0.85, &mut sim).unwrap();
            let slots: u64 = t.stats().capacity_slots;
            let fill = 100_000.0 / slots as f64;
            assert!(fill <= 0.85 + 1e-9, "d={d}: fill {fill}");
            // Equal even-count sizing tracks the budget within a whisker.
            assert!(fill > 0.85 * 0.98, "d={d}: fill only {fill}");
            assert!(t.size_ratio_ok(), "d={d}");
        }
    }

    #[test]
    fn with_capacity_sizes_by_layout_width() {
        // A 16-slot layout needs twice the buckets for the same capacity.
        let mut sim = SimContext::new();
        let cfg = Config {
            layout: gpu_sim::LayoutConfig::aos(16, 4, 4),
            ..Config::default()
        };
        let t = DyCuckoo::with_capacity(cfg, 50_000, 0.85, &mut sim).unwrap();
        let fill = 50_000.0 / t.capacity_slots() as f64;
        assert!(fill <= 0.85 + 1e-9 && fill > 0.85 * 0.98, "fill {fill}");
        t.verify_integrity().unwrap();
    }

    #[test]
    fn buckets_for_load_is_minimal_power_of_two() {
        assert_eq!(buckets_for_load(1, 4, 1.0), 1);
        // 10_000 items at θ=0.85 over 4 tables: 11765 slots → 92 buckets/table → 128.
        assert_eq!(buckets_for_load(10_000, 4, 0.85), 128);
    }

    #[test]
    fn mixed_bucket_sizes_cover_budget_tightly() {
        for d in [2usize, 3, 4, 5, 7] {
            for items in [100usize, 5_000, 77_777, 1_000_000] {
                let sizes = mixed_bucket_sizes(items, d, 0.85);
                assert_eq!(sizes.len(), d);
                assert!(sizes.iter().all(|&s| s % 2 == 0), "{sizes:?}");
                let total_slots: usize = sizes.iter().sum::<usize>() * BUCKET_SLOTS;
                let needed = (items as f64 / 0.85).ceil() as usize;
                assert!(total_slots >= needed, "d={d} items={items}: {sizes:?}");
                // Within one even bucket per table of the requirement.
                assert!(
                    total_slots <= needed + 3 * d * BUCKET_SLOTS,
                    "d={d} items={items}: over-provisioned {sizes:?}"
                );
            }
        }
    }

    #[test]
    fn find_is_at_most_two_lookups_per_key() {
        let mut sim = SimContext::new();
        let mut t = DyCuckoo::new(small_cfg(), &mut sim).unwrap();
        let kvs: Vec<(u32, u32)> = (1..=1000u32).map(|k| (k, k)).collect();
        t.insert_batch(&mut sim, &kvs).unwrap();
        sim.take_metrics();
        let keys: Vec<u32> = (1..=1000).collect();
        t.find_batch(&mut sim, &keys);
        let m = sim.take_metrics();
        assert!(
            m.lookups <= 2 * 1000,
            "find used {} lookups for 1000 keys",
            m.lookups
        );
    }

    #[test]
    fn force_upsize_then_downsize_roundtrip() {
        let mut sim = SimContext::new();
        let mut t = DyCuckoo::new(small_cfg(), &mut sim).unwrap();
        let kvs: Vec<(u32, u32)> = (1..=300u32).map(|k| (k, k + 1)).collect();
        t.insert_batch(&mut sim, &kvs).unwrap();
        let ev = t.force_resize(&mut sim, ResizeOp::Upsize(0)).unwrap();
        assert_eq!(ev.new_buckets, ev.old_buckets * 2);
        t.verify_integrity().unwrap();
        let ev = t.force_resize(&mut sim, ResizeOp::Downsize(0)).unwrap();
        assert_eq!(ev.new_buckets, ev.old_buckets / 2);
        t.verify_integrity().unwrap();
        let keys: Vec<u32> = (1..=300).collect();
        let found = t.find_batch(&mut sim, &keys);
        for (i, f) in found.iter().enumerate() {
            assert_eq!(*f, Some(i as u32 + 2), "key {} lost in resize", i + 1);
        }
    }

    #[test]
    fn paper_insert_policy_still_finds_keys() {
        let mut sim = SimContext::new();
        let cfg = Config {
            dup_policy: crate::config::DupPolicy::PaperInsert,
            initial_buckets: 8,
            ..Config::default()
        };
        let mut t = DyCuckoo::new(cfg, &mut sim).unwrap();
        let kvs: Vec<(u32, u32)> = (1..=800u32).map(|k| (k, k)).collect();
        t.insert_batch(&mut sim, &kvs).unwrap();
        let keys: Vec<u32> = (1..=800).collect();
        assert!(t.find_batch(&mut sim, &keys).iter().all(|f| f.is_some()));
    }

    #[test]
    fn naive_rehash_preserves_all_keys() {
        let mut sim = SimContext::new();
        let mut t = DyCuckoo::new(small_cfg(), &mut sim).unwrap();
        let kvs: Vec<(u32, u32)> = (1..=600u32).map(|k| (k, k + 9)).collect();
        t.insert_batch(&mut sim, &kvs).unwrap();
        let moved = t.rehash_subtable_naive(&mut sim, 1, true).unwrap();
        assert!(moved > 0, "subtable 1 should have held entries");
        t.verify_integrity().unwrap();
        let keys: Vec<u32> = (1..=600).collect();
        let found = t.find_batch(&mut sim, &keys);
        for (i, f) in found.iter().enumerate() {
            assert_eq!(*f, Some(i as u32 + 10), "key {} lost", i + 1);
        }
        // Shrink direction too.
        let moved = t.rehash_subtable_naive(&mut sim, 1, false).unwrap();
        assert!(moved > 0);
        t.verify_integrity().unwrap();
        let found = t.find_batch(&mut sim, &keys);
        assert!(found.iter().all(|f| f.is_some()));
    }

    #[test]
    fn plain_d_layering_roundtrip() {
        let mut sim = SimContext::new();
        let cfg = Config {
            layering: crate::config::Layering::PlainD,
            initial_buckets: 4,
            ..Config::default()
        };
        let mut t = DyCuckoo::new(cfg, &mut sim).unwrap();
        let kvs: Vec<(u32, u32)> = (1..=800u32).map(|k| (k, k + 3)).collect();
        t.insert_batch(&mut sim, &kvs).unwrap();
        t.verify_integrity().unwrap();
        let keys: Vec<u32> = (1..=800).collect();
        let found = t.find_batch(&mut sim, &keys);
        for (i, f) in found.iter().enumerate() {
            assert_eq!(*f, Some(i as u32 + 4));
        }
        t.delete_batch(&mut sim, &keys).unwrap();
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn disjoint_pairs_layering_roundtrip() {
        let mut sim = SimContext::new();
        let cfg = Config {
            layering: crate::config::Layering::DisjointPairs,
            initial_buckets: 4,
            ..Config::default()
        };
        let mut t = DyCuckoo::new(cfg, &mut sim).unwrap();
        let kvs: Vec<(u32, u32)> = (1..=800u32).map(|k| (k, k)).collect();
        t.insert_batch(&mut sim, &kvs).unwrap();
        t.verify_integrity().unwrap();
        let keys: Vec<u32> = (1..=800).collect();
        assert!(t.find_batch(&mut sim, &keys).iter().all(|f| f.is_some()));
    }

    #[test]
    fn plain_d_find_probes_up_to_d_buckets() {
        let mut sim = SimContext::new();
        let cfg = Config {
            layering: crate::config::Layering::PlainD,
            initial_buckets: 4,
            ..Config::default()
        };
        let mut t = DyCuckoo::new(cfg, &mut sim).unwrap();
        let kvs: Vec<(u32, u32)> = (1..=500u32).map(|k| (k, k)).collect();
        t.insert_batch(&mut sim, &kvs).unwrap();
        // Misses must probe all d=4 candidate buckets, vs 2 for two-layer.
        sim.take_metrics();
        let misses: Vec<u32> = (1_000_001..1_001_001).collect();
        t.find_batch(&mut sim, &misses);
        let m = sim.take_metrics();
        assert_eq!(m.lookups, 4 * 1000, "plain-d misses probe d buckets");
    }

    #[test]
    fn voter_finishes_contended_batches_in_fewer_rounds() {
        // The voter's value is not fewer failed CAS attempts but not
        // *wasting* warp time while blocked: a spinning warp burns a whole
        // round per failure, a voting warp completes another lane's op.
        let run = |coordination| {
            let mut sim = SimContext::new();
            let cfg = Config {
                coordination,
                initial_buckets: 2,
                ..Config::default()
            };
            let mut t = DyCuckoo::new(cfg, &mut sim).unwrap();
            // The paper's celebrity scenario: each warp carries one op on a
            // hot key plus 31 ordinary ops. A spinning warp blocks its
            // ordinary ops behind the contended one.
            let kvs: Vec<(u32, u32)> = (0..4096u32)
                .map(|i| if i % 32 == 0 { (7, i) } else { (i + 100, i) })
                .collect();
            t.insert_batch(&mut sim, &kvs).unwrap();
            sim.take_metrics().rounds
        };
        let spin = run(crate::config::Coordination::Spin);
        let voter = run(crate::config::Coordination::Voter);
        assert!(
            spin > voter,
            "spinning should waste rounds (spin {spin} vs voter {voter})"
        );
    }

    fn stash_cfg() -> Config {
        Config {
            initial_buckets: 2,
            stash_capacity: 64,
            // A tiny eviction limit makes chains fail early so the stash
            // actually gets exercised.
            eviction_limit: 2,
            alpha: 0.0,
            beta: 1.0,
            ..Config::default()
        }
    }

    #[test]
    fn stash_absorbs_failed_chains_without_resizing() {
        let mut sim = SimContext::new();
        let mut t = DyCuckoo::new(stash_cfg(), &mut sim).unwrap();
        // 2 buckets × 4 tables × 32 slots = 256 slots; pushing well past
        // capacity with resizing disabled (β = 1.0 means θ can reach 1.0)
        // must park the overflow in the stash instead of erroring.
        let kvs: Vec<(u32, u32)> = (1..=280u32).map(|k| (k, k)).collect();
        let rep = t.insert_batch(&mut sim, &kvs).unwrap();
        assert_eq!(rep.inserted + rep.updated, 280);
        assert!(t.stashed() > 0, "overflow should be stashed");
        assert!(rep.resizes.is_empty(), "no resizes while β = 1.0");
        let keys: Vec<u32> = (1..=280).collect();
        let found = t.find_batch(&mut sim, &keys);
        for (k, f) in keys.iter().zip(found) {
            assert_eq!(f, Some(*k), "key {k} lost");
        }
        t.verify_integrity().unwrap();
    }

    #[test]
    fn stash_supports_update_and_delete() {
        let mut sim = SimContext::new();
        let mut t = DyCuckoo::new(stash_cfg(), &mut sim).unwrap();
        let kvs: Vec<(u32, u32)> = (1..=280u32).map(|k| (k, k)).collect();
        t.insert_batch(&mut sim, &kvs).unwrap();
        assert!(t.stashed() > 0);
        // Update every key; stashed ones must update in place.
        let kvs2: Vec<(u32, u32)> = (1..=280u32).map(|k| (k, k + 1)).collect();
        let rep = t.insert_batch(&mut sim, &kvs2).unwrap();
        assert_eq!(rep.updated, 280);
        assert_eq!(t.len(), 280);
        let keys: Vec<u32> = (1..=280).collect();
        let found = t.find_batch(&mut sim, &keys);
        for (k, f) in keys.iter().zip(found) {
            assert_eq!(f, Some(k + 1));
        }
        // Delete everything, stash included.
        let rep = t.delete_batch(&mut sim, &keys).unwrap();
        assert_eq!(rep.deleted, 280);
        assert_eq!(t.len(), 0);
        assert_eq!(t.stashed(), 0);
    }

    #[test]
    fn stash_drains_after_resize() {
        let mut sim = SimContext::new();
        let cfg = Config {
            stash_capacity: 64,
            eviction_limit: 2,
            initial_buckets: 2,
            ..Config::default() // real bounds: resizing enabled
        };
        let mut t = DyCuckoo::new(cfg, &mut sim).unwrap();
        let kvs: Vec<(u32, u32)> = (1..=2000u32).map(|k| (k, k)).collect();
        t.insert_batch(&mut sim, &kvs).unwrap();
        // With resizing enabled, the table grows and the stash drains back;
        // at most a handful of keys may be parked transiently.
        assert!(
            t.stashed() < 32,
            "stash should drain after resizes, {} still parked",
            t.stashed()
        );
        let keys: Vec<u32> = (1..=2000).collect();
        assert!(t.find_batch(&mut sim, &keys).iter().all(|f| f.is_some()));
        t.verify_integrity().unwrap();
    }

    #[test]
    fn headroom_and_stall_hooks_track_batches() {
        let mut sim = SimContext::new();
        let mut t = DyCuckoo::new(small_cfg(), &mut sim).unwrap();
        let beta = t.config().beta;
        let before = t.headroom_slots();
        assert_eq!(before, (beta * t.capacity_slots() as f64) as i64);
        let kvs: Vec<(u32, u32)> = (1..=2000u32).map(|k| (k, k)).collect();
        let rep = t.insert_batch(&mut sim, &kvs).unwrap();
        // Growth to 2000 keys from 4-bucket subtables must have resized.
        assert!(rep.resize_stall());
        assert!(rep.total_moved() > 0);
        assert!(t.headroom_slots() >= 0, "rebalance restores headroom");
        assert_eq!(
            t.headroom_slots(),
            (beta * t.capacity_slots() as f64) as i64 - 2000
        );
        // A pure-read window causes no stall.
        let rep = t.delete_batch(&mut sim, &[]).unwrap();
        assert!(!rep.resize_stall());
        assert_eq!(rep.total_moved(), 0);
    }

    #[test]
    fn release_returns_device_memory() {
        let mut sim = SimContext::new();
        let t = DyCuckoo::new(small_cfg(), &mut sim).unwrap();
        let held = sim.device.allocated_bytes();
        assert!(held > 0);
        t.release(&mut sim).unwrap();
        assert_eq!(sim.device.allocated_bytes(), 0);
    }

    #[test]
    fn ledger_mirrors_device_allocations_through_resizes() {
        let mut sim = SimContext::new();
        let mut t = DyCuckoo::new(small_cfg(), &mut sim).unwrap();
        assert_eq!(t.device_bytes(), sim.device.allocated_bytes());
        let kvs: Vec<(u32, u32)> = (1..=3000u32).map(|k| (k, k)).collect();
        t.insert_batch(&mut sim, &kvs).unwrap(); // many upsizes
        assert_eq!(t.device_bytes(), sim.device.allocated_bytes());
        let dels: Vec<u32> = (1..=2800).collect();
        t.delete_batch(&mut sim, &dels).unwrap(); // downsizes
        assert_eq!(t.device_bytes(), sim.device.allocated_bytes());
        t.verify_integrity().unwrap();
    }
}
