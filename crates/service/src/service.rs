//! The service proper: N sharded [`dycuckoo::DyCuckoo`] instances behind a
//! router, per-shard batching queues, and a simulated-clock tick loop.
//!
//! The lifecycle of a request:
//!
//! 1. [`KvService::submit`] routes the key to a shard and runs admission
//!    control against that shard's queue. Refusals return a typed
//!    [`AdmitError`]; admitted requests enter the shard's FIFO.
//! 2. [`KvService::tick`] advances the simulated clock one step. Each shard
//!    flushes while its queue holds a full batch (`max_batch`), or when its
//!    oldest request has waited `max_delay_ticks` — size-or-deadline
//!    batching on the deterministic clock.
//! 3. A flush compiles its window with [`crate::batcher::plan_flush`],
//!    runs at most one find / one insert / one delete kernel against the
//!    shard's table, and emits [`Completion`]s in submission order.
//! 4. [`KvService::drain_completions`] hands finished requests back.
//!
//! Kernel time is charged per flush in an **isolated metrics window** (the
//! roofline cost model is non-linear, so per-flush ns must be computed on
//! per-flush counters and then summed), after which the window is merged
//! back into the caller's running totals.

use std::collections::{HashMap, HashSet, VecDeque};

use dycuckoo::hashfn::splitmix64;
use dycuckoo::unsized_kv::MAX_BLOB_LEN;
use dycuckoo::{
    Config, DyCuckoo, MergeRule, UnsizedConfig, UnsizedReport, UnsizedTable, UpsertReport,
};
use gpu_sim::{CostModel, SchedulePolicy, SimContext};

use crate::admission::{AdmissionPolicy, AdmitError};
use crate::batcher::{plan_flush, FlushPlan, PlannedReply};
use crate::filter::MissFilter;
use crate::metrics::{ServiceMetrics, Snapshot, SnapshotRow};
use crate::request::{
    ByteCompletion, ByteOp, BytePending, ByteReply, Completion, Op, Pending, Reply,
};
use crate::router::ShardRouter;

/// Which key/value shape the service's byte-op API serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// `u32 → u32` only (the historical shape): byte operations are
    /// refused with [`ServiceError::TierDisabled`] and no unsized state
    /// is allocated, so every fixed-tier code path and snapshot is
    /// byte-identical to a service built before this tier existed.
    Fixed,
    /// Byte-string keys and values via one [`UnsizedTable`] per shard,
    /// alongside (not replacing) the fixed-tier tables.
    Unsized,
}

impl Tier {
    /// CLI / artifact name.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Fixed => "fixed",
            Tier::Unsized => "unsized",
        }
    }

    /// Inverse of [`Tier::name`].
    pub fn from_name(name: &str) -> Option<Tier> {
        match name {
            "fixed" => Some(Tier::Fixed),
            "unsized" => Some(Tier::Unsized),
            _ => None,
        }
    }
}

/// Which execution backend runs the shard kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The deterministic SIMT simulation: every kernel runs inline on the
    /// calling thread against the caller's [`SimContext`]. The historical
    /// (and default) mode — all pinned snapshots are produced here.
    Sim,
    /// Real OS threads: each due shard's flush window runs on its own
    /// scoped worker thread (at most `threads` concurrently) against a
    /// per-shard persistent [`SimContext`] owned by the service. Replies,
    /// completions, service metrics, and the caller's metric totals are
    /// identical to [`Backend::Sim`] by construction — shards are fully
    /// independent and results are applied in shard-visit order at the
    /// join. Device-byte accounting lives in the per-shard contexts
    /// instead of the caller's.
    HostPar {
        /// Maximum worker threads per flush wave (≥ 1).
        threads: usize,
    },
}

impl Backend {
    /// CLI / artifact name.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Sim => "sim",
            Backend::HostPar { .. } => "host-par",
        }
    }
}

/// Configuration of a [`KvService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of shards (power of two). Each owns one DyCuckoo instance.
    pub shards: usize,
    /// Per-shard table configuration. Each shard derives its own hash seed
    /// from `table.seed` and its shard index, so shards never share hash
    /// parameters with each other or with the router.
    pub table: Config,
    /// Flush a shard as soon as its queue reaches this many requests.
    pub max_batch: usize,
    /// Flush a shard once its oldest request has waited this many ticks.
    pub max_delay_ticks: u64,
    /// Hard bound on queued requests per shard.
    pub queue_capacity: usize,
    /// Queue depth above which reads are shed.
    pub shed_watermark: usize,
    /// Router seed (independent of the table seeds).
    pub seed: u64,
    /// Source buckets a structural resize may drain per migration quantum
    /// (overrides the embedded table config's `migration_quantum` for
    /// every shard). `usize::MAX` — the default — keeps the historical
    /// stop-the-world resizes; a finite value turns each resize into an
    /// incremental migration pumped once per flush and once per tick, so
    /// no flush window stalls on a whole-subtable rehash.
    pub migration_quantum: usize,
    /// Order in which shards are visited on each tick / drain pass.
    /// Shards are fully independent (disjoint tables, disjoint queues), so
    /// any order must produce identical replies — the exploration harness
    /// sweeps non-fixed orders to prove exactly that. Benchmarks keep the
    /// default fixed order.
    pub flush_order: SchedulePolicy,
    /// Which tier the byte-op API serves. The default [`Tier::Fixed`]
    /// allocates no unsized state and leaves the `u32` pipeline untouched.
    pub tier: Tier,
    /// Per-shard unsized-table configuration (used only when `tier` is
    /// [`Tier::Unsized`]). Each shard derives its own seed from this one,
    /// and [`ServiceConfig::migration_quantum`] overrides the embedded
    /// quantum exactly as it does for the fixed tables.
    pub unsized_table: UnsizedConfig,
    /// Fingerprint width of the per-shard cuckoo-filter miss shield: 0
    /// (the default) allocates no filter and leaves every submit/flush
    /// path byte-identical to a service built before the shield existed;
    /// 8 or 16 sheds provably-absent `Get`s at submission time (see
    /// [`crate::filter::MissFilter`]).
    pub miss_filter_bits: u8,
    /// Which execution backend runs the shard kernels. The default
    /// [`Backend::Sim`] keeps every code path (and pinned snapshot)
    /// byte-identical to a service built before the host-par backend
    /// existed.
    pub backend: Backend,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            table: Config::default(),
            max_batch: 256,
            max_delay_ticks: 4,
            queue_capacity: 1024,
            shed_watermark: 768,
            seed: 0x5E1C_E000,
            migration_quantum: usize::MAX,
            flush_order: SchedulePolicy::FixedOrder,
            tier: Tier::Fixed,
            unsized_table: UnsizedConfig::default(),
            miss_filter_bits: 0,
            backend: Backend::Sim,
        }
    }
}

impl ServiceConfig {
    /// Validate the composite configuration.
    pub fn validate(&self) -> Result<(), ServiceError> {
        self.table.validate().map_err(ServiceError::Table)?;
        if self.tier == Tier::Unsized {
            self.unsized_table.validate()?;
        }
        if self.max_batch == 0 {
            return Err(ServiceError::InvalidConfig(
                "max_batch must be positive".to_string(),
            ));
        }
        if self.max_batch > self.queue_capacity {
            return Err(ServiceError::InvalidConfig(format!(
                "max_batch ({}) cannot exceed queue_capacity ({})",
                self.max_batch, self.queue_capacity
            )));
        }
        if matches!(self.backend, Backend::HostPar { threads: 0 }) {
            return Err(ServiceError::InvalidConfig(
                "Backend::HostPar needs at least one worker thread".to_string(),
            ));
        }
        if !matches!(self.miss_filter_bits, 0 | 8 | 16) {
            return Err(ServiceError::InvalidConfig(format!(
                "miss_filter_bits must be 0, 8, or 16 (got {})",
                self.miss_filter_bits
            )));
        }
        self.admission()
            .validate()
            .map_err(ServiceError::InvalidConfig)?;
        // Shard-count validation happens in ShardRouter::new.
        ShardRouter::new(self.shards, self.seed).map_err(ServiceError::InvalidConfig)?;
        Ok(())
    }

    fn admission(&self) -> AdmissionPolicy {
        AdmissionPolicy {
            queue_capacity: self.queue_capacity,
            shed_watermark: self.shed_watermark,
        }
    }
}

/// Service-level failures (admission refusals are [`AdmitError`] instead).
#[derive(Debug)]
pub enum ServiceError {
    /// The configuration cannot work.
    InvalidConfig(String),
    /// An underlying table operation failed.
    Table(dycuckoo::Error),
    /// A byte-tier admission refusal (the fixed-tier [`KvService::submit`]
    /// returns the inner [`AdmitError`] directly).
    Admit(AdmitError),
    /// A byte operation reached a service built with [`Tier::Fixed`].
    TierDisabled,
    /// A submitted key or value exceeds the unsized tier's blob bound
    /// (checked at submission so a flush can never fail on user data).
    OversizedBlob {
        /// The offending blob's length.
        len: usize,
        /// The bound it exceeded.
        max: usize,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::InvalidConfig(msg) => write!(f, "invalid service config: {msg}"),
            ServiceError::Table(e) => write!(f, "table error: {e}"),
            ServiceError::Admit(e) => write!(f, "byte-tier admission refused: {e}"),
            ServiceError::TierDisabled => {
                write!(
                    f,
                    "byte operations require ServiceConfig::tier = Tier::Unsized"
                )
            }
            ServiceError::OversizedBlob { len, max } => {
                write!(
                    f,
                    "blob of {len} bytes exceeds the unsized tier's bound of {max}"
                )
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<dycuckoo::Error> for ServiceError {
    fn from(e: dycuckoo::Error) -> Self {
        ServiceError::Table(e)
    }
}

/// One shard: an independent table plus its request queue (and, when the
/// unsized tier is enabled, an independent byte-string table and queue).
struct Shard {
    table: DyCuckoo,
    queue: VecDeque<Pending>,
    /// Byte-tier table — `None` unless `tier: Tier::Unsized`.
    unsized_table: Option<UnsizedTable>,
    /// Byte-tier queue, flushed by the same size-or-deadline rule.
    byte_queue: VecDeque<BytePending>,
    /// Cuckoo-filter miss shield — `None` unless `miss_filter_bits > 0`.
    filter: Option<MissFilter>,
}

/// A sharded, batching KV service over DyCuckoo tables.
pub struct KvService {
    cfg: ServiceConfig,
    router: ShardRouter,
    admission: AdmissionPolicy,
    shards: Vec<Shard>,
    /// Per-shard kernel contexts — empty under [`Backend::Sim`] (the
    /// caller's context runs everything), one per shard under
    /// [`Backend::HostPar`] so workers execute kernels without sharing
    /// the caller's `SimContext`. Device-byte accounting for the shard's
    /// tables lives here in host-par mode.
    shard_sims: Vec<SimContext>,
    completions: VecDeque<Completion>,
    byte_completions: VecDeque<ByteCompletion>,
    metrics: ServiceMetrics,
    clock: u64,
    next_id: u64,
}

impl KvService {
    /// Build the service: one DyCuckoo instance per shard, each with a
    /// distinct hash seed derived from the table seed and shard index.
    pub fn new(cfg: ServiceConfig, sim: &mut SimContext) -> Result<Self, ServiceError> {
        cfg.validate()?;
        let router = ShardRouter::new(cfg.shards, cfg.seed).map_err(ServiceError::InvalidConfig)?;
        // Host-par shards allocate on their own persistent contexts (same
        // device model as the caller's) so worker threads never touch the
        // caller's SimContext.
        let mut shard_sims: Vec<SimContext> = match cfg.backend {
            Backend::Sim => Vec::new(),
            Backend::HostPar { .. } => (0..cfg.shards)
                .map(|_| SimContext::with_config(*sim.device.config()))
                .collect(),
        };
        let mut shards = Vec::with_capacity(cfg.shards);
        for i in 0..cfg.shards {
            let build_sim: &mut SimContext = match shard_sims.get_mut(i) {
                Some(s) => s,
                None => &mut *sim,
            };
            let table_cfg = Config {
                seed: splitmix64(cfg.table.seed.wrapping_add(i as u64)),
                migration_quantum: cfg.migration_quantum,
                ..cfg.table
            };
            let unsized_table = match cfg.tier {
                Tier::Fixed => None,
                Tier::Unsized => {
                    let ucfg = UnsizedConfig {
                        seed: splitmix64(cfg.unsized_table.seed ^ (0x5B17_E000 + i as u64)),
                        migration_quantum: cfg.migration_quantum,
                        ..cfg.unsized_table
                    };
                    Some(UnsizedTable::new(ucfg, build_sim)?)
                }
            };
            let filter = (cfg.miss_filter_bits > 0).then(|| {
                MissFilter::new(
                    cfg.miss_filter_bits,
                    splitmix64(cfg.seed ^ (0xF117_E000 + i as u64)),
                )
            });
            shards.push(Shard {
                table: DyCuckoo::new(table_cfg, build_sim)?,
                queue: VecDeque::new(),
                unsized_table,
                byte_queue: VecDeque::new(),
                filter,
            });
        }
        let metrics = ServiceMetrics::new(cfg.shards);
        let admission = cfg.admission();
        Ok(Self {
            cfg,
            router,
            admission,
            shards,
            shard_sims,
            completions: VecDeque::new(),
            byte_completions: VecDeque::new(),
            metrics,
            clock: 0,
            next_id: 0,
        })
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// The key router (exposed so tests and load generators can place keys).
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Current simulated tick.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Submit one operation on behalf of `client`. Returns the request id,
    /// or a typed admission refusal (the queue is never grown past its
    /// bound). Refusals are counted per shard.
    pub fn submit(&mut self, client: u32, op: Op) -> Result<u64, AdmitError> {
        let shard = self.router.shard_of(op.key());
        let m = &mut self.metrics.per_shard[shard];
        m.submitted += 1;
        let depth = self.shards[shard].queue.len();
        match self.admission.admit(shard, depth, &op) {
            Ok(()) => {}
            Err(e) => {
                match e {
                    AdmitError::Overloaded { .. } => m.shed_overloaded += 1,
                    AdmitError::Shed { .. } => m.shed_reads += 1,
                    AdmitError::ZeroKey => {}
                }
                if obs::is_enabled() && !matches!(e, AdmitError::ZeroKey) {
                    obs::emit(obs::Event::Shed {
                        shard: shard as u32,
                        depth: depth as u32,
                        hard: matches!(e, AdmitError::Overloaded { .. }),
                    });
                }
                return Err(e);
            }
        }
        // Miss shield: a Get whose key the filter provably excludes — and
        // for which no write is queued in this shard's window (those are
        // the coalescer's to answer) — completes right now with
        // `Value(None)`, never entering the batcher. A filter *hit* proves
        // nothing and flows through to the table unchanged.
        if let (&Op::Get(key), Some(filter)) = (&op, self.shards[shard].filter.as_ref()) {
            let write_pending = self.shards[shard]
                .queue
                .iter()
                .any(|p| p.op.key() == key && !p.op.is_read());
            if !write_pending && !filter.may_contain(key) {
                let id = self.next_id;
                self.next_id += 1;
                m.admitted += 1;
                m.completed += 1;
                m.filter_shed += 1;
                m.latency.record(0);
                if obs::is_enabled() {
                    obs::emit(obs::Event::FilterShed {
                        shard: shard as u32,
                        key,
                    });
                }
                self.completions.push_back(Completion {
                    id,
                    client,
                    key,
                    reply: Reply::Value(None),
                    submitted_tick: self.clock,
                    completed_tick: self.clock,
                    coalesced: false,
                });
                return Ok(id);
            }
        }
        let id = self.next_id;
        self.next_id += 1;
        self.shards[shard].queue.push_back(Pending {
            id,
            client,
            op,
            submitted_tick: self.clock,
        });
        m.admitted += 1;
        m.max_queue_depth = m.max_queue_depth.max(depth + 1);
        Ok(id)
    }

    /// Submit one byte-string operation on behalf of `client`. Requires
    /// `tier: Tier::Unsized`. Blob lengths are validated here so a flush
    /// can never fail on user data; admission runs against the shard's
    /// byte queue with the same bounds as the fixed path, and refusals
    /// are counted into the same shed metrics.
    pub fn submit_bytes(&mut self, client: u32, op: ByteOp) -> Result<u64, ServiceError> {
        if self.cfg.tier != Tier::Unsized {
            return Err(ServiceError::TierDisabled);
        }
        let longest = match &op {
            ByteOp::Put(k, v) => k.len().max(v.len()),
            ByteOp::Get(k) | ByteOp::Delete(k) => k.len(),
        };
        if longest > MAX_BLOB_LEN {
            return Err(ServiceError::OversizedBlob {
                len: longest,
                max: MAX_BLOB_LEN,
            });
        }
        let shard = self.router.shard_of_bytes(op.key());
        let m = &mut self.metrics.per_shard[shard];
        m.submitted += 1;
        let depth = self.shards[shard].byte_queue.len();
        if let Err(e) = self.admission.admit_depth(shard, depth, op.is_read()) {
            match e {
                AdmitError::Overloaded { .. } => m.shed_overloaded += 1,
                AdmitError::Shed { .. } => m.shed_reads += 1,
                AdmitError::ZeroKey => {}
            }
            if obs::is_enabled() {
                obs::emit(obs::Event::Shed {
                    shard: shard as u32,
                    depth: depth as u32,
                    hard: matches!(e, AdmitError::Overloaded { .. }),
                });
            }
            return Err(ServiceError::Admit(e));
        }
        let id = self.next_id;
        self.next_id += 1;
        self.shards[shard].byte_queue.push_back(BytePending {
            id,
            client,
            op,
            submitted_tick: self.clock,
        });
        m.admitted += 1;
        m.max_queue_depth = m.max_queue_depth.max(depth + 1);
        Ok(id)
    }

    /// Backpressure signal in `[0, 1]` for the shard owning `key`.
    pub fn pressure_for(&self, key: u32) -> f64 {
        let shard = self.router.shard_of(key);
        self.admission.pressure(self.shards[shard].queue.len())
    }

    /// Current queue depth of every shard.
    pub fn queue_depths(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.queue.len()).collect()
    }

    /// Current byte-queue depth of every shard (all zero with `Tier::Fixed`).
    pub fn byte_queue_depths(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.byte_queue.len()).collect()
    }

    /// Advance the simulated clock one tick, flushing **at most one batch
    /// per shard**: a shard flushes when its queue holds a full batch or
    /// its oldest request hit the deadline. One-batch-per-tick is the
    /// service's capacity model — sustained offered load beyond
    /// `shards × max_batch` requests per tick builds queues until
    /// admission control sheds, instead of being absorbed instantly.
    /// Returns the number of requests completed this tick.
    pub fn tick(&mut self, sim: &mut SimContext) -> Result<usize, ServiceError> {
        self.clock += 1;
        obs::set_clock(self.clock);
        let mut completed = 0;
        // Queues cannot change mid-tick, so the due set is fixed up front;
        // the Sim path flushes inline in visit order, the HostPar path
        // fans the same set out to worker threads and applies results in
        // the same order.
        let mut due: Vec<usize> = Vec::new();
        for shard in self.shard_visit_order() {
            let queue = &self.shards[shard].queue;
            let by_size = queue.len() >= self.cfg.max_batch;
            let by_deadline = queue
                .front()
                .is_some_and(|p| self.clock - p.submitted_tick >= self.cfg.max_delay_ticks);
            if !by_size && !by_deadline {
                continue;
            }
            self.metrics.per_shard[shard].batches += 1;
            if by_size {
                self.metrics.per_shard[shard].flush_by_size += 1;
            } else {
                self.metrics.per_shard[shard].flush_by_deadline += 1;
            }
            due.push(shard);
        }
        match self.cfg.backend {
            Backend::Sim => {
                for shard in due {
                    completed += self.flush(shard, sim)?;
                }
            }
            Backend::HostPar { threads } => {
                completed += self.flush_host_par(&due, threads, sim, false)?;
            }
        }
        if self.cfg.tier == Tier::Unsized {
            for shard in self.shard_visit_order() {
                let queue = &self.shards[shard].byte_queue;
                let by_size = queue.len() >= self.cfg.max_batch;
                let by_deadline = queue
                    .front()
                    .is_some_and(|p| self.clock - p.submitted_tick >= self.cfg.max_delay_ticks);
                if !by_size && !by_deadline {
                    continue;
                }
                let m = &mut self.metrics.per_shard[shard];
                m.batches += 1;
                m.byte_batches += 1;
                if by_size {
                    m.flush_by_size += 1;
                } else {
                    m.flush_by_deadline += 1;
                }
                completed += self.flush_bytes(shard, sim)?;
            }
        }
        self.pump_migrations(sim)?;
        Ok(completed)
    }

    /// Pump one migration quantum on every shard with a resize in flight,
    /// so backlogs drain even on shards whose queues have gone idle. Each
    /// pump is charged on an isolated metrics window like a flush. A no-op
    /// in stop-the-world mode (nothing is ever left in flight).
    fn pump_migrations(&mut self, sim: &mut SimContext) -> Result<(), ServiceError> {
        let host_par = !self.shard_sims.is_empty();
        for shard in 0..self.shards.len() {
            if !self.shards[shard].table.migration_in_flight() {
                continue;
            }
            let mut report = dycuckoo::BatchReport::default();
            let (outcome, window_metrics) = {
                let ksim: &mut SimContext = if host_par {
                    &mut self.shard_sims[shard]
                } else {
                    &mut *sim
                };
                let saved = ksim.take_metrics();
                let outcome = self.shards[shard].table.migrate_quantum(ksim, &mut report);
                let wm = ksim.take_metrics();
                ksim.metrics = saved;
                (outcome, wm)
            };
            let pump_ns = CostModel::new(sim.device.config()).kernel_time_ns(&window_metrics);
            sim.metrics.merge(&window_metrics);
            outcome?;
            let backlog = self.shards[shard].table.migration_backlog();
            let m = &mut self.metrics.per_shard[shard];
            m.service_ns += pump_ns;
            m.migration_chunks += 1;
            m.migration_moved += report.migrated_kvs;
            m.migration_backlog = backlog;
            m.resize_events += report.resizes.len() as u64;
        }
        // Unsized-tier drains pump on the same cadence. This loop runs
        // second, so a shard with both tiers mid-migration settles the
        // backlog gauge at the combined figure.
        for shard in 0..self.shards.len() {
            let in_flight = self.shards[shard]
                .unsized_table
                .as_ref()
                .is_some_and(|t| t.migration_in_flight());
            if !in_flight {
                continue;
            }
            let (outcome, window_metrics) = {
                let ksim: &mut SimContext = if host_par {
                    &mut self.shard_sims[shard]
                } else {
                    &mut *sim
                };
                let saved = ksim.take_metrics();
                let outcome = self.shards[shard]
                    .unsized_table
                    .as_mut()
                    .expect("checked in flight")
                    .pump_migration(ksim);
                let wm = ksim.take_metrics();
                ksim.metrics = saved;
                (outcome, wm)
            };
            let pump_ns = CostModel::new(sim.device.config()).kernel_time_ns(&window_metrics);
            sim.metrics.merge(&window_metrics);
            let report = outcome?;
            let stats = self.shards[shard]
                .unsized_table
                .as_ref()
                .expect("checked in flight")
                .stats();
            let fixed_backlog = self.shards[shard].table.migration_backlog();
            let m = &mut self.metrics.per_shard[shard];
            m.service_ns += pump_ns;
            m.migration_chunks += 1;
            m.migration_moved += report.migrated_kvs;
            m.migration_backlog = fixed_backlog + stats.migration_backlog;
            m.arena_pages = stats.arena_pages;
            m.arena_live_bytes = stats.arena_live_bytes;
            m.arena_frag_bytes = stats.arena_frag_bytes;
        }
        Ok(())
    }

    /// Flush every shard's remaining queue regardless of size or deadline
    /// (end-of-run drain). Advances the clock one tick.
    pub fn flush_all(&mut self, sim: &mut SimContext) -> Result<usize, ServiceError> {
        self.clock += 1;
        obs::set_clock(self.clock);
        let mut completed = 0;
        if let Backend::HostPar { threads } = self.cfg.backend {
            // Each worker drains its shard's whole queue, window by
            // window; results are applied in visit order so completions
            // come out exactly as the Sim path emits them.
            let due: Vec<usize> = self
                .shard_visit_order()
                .into_iter()
                .filter(|&s| !self.shards[s].queue.is_empty())
                .collect();
            for &shard in &due {
                let windows = self.shards[shard].queue.len().div_ceil(self.cfg.max_batch) as u64;
                let m = &mut self.metrics.per_shard[shard];
                m.batches += windows;
                m.flush_by_deadline += windows;
            }
            completed += self.flush_host_par(&due, threads, sim, true)?;
            for shard in self.shard_visit_order() {
                while !self.shards[shard].byte_queue.is_empty() {
                    let m = &mut self.metrics.per_shard[shard];
                    m.batches += 1;
                    m.byte_batches += 1;
                    m.flush_by_deadline += 1;
                    completed += self.flush_bytes(shard, sim)?;
                }
            }
            return Ok(completed);
        }
        for shard in self.shard_visit_order() {
            while !self.shards[shard].queue.is_empty() {
                self.metrics.per_shard[shard].batches += 1;
                self.metrics.per_shard[shard].flush_by_deadline += 1;
                completed += self.flush(shard, sim)?;
            }
            while !self.shards[shard].byte_queue.is_empty() {
                let m = &mut self.metrics.per_shard[shard];
                m.batches += 1;
                m.byte_batches += 1;
                m.flush_by_deadline += 1;
                completed += self.flush_bytes(shard, sim)?;
            }
        }
        Ok(completed)
    }

    /// The shard visitation order for this tick, per the configured
    /// [`ServiceConfig::flush_order`] (salted with the clock so successive
    /// ticks explore different permutations).
    fn shard_visit_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.shards.len()).collect();
        self.cfg
            .flush_order
            .order_round(self.clock, &mut order, &[]);
        order
    }

    /// Execute one flush window for `shard`. Charges kernel time on an
    /// isolated metrics window (restored even on error paths).
    fn flush(&mut self, shard: usize, sim: &mut SimContext) -> Result<usize, ServiceError> {
        let window_len = self.shards[shard].queue.len().min(self.cfg.max_batch);
        let window: Vec<Pending> = self.shards[shard].queue.drain(..window_len).collect();
        let plan = plan_flush(&window);
        let _attr = obs::attr::scope_with(|| format!("service/flush/shard{shard}"));
        let recording = obs::is_enabled();
        if recording {
            obs::span_begin(obs::Event::BatchFlush {
                shard: shard as u32,
                window: window.len() as u32,
                probes: plan.probes.len() as u32,
                puts: (plan.puts.len() + plan.rmws.len()) as u32,
                deletes: plan.deletes.len() as u32,
                coalesced: (plan.coalesced_local + plan.dedup_saved + plan.writes_coalesced) as u32,
            });
        }

        // Isolated measurement window: the roofline is non-linear, so this
        // flush's ns must be computed on its own counters.
        let saved = sim.take_metrics();
        let run = |table: &mut DyCuckoo, sim: &mut SimContext| -> dycuckoo::Result<FlushKernels> {
            let found = if plan.probes.is_empty() {
                Vec::new()
            } else {
                table.find_batch(sim, &plan.probes)
            };
            let ins = if plan.puts.is_empty() {
                None
            } else {
                Some(table.insert_batch(sim, &plan.puts)?)
            };
            let ups = run_rmw_waves(table, sim, &plan.rmws)?;
            let del = if plan.deletes.is_empty() {
                None
            } else {
                Some(table.delete_batch(sim, &plan.deletes)?)
            };
            Ok((found, ins, ups, del))
        };
        let outcome = run(&mut self.shards[shard].table, sim);
        let window_metrics = sim.take_metrics();
        let flush_ns = CostModel::new(sim.device.config()).kernel_time_ns(&window_metrics);
        sim.metrics = saved;
        sim.metrics.merge(&window_metrics);
        if recording {
            // Close before the `?` so the span balances on kernel errors.
            obs::span_end(obs::Event::BatchEnd {
                completed: if outcome.is_ok() {
                    window.len() as u32
                } else {
                    0
                },
            });
        }
        let (found, ins, ups, del) = outcome?;

        let m = &mut self.metrics.per_shard[shard];
        m.batched_requests += window.len() as u64;
        m.table_probes += plan.probes.len() as u64;
        // RMW keys are table writes too: fold them into the put count so
        // the existing CSV/report schema covers aggregation workloads.
        m.table_puts += (plan.puts.len() + plan.rmws.len()) as u64;
        m.table_deletes += plan.deletes.len() as u64;
        m.coalesced_local += plan.coalesced_local;
        m.dedup_saved += plan.dedup_saved;
        m.writes_coalesced += plan.writes_coalesced;
        m.service_ns += flush_ns;
        for report in [&ins, &del]
            .into_iter()
            .flatten()
            .chain(ups.iter().map(|u| &u.batch))
        {
            m.resize_events += report.resizes.len() as u64;
            m.insert_retries += report.retries as u64;
            if report.resize_stall() {
                m.resize_stall_batches += 1;
            }
            m.migration_moved += report.migrated_kvs;
            if report.migrated_buckets > 0 {
                m.migration_chunks += 1;
            }
        }
        m.migration_backlog = self.shards[shard].table.migration_backlog();

        let filter_on = self.shards[shard].filter.is_some();
        let completed_tick = self.clock;
        for (req, planned) in window.iter().zip(&plan.replies) {
            let (reply, coalesced) = match planned {
                PlannedReply::FromTable(idx) => {
                    // A Get only reaches the find kernel past the shield,
                    // so a table miss here is a filter false positive.
                    if filter_on && found[*idx].is_none() {
                        m.filter_false_pos += 1;
                    }
                    (Reply::Value(found[*idx]), false)
                }
                PlannedReply::FromTableRmw(idx, chain) => {
                    // Probe saw the pre-window value; the pending merges
                    // land after it in kernel order, so apply them here.
                    // (Not a false-positive site: pending writes forced
                    // this key past the shield legitimately.)
                    (
                        Reply::Value(MergeRule::apply_chain(chain, found[*idx])),
                        false,
                    )
                }
                PlannedReply::Local(v) => (Reply::Value(*v), true),
                PlannedReply::Stored => (Reply::Stored, false),
                PlannedReply::Deleted => (Reply::Deleted, false),
                PlannedReply::Merged => (Reply::Merged, false),
            };
            m.completed += 1;
            m.latency.record(completed_tick - req.submitted_tick);
            self.completions.push_back(Completion {
                id: req.id,
                client: req.client,
                key: req.op.key(),
                reply,
                submitted_tick: req.submitted_tick,
                completed_tick,
                coalesced,
            });
        }
        if let Some(filter) = self.shards[shard].filter.as_mut() {
            // The kernels have committed this window. Replay its writes in
            // submission order (last write wins, matching the planner's
            // coalescing) so the shield tracks the table's live-key set.
            for req in &window {
                match req.op {
                    Op::Put(k, _) => filter.insert(k),
                    Op::Delete(k) => filter.remove(k),
                    // An upsert guarantees the key exists afterwards
                    // (absent keys materialize the rule's initial value).
                    Op::Upsert(k, _, _) | Op::Increment(k) => filter.insert(k),
                    Op::Get(_) => {}
                }
            }
            m.filter_keys = filter.keys();
            m.filter_rebuilds = filter.rebuilds();
        }
        Ok(window.len())
    }

    /// Execute the due shards' flush windows on worker threads (the
    /// [`Backend::HostPar`] path). The coordinator compiles every window
    /// up front, one worker per shard runs that shard's windows in order
    /// against the shard's own [`SimContext`] (waves of at most
    /// `threads` workers), and results are applied in visit order — so
    /// replies, completions, per-shard metrics, spans, and the caller's
    /// metric totals are identical to the Sim path by construction. With
    /// `drain_all`, every shard's queue is drained to empty (the
    /// [`KvService::flush_all`] contract); otherwise one window each.
    fn flush_host_par(
        &mut self,
        due: &[usize],
        threads: usize,
        sim: &mut SimContext,
        drain_all: bool,
    ) -> Result<usize, ServiceError> {
        if due.is_empty() {
            return Ok(0);
        }
        let mut prepped: Vec<(usize, Vec<PreparedWindow>)> = Vec::with_capacity(due.len());
        for &shard in due {
            let mut windows = Vec::new();
            loop {
                let window_len = self.shards[shard].queue.len().min(self.cfg.max_batch);
                let window: Vec<Pending> = self.shards[shard].queue.drain(..window_len).collect();
                let plan = plan_flush(&window);
                windows.push(PreparedWindow { window, plan });
                if !drain_all || self.shards[shard].queue.is_empty() {
                    break;
                }
            }
            prepped.push((shard, windows));
        }
        let profile = obs::attr::is_enabled();
        // Hand each worker exclusive &mut access to its shard's table and
        // context; `take` makes aliasing impossible by construction.
        let mut cells: Vec<Option<(&mut Shard, &mut SimContext)>> = self
            .shards
            .iter_mut()
            .zip(self.shard_sims.iter_mut())
            .map(Some)
            .collect();
        let mut results: Vec<Vec<FlushKernelResult>> = Vec::with_capacity(prepped.len());
        for wave in prepped.chunks(threads.max(1)) {
            let wave_results: Vec<Vec<FlushKernelResult>> = std::thread::scope(|scope| {
                let handles: Vec<_> = wave
                    .iter()
                    .map(|(shard, windows)| {
                        let (shard_state, ksim) =
                            cells[*shard].take().expect("duplicate shard in flush wave");
                        scope.spawn(move || {
                            windows
                                .iter()
                                .map(|w| {
                                    run_flush_kernels(
                                        &mut shard_state.table,
                                        ksim,
                                        &w.plan,
                                        profile,
                                    )
                                })
                                .collect()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("host-par flush worker panicked"))
                    .collect()
            });
            results.extend(wave_results);
        }
        drop(cells);
        let mut completed = 0;
        for ((shard, windows), shard_results) in prepped.into_iter().zip(results) {
            for (w, r) in windows.into_iter().zip(shard_results) {
                completed += self.apply_flush(shard, w.window, w.plan, r, sim)?;
            }
        }
        Ok(completed)
    }

    /// Coordinator-side application of one worker-run flush window:
    /// metric merges, spans, attribution absorption, completions, filter
    /// replay — the exact post-kernel tail of [`KvService::flush`],
    /// executed in visit order at the quiesce point.
    fn apply_flush(
        &mut self,
        shard: usize,
        window: Vec<Pending>,
        plan: FlushPlan,
        r: FlushKernelResult,
        sim: &mut SimContext,
    ) -> Result<usize, ServiceError> {
        // The caller's running totals receive the same isolated window
        // the Sim path merges.
        sim.metrics.merge(&r.window_metrics);
        let _attr = obs::attr::scope_with(|| format!("service/flush/shard{shard}"));
        // Worker-side kernel charges re-root under this flush's scope, so
        // attribution paths match the Sim backend's exactly.
        obs::attr::absorb(&r.attr);
        let recording = obs::is_enabled();
        if recording {
            // Spans are emitted at the apply point (recorder state is
            // thread-local, so workers cannot emit them); begin and end
            // are adjacent because the kernel time already passed.
            obs::span_begin(obs::Event::BatchFlush {
                shard: shard as u32,
                window: window.len() as u32,
                probes: plan.probes.len() as u32,
                puts: (plan.puts.len() + plan.rmws.len()) as u32,
                deletes: plan.deletes.len() as u32,
                coalesced: (plan.coalesced_local + plan.dedup_saved + plan.writes_coalesced) as u32,
            });
            obs::span_end(obs::Event::BatchEnd {
                completed: if r.outcome.is_ok() {
                    window.len() as u32
                } else {
                    0
                },
            });
        }
        let (found, ins, ups, del) = r.outcome?;

        let m = &mut self.metrics.per_shard[shard];
        m.batched_requests += window.len() as u64;
        m.table_probes += plan.probes.len() as u64;
        m.table_puts += (plan.puts.len() + plan.rmws.len()) as u64;
        m.table_deletes += plan.deletes.len() as u64;
        m.coalesced_local += plan.coalesced_local;
        m.dedup_saved += plan.dedup_saved;
        m.writes_coalesced += plan.writes_coalesced;
        m.service_ns += r.flush_ns;
        for report in [&ins, &del]
            .into_iter()
            .flatten()
            .chain(ups.iter().map(|u| &u.batch))
        {
            m.resize_events += report.resizes.len() as u64;
            m.insert_retries += report.retries as u64;
            if report.resize_stall() {
                m.resize_stall_batches += 1;
            }
            m.migration_moved += report.migrated_kvs;
            if report.migrated_buckets > 0 {
                m.migration_chunks += 1;
            }
        }
        m.migration_backlog = self.shards[shard].table.migration_backlog();

        let filter_on = self.shards[shard].filter.is_some();
        let completed_tick = self.clock;
        for (req, planned) in window.iter().zip(&plan.replies) {
            let (reply, coalesced) = match planned {
                PlannedReply::FromTable(idx) => {
                    if filter_on && found[*idx].is_none() {
                        m.filter_false_pos += 1;
                    }
                    (Reply::Value(found[*idx]), false)
                }
                PlannedReply::FromTableRmw(idx, chain) => (
                    Reply::Value(MergeRule::apply_chain(chain, found[*idx])),
                    false,
                ),
                PlannedReply::Local(v) => (Reply::Value(*v), true),
                PlannedReply::Stored => (Reply::Stored, false),
                PlannedReply::Deleted => (Reply::Deleted, false),
                PlannedReply::Merged => (Reply::Merged, false),
            };
            m.completed += 1;
            m.latency.record(completed_tick - req.submitted_tick);
            self.completions.push_back(Completion {
                id: req.id,
                client: req.client,
                key: req.op.key(),
                reply,
                submitted_tick: req.submitted_tick,
                completed_tick,
                coalesced,
            });
        }
        if let Some(filter) = self.shards[shard].filter.as_mut() {
            for req in &window {
                match req.op {
                    Op::Put(k, _) => filter.insert(k),
                    Op::Delete(k) => filter.remove(k),
                    Op::Upsert(k, _, _) | Op::Increment(k) => filter.insert(k),
                    Op::Get(_) => {}
                }
            }
            m.filter_keys = filter.keys();
            m.filter_rebuilds = filter.rebuilds();
        }
        Ok(window.len())
    }

    /// Execute one byte-tier flush window for `shard`. The window is cut
    /// into maximal runs of one op kind, each run becomes one kernel
    /// batch (runs execute in submission order, so a read after a write
    /// of the same key observes it), and duplicate keys inside a put run
    /// coalesce to the last write. Kernel time is charged on an isolated
    /// metrics window exactly like the fixed-tier flush.
    fn flush_bytes(&mut self, shard: usize, sim: &mut SimContext) -> Result<usize, ServiceError> {
        let window_len = self.shards[shard].byte_queue.len().min(self.cfg.max_batch);
        let window: Vec<BytePending> = self.shards[shard].byte_queue.drain(..window_len).collect();
        let _attr = obs::attr::scope_with(|| format!("service/flush/shard{shard}"));
        let recording = obs::is_enabled();
        if recording {
            // Plan counts for the span: raw reads/deletes, deduped puts.
            let (mut probes, mut puts, mut coalesced, mut deletes) = (0u32, 0u32, 0u32, 0u32);
            let mut seen: HashSet<&[u8]> = HashSet::new();
            let mut in_put_run = false;
            for p in &window {
                match &p.op {
                    ByteOp::Put(k, _) => {
                        if !in_put_run {
                            seen.clear();
                            in_put_run = true;
                        }
                        if seen.insert(k.as_slice()) {
                            puts += 1;
                        } else {
                            coalesced += 1;
                        }
                    }
                    ByteOp::Get(_) => {
                        probes += 1;
                        in_put_run = false;
                    }
                    ByteOp::Delete(_) => {
                        deletes += 1;
                        in_put_run = false;
                    }
                }
            }
            obs::span_begin(obs::Event::BatchFlush {
                shard: shard as u32,
                window: window.len() as u32,
                probes,
                puts,
                deletes,
                coalesced,
            });
        }

        // Host-par services run byte-tier kernels on the shard's own
        // context (coordinator thread, sequentially); Sim uses the
        // caller's. Either way the isolated window merges into the
        // caller's running totals.
        let host_par = !self.shard_sims.is_empty();
        let (outcome, window_metrics) = {
            let ksim: &mut SimContext = if host_par {
                &mut self.shard_sims[shard]
            } else {
                &mut *sim
            };
            let saved = ksim.take_metrics();
            let outcome = run_byte_window(
                self.shards[shard]
                    .unsized_table
                    .as_mut()
                    .expect("byte flush requires the unsized tier"),
                ksim,
                &window,
            );
            let wm = ksim.take_metrics();
            ksim.metrics = saved;
            (outcome, wm)
        };
        let flush_ns = CostModel::new(sim.device.config()).kernel_time_ns(&window_metrics);
        sim.metrics.merge(&window_metrics);
        if recording {
            obs::span_end(obs::Event::BatchEnd {
                completed: if outcome.is_ok() {
                    window.len() as u32
                } else {
                    0
                },
            });
        }
        let out = outcome?;

        let stats = self.shards[shard]
            .unsized_table
            .as_ref()
            .expect("present")
            .stats();
        let fixed_backlog = self.shards[shard].table.migration_backlog();
        let m = &mut self.metrics.per_shard[shard];
        m.batched_requests += window.len() as u64;
        m.table_probes += out.probes;
        m.table_puts += out.puts;
        m.table_deletes += out.deletes;
        m.writes_coalesced += out.writes_coalesced;
        m.service_ns += flush_ns;
        m.resize_events += out.report.resizes;
        m.insert_retries += out.report.retries;
        m.migration_moved += out.report.migrated_kvs;
        if out.report.migrated_buckets > 0 {
            m.migration_chunks += 1;
        }
        m.migration_backlog = fixed_backlog + stats.migration_backlog;
        m.arena_pages = stats.arena_pages;
        m.arena_live_bytes = stats.arena_live_bytes;
        m.arena_frag_bytes = stats.arena_frag_bytes;

        let completed_tick = self.clock;
        for (req, reply) in window.into_iter().zip(out.replies) {
            m.completed += 1;
            m.latency.record(completed_tick - req.submitted_tick);
            let key = match req.op {
                ByteOp::Put(k, _) | ByteOp::Get(k) | ByteOp::Delete(k) => k,
            };
            self.byte_completions.push_back(ByteCompletion {
                id: req.id,
                client: req.client,
                key,
                reply,
                submitted_tick: req.submitted_tick,
                completed_tick,
            });
        }
        Ok(window_len)
    }

    /// Take every completion produced so far, in completion order
    /// (per shard: submission order).
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        self.completions.drain(..).collect()
    }

    /// Take every byte-tier completion produced so far, in completion
    /// order (per shard: submission order).
    pub fn drain_byte_completions(&mut self) -> Vec<ByteCompletion> {
        self.byte_completions.drain(..).collect()
    }

    /// Total live keys across all shards (both tiers).
    pub fn total_keys(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.table.len() + s.unsized_table.as_ref().map_or(0, |t| t.len()))
            .sum()
    }

    /// The accumulated service metrics.
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// Snapshot current state (counters + table stats + queue depths) for
    /// text/CSV rendering.
    pub fn snapshot(&self) -> Snapshot {
        let rows: Vec<SnapshotRow> = self
            .shards
            .iter()
            .zip(&self.metrics.per_shard)
            .enumerate()
            .map(|(i, (s, m))| {
                let stats = s.table.stats();
                let byte_keys = s.unsized_table.as_ref().map_or(0, |t| t.len());
                SnapshotRow {
                    label: format!("shard {i}"),
                    keys: stats.occupied + byte_keys,
                    fill: stats.fill,
                    queue_depth: s.queue.len() + s.byte_queue.len(),
                    m: m.clone(),
                }
            })
            .collect();
        let total_keys = rows.iter().map(|r| r.keys).sum();
        let mean_fill = if rows.is_empty() {
            0.0
        } else {
            rows.iter().map(|r| r.fill).sum::<f64>() / rows.len() as f64
        };
        let total = SnapshotRow {
            label: "total".to_string(),
            keys: total_keys,
            fill: mean_fill,
            queue_depth: rows.iter().map(|r| r.queue_depth).sum(),
            m: self.metrics.total(),
        };
        Snapshot {
            shards: rows,
            total,
            clock: self.clock,
        }
    }

    /// Tear down, returning every shard's device memory to the simulator.
    pub fn release(self, sim: &mut SimContext) -> Result<(), ServiceError> {
        // Host-par shards allocated on their own contexts, so their bytes
        // return there; Sim shards return to the caller's.
        let mut shard_sims = self.shard_sims;
        let host_par = !shard_sims.is_empty();
        for (i, shard) in self.shards.into_iter().enumerate() {
            let ksim: &mut SimContext = if host_par {
                &mut shard_sims[i]
            } else {
                &mut *sim
            };
            shard.table.release(ksim)?;
            if let Some(t) = shard.unsized_table {
                t.release(ksim)?;
            }
        }
        Ok(())
    }
}

/// One flush window, compiled by the coordinator and ready for kernels.
struct PreparedWindow {
    window: Vec<Pending>,
    plan: FlushPlan,
}

/// The kernels of one fixed-tier flush window: find results, then the
/// insert report, the upsert-wave reports, and the delete report.
type FlushKernels = (
    Vec<Option<u32>>,
    Option<dycuckoo::BatchReport>,
    Vec<UpsertReport>,
    Option<dycuckoo::BatchReport>,
);

/// Flush a plan's RMW chains. Wave `i` holds position `i` of every key's
/// chain, grouped by rule (stable [`MergeRule::ALL`] order) into one upsert
/// kernel per group. Waves run in order, so a key with a mixed-rule chain
/// sees its merges applied in submission order; keys never collide inside
/// a wave because each contributes at most one entry per position.
fn run_rmw_waves(
    table: &mut DyCuckoo,
    sim: &mut SimContext,
    rmws: &[(u32, Vec<(MergeRule, u32)>)],
) -> dycuckoo::Result<Vec<UpsertReport>> {
    let depth = rmws.iter().map(|(_, chain)| chain.len()).max().unwrap_or(0);
    let mut reports = Vec::new();
    for wave in 0..depth {
        for rule in MergeRule::ALL {
            let batch: Vec<(u32, u32)> = rmws
                .iter()
                .filter_map(|(k, chain)| {
                    chain
                        .get(wave)
                        .filter(|&&(r, _)| r == rule)
                        .map(|&(_, arg)| (*k, arg))
                })
                .collect();
            if !batch.is_empty() {
                reports.push(table.upsert_batch(sim, &batch, rule)?);
            }
        }
    }
    Ok(reports)
}

/// What one window's kernels produced on a host-par worker thread.
struct FlushKernelResult {
    outcome: dycuckoo::Result<FlushKernels>,
    /// The isolated metrics window the kernels charged.
    window_metrics: gpu_sim::Metrics,
    /// Roofline kernel time of that window.
    flush_ns: f64,
    /// The worker's thread-local attribution window (empty when
    /// profiling is off).
    attr: obs::attr::Attribution,
}

/// Run one compiled window's kernels against `table` on `ksim`, charging
/// an isolated metrics window (restored afterwards, so `ksim.metrics`
/// is untouched). Thread-safe given exclusive access to both — this is
/// the function host-par workers execute.
fn run_flush_kernels(
    table: &mut DyCuckoo,
    ksim: &mut SimContext,
    plan: &FlushPlan,
    profile: bool,
) -> FlushKernelResult {
    if profile {
        obs::attr::start();
    }
    let saved = ksim.take_metrics();
    let run = |table: &mut DyCuckoo, sim: &mut SimContext| -> dycuckoo::Result<FlushKernels> {
        let found = if plan.probes.is_empty() {
            Vec::new()
        } else {
            table.find_batch(sim, &plan.probes)
        };
        let ins = if plan.puts.is_empty() {
            None
        } else {
            Some(table.insert_batch(sim, &plan.puts)?)
        };
        let ups = run_rmw_waves(table, sim, &plan.rmws)?;
        let del = if plan.deletes.is_empty() {
            None
        } else {
            Some(table.delete_batch(sim, &plan.deletes)?)
        };
        Ok((found, ins, ups, del))
    };
    let outcome = run(table, ksim);
    let window_metrics = ksim.take_metrics();
    ksim.metrics = saved;
    let flush_ns = CostModel::new(ksim.device.config()).kernel_time_ns(&window_metrics);
    let attr = if profile {
        obs::attr::stop()
    } else {
        obs::attr::Attribution::default()
    };
    FlushKernelResult {
        outcome,
        window_metrics,
        flush_ns,
        attr,
    }
}

/// What one byte-tier flush window produced.
struct ByteFlushOutcome {
    /// One reply per window request, in submission order.
    replies: Vec<ByteReply>,
    /// Merged kernel reports (resizes, retries, migration work).
    report: UnsizedReport,
    /// Keys handed to find kernels.
    probes: u64,
    /// Pairs handed to insert kernels (after put-run coalescing).
    puts: u64,
    /// Keys handed to delete kernels.
    deletes: u64,
    /// Puts superseded inside their run (never reached a kernel).
    writes_coalesced: u64,
}

/// Run a byte-tier window against `table`: maximal same-kind runs become
/// one kernel batch each, executed in submission order. Duplicate keys
/// inside a put run collapse to the last write (every such put still
/// answers `Stored` — upsert semantics make the outcomes identical);
/// duplicate gets and deletes need no dedup, the kernels serialize them.
fn run_byte_window(
    table: &mut UnsizedTable,
    sim: &mut SimContext,
    window: &[BytePending],
) -> dycuckoo::Result<ByteFlushOutcome> {
    fn kind(op: &ByteOp) -> u8 {
        match op {
            ByteOp::Put(..) => 0,
            ByteOp::Get(_) => 1,
            ByteOp::Delete(_) => 2,
        }
    }
    let mut out = ByteFlushOutcome {
        replies: Vec::new(),
        report: UnsizedReport::default(),
        probes: 0,
        puts: 0,
        deletes: 0,
        writes_coalesced: 0,
    };
    let mut replies: Vec<Option<ByteReply>> = vec![None; window.len()];
    let mut start = 0;
    while start < window.len() {
        let k = kind(&window[start].op);
        let mut end = start;
        while end < window.len() && kind(&window[end].op) == k {
            end += 1;
        }
        match k {
            0 => {
                let mut pairs: Vec<(&[u8], &[u8])> = Vec::new();
                let mut slot_of: HashMap<&[u8], usize> = HashMap::new();
                for p in &window[start..end] {
                    let ByteOp::Put(key, val) = &p.op else {
                        unreachable!("run holds only puts")
                    };
                    match slot_of.get(key.as_slice()) {
                        Some(&s) => {
                            pairs[s].1 = val;
                            out.writes_coalesced += 1;
                        }
                        None => {
                            slot_of.insert(key, pairs.len());
                            pairs.push((key, val));
                        }
                    }
                }
                out.puts += pairs.len() as u64;
                out.report.merge(&table.insert_batch(sim, &pairs)?);
                for r in &mut replies[start..end] {
                    *r = Some(ByteReply::Stored);
                }
            }
            1 => {
                let keys: Vec<&[u8]> = window[start..end].iter().map(|p| p.op.key()).collect();
                out.probes += keys.len() as u64;
                let found = table.find_batch(sim, &keys)?;
                for (i, v) in (start..end).zip(found) {
                    replies[i] = Some(ByteReply::Value(v));
                }
            }
            _ => {
                let keys: Vec<&[u8]> = window[start..end].iter().map(|p| p.op.key()).collect();
                out.deletes += keys.len() as u64;
                let (removed, report) = table.delete_batch(sim, &keys)?;
                out.report.merge(&report);
                for (i, r) in (start..end).zip(removed) {
                    replies[i] = Some(ByteReply::Deleted(r));
                }
            }
        }
        start = end;
    }
    out.replies = replies
        .into_iter()
        .map(|r| r.expect("every request answered"))
        .collect();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(shards: usize) -> ServiceConfig {
        ServiceConfig {
            shards,
            table: Config {
                initial_buckets: 8,
                ..Config::default()
            },
            max_batch: 8,
            max_delay_ticks: 2,
            queue_capacity: 64,
            shed_watermark: 48,
            seed: 11,
            migration_quantum: usize::MAX,
            flush_order: SchedulePolicy::FixedOrder,
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn put_then_get_round_trips_across_shards() {
        let mut sim = SimContext::new();
        let mut svc = KvService::new(small_cfg(4), &mut sim).unwrap();
        for k in 1..=200u32 {
            svc.submit(0, Op::Put(k, k * 3)).unwrap();
        }
        while svc.queue_depths().iter().any(|&d| d > 0) {
            svc.tick(&mut sim).unwrap();
        }
        svc.drain_completions();
        for k in 1..=200u32 {
            svc.submit(0, Op::Get(k)).unwrap();
            if k % 16 == 0 {
                svc.tick(&mut sim).unwrap();
            }
        }
        svc.flush_all(&mut sim).unwrap();
        let got = svc.drain_completions();
        assert_eq!(got.len(), 200);
        for c in got {
            assert_eq!(c.reply, Reply::Value(Some(c.key * 3)), "key {}", c.key);
        }
    }

    #[test]
    fn deadline_flushes_partial_batches() {
        let mut sim = SimContext::new();
        let mut svc = KvService::new(small_cfg(1), &mut sim).unwrap();
        svc.submit(0, Op::Put(1, 1)).unwrap();
        assert_eq!(
            svc.tick(&mut sim).unwrap(),
            0,
            "one tick: still inside delay"
        );
        assert_eq!(svc.tick(&mut sim).unwrap(), 1, "deadline reached");
        let m = svc.metrics().total();
        assert_eq!(m.flush_by_deadline, 1);
        assert_eq!(m.flush_by_size, 0);
    }

    #[test]
    fn size_flush_fires_without_waiting() {
        let mut sim = SimContext::new();
        let mut svc = KvService::new(small_cfg(1), &mut sim).unwrap();
        for k in 1..=8u32 {
            svc.submit(0, Op::Put(k, k)).unwrap();
        }
        assert_eq!(svc.tick(&mut sim).unwrap(), 8);
        assert_eq!(svc.metrics().total().flush_by_size, 1);
    }

    #[test]
    fn overload_returns_typed_errors_and_bounds_queue() {
        let mut sim = SimContext::new();
        let mut svc = KvService::new(small_cfg(1), &mut sim).unwrap();
        let mut overloaded = 0;
        let mut shed = 0;
        for k in 1..=200u32 {
            match svc.submit(0, Op::Put(k, 1)) {
                Ok(_) => {}
                Err(AdmitError::Overloaded { .. }) => overloaded += 1,
                Err(e) => panic!("unexpected {e:?}"),
            }
            match svc.submit(0, Op::Get(k)) {
                Ok(_) => {}
                Err(AdmitError::Shed { .. }) => shed += 1,
                Err(AdmitError::Overloaded { .. }) => overloaded += 1,
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert!(overloaded > 0, "hard cap never hit");
        assert!(shed > 0, "watermark never shed a read");
        assert!(svc.queue_depths()[0] <= 64, "queue exceeded its bound");
        let m = svc.metrics().total();
        assert_eq!(m.shed_overloaded + m.shed_reads, overloaded + shed);
    }

    #[test]
    fn kernel_time_accrues_per_flush() {
        let mut sim = SimContext::new();
        let mut svc = KvService::new(small_cfg(2), &mut sim).unwrap();
        for k in 1..=64u32 {
            svc.submit(0, Op::Put(k, k)).unwrap();
        }
        svc.flush_all(&mut sim).unwrap();
        let m = svc.metrics().total();
        assert!(m.service_ns > 0.0);
        assert!(m.batches >= 2, "two shards must each have flushed");
        // The caller's running metrics still saw the kernels.
        assert!(sim.metrics.ops >= 64);
    }

    #[test]
    fn service_is_deterministic() {
        let run = || {
            let mut sim = SimContext::new();
            let mut svc = KvService::new(small_cfg(4), &mut sim).unwrap();
            for k in 1..=300u32 {
                let _ = svc.submit(k % 7, Op::Put(k, k ^ 0xABCD));
                if k % 3 == 0 {
                    let _ = svc.submit(k % 7, Op::Get(k / 3));
                }
                if k % 10 == 0 {
                    svc.tick(&mut sim).unwrap();
                }
            }
            svc.flush_all(&mut sim).unwrap();
            (svc.snapshot().to_csv(), svc.drain_completions())
        };
        let (csv_a, comp_a) = run();
        let (csv_b, comp_b) = run();
        assert_eq!(csv_a, csv_b);
        assert_eq!(comp_a, comp_b);
    }

    #[test]
    fn zero_key_is_rejected_without_counting_as_shed() {
        let mut sim = SimContext::new();
        let mut svc = KvService::new(small_cfg(1), &mut sim).unwrap();
        assert_eq!(svc.submit(0, Op::Get(0)), Err(AdmitError::ZeroKey));
        let m = svc.metrics().total();
        assert_eq!(m.shed_total(), 0);
        assert_eq!(m.admitted, 0);
    }

    #[test]
    fn validate_rejects_incoherent_configs() {
        let sim = &mut SimContext::new();
        let bad_batch = ServiceConfig {
            max_batch: 0,
            ..ServiceConfig::default()
        };
        assert!(KvService::new(bad_batch, sim).is_err());
        let batch_over_cap = ServiceConfig {
            max_batch: 2048,
            queue_capacity: 1024,
            ..ServiceConfig::default()
        };
        assert!(KvService::new(batch_over_cap, sim).is_err());
        let bad_shards = ServiceConfig {
            shards: 3,
            ..ServiceConfig::default()
        };
        assert!(KvService::new(bad_shards, sim).is_err());
    }

    #[test]
    fn resizes_stay_local_to_their_shard() {
        let mut sim = SimContext::new();
        let mut svc = KvService::new(small_cfg(4), &mut sim).unwrap();
        // Load enough keys that at least one shard resizes (8 buckets ×
        // 32 slots × 4 tables × β ≈ 870 slots per shard).
        for k in 1..=4000u32 {
            let _ = svc.submit(0, Op::Put(k, 1));
            svc.tick(&mut sim).unwrap();
        }
        svc.flush_all(&mut sim).unwrap();
        let resized: Vec<usize> = svc
            .metrics()
            .per_shard
            .iter()
            .enumerate()
            .filter(|(_, m)| m.resize_events > 0)
            .map(|(i, _)| i)
            .collect();
        assert!(!resized.is_empty(), "no shard ever resized");
        // The structural invariant: each shard's table grew independently —
        // shard tables are distinct instances, so a resize in one cannot
        // have touched another. Spot-check via per-shard stats.
        let snapshot = svc.snapshot();
        for row in &snapshot.shards {
            assert!(row.m.resize_events == 0 || row.keys > 0);
        }
    }

    #[test]
    fn non_default_layout_serves_identically() {
        // The bucket layout threads through ServiceConfig via the embedded
        // table Config. An interleaved layout must change only what the
        // memory system sees — every reply stays identical.
        let run = |layout: gpu_sim::LayoutConfig| {
            let mut cfg = small_cfg(4);
            cfg.table.layout = layout;
            let mut sim = SimContext::new();
            let mut svc = KvService::new(cfg, &mut sim).unwrap();
            for k in 1..=300u32 {
                let _ = svc.submit(0, Op::Put(k, k ^ 0xABCD));
                if k % 7 == 0 {
                    let _ = svc.submit(0, Op::Get(k / 2));
                }
                if k % 13 == 0 {
                    let _ = svc.submit(0, Op::Delete(k / 3));
                }
                svc.tick(&mut sim).unwrap();
            }
            svc.flush_all(&mut sim).unwrap();
            let replies: Vec<(u32, Reply)> = svc
                .drain_completions()
                .into_iter()
                .map(|c| (c.key, c.reply))
                .collect();
            (replies, sim.metrics.read_transactions)
        };
        let (soa_replies, soa_reads) = run(gpu_sim::LayoutConfig::default());
        let (aos_replies, aos_reads) = run(gpu_sim::LayoutConfig::aos(16, 4, 4));
        assert_eq!(soa_replies, aos_replies);
        // The layout did take effect: interleaved 16-slot buckets cost a
        // different number of coalesced reads for the same execution.
        assert_ne!(soa_reads, aos_reads);
    }

    /// With a finite quantum, a migration started by a flush keeps
    /// draining on idle ticks (no queued requests) until the backlog hits
    /// zero, and the pumps are accounted to the owning shard.
    #[test]
    fn tick_pumps_migrations_to_completion_on_idle_shards() {
        let mut sim = SimContext::new();
        let mut cfg = small_cfg(1);
        cfg.migration_quantum = 2;
        cfg.queue_capacity = 4096;
        cfg.shed_watermark = 4096;
        let mut svc = KvService::new(cfg, &mut sim).unwrap();
        let mut k = 1u32;
        while !svc.shards[0].table.migration_in_flight() {
            for _ in 0..8 {
                svc.submit(0, Op::Put(k, k ^ 5)).unwrap();
                k += 1;
            }
            svc.tick(&mut sim).unwrap();
            assert!(k < 1 << 20, "no migration ever started");
        }
        // Stop submitting: idle ticks alone must finish the drain.
        let mut idle_ticks = 0u32;
        while svc.shards[0].table.migration_in_flight() {
            svc.tick(&mut sim).unwrap();
            idle_ticks += 1;
            assert!(idle_ticks < 10_000, "migration never finished");
        }
        assert!(idle_ticks >= 1, "drain finished without an idle pump");
        let m = &svc.metrics().per_shard[0];
        assert!(m.migration_chunks > 0, "pumps were not accounted");
        assert!(m.migration_moved > 0);
        assert_eq!(m.migration_backlog, 0, "gauge must settle at zero");
        assert!(m.resize_events >= 1, "the finalize never retired an event");
        // The table stayed coherent through the incremental drain.
        svc.drain_completions();
        for key in 1..k {
            svc.submit(0, Op::Get(key)).unwrap();
        }
        svc.flush_all(&mut sim).unwrap();
        for c in svc.drain_completions() {
            assert_eq!(c.reply, Reply::Value(Some(c.key ^ 5)), "key {}", c.key);
        }
    }

    /// Two shards whose flushes both resize **in the same flush window**
    /// each account their own `resize_stall_batches` — stalls are charged
    /// to the shard that paid them, and the totals are the sum.
    #[test]
    fn resize_stalls_account_per_shard_within_one_window() {
        let mut sim = SimContext::new();
        let mut cfg = small_cfg(2);
        cfg.max_batch = 64;
        cfg.queue_capacity = 4096;
        cfg.shed_watermark = 4096;
        let router = ShardRouter::new(cfg.shards, cfg.seed).unwrap();
        let mut svc = KvService::new(cfg, &mut sim).unwrap();
        // Partition keys by shard so each shard's load is explicit.
        let mut per_shard: [Vec<u32>; 2] = [Vec::new(), Vec::new()];
        let mut k = 1u32;
        while per_shard.iter().any(|v| v.len() < 70) {
            let s = router.shard_of(k);
            if per_shard[s].len() < 70 {
                per_shard[s].push(k);
            }
            k += 1;
        }
        for keys in &per_shard {
            for &key in keys {
                svc.submit(0, Op::Put(key, 9)).unwrap();
            }
        }
        while svc.queue_depths().iter().any(|&d| d > 0) {
            svc.tick(&mut sim).unwrap();
        }
        let before: Vec<u64> = svc
            .metrics()
            .per_shard
            .iter()
            .map(|m| m.resize_stall_batches)
            .collect();
        // One full delete batch per shard, erasing nearly all of its keys:
        // both flushes leave their tables far under the downsize bound, so
        // both resize inside the same tick's flush window.
        for keys in &per_shard {
            for &key in keys.iter().take(64) {
                svc.submit(0, Op::Delete(key)).unwrap();
            }
        }
        svc.tick(&mut sim).unwrap();
        let m = svc.metrics();
        for (shard, &prior) in before.iter().enumerate() {
            assert_eq!(
                m.per_shard[shard].resize_stall_batches,
                prior + 1,
                "shard {shard} must charge exactly its own stalled flush"
            );
        }
        assert_eq!(
            m.total().resize_stall_batches,
            m.per_shard
                .iter()
                .map(|s| s.resize_stall_batches)
                .sum::<u64>(),
            "totals must be the per-shard sum"
        );
    }

    fn unsized_cfg(shards: usize) -> ServiceConfig {
        ServiceConfig {
            tier: Tier::Unsized,
            unsized_table: UnsizedConfig {
                n_buckets: 8,
                ..UnsizedConfig::default()
            },
            queue_capacity: 4096,
            shed_watermark: 4096,
            ..small_cfg(shards)
        }
    }

    /// Deterministic test key: inline (≤ 12 bytes) for even `i`, spilled
    /// for odd — the byte path exercises both representations.
    fn bkey(i: u32) -> Vec<u8> {
        if i.is_multiple_of(2) {
            format!("k-{i:06}").into_bytes()
        } else {
            format!("key-{i:08}-padded-well-past-inline").into_bytes()
        }
    }

    #[test]
    fn byte_put_get_delete_round_trips_across_shards() {
        let mut sim = SimContext::new();
        let mut svc = KvService::new(unsized_cfg(4), &mut sim).unwrap();
        for i in 1..=150u32 {
            let val = format!("value-{i}-{}", "x".repeat((i % 17) as usize));
            svc.submit_bytes(0, ByteOp::Put(bkey(i), val.into_bytes()))
                .unwrap();
        }
        while svc.byte_queue_depths().iter().any(|&d| d > 0) {
            svc.tick(&mut sim).unwrap();
        }
        svc.drain_byte_completions();
        for i in 1..=150u32 {
            svc.submit_bytes(0, ByteOp::Get(bkey(i))).unwrap();
        }
        svc.flush_all(&mut sim).unwrap();
        let got = svc.drain_byte_completions();
        assert_eq!(got.len(), 150);
        for c in &got {
            let i: u32 = std::str::from_utf8(&c.key)
                .unwrap()
                .trim_start_matches(|ch: char| !ch.is_ascii_digit())
                .split('-')
                .next()
                .unwrap()
                .parse()
                .unwrap();
            let want = format!("value-{i}-{}", "x".repeat((i % 17) as usize));
            assert_eq!(
                c.reply,
                ByteReply::Value(Some(want.into_bytes())),
                "key {:?}",
                String::from_utf8_lossy(&c.key)
            );
        }
        // Deletes report presence; a second delete of the same key misses.
        svc.submit_bytes(0, ByteOp::Delete(bkey(2))).unwrap();
        svc.flush_all(&mut sim).unwrap();
        svc.submit_bytes(0, ByteOp::Delete(bkey(2))).unwrap();
        svc.flush_all(&mut sim).unwrap();
        let dels = svc.drain_byte_completions();
        assert_eq!(dels.len(), 2);
        assert_eq!(dels[0].reply, ByteReply::Deleted(true));
        assert_eq!(dels[1].reply, ByteReply::Deleted(false));
        svc.release(&mut sim).unwrap();
    }

    #[test]
    fn byte_window_preserves_write_then_read_order() {
        let mut sim = SimContext::new();
        let mut svc = KvService::new(unsized_cfg(1), &mut sim).unwrap();
        // Same window: put, read-your-write, overwrite, read again. The
        // run-splitting flush must serve both gets from the preceding put.
        svc.submit_bytes(7, ByteOp::Put(b"alpha".to_vec(), b"one".to_vec()))
            .unwrap();
        svc.submit_bytes(7, ByteOp::Get(b"alpha".to_vec())).unwrap();
        svc.submit_bytes(7, ByteOp::Put(b"alpha".to_vec(), b"two".to_vec()))
            .unwrap();
        svc.submit_bytes(7, ByteOp::Get(b"alpha".to_vec())).unwrap();
        svc.flush_all(&mut sim).unwrap();
        let replies: Vec<ByteReply> = svc
            .drain_byte_completions()
            .into_iter()
            .map(|c| c.reply)
            .collect();
        assert_eq!(
            replies,
            vec![
                ByteReply::Stored,
                ByteReply::Value(Some(b"one".to_vec())),
                ByteReply::Stored,
                ByteReply::Value(Some(b"two".to_vec())),
            ]
        );
    }

    #[test]
    fn byte_puts_coalesce_within_a_run() {
        let mut sim = SimContext::new();
        let mut svc = KvService::new(unsized_cfg(1), &mut sim).unwrap();
        for v in [b"a".to_vec(), b"b".to_vec(), b"c".to_vec()] {
            svc.submit_bytes(0, ByteOp::Put(b"dup".to_vec(), v))
                .unwrap();
        }
        svc.flush_all(&mut sim).unwrap();
        let m = svc.metrics().total();
        assert_eq!(m.table_puts, 1, "three puts of one key → one kernel pair");
        assert_eq!(m.writes_coalesced, 2);
        assert_eq!(m.byte_batches, 1);
        svc.submit_bytes(0, ByteOp::Get(b"dup".to_vec())).unwrap();
        svc.flush_all(&mut sim).unwrap();
        let last = svc.drain_byte_completions().pop().unwrap();
        assert_eq!(last.reply, ByteReply::Value(Some(b"c".to_vec())));
    }

    #[test]
    fn byte_ops_rejected_on_fixed_tier_and_oversized_blobs() {
        let mut sim = SimContext::new();
        let mut svc = KvService::new(small_cfg(1), &mut sim).unwrap();
        assert!(matches!(
            svc.submit_bytes(0, ByteOp::Get(b"k".to_vec())),
            Err(ServiceError::TierDisabled)
        ));
        let mut svc = KvService::new(unsized_cfg(1), &mut sim).unwrap();
        let huge = vec![0u8; MAX_BLOB_LEN + 1];
        assert!(matches!(
            svc.submit_bytes(0, ByteOp::Put(b"k".to_vec(), huge)),
            Err(ServiceError::OversizedBlob { .. })
        ));
        // Nothing was queued or admitted by the refusals.
        assert_eq!(svc.metrics().total().admitted, 0);
        assert_eq!(svc.byte_queue_depths(), vec![0]);
        // Empty keys are legal in the byte tier (no zero-key sentinel).
        svc.submit_bytes(0, ByteOp::Put(Vec::new(), b"empty-key".to_vec()))
            .unwrap();
        svc.flush_all(&mut sim).unwrap();
        svc.submit_bytes(0, ByteOp::Get(Vec::new())).unwrap();
        svc.flush_all(&mut sim).unwrap();
        let got = svc.drain_byte_completions();
        assert_eq!(
            got.last().unwrap().reply,
            ByteReply::Value(Some(b"empty-key".to_vec()))
        );
    }

    #[test]
    fn byte_admission_sheds_against_byte_queue_depth() {
        let mut sim = SimContext::new();
        let mut cfg = unsized_cfg(1);
        cfg.queue_capacity = 16;
        cfg.shed_watermark = 8;
        let mut svc = KvService::new(cfg, &mut sim).unwrap();
        let mut shed = 0;
        let mut overloaded = 0;
        for i in 0..40u32 {
            match svc.submit_bytes(0, ByteOp::Put(bkey(i), b"v".to_vec())) {
                Ok(_) => {}
                Err(ServiceError::Admit(AdmitError::Overloaded { .. })) => overloaded += 1,
                Err(e) => panic!("unexpected {e:?}"),
            }
            match svc.submit_bytes(0, ByteOp::Get(bkey(i))) {
                Ok(_) => {}
                Err(ServiceError::Admit(AdmitError::Shed { .. })) => shed += 1,
                Err(ServiceError::Admit(AdmitError::Overloaded { .. })) => overloaded += 1,
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert!(overloaded > 0, "hard cap never hit");
        assert!(shed > 0, "watermark never shed a read");
        assert!(svc.byte_queue_depths()[0] <= 16);
        let m = svc.metrics().total();
        assert_eq!(m.shed_total(), overloaded + shed);
    }

    #[test]
    fn byte_flushes_populate_arena_gauges_and_both_tiers_coexist() {
        let mut sim = SimContext::new();
        let mut svc = KvService::new(unsized_cfg(2), &mut sim).unwrap();
        // Interleave fixed-tier and byte-tier traffic.
        for i in 1..=120u32 {
            svc.submit(0, Op::Put(i, i * 7)).unwrap();
            // Odd bkeys spill, so the arena must hold live bytes.
            svc.submit_bytes(0, ByteOp::Put(bkey(i), vec![b'v'; 24]))
                .unwrap();
        }
        svc.flush_all(&mut sim).unwrap();
        let m = svc.metrics().total();
        assert!(m.byte_batches > 0);
        assert!(m.arena_pages > 0, "spilled keys must allocate arena pages");
        assert!(m.arena_live_bytes > 0);
        // Both tiers answer correctly side by side.
        svc.drain_completions();
        svc.drain_byte_completions();
        for i in 1..=120u32 {
            svc.submit(0, Op::Get(i)).unwrap();
            svc.submit_bytes(0, ByteOp::Get(bkey(i))).unwrap();
        }
        svc.flush_all(&mut sim).unwrap();
        for c in svc.drain_completions() {
            assert_eq!(c.reply, Reply::Value(Some(c.key * 7)));
        }
        for c in svc.drain_byte_completions() {
            assert_eq!(c.reply, ByteReply::Value(Some(vec![b'v'; 24])));
        }
        assert_eq!(svc.total_keys(), 240);
        // The registry gains exactly the gated byte-tier entries.
        let mut reg = obs::Registry::new();
        m.register_into(&mut reg, &[("scope", "total")]);
        assert!(reg
            .get_gauge("service_arena_live_bytes", &[("scope", "total")])
            .is_some());
        svc.release(&mut sim).unwrap();
    }

    #[test]
    fn byte_service_is_deterministic_and_pumps_migrations() {
        let run = || {
            let mut sim = SimContext::new();
            let mut cfg = unsized_cfg(2);
            cfg.unsized_table.n_buckets = 4;
            cfg.unsized_table.max_load = 0.5;
            cfg.migration_quantum = 2;
            let mut svc = KvService::new(cfg, &mut sim).unwrap();
            for i in 1..=400u32 {
                let _ = svc.submit_bytes(i % 5, ByteOp::Put(bkey(i), bkey(i ^ 3)));
                if i % 3 == 0 {
                    let _ = svc.submit_bytes(i % 5, ByteOp::Get(bkey(i / 3)));
                }
                if i % 11 == 0 {
                    let _ = svc.submit_bytes(i % 5, ByteOp::Delete(bkey(i / 11)));
                }
                if i % 7 == 0 {
                    svc.tick(&mut sim).unwrap();
                }
            }
            svc.flush_all(&mut sim).unwrap();
            // Idle ticks drain any still-running migration.
            let mut guard = 0;
            while svc.metrics().total().migration_backlog > 0 {
                svc.tick(&mut sim).unwrap();
                guard += 1;
                assert!(guard < 10_000, "migration never settled");
            }
            (svc.snapshot().to_csv(), svc.drain_byte_completions())
        };
        let (csv_a, comp_a) = run();
        let (csv_b, comp_b) = run();
        assert_eq!(csv_a, csv_b);
        assert_eq!(comp_a, comp_b);
        assert!(!comp_a.is_empty());
    }

    /// Drive an identical workload through a configurable backend and
    /// return everything observable: completions, byte completions, and
    /// the snapshot CSV (which folds in per-shard metrics and kernel ns).
    fn backend_probe(backend: Backend) -> (Vec<Completion>, Vec<ByteCompletion>, String, u64) {
        let mut sim = SimContext::new();
        let mut cfg = unsized_cfg(4);
        cfg.backend = backend;
        cfg.miss_filter_bits = 8;
        cfg.migration_quantum = 4;
        let mut svc = KvService::new(cfg, &mut sim).unwrap();
        for i in 1..=600u32 {
            let _ = svc.submit(i % 5, Op::Put(i, i ^ 0x00C0_FFEE));
            if i % 3 == 0 {
                let _ = svc.submit(i % 5, Op::Get(i / 3));
            }
            if i % 4 == 0 {
                let _ = svc.submit(i % 5, Op::Upsert(i % 50 + 1, i, MergeRule::Add));
            }
            if i % 6 == 0 {
                let _ = svc.submit(i % 5, Op::Increment(i % 30 + 1));
            }
            if i % 11 == 0 {
                let _ = svc.submit(i % 5, Op::Delete(i / 11));
            }
            if i % 9 == 0 {
                let _ = svc.submit_bytes(i % 5, ByteOp::Put(bkey(i), bkey(i ^ 7)));
            }
            if i % 8 == 0 {
                svc.tick(&mut sim).unwrap();
            }
        }
        svc.flush_all(&mut sim).unwrap();
        let mut guard = 0;
        while svc.metrics().total().migration_backlog > 0 {
            svc.tick(&mut sim).unwrap();
            guard += 1;
            assert!(guard < 10_000, "migration never settled");
        }
        let csv = svc.snapshot().to_csv();
        let keys = svc.total_keys();
        let fixed = svc.drain_completions();
        let bytes = svc.drain_byte_completions();
        svc.release(&mut sim).unwrap();
        (fixed, bytes, csv, keys)
    }

    #[test]
    fn host_par_backend_matches_sim_exactly() {
        let sim_run = backend_probe(Backend::Sim);
        for threads in [1usize, 2, 8] {
            let par_run = backend_probe(Backend::HostPar { threads });
            assert_eq!(par_run.0, sim_run.0, "{threads} threads: completions");
            assert_eq!(par_run.1, sim_run.1, "{threads} threads: byte completions");
            assert_eq!(par_run.2, sim_run.2, "{threads} threads: snapshot CSV");
            assert_eq!(par_run.3, sim_run.3, "{threads} threads: total keys");
        }
    }

    #[test]
    fn upsert_and_increment_round_trip_against_reference() {
        use std::collections::HashMap;
        let mut sim = SimContext::new();
        let mut svc = KvService::new(small_cfg(2), &mut sim).unwrap();
        let mut model: HashMap<u32, u32> = HashMap::new();
        let rules = [
            MergeRule::LastWrite,
            MergeRule::Add,
            MergeRule::Max,
            MergeRule::Min,
            MergeRule::Count,
        ];
        let upsert = |model: &mut HashMap<u32, u32>, k: u32, v: u32, rule: MergeRule| {
            let next = match model.get(&k) {
                Some(&old) => rule.merge(old, v),
                None => rule.initial(v),
            };
            model.insert(k, next);
        };
        for i in 0..400u32 {
            let k = i % 37 + 1;
            let arg = i.wrapping_mul(2654435761) >> 20;
            match i % 7 {
                0 => {
                    svc.submit(0, Op::Put(k, arg)).unwrap();
                    model.insert(k, arg);
                }
                1 => {
                    svc.submit(0, Op::Delete(k)).unwrap();
                    model.remove(&k);
                }
                2 => {
                    svc.submit(0, Op::Increment(k)).unwrap();
                    let n = model.get(&k).map_or(1, |&old| old + 1);
                    model.insert(k, n);
                }
                _ => {
                    let rule = rules[(i % 5) as usize];
                    svc.submit(0, Op::Upsert(k, arg, rule)).unwrap();
                    upsert(&mut model, k, arg, rule);
                }
            }
            if i % 6 == 5 {
                svc.tick(&mut sim).unwrap();
            }
        }
        svc.flush_all(&mut sim).unwrap();
        for c in svc.drain_completions() {
            assert!(
                matches!(c.reply, Reply::Stored | Reply::Deleted | Reply::Merged),
                "write ack for key {}: {:?}",
                c.key,
                c.reply
            );
        }
        for k in 1..=37u32 {
            svc.submit(0, Op::Get(k)).unwrap();
            svc.flush_all(&mut sim).unwrap();
            let got = svc.drain_completions();
            assert_eq!(
                got[0].reply,
                Reply::Value(model.get(&k).copied()),
                "key {k}"
            );
        }
    }

    #[test]
    fn rmw_window_composes_and_reads_through() {
        let mut sim = SimContext::new();
        let mut svc = KvService::new(small_cfg(1), &mut sim).unwrap();
        // Seed a base value in an earlier window.
        svc.submit(0, Op::Put(5, 100)).unwrap();
        svc.flush_all(&mut sim).unwrap();
        svc.drain_completions();
        // One window: two increments and a get. The probe sees the
        // pre-window value; the reply must still fold the pending merges.
        svc.submit(0, Op::Increment(5)).unwrap();
        svc.submit(0, Op::Increment(5)).unwrap();
        svc.submit(0, Op::Get(5)).unwrap();
        svc.flush_all(&mut sim).unwrap();
        let got = svc.drain_completions();
        assert_eq!(got[0].reply, Reply::Merged);
        assert_eq!(got[1].reply, Reply::Merged);
        assert_eq!(got[2].reply, Reply::Value(Some(102)));
        assert!(!got[2].coalesced, "read-through still probes the table");
        // The table agrees once the window has committed.
        svc.submit(0, Op::Get(5)).unwrap();
        svc.flush_all(&mut sim).unwrap();
        assert_eq!(svc.drain_completions()[0].reply, Reply::Value(Some(102)));
    }

    #[test]
    fn upserted_keys_enter_the_miss_filter() {
        let mut sim = SimContext::new();
        let mut cfg = small_cfg(1);
        cfg.miss_filter_bits = 8;
        let mut svc = KvService::new(cfg, &mut sim).unwrap();
        svc.submit(0, Op::Increment(9)).unwrap();
        svc.flush_all(&mut sim).unwrap();
        svc.drain_completions();
        // Known-absent key: the shield answers without a probe.
        svc.submit(0, Op::Get(1234)).unwrap();
        // Upserted key: it entered the filter at flush, so this probes.
        svc.submit(0, Op::Get(9)).unwrap();
        svc.flush_all(&mut sim).unwrap();
        let got = svc.drain_completions();
        assert_eq!(got[0].reply, Reply::Value(None), "shielded miss");
        assert_eq!(got[1].reply, Reply::Value(Some(1)));
        assert_eq!(svc.metrics().total().filter_shed, 1);
        // A queued upsert counts as a pending write: a get behind it must
        // not be shielded even though the key is not in the filter yet.
        svc.submit(0, Op::Increment(77)).unwrap();
        svc.submit(0, Op::Get(77)).unwrap();
        svc.flush_all(&mut sim).unwrap();
        let got = svc.drain_completions();
        assert_eq!(got[1].reply, Reply::Value(Some(1)));
        assert_eq!(svc.metrics().total().filter_shed, 1, "no new shield hit");
    }

    #[test]
    fn host_par_rejects_zero_threads() {
        let mut sim = SimContext::new();
        let cfg = ServiceConfig {
            backend: Backend::HostPar { threads: 0 },
            ..ServiceConfig::default()
        };
        assert!(matches!(
            KvService::new(cfg, &mut sim),
            Err(ServiceError::InvalidConfig(_))
        ));
    }

    #[test]
    fn host_par_attribution_conserves_into_caller_metrics() {
        let mut sim = SimContext::new();
        let mut cfg = small_cfg(2);
        cfg.backend = Backend::HostPar { threads: 2 };
        let mut svc = KvService::new(cfg, &mut sim).unwrap();
        obs::attr::start();
        let before = sim.metrics.clone();
        for k in 1..=120u32 {
            svc.submit(0, Op::Put(k, k)).unwrap();
        }
        svc.flush_all(&mut sim).unwrap();
        let attr = obs::attr::stop();
        // Worker-side kernel charges were absorbed under the flush scopes,
        // so the conservation law holds against the caller's metric delta.
        for kind in gpu_sim::ChargeKind::ALL {
            assert_eq!(
                attr.total(kind),
                sim.metrics.get(kind) - before.get(kind),
                "{kind:?}"
            );
        }
        assert!(attr
            .iter()
            .any(|(p, _)| p.starts_with("service/flush/shard")));
    }

    #[test]
    fn invalid_unsized_config_is_rejected_at_construction() {
        let mut cfg = unsized_cfg(1);
        cfg.unsized_table.n_buckets = 0;
        let mut sim = SimContext::new();
        assert!(KvService::new(cfg, &mut sim).is_err());
        // The same bad embedded config is ignored under Tier::Fixed.
        let mut cfg = unsized_cfg(1);
        cfg.unsized_table.n_buckets = 0;
        cfg.tier = Tier::Fixed;
        assert!(KvService::new(cfg, &mut sim).is_ok());
    }

    #[test]
    fn invalid_layout_is_rejected_at_service_construction() {
        let mut cfg = small_cfg(2);
        cfg.table.layout = gpu_sim::LayoutConfig::soa(12, 4, 4); // unsupported width
        let mut sim = SimContext::new();
        let err = match KvService::new(cfg, &mut sim) {
            Ok(_) => panic!("expected layout rejection"),
            Err(e) => e,
        };
        assert!(matches!(err, ServiceError::Table(_)), "unexpected: {err}");
    }
}
