//! Diagnostic: per-batch eviction rate vs fill for DyCuckoo on a dynamic workload.
use baselines::{DyCuckooTable, GpuHashTable};
use dycuckoo::{Config, DupPolicy};
use gpu_sim::SimContext;
use workloads::{dataset_by_name, DynamicWorkload};

fn main() {
    let scale = 0.005;
    let ds = dataset_by_name("TW").unwrap().scaled(scale).generate(1);
    let batch = 5000;
    let w = DynamicWorkload::build(&ds, batch, 0.2, 7);
    let mut sim = SimContext::new();
    let cfg = Config {
        alpha: 0.3,
        beta: 0.85,
        initial_buckets: 64,
        dup_policy: DupPolicy::PaperInsert,
        ..Config::default()
    };
    let mut t = DyCuckooTable::new(cfg, &mut sim).unwrap();
    let mut last_ev = 0u64;
    let mut last_fail = 0u64;
    for (i, b) in w.batches.iter().enumerate() {
        t.insert_batch(&mut sim, &b.inserts).unwrap();
        t.find_batch(&mut sim, &b.finds);
        t.delete_batch(&mut sim, &b.deletes).unwrap();
        let m = &sim.metrics;
        if i % 5 == 0 || i < 12 {
            println!(
                "batch {i:3} fill {:5.3} evict/ins {:6.3} lockfail delta {:8}",
                t.fill_factor(),
                (m.evictions - last_ev) as f64 / b.inserts.len().max(1) as f64,
                m.lock_failures - last_fail
            );
        }
        last_ev = m.evictions;
        last_fail = m.lock_failures;
    }
}
