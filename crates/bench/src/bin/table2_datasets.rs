//! **Table 2** — "The datasets used in the experiments": regenerate the
//! dataset statistics (KV pairs, unique keys, max duplicates) from the
//! synthetic generators, at full paper size (spec) and at the configured
//! scale (actual generated stream, verified by counting).

use std::collections::HashMap;

use bench::report::Table;
use bench::{scale, seed};
use workloads::paper_datasets;

fn main() {
    let scale = scale();
    let seed = seed();
    println!("Table 2: datasets (paper spec vs generated at scale={scale})");

    let mut t = Table::new(&[
        "dataset",
        "paper pairs",
        "paper unique",
        "gen pairs",
        "gen unique",
        "gen max dup",
    ]);
    for spec in paper_datasets() {
        let ds = spec.scaled(scale).generate(seed);
        let mut counts: HashMap<u32, u32> = HashMap::with_capacity(ds.unique_keys);
        for &(k, _) in &ds.pairs {
            *counts.entry(k).or_insert(0) += 1;
        }
        let max_dup = counts.values().copied().max().unwrap_or(0);
        t.row(vec![
            spec.name.to_string(),
            spec.total_pairs.to_string(),
            spec.unique_keys.to_string(),
            ds.len().to_string(),
            counts.len().to_string(),
            max_dup.to_string(),
        ]);
    }
    t.print("Table 2: dataset statistics");
}
