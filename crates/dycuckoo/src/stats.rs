//! Snapshot statistics of a table, used by the experiment harness to track
//! filled factors and memory footprints over dynamic workloads.

/// Statistics of one subtable.
#[derive(Debug, Clone, PartialEq)]
pub struct SubTableStats {
    /// Number of buckets.
    pub n_buckets: usize,
    /// Occupied slots (`m_i`).
    pub occupied: u64,
    /// Capacity in slots (`n_i`).
    pub capacity_slots: u64,
    /// Filled factor `θ_i`.
    pub fill: f64,
}

/// Statistics of the whole table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Number of subtables `d`.
    pub num_tables: usize,
    /// Total occupied slots.
    pub occupied: u64,
    /// Total capacity in slots.
    pub capacity_slots: u64,
    /// Overall filled factor `θ`.
    pub fill: f64,
    /// Device bytes held by the table.
    pub device_bytes: u64,
    /// Per-subtable breakdown.
    pub per_table: Vec<SubTableStats>,
}
