//! **Ablation: Theorem-1 balanced distribution vs. uniform routing**
//! (Section "KV distribution").
//!
//! The balanced rule sends a KV to subtable `i` with probability
//! proportional to `n_i / C(m_i, 2)`. Its value shows right after an
//! upsize: the doubled subtable should absorb roughly double the inserts,
//! pulling per-subtable fills back together. We grow a table through many
//! resizes and compare insert cost, evictions, and the spread of subtable
//! fills under both policies.

use bench::measure;
use bench::report::{fmt_mops, Table};
use bench::seed;
use dycuckoo::{Config, Distribution, DupPolicy, DyCuckoo};
use gpu_sim::SimContext;
use workloads::keygen::unique_keys;

const ITEMS: usize = 400_000;

fn main() {
    let seed = seed();
    println!("Ablation: KV distribution, growing to {ITEMS} keys through resizes");
    let mut t = Table::new(&[
        "distribution",
        "insert Mops",
        "evictions",
        "resizes",
        "fill spread (max-min)",
    ]);
    for (name, distribution) in [
        ("Balanced (Thm 1)", Distribution::Balanced),
        ("Uniform", Distribution::Uniform),
    ] {
        let mut sim = SimContext::new();
        let cfg = Config {
            distribution,
            dup_policy: DupPolicy::PaperInsert,
            seed,
            ..Config::default()
        };
        let mut table = DyCuckoo::new(cfg, &mut sim).unwrap();
        let kvs: Vec<(u32, u32)> = unique_keys(seed, ITEMS).map(|k| (k, k)).collect();
        let mut resizes = 0;
        let (_, m) = measure(&mut sim, |sim| {
            for chunk in kvs.chunks(20_000) {
                resizes += table.insert_batch(sim, chunk).unwrap().resizes.len();
            }
        });
        let stats = table.stats();
        let max_fill = stats.per_table.iter().map(|s| s.fill).fold(0.0, f64::max);
        let min_fill = stats.per_table.iter().map(|s| s.fill).fold(1.0, f64::min);
        t.row(vec![
            name.to_string(),
            fmt_mops(m.mops),
            m.metrics.evictions.to_string(),
            resizes.to_string(),
            format!("{:.1}pp", (max_fill - min_fill) * 100.0),
        ]);
    }
    t.print("Distribution ablation");
}
