//! Bucket memory layouts and their transaction-accounting rules.
//!
//! Every throughput number in the reproduction reduces to counts of
//! 128-byte memory transactions, and those counts are a pure function of
//! how a bucket's keys and values are packed into cache lines. This module
//! makes that packing a first-class, swappable axis:
//!
//! * **SoA** (split arrays): the keys of a bucket are consecutive in a key
//!   array, the values consecutive in a separate value array — the paper's
//!   own layout (its Figure "hash table structure"). Probes touch only key
//!   lines; value traffic is paid only on a hit, and key-only operations
//!   (missed finds, deletes) never touch a value line.
//! * **AoS** (interleaved): each bucket stores its KV pairs contiguously,
//!   so a probe fetches keys *and* values together. Fewer distinct lines
//!   per operation at small bucket widths, at the price of dragging value
//!   bytes through the cache on every probe.
//!
//! Bucket width is configurable (8/16/32 slots) so the width × scheme
//! product can be swept by `bench --bin layout_sweep`. The default
//! configuration — SoA, 32 slots, 4-byte keys and values — charges exactly
//! the transaction sequence the pre-engine kernels charged, which is what
//! keeps the schedule-fuzz digests and telemetry snapshots byte-identical.
//!
//! Accounting rules (per logical bucket operation):
//!
//! | operation                | SoA                      | AoS            |
//! |--------------------------|--------------------------|----------------|
//! | probe (scan keys)        | key-area lines           | bucket lines   |
//! | read value after a hit   | 1 value line             | 0 (same line)  |
//! | write fresh KV / swap    | 1 key line + 1 value line| 1 bucket line  |
//! | update value in place    | 1 value line             | 1 bucket line  |
//! | erase key                | 1 key line               | 1 bucket line  |
//! | drain bucket (rehash)    | key + value lines        | bucket lines   |
//!
//! A probe always counts **one** logical lookup regardless of how many
//! lines it spans, so lookup counts stay comparable across layouts.

use crate::atomic::RoundCtx;

/// Bytes per coalesced memory transaction (one cache line).
pub const LINE_BYTES: u64 = 128;
/// Smallest addressable granule for array padding (one sector).
pub const SECTOR_BYTES: u64 = 32;
/// Bytes of the per-bucket lock word.
pub const LOCK_BYTES: u64 = 4;

/// How a bucket's keys and values are arranged in device memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayoutScheme {
    /// Split arrays: all keys of a bucket consecutive, values in a
    /// separate array (the paper's layout).
    Soa,
    /// Interleaved: each bucket's KV pairs stored contiguously.
    Aos,
}

impl LayoutScheme {
    fn rules(self) -> &'static dyn BucketLayout {
        match self {
            LayoutScheme::Soa => &Soa,
            LayoutScheme::Aos => &Aos,
        }
    }

    /// Lower-case name used in specs and benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            LayoutScheme::Soa => "soa",
            LayoutScheme::Aos => "aos",
        }
    }
}

/// The transaction-accounting rules of one layout scheme, in units of
/// 128-byte lines. Implementations are stateless; geometry arrives via the
/// [`LayoutConfig`] being interpreted.
pub trait BucketLayout {
    /// Lines read to scan the keys of one bucket.
    fn probe_lines(&self, cfg: &LayoutConfig) -> u64;
    /// Extra lines read to fetch a value after a key hit.
    fn value_read_lines(&self, cfg: &LayoutConfig) -> u64;
    /// Lines written to place (or swap) a full KV pair.
    fn kv_write_lines(&self, cfg: &LayoutConfig) -> u64;
    /// Lines written to update a value in place.
    fn value_write_lines(&self, cfg: &LayoutConfig) -> u64;
    /// Lines written to erase a key.
    fn key_write_lines(&self, cfg: &LayoutConfig) -> u64;
    /// Lines to read (or write) one whole bucket during a rehash drain.
    fn drain_lines(&self, cfg: &LayoutConfig) -> u64;
    /// Device bytes of one bucket, padded to the layout's alignment.
    fn bucket_stride_bytes(&self, cfg: &LayoutConfig) -> u64;
}

fn lines(bytes: u64) -> u64 {
    bytes.div_ceil(LINE_BYTES).max(1)
}

fn round_up(bytes: u64, to: u64) -> u64 {
    bytes.div_ceil(to) * to
}

/// Split-array rules. Keys and values live in separate, densely packed
/// arrays (padded to sector granularity per bucket).
pub struct Soa;

impl BucketLayout for Soa {
    fn probe_lines(&self, cfg: &LayoutConfig) -> u64 {
        lines(cfg.key_area_bytes())
    }
    fn value_read_lines(&self, _cfg: &LayoutConfig) -> u64 {
        1
    }
    fn kv_write_lines(&self, _cfg: &LayoutConfig) -> u64 {
        2 // the key line and the value line holding the slot
    }
    fn value_write_lines(&self, _cfg: &LayoutConfig) -> u64 {
        1
    }
    fn key_write_lines(&self, _cfg: &LayoutConfig) -> u64 {
        1
    }
    fn drain_lines(&self, cfg: &LayoutConfig) -> u64 {
        lines(cfg.key_area_bytes()) + lines(cfg.val_area_bytes())
    }
    fn bucket_stride_bytes(&self, cfg: &LayoutConfig) -> u64 {
        round_up(cfg.key_area_bytes(), SECTOR_BYTES) + round_up(cfg.val_area_bytes(), SECTOR_BYTES)
    }
}

/// Interleaved rules. A bucket is one contiguous run of KV pairs, padded
/// to whole cache lines so buckets never straddle a line boundary.
pub struct Aos;

impl BucketLayout for Aos {
    fn probe_lines(&self, cfg: &LayoutConfig) -> u64 {
        lines(cfg.bucket_payload_bytes())
    }
    fn value_read_lines(&self, _cfg: &LayoutConfig) -> u64 {
        0 // the value came in with the probed line
    }
    fn kv_write_lines(&self, _cfg: &LayoutConfig) -> u64 {
        1
    }
    fn value_write_lines(&self, _cfg: &LayoutConfig) -> u64 {
        1
    }
    fn key_write_lines(&self, _cfg: &LayoutConfig) -> u64 {
        1
    }
    fn drain_lines(&self, cfg: &LayoutConfig) -> u64 {
        lines(cfg.bucket_payload_bytes())
    }
    fn bucket_stride_bytes(&self, cfg: &LayoutConfig) -> u64 {
        round_up(cfg.bucket_payload_bytes(), LINE_BYTES)
    }
}

/// A concrete bucket layout: scheme × geometry. Carried by every
/// [`super::BucketStore`] and threaded through table configurations so the
/// same kernels can be charged under any layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LayoutConfig {
    /// Key/value arrangement.
    pub scheme: LayoutScheme,
    /// Slots per bucket (8, 16 or 32).
    pub slots: usize,
    /// Bytes per key (4, 8 or 16).
    pub key_bytes: u64,
    /// Bytes per value (4 or 8).
    pub val_bytes: u64,
    /// Bits per slot in the optional fingerprint lane (0 = no lane,
    /// otherwise 8 or 16). The lane is a separate densely packed word per
    /// bucket — at most 32 × 2 B = 64 B, so it always fits one cache line
    /// regardless of geometry. Probes read it first and only touch the key
    /// lines when some slot's fingerprint matches.
    pub fp_bits: u8,
}

impl Default for LayoutConfig {
    /// The paper's layout: split arrays, 32 four-byte keys per bucket —
    /// one key line plus one value line per bucket.
    fn default() -> Self {
        Self::soa(32, 4, 4)
    }
}

impl LayoutConfig {
    /// Split-array layout with the given geometry.
    pub const fn soa(slots: usize, key_bytes: u64, val_bytes: u64) -> Self {
        Self {
            scheme: LayoutScheme::Soa,
            slots,
            key_bytes,
            val_bytes,
            fp_bits: 0,
        }
    }

    /// Interleaved layout with the given geometry.
    pub const fn aos(slots: usize, key_bytes: u64, val_bytes: u64) -> Self {
        Self {
            scheme: LayoutScheme::Aos,
            slots,
            key_bytes,
            val_bytes,
            fp_bits: 0,
        }
    }

    /// The same layout with a fingerprint lane of `bits` bits per slot
    /// (0 removes the lane; 8 and 16 are the supported widths).
    pub const fn with_fp(self, bits: u8) -> Self {
        Self {
            fp_bits: bits,
            ..self
        }
    }

    /// Validate the geometry: bucket widths are swept over 8/16/32 slots,
    /// key words are 4, 8 or 16 bytes (16 is the unsized tier's packed
    /// `(tag, fingerprint, inline-or-handle)` slot word) and value words
    /// are 4 or 8 bytes.
    pub fn validate(&self) -> Result<(), String> {
        if !matches!(self.slots, 8 | 16 | 32) {
            return Err(format!(
                "layout slots must be 8, 16 or 32, got {}",
                self.slots
            ));
        }
        if !matches!(self.key_bytes, 4 | 8 | 16) || !matches!(self.val_bytes, 4 | 8) {
            return Err(format!(
                "layout key bytes must be 4, 8 or 16 and value bytes 4 or 8, got {}/{}",
                self.key_bytes, self.val_bytes
            ));
        }
        if !matches!(self.fp_bits, 0 | 8 | 16) {
            return Err(format!(
                "layout fingerprint bits must be 0, 8 or 16, got {}",
                self.fp_bits
            ));
        }
        Ok(())
    }

    /// Short spec string, e.g. `soa32`, `aos16` or `soa32+fp8` (geometry
    /// of the word sizes is implied by the table's key/value types).
    pub fn spec(&self) -> String {
        if self.fp_bits > 0 {
            format!("{}{}+fp{}", self.scheme.name(), self.slots, self.fp_bits)
        } else {
            format!("{}{}", self.scheme.name(), self.slots)
        }
    }

    /// Parse a `soa32` / `aos16` / `soa32+fp8`-style spec for a table with
    /// the given key/value word sizes.
    pub fn parse(spec: &str, key_bytes: u64, val_bytes: u64) -> Option<Self> {
        let (base, fp_bits) = match spec.split_once('+') {
            None => (spec, 0u8),
            Some((base, "fp8")) => (base, 8),
            Some((base, "fp16")) => (base, 16),
            Some(_) => return None,
        };
        let (scheme, slots) = if let Some(rest) = base.strip_prefix("soa") {
            (LayoutScheme::Soa, rest)
        } else if let Some(rest) = base.strip_prefix("aos") {
            (LayoutScheme::Aos, rest)
        } else {
            return None;
        };
        let slots: usize = slots.parse().ok()?;
        let cfg = Self {
            scheme,
            slots,
            key_bytes,
            val_bytes,
            fp_bits,
        };
        cfg.validate().ok().map(|()| cfg)
    }

    fn rules(&self) -> &'static dyn BucketLayout {
        self.scheme.rules()
    }

    /// Bytes of one bucket's key area (unpadded).
    pub fn key_area_bytes(&self) -> u64 {
        self.slots as u64 * self.key_bytes
    }

    /// Bytes of one bucket's value area (unpadded).
    pub fn val_area_bytes(&self) -> u64 {
        self.slots as u64 * self.val_bytes
    }

    /// Bytes of one bucket's full KV payload (unpadded).
    pub fn bucket_payload_bytes(&self) -> u64 {
        self.key_area_bytes() + self.val_area_bytes()
    }

    /// Keys that fit in one cache line (stash/overflow sizing).
    pub fn keys_per_line(&self) -> usize {
        (LINE_BYTES / self.key_bytes) as usize
    }

    /// Whether this layout carries a fingerprint lane.
    pub fn has_fp(&self) -> bool {
        self.fp_bits > 0
    }

    /// Bytes of one bucket's fingerprint word (unpadded; 0 without a
    /// lane).
    pub fn fp_area_bytes(&self) -> u64 {
        self.slots as u64 * self.fp_bits as u64 / 8
    }

    /// Lines the fingerprint word spans: at most 32 slots × 2 B = 64 B,
    /// so always exactly one line when the lane exists.
    pub fn fp_lines(&self) -> u64 {
        if self.has_fp() {
            lines(self.fp_area_bytes())
        } else {
            0
        }
    }

    /// Largest fingerprint value the lane can hold (0 is reserved for
    /// empty slots so emptiness is answerable from the lane alone).
    pub fn fp_max(&self) -> u64 {
        (1u64 << self.fp_bits) - 1
    }

    /// Device bytes of one bucket including layout padding, excluding the
    /// lock word.
    pub fn bucket_stride_bytes(&self) -> u64 {
        let fp = if self.has_fp() {
            round_up(self.fp_area_bytes(), SECTOR_BYTES)
        } else {
            0
        };
        self.rules().bucket_stride_bytes(self) + fp
    }

    /// Device bytes of a table of `n_buckets` buckets: padded bucket
    /// strides plus one lock word per bucket.
    pub fn device_bytes_for(&self, n_buckets: usize) -> u64 {
        n_buckets as u64 * (self.bucket_stride_bytes() + LOCK_BYTES)
    }

    /// Read transactions one bucket probe costs.
    pub fn probe_lines(&self) -> u64 {
        self.rules().probe_lines(self)
    }

    /// Lines to read (or write) one whole bucket during a rehash drain
    /// (the fingerprint word drains along with the bucket).
    pub fn drain_lines(&self) -> u64 {
        self.rules().drain_lines(self) + self.fp_lines()
    }

    /// Extra read transactions fetching a value after a key hit costs.
    pub fn value_read_lines(&self) -> u64 {
        self.rules().value_read_lines(self)
    }

    /// Write transactions placing (or swapping) a full KV pair costs
    /// (placing a key also stamps its slot in the fingerprint word).
    pub fn kv_write_lines(&self) -> u64 {
        self.rules().kv_write_lines(self) + self.fp_lines()
    }

    /// Write transactions an in-place value update costs (the key — and
    /// hence its fingerprint — is untouched).
    pub fn value_write_lines(&self) -> u64 {
        self.rules().value_write_lines(self)
    }

    /// Write transactions erasing a key costs (erasing also clears the
    /// slot's fingerprint).
    pub fn key_write_lines(&self) -> u64 {
        self.rules().key_write_lines(self) + self.fp_lines()
    }

    /// Charge a bucket probe: one logical lookup, spanning however many
    /// line reads the layout needs to scan the bucket's keys.
    pub fn charge_probe(&self, ctx: &mut RoundCtx) {
        ctx.read_bucket();
        for _ in 1..self.probe_lines() {
            ctx.read_line();
        }
    }

    /// Charge reading a bucket's fingerprint word: still one logical
    /// lookup (the probe *started*), but only the single fingerprint
    /// line — the key lines are only paid if the gate passes.
    pub fn charge_fp_probe(&self, ctx: &mut RoundCtx) {
        debug_assert!(self.has_fp());
        ctx.read_bucket();
        for _ in 1..self.fp_lines() {
            ctx.read_line();
        }
    }

    /// Charge confirming a fingerprint match against the key lines. The
    /// lookup was already counted by [`Self::charge_fp_probe`], so this is
    /// pure line traffic: the same key lines a bare probe would scan.
    pub fn charge_fp_confirm(&self, ctx: &mut RoundCtx) {
        debug_assert!(self.has_fp());
        for _ in 0..self.probe_lines() {
            ctx.read_line();
        }
    }

    /// Charge fetching a value after a key hit (free under AoS: the value
    /// arrived with the probed line).
    pub fn charge_value_read(&self, ctx: &mut RoundCtx) {
        for _ in 0..self.value_read_lines() {
            ctx.read_line();
        }
    }

    /// Charge writing a fresh KV pair (or swapping one during an
    /// eviction).
    pub fn charge_kv_write(&self, ctx: &mut RoundCtx) {
        for _ in 0..self.kv_write_lines() {
            ctx.write_line();
        }
    }

    /// Charge an in-place value update.
    pub fn charge_value_write(&self, ctx: &mut RoundCtx) {
        for _ in 0..self.value_write_lines() {
            ctx.write_line();
        }
    }

    /// Charge erasing a key (SoA deliberately touches no value line — the
    /// reason the paper splits the arrays).
    pub fn charge_key_write(&self, ctx: &mut RoundCtx) {
        for _ in 0..self.key_write_lines() {
            ctx.write_line();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;

    fn charges(f: impl FnOnce(&mut RoundCtx)) -> Metrics {
        let mut m = Metrics::default();
        let mut ctx = RoundCtx::new(&mut m);
        f(&mut ctx);
        ctx.finish();
        m
    }

    #[test]
    fn default_layout_matches_the_papers_charging() {
        // SoA-32 with 4-byte words: one key line + one value line per
        // bucket — the exact sequence the pre-engine kernels charged.
        let l = LayoutConfig::default();
        assert_eq!(l.probe_lines(), 1);
        assert_eq!(l.drain_lines(), 2);
        assert_eq!(l.bucket_stride_bytes(), 256);
        assert_eq!(l.device_bytes_for(4), 4 * (32 * 8 + 4));
        let m = charges(|ctx| l.charge_probe(ctx));
        assert_eq!((m.read_transactions, m.lookups), (1, 1));
        let m = charges(|ctx| l.charge_value_read(ctx));
        assert_eq!(m.read_transactions, 1);
        let m = charges(|ctx| l.charge_kv_write(ctx));
        assert_eq!(m.write_transactions, 2);
        let m = charges(|ctx| l.charge_value_write(ctx));
        assert_eq!(m.write_transactions, 1);
        let m = charges(|ctx| l.charge_key_write(ctx));
        assert_eq!(m.write_transactions, 1);
    }

    #[test]
    fn wide_layout_matches_the_wide_tables_charging() {
        // SoA-16 with 8-byte words: 16 × 8 B = one full key line.
        let l = LayoutConfig::soa(16, 8, 8);
        assert_eq!(l.probe_lines(), 1);
        assert_eq!(l.drain_lines(), 2);
        assert_eq!(l.device_bytes_for(3), 3 * (16 * 16 + 4));
    }

    #[test]
    fn aos16_buckets_fit_one_line() {
        let l = LayoutConfig::aos(16, 4, 4);
        assert_eq!(l.probe_lines(), 1);
        assert_eq!(l.drain_lines(), 1);
        assert_eq!(l.bucket_stride_bytes(), 128);
        let m = charges(|ctx| {
            l.charge_probe(ctx);
            l.charge_value_read(ctx);
        });
        // The hit is free: value came in with the probe.
        assert_eq!((m.read_transactions, m.lookups), (1, 1));
        let m = charges(|ctx| l.charge_kv_write(ctx));
        assert_eq!(m.write_transactions, 1);
    }

    #[test]
    fn aos32_buckets_span_two_lines() {
        let l = LayoutConfig::aos(32, 4, 4);
        assert_eq!(l.probe_lines(), 2);
        assert_eq!(l.bucket_stride_bytes(), 256);
        let m = charges(|ctx| l.charge_probe(ctx));
        // Two line reads but still ONE logical lookup.
        assert_eq!((m.read_transactions, m.lookups), (2, 1));
    }

    #[test]
    fn aos8_pads_buckets_to_a_full_line() {
        let l = LayoutConfig::aos(8, 4, 4);
        assert_eq!(l.bucket_stride_bytes(), 128, "64 B payload pads to a line");
        assert_eq!(l.probe_lines(), 1);
    }

    #[test]
    fn soa_narrow_buckets_pack_densely() {
        let l = LayoutConfig::soa(8, 4, 4);
        assert_eq!(l.bucket_stride_bytes(), 64);
        assert_eq!(l.probe_lines(), 1);
        assert_eq!(l.drain_lines(), 2);
    }

    #[test]
    fn spec_round_trips() {
        for spec in ["soa8", "soa16", "soa32", "aos8", "aos16", "aos32"] {
            let l = LayoutConfig::parse(spec, 4, 4).unwrap();
            assert_eq!(l.spec(), spec);
            assert!(l.validate().is_ok());
        }
        assert!(LayoutConfig::parse("soa64", 4, 4).is_none());
        assert!(LayoutConfig::parse("zip32", 4, 4).is_none());
    }

    #[test]
    fn validate_rejects_bad_geometry() {
        assert!(LayoutConfig::soa(12, 4, 4).validate().is_err());
        assert!(LayoutConfig::soa(32, 3, 4).validate().is_err());
        assert!(LayoutConfig::aos(16, 4, 16).validate().is_err());
    }

    #[test]
    fn unsized_tier_layout_matches_the_u32_tier_charging() {
        // SoA-8 with 16-byte slot words: 8 × 16 B = one full key line, so
        // the unsized tier's probe costs exactly what the default u32
        // tier's does — the invariant the strkey-sweep snapshot pins.
        let l = LayoutConfig::soa(8, 16, 8);
        assert!(l.validate().is_ok());
        assert_eq!(l.probe_lines(), LayoutConfig::default().probe_lines());
        assert_eq!(l.value_read_lines(), 1);
        assert_eq!(l.bucket_stride_bytes(), 128 + 64);
        let m = charges(|ctx| l.charge_probe(ctx));
        assert_eq!((m.read_transactions, m.lookups), (1, 1));
    }

    #[test]
    fn keys_per_line_tracks_key_width() {
        assert_eq!(LayoutConfig::soa(32, 4, 4).keys_per_line(), 32);
        assert_eq!(LayoutConfig::soa(16, 8, 8).keys_per_line(), 16);
    }

    #[test]
    fn fp_lane_always_spans_one_line() {
        // Even the widest lane (32 slots × 2 B = 64 B) fits one line.
        for (slots, bits) in [(8, 8), (16, 8), (32, 8), (8, 16), (16, 16), (32, 16)] {
            let l = LayoutConfig::soa(slots, 4, 4).with_fp(bits);
            assert!(l.validate().is_ok());
            assert_eq!(l.fp_lines(), 1, "soa{slots}+fp{bits}");
        }
        assert_eq!(LayoutConfig::soa(32, 4, 4).fp_lines(), 0);
    }

    #[test]
    fn fp_lane_charges_one_line_per_gate_and_full_probe_on_confirm() {
        let l = LayoutConfig::aos(32, 4, 4).with_fp(8);
        // Gate rejection: one line, one logical lookup.
        let m = charges(|ctx| l.charge_fp_probe(ctx));
        assert_eq!((m.read_transactions, m.lookups), (1, 1));
        // Gate pass: fp line + the full two-line aos32 key scan, still
        // one logical lookup — more lines than a bare probe on a pass,
        // fewer on a reject. That trade is the whole point.
        let m = charges(|ctx| {
            l.charge_fp_probe(ctx);
            l.charge_fp_confirm(ctx);
        });
        assert_eq!((m.read_transactions, m.lookups), (3, 1));
        let bare = charges(|ctx| LayoutConfig::aos(32, 4, 4).charge_probe(ctx));
        assert_eq!((bare.read_transactions, bare.lookups), (2, 1));
    }

    #[test]
    fn fp_lane_adds_stride_and_write_lines() {
        let base = LayoutConfig::soa(32, 4, 4);
        let l = base.with_fp(16);
        // 32 × 2 B = 64 B lane, sector-padded.
        assert_eq!(l.bucket_stride_bytes(), base.bucket_stride_bytes() + 64);
        assert_eq!(l.kv_write_lines(), base.kv_write_lines() + 1);
        assert_eq!(l.key_write_lines(), base.key_write_lines() + 1);
        assert_eq!(l.drain_lines(), base.drain_lines() + 1);
        // Value-only traffic never touches the lane.
        assert_eq!(l.value_write_lines(), base.value_write_lines());
        assert_eq!(l.value_read_lines(), base.value_read_lines());
        // fp8 lane on 8 slots is 8 B but still pads to a sector.
        let small = LayoutConfig::soa(8, 4, 4).with_fp(8);
        assert_eq!(
            small.bucket_stride_bytes(),
            LayoutConfig::soa(8, 4, 4).bucket_stride_bytes() + 32
        );
    }

    #[test]
    fn fp_spec_round_trips() {
        for spec in ["soa32+fp8", "soa32+fp16", "aos16+fp8", "aos32+fp16"] {
            let l = LayoutConfig::parse(spec, 4, 4).unwrap();
            assert_eq!(l.spec(), spec);
            assert!(l.validate().is_ok());
        }
        assert!(LayoutConfig::parse("soa32+fp4", 4, 4).is_none());
        assert!(LayoutConfig::parse("soa32+", 4, 4).is_none());
        assert!(LayoutConfig::parse("soa32+filter", 4, 4).is_none());
        assert!(LayoutConfig::soa(32, 4, 4).with_fp(7).validate().is_err());
    }

    #[test]
    fn fp_off_is_bit_identical_to_the_historical_layout() {
        let l = LayoutConfig::default();
        assert_eq!(l.fp_bits, 0);
        assert!(!l.has_fp());
        assert_eq!(l.spec(), "soa32");
        assert_eq!(l.bucket_stride_bytes(), 256);
        assert_eq!(l.kv_write_lines(), 2);
        assert_eq!(l.key_write_lines(), 1);
        assert_eq!(l.drain_lines(), 2);
    }
}
