//! Failure injection: behaviour at device-memory exhaustion and on invalid
//! inputs. A production library must fail cleanly, not corrupt state.

use baselines::{GpuHashTable, MegaKv, ResizeBounds, SlabHash, TableError};
use dycuckoo::{Config, DyCuckoo, Error};
use gpu_sim::{DeviceConfig, SimContext};

/// A device too small to grow into: DyCuckoo's upsize must fail with a
/// device error and leave the table fully consistent.
#[test]
fn dycuckoo_oom_on_growth_is_clean() {
    let mut sim = SimContext::with_config(DeviceConfig {
        memory_bytes: 200 * 1024, // 200 KiB
        ..DeviceConfig::default()
    });
    let cfg = Config {
        initial_buckets: 2,
        ..Config::default()
    };
    let mut table = DyCuckoo::new(cfg, &mut sim).unwrap();
    let mut inserted_before_oom = 0u64;
    let mut oom = false;
    for wave in 0..100u32 {
        let kvs: Vec<(u32, u32)> = (0..1000).map(|i| (wave * 1000 + i + 1, i)).collect();
        match table.insert_batch(&mut sim, &kvs) {
            Ok(_) => inserted_before_oom = table.len(),
            Err(Error::Device(_)) => {
                oom = true;
                break;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(oom, "a 200 KiB device must eventually refuse to grow");
    assert!(inserted_before_oom > 0, "some batches must have succeeded");
    // The table survived: accounting consistent, earlier keys retrievable.
    table.verify_integrity().unwrap();
    let probe: Vec<u32> = (1..=100).collect();
    let found = table.find_batch(&mut sim, &probe);
    assert!(
        found.iter().all(|f| f.is_some()),
        "pre-OOM keys must survive"
    );
    // Device accounting still balances with what the table reports.
    assert_eq!(sim.device.allocated_bytes(), table.device_bytes());
}

/// MegaKV's full rehash needs old + new simultaneously, so it OOMs earlier
/// than an incremental scheme on the same device.
#[test]
fn megakv_oom_during_rehash_is_clean() {
    let mut sim = SimContext::with_config(DeviceConfig {
        memory_bytes: 200 * 1024,
        ..DeviceConfig::default()
    });
    let mut table = MegaKv::new(
        2,
        Some(ResizeBounds {
            alpha: 0.3,
            beta: 0.85,
        }),
        1,
        &mut sim,
    )
    .unwrap();
    let mut oom_at = None;
    for wave in 0..100u32 {
        let kvs: Vec<(u32, u32)> = (0..1000).map(|i| (wave * 1000 + i + 1, i)).collect();
        match table.insert_batch(&mut sim, &kvs) {
            Ok(_) => {}
            Err(TableError::Device(_)) => {
                oom_at = Some(table.len());
                break;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    let survivors = oom_at.expect("MegaKV must OOM on a 200 KiB device");
    assert!(survivors > 0);
    // Earlier keys remain findable.
    let probe: Vec<u32> = (1..=100).collect();
    assert!(table
        .find_batch(&mut sim, &probe)
        .iter()
        .all(|f| f.is_some()));
}

/// With identical tiny devices, the incremental resizer fits more keys
/// than the full-rehash resizer before hitting the wall — the paper's
/// coexistence argument, stated as a failure-point comparison.
#[test]
fn incremental_resizing_fits_more_before_oom() {
    let fill_until_oom = |use_dycuckoo: bool| -> u64 {
        let mut sim = SimContext::with_config(DeviceConfig {
            memory_bytes: 150 * 1024,
            ..DeviceConfig::default()
        });
        let mut table: Box<dyn GpuHashTable> = if use_dycuckoo {
            Box::new(
                baselines::DyCuckooTable::new(
                    Config {
                        initial_buckets: 2,
                        ..Config::default()
                    },
                    &mut sim,
                )
                .unwrap(),
            )
        } else {
            Box::new(
                MegaKv::new(
                    2,
                    Some(ResizeBounds {
                        alpha: 0.3,
                        beta: 0.85,
                    }),
                    1,
                    &mut sim,
                )
                .unwrap(),
            )
        };
        for wave in 0..200u32 {
            let kvs: Vec<(u32, u32)> = (0..500).map(|i| (wave * 500 + i + 1, i)).collect();
            if table.insert_batch(&mut sim, &kvs).is_err() {
                break;
            }
        }
        table.len()
    };
    let dy = fill_until_oom(true);
    let mk = fill_until_oom(false);
    assert!(
        dy > mk,
        "incremental resizing should fit more keys before OOM (DyCuckoo {dy} vs MegaKV {mk})"
    );
}

/// SlabHash pool growth also respects the device limit.
#[test]
fn slab_oom_on_pool_growth_is_clean() {
    let mut sim = SimContext::with_config(DeviceConfig {
        memory_bytes: 100 * 1024,
        ..DeviceConfig::default()
    });
    let mut table = SlabHash::new(16, 1, &mut sim).unwrap();
    let mut oom = false;
    for wave in 0..100u32 {
        let kvs: Vec<(u32, u32)> = (0..1000).map(|i| (wave * 1000 + i + 1, i)).collect();
        match table.insert_batch(&mut sim, &kvs) {
            Ok(_) => {}
            Err(TableError::Device(_)) => {
                oom = true;
                break;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(oom);
    let probe: Vec<u32> = (1..=100).collect();
    assert!(table
        .find_batch(&mut sim, &probe)
        .iter()
        .all(|f| f.is_some()));
}

/// Invalid configurations are rejected up front with descriptive errors.
#[test]
fn config_validation_matrix() {
    let mut sim = SimContext::new();
    let bad = [
        Config {
            num_tables: 1,
            ..Config::default()
        },
        Config {
            num_tables: 17,
            ..Config::default()
        },
        Config {
            initial_buckets: 0,
            ..Config::default()
        },
        Config {
            alpha: 0.8,
            beta: 0.85,
            num_tables: 2,
            ..Config::default()
        },
        Config {
            eviction_limit: 0,
            ..Config::default()
        },
        Config {
            stash_capacity: 1 << 20,
            ..Config::default()
        },
        Config {
            num_tables: 5,
            layering: dycuckoo::Layering::DisjointPairs,
            ..Config::default()
        },
    ];
    for cfg in bad {
        match DyCuckoo::new(cfg, &mut sim) {
            Err(err) => assert!(matches!(err, Error::InvalidConfig(_)), "got {err}"),
            Ok(_) => panic!("config must be rejected"),
        }
    }
}

/// Zero keys are rejected by every scheme without mutating anything.
#[test]
fn sentinel_keys_rejected_everywhere() {
    let mut sim = SimContext::new();
    let mut dy = DyCuckoo::new(
        Config {
            initial_buckets: 2,
            ..Config::default()
        },
        &mut sim,
    )
    .unwrap();
    assert_eq!(
        dy.insert_batch(&mut sim, &[(1, 1), (0, 2)]),
        Err(Error::ZeroKey)
    );
    assert_eq!(dy.len(), 0, "rejected batch must not partially apply");

    let mut mk = MegaKv::new(2, None, 1, &mut sim).unwrap();
    assert!(matches!(
        mk.insert_batch(&mut sim, &[(0, 1)]),
        Err(TableError::ZeroKey)
    ));
    assert_eq!(mk.len(), 0);
}
