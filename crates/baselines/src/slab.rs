//! SlabHash (Ashkiani et al., IPDPS 2018): the dynamic GPU hash table the
//! paper compares against.
//!
//! A chaining table whose chains are **slab lists**: 32-slot nodes sized to
//! a cache line, traversed warp-cooperatively. Three properties the paper
//! criticizes are modelled faithfully:
//!
//! * **Dedicated slab allocator**: slabs come from a pre-reserved pool that
//!   grows in coarse chunks and never shrinks; every allocation bumps a
//!   single atomic counter, so allocation-heavy phases contend on it.
//! * **Symbolic deletion**: deletes only tombstone the slot. Tombstones are
//!   reusable by later inserts, but the slab memory is never returned, so
//!   the filled factor decays under delete-heavy workloads (the effect in
//!   the paper's filled-factor tracking figure).
//! * **Chained lookups**: a find may traverse several slabs, each a random
//!   128-byte transaction — the `Ω(log log m)`-tail the paper mentions.

use gpu_sim::ChargeKind;
use gpu_sim::{
    run_rounds_with, RoundCtx, RoundKernel, SchedulePolicy, SimContext, SlotStore, StepOutcome,
    WARP_SIZE,
};

use dycuckoo::hashfn::UniversalHash;

use crate::api::{GpuHashTable, Result, TableError};

const EMPTY: u32 = 0;
/// Tombstone marker for symbolically deleted slots.
const TOMB: u32 = u32::MAX;
/// Null slab pointer.
const NIL: u32 = u32::MAX;
/// KV slots per slab. The published slab layout packs keys, values and the
/// next pointer into ONE 128-byte line (32 lanes × 4 bytes): 15 KV pairs
/// (30 words) + the pointer — so a slab probe is a single transaction but
/// holds less than half of what a DyCuckoo key bucket does.
const SLAB_SLOTS: usize = 15;
/// Slabs added to the pool per allocator growth.
const POOL_CHUNK: usize = 256;
/// Bytes per slab: one 128-byte line.
const SLAB_BYTES: u64 = 128;
/// Conflict address space of the slab allocator's bump counter.
const ALLOC_SPACE: u32 = 200;
/// Conflict address space of slot-claim atomics.
const SLOT_SPACE: u32 = 201;

/// The SlabHash baseline. The slab pool is a flat engine [`SlotStore`]
/// (`SLAB_SLOTS` consecutive slots per slab) plus a next-pointer array.
pub struct SlabHash {
    n_buckets: usize,
    heads: Vec<u32>,
    slabs: SlotStore<u32, u32>,
    slab_next: Vec<u32>,
    /// Slabs handed out by the allocator.
    allocated_slabs: usize,
    /// Slabs reserved in the pool (device memory actually held).
    pool_slabs: usize,
    live: u64,
    tombstones: u64,
    hash: UniversalHash,
    schedule: SchedulePolicy,
}

impl SlabHash {
    /// Create a SlabHash with `n_buckets` buckets, one initial slab each.
    pub fn new(n_buckets: usize, seed: u64, sim: &mut SimContext) -> Result<Self> {
        let n_buckets = n_buckets.max(1);
        let pool_slabs = n_buckets.next_multiple_of(POOL_CHUNK);
        sim.device
            .alloc(n_buckets as u64 * 4 + pool_slabs as u64 * SLAB_BYTES)?;
        let mut t = Self {
            n_buckets,
            heads: (0..n_buckets as u32).collect(),
            slabs: SlotStore::new(0),
            slab_next: Vec::new(),
            allocated_slabs: n_buckets,
            pool_slabs,
            live: 0,
            tombstones: 0,
            hash: UniversalHash::from_seed(seed ^ 0x51AB_51AB),
            schedule: SchedulePolicy::FixedOrder,
        };
        t.reserve_slab_storage(pool_slabs);
        Ok(t)
    }

    /// Size the bucket array so the table *achieves* roughly `target_fill`
    /// once `items` keys are chained in.
    ///
    /// Chaining can only reach high filled factors with long chains: every
    /// chain ends in a partially filled slab (≈ half empty on average), so
    /// with mean chain load λ the achieved fill is ≈ λ/(λ + s/2) for slab
    /// size `s`. Inverting gives λ = (s/2)·φ/(1−φ): θ = 85% already needs
    /// ≈ 3-slab chains, and θ = 90% needs ≈ 5 — exactly why the paper finds
    /// SlabHash degrading sharply at high filled factors.
    pub fn with_capacity(
        items: usize,
        target_fill: f64,
        seed: u64,
        sim: &mut SimContext,
    ) -> Result<Self> {
        assert!((0.0..1.0).contains(&target_fill));
        let lambda = chain_load_for_fill(target_fill);
        let n_buckets = ((items as f64 / lambda).ceil() as usize).max(1);
        Self::new(n_buckets, seed, sim)
    }

    fn reserve_slab_storage(&mut self, slabs: usize) {
        self.slabs.grow(slabs * SLAB_SLOTS);
        self.slab_next.resize(slabs, NIL);
    }

    fn bucket_of(&self, key: u32) -> usize {
        (self.hash.raw(key) % self.n_buckets as u64) as usize
    }

    fn slab_keys_of(&self, slab: u32) -> &[u32] {
        let s = slab as usize * SLAB_SLOTS;
        self.slabs.keys_in(s..s + SLAB_SLOTS)
    }

    /// Allocate a slab from the pool, growing the pool by a chunk (device
    /// allocation) when exhausted. Charged as one atomic on the allocator's
    /// bump counter.
    fn alloc_slab(&mut self, sim: &mut SimContext, ctx: &mut RoundCtx) -> Result<u32> {
        ctx.raw_atomic(ALLOC_SPACE, 0);
        if self.allocated_slabs == self.pool_slabs {
            sim.device.alloc(POOL_CHUNK as u64 * SLAB_BYTES)?;
            self.pool_slabs += POOL_CHUNK;
            self.reserve_slab_storage(self.pool_slabs);
        }
        let id = self.allocated_slabs as u32;
        self.allocated_slabs += 1;
        Ok(id)
    }
}

/// Achieved fill for mean bucket load λ under Poisson-distributed bucket
/// loads: `λ / (s · E[⌈X/s⌉])` with `X ~ Poisson(λ)` and slab size `s`.
fn expected_fill(lambda: f64) -> f64 {
    let s = SLAB_SLOTS as f64;
    // E[ceil(X/s)] over the Poisson pmf (truncated at λ + 10σ).
    let hi = (lambda + 10.0 * lambda.sqrt()).ceil() as u64 + SLAB_SLOTS as u64;
    let mut pmf = (-lambda).exp();
    let mut e_slabs = 0.0;
    for x in 0..=hi {
        if x > 0 {
            pmf *= lambda / x as f64;
        }
        let slabs = x.div_ceil(SLAB_SLOTS as u64).max(1) as f64;
        e_slabs += pmf * slabs;
    }
    lambda / (s * e_slabs)
}

/// Mean bucket load λ whose achieved fill matches `target` (bisection).
/// Fill grows monotonically in λ: long chains amortize the partially
/// filled tail slab.
fn chain_load_for_fill(target: f64) -> f64 {
    let (mut lo, mut hi) = (0.05, 2000.0);
    // Fill is capped below 1.0; clamp unreachable targets to the hi end.
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if expected_fill(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[derive(Debug, Clone, Copy)]
struct SlabOp {
    key: u32,
    val: u32,
}

/// Per-warp traversal state for the insert kernel.
struct SlabWarp {
    ops: Vec<SlabOp>,
    cur: usize,
    /// Slab the warp will inspect next round (NIL = start of a fresh op).
    slab: u32,
    /// First reusable slot seen along the chain: (slab, slot, was_tombstone).
    free: Option<(u32, usize, bool)>,
}

/// The insert kernel needs the [`SimContext`] for pool growth (device
/// allocation), which [`RoundKernel`] cannot thread through; it is therefore
/// driven by a hand-rolled round loop that mirrors `run_rounds`.
fn run_slab_insert(
    table: &mut SlabHash,
    sim: &mut SimContext,
    kvs: &[(u32, u32)],
) -> Result<(u64, u64)> {
    let mut warps: Vec<SlabWarp> = kvs
        .chunks(WARP_SIZE)
        .map(|c| SlabWarp {
            ops: c.iter().map(|&(key, val)| SlabOp { key, val }).collect(),
            cur: 0,
            slab: NIL,
            free: None,
        })
        .collect();
    let mut inserted = 0u64;
    let mut updated = 0u64;
    let mut pending: Vec<usize> = (0..warps.len()).collect();
    while !pending.is_empty() {
        sim.metrics.charge(ChargeKind::Rounds, 1);
        let mut metrics = std::mem::take(&mut sim.metrics);
        let mut ctx = RoundCtx::new(&mut metrics);
        let mut still = Vec::with_capacity(pending.len());
        for wi in pending {
            let warp = &mut warps[wi];
            let Some(op) = warp.ops.get(warp.cur).copied() else {
                continue;
            };
            if warp.slab == NIL {
                warp.slab = table.heads[table.bucket_of(op.key)];
                warp.free = None;
            }
            let slab = warp.slab;
            if slab == table.heads[table.bucket_of(op.key)] {
                ctx.read_bucket(); // base slab: direct-addressed
            } else {
                ctx.read_chained(); // pointer-chased chain step
            }
            let keys = table.slab_keys_of(slab);
            if let Some(slot) = keys.iter().position(|&k| k == op.key) {
                // Update in place.
                ctx.raw_atomic(SLOT_SPACE, slab as usize * SLAB_SLOTS + slot);
                ctx.write_line();
                table
                    .slabs
                    .set_val(slab as usize * SLAB_SLOTS + slot, op.val);
                updated += 1;
                warp.cur += 1;
                warp.slab = NIL;
            } else {
                if warp.free.is_none() {
                    if let Some(slot) = keys.iter().position(|&k| k == EMPTY || k == TOMB) {
                        warp.free = Some((slab, slot, keys[slot] == TOMB));
                    }
                }
                let next = table.slab_next[slab as usize];
                if next == NIL {
                    // End of chain: claim the remembered slot or grow.
                    let (tslab, tslot, was_tomb) = match warp.free {
                        Some(f) => f,
                        None => {
                            let fresh = {
                                let r = table.alloc_slab(sim, &mut ctx);
                                match r {
                                    Ok(id) => id,
                                    Err(e) => {
                                        ctx.finish();
                                        sim.metrics = metrics;
                                        return Err(e);
                                    }
                                }
                            };
                            table.slab_next[slab as usize] = fresh;
                            ctx.write_line(); // link pointer
                            (fresh, 0, false)
                        }
                    };
                    let idx = tslab as usize * SLAB_SLOTS + tslot;
                    // atomicCAS claim: the remembered slot may have been
                    // taken by another warp since we scanned it — on a
                    // failed claim, restart the op's traversal.
                    ctx.raw_atomic(SLOT_SPACE, idx);
                    let current = table.slabs.key(idx);
                    if current != EMPTY && current != TOMB {
                        warp.free = None;
                        warp.slab = NIL;
                    } else {
                        ctx.write_line(); // KV shares the slab line
                        table.slabs.exchange(idx, op.key, op.val);
                        if was_tomb && current == TOMB {
                            table.tombstones -= 1;
                        }
                        table.live += 1;
                        inserted += 1;
                        warp.cur += 1;
                        warp.slab = NIL;
                    }
                } else {
                    warp.slab = next;
                }
            }
            if warp.cur < warp.ops.len() {
                still.push(wi);
            }
        }
        ctx.finish();
        sim.metrics = metrics;
        pending = still;
    }
    sim.metrics.charge(ChargeKind::Ops, kvs.len() as u64);
    Ok((inserted, updated))
}

/// Read-path traversal used by find and delete.
struct SlabProbeWarp {
    keys: Vec<u32>,
    out_base: usize,
    cur: usize,
    slab: u32,
}

struct SlabFindKernel<'a> {
    table: &'a SlabHash,
    results: &'a mut [Option<u32>],
}

impl RoundKernel<SlabProbeWarp> for SlabFindKernel<'_> {
    fn step(&mut self, warp: &mut SlabProbeWarp, ctx: &mut RoundCtx) -> StepOutcome {
        let Some(&key) = warp.keys.get(warp.cur) else {
            return StepOutcome::Done;
        };
        if warp.slab == NIL {
            warp.slab = self.table.heads[self.table.bucket_of(key)];
            ctx.read_bucket(); // base slab: direct-addressed
        } else {
            ctx.read_chained(); // pointer-chased chain step
        }
        let slab = warp.slab;
        let keys = self.table.slab_keys_of(slab);
        if let Some(slot) = keys.iter().position(|&k| k == key) {
            // Values share the slab line: no extra transaction.
            self.results[warp.out_base + warp.cur] =
                Some(self.table.slabs.val(slab as usize * SLAB_SLOTS + slot));
            warp.cur += 1;
            warp.slab = NIL;
        } else {
            let next = self.table.slab_next[slab as usize];
            if next == NIL {
                self.results[warp.out_base + warp.cur] = None;
                warp.cur += 1;
                warp.slab = NIL;
            } else {
                warp.slab = next;
            }
        }
        if warp.cur == warp.keys.len() {
            StepOutcome::Done
        } else {
            StepOutcome::Pending
        }
    }
}

struct SlabDeleteKernel<'a> {
    table: &'a mut SlabHash,
    deleted: u64,
}

impl RoundKernel<SlabProbeWarp> for SlabDeleteKernel<'_> {
    fn step(&mut self, warp: &mut SlabProbeWarp, ctx: &mut RoundCtx) -> StepOutcome {
        let Some(&key) = warp.keys.get(warp.cur) else {
            return StepOutcome::Done;
        };
        if warp.slab == NIL {
            warp.slab = self.table.heads[self.table.bucket_of(key)];
            ctx.read_bucket(); // base slab: direct-addressed
        } else {
            ctx.read_chained(); // pointer-chased chain step
        }
        let slab = warp.slab;
        let keys = self.table.slab_keys_of(slab);
        if let Some(slot) = keys.iter().position(|&k| k == key) {
            // Symbolic deletion: tombstone the slot; memory is not freed.
            let idx = slab as usize * SLAB_SLOTS + slot;
            self.table.slabs.set_key(idx, TOMB);
            ctx.write_line();
            self.table.live -= 1;
            self.table.tombstones += 1;
            self.deleted += 1;
            warp.cur += 1;
            warp.slab = NIL;
        } else {
            let next = self.table.slab_next[slab as usize];
            if next == NIL {
                warp.cur += 1;
                warp.slab = NIL;
            } else {
                warp.slab = next;
            }
        }
        if warp.cur == warp.keys.len() {
            StepOutcome::Done
        } else {
            StepOutcome::Pending
        }
    }
}

fn probe_warps(keys: &[u32]) -> Vec<SlabProbeWarp> {
    let mut warps = Vec::with_capacity(keys.len() / WARP_SIZE + 1);
    let mut base = 0;
    for chunk in keys.chunks(WARP_SIZE) {
        warps.push(SlabProbeWarp {
            keys: chunk.to_vec(),
            out_base: base,
            cur: 0,
            slab: NIL,
        });
        base += chunk.len();
    }
    warps
}

impl GpuHashTable for SlabHash {
    fn name(&self) -> &'static str {
        "SlabHash"
    }

    fn set_schedule(&mut self, policy: SchedulePolicy) {
        self.schedule = policy;
    }

    fn insert_batch(&mut self, sim: &mut SimContext, kvs: &[(u32, u32)]) -> Result<()> {
        if kvs.iter().any(|&(k, _)| k == EMPTY || k == TOMB) {
            return Err(TableError::ZeroKey);
        }
        run_slab_insert(self, sim, kvs)?;
        Ok(())
    }

    fn find_batch(&mut self, sim: &mut SimContext, keys: &[u32]) -> Vec<Option<u32>> {
        let mut results = vec![None; keys.len()];
        let mut warps = probe_warps(keys);
        let mut kernel = SlabFindKernel {
            table: self,
            results: &mut results,
        };
        run_rounds_with(&mut kernel, &mut warps, &mut sim.metrics, self.schedule);
        sim.metrics.charge(ChargeKind::Ops, keys.len() as u64);
        results
    }

    fn delete_batch(&mut self, sim: &mut SimContext, keys: &[u32]) -> Result<u64> {
        let mut warps = probe_warps(keys);
        let schedule = self.schedule;
        let mut kernel = SlabDeleteKernel {
            table: self,
            deleted: 0,
        };
        run_rounds_with(&mut kernel, &mut warps, &mut sim.metrics, schedule);
        sim.metrics.charge(ChargeKind::Ops, keys.len() as u64);
        Ok(kernel.deleted)
    }

    fn len(&self) -> u64 {
        self.live
    }

    fn capacity_slots(&self) -> u64 {
        (self.allocated_slabs * SLAB_SLOTS) as u64
    }

    fn device_bytes(&self) -> u64 {
        self.n_buckets as u64 * 4 + self.pool_slabs as u64 * SLAB_BYTES
    }
}

impl SlabHash {
    /// Tombstoned slots currently wasted (until an insert reuses them).
    pub fn tombstones(&self) -> u64 {
        self.tombstones
    }

    /// Average chain length in slabs.
    pub fn avg_chain_slabs(&self) -> f64 {
        self.allocated_slabs as f64 / self.n_buckets as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_find_roundtrip() {
        let mut sim = SimContext::new();
        let mut t = SlabHash::new(4, 5, &mut sim).unwrap();
        let kvs: Vec<(u32, u32)> = (1..=500u32).map(|k| (k, k * 5)).collect();
        t.insert_batch(&mut sim, &kvs).unwrap();
        assert_eq!(t.len(), 500);
        let keys: Vec<u32> = (1..=500).collect();
        let found = t.find_batch(&mut sim, &keys);
        for (k, v) in keys.iter().zip(found) {
            assert_eq!(v, Some(k * 5));
        }
        assert_eq!(t.find_batch(&mut sim, &[12345]), vec![None]);
    }

    #[test]
    fn chains_grow_beyond_one_slab() {
        let mut sim = SimContext::new();
        let mut t = SlabHash::new(2, 5, &mut sim).unwrap();
        let kvs: Vec<(u32, u32)> = (1..=300u32).map(|k| (k, k)).collect();
        t.insert_batch(&mut sim, &kvs).unwrap();
        assert!(t.avg_chain_slabs() > 1.0);
        let keys: Vec<u32> = (1..=300).collect();
        assert!(t.find_batch(&mut sim, &keys).iter().all(|f| f.is_some()));
    }

    #[test]
    fn symbolic_delete_keeps_memory_but_reuses_slots() {
        let mut sim = SimContext::new();
        let mut t = SlabHash::new(2, 5, &mut sim).unwrap();
        let kvs: Vec<(u32, u32)> = (1..=200u32).map(|k| (k, k)).collect();
        t.insert_batch(&mut sim, &kvs).unwrap();
        let bytes = t.device_bytes();
        let slabs = t.allocated_slabs;
        let dels: Vec<u32> = (1..=100).collect();
        assert_eq!(t.delete_batch(&mut sim, &dels).unwrap(), 100);
        assert_eq!(t.device_bytes(), bytes, "symbolic deletes free nothing");
        assert_eq!(t.tombstones(), 100);
        assert_eq!(t.len(), 100);
        // Fresh inserts reuse tombstoned slots instead of allocating. A few
        // tombstones can survive where the new keys hash unevenly across
        // the two chains, but the bulk must be recycled.
        let kvs2: Vec<(u32, u32)> = (1001..=1100u32).map(|k| (k, k)).collect();
        t.insert_batch(&mut sim, &kvs2).unwrap();
        assert_eq!(t.len(), 200);
        assert!(
            t.tombstones() < 15,
            "most tombstones should be reused, {} left",
            t.tombstones()
        );
        assert!(
            t.allocated_slabs <= slabs + 1,
            "reuse should avoid slab allocation ({} vs {slabs})",
            t.allocated_slabs
        );
    }

    #[test]
    fn fill_factor_decays_under_deletion() {
        let mut sim = SimContext::new();
        let mut t = SlabHash::with_capacity(1000, 0.8, 5, &mut sim).unwrap();
        let kvs: Vec<(u32, u32)> = (1..=1000u32).map(|k| (k, k)).collect();
        t.insert_batch(&mut sim, &kvs).unwrap();
        let before = t.fill_factor();
        let dels: Vec<u32> = (1..=800).collect();
        t.delete_batch(&mut sim, &dels).unwrap();
        assert!(t.fill_factor() < before / 2.0);
    }

    #[test]
    fn update_in_place() {
        let mut sim = SimContext::new();
        let mut t = SlabHash::new(2, 5, &mut sim).unwrap();
        t.insert_batch(&mut sim, &[(7, 1)]).unwrap();
        t.insert_batch(&mut sim, &[(7, 9)]).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.find_batch(&mut sim, &[7]), vec![Some(9)]);
    }

    #[test]
    fn rejects_sentinel_keys() {
        let mut sim = SimContext::new();
        let mut t = SlabHash::new(2, 5, &mut sim).unwrap();
        assert!(t.insert_batch(&mut sim, &[(0, 1)]).is_err());
        assert!(t.insert_batch(&mut sim, &[(u32::MAX, 1)]).is_err());
    }

    #[test]
    fn pool_grows_in_chunks() {
        let mut sim = SimContext::new();
        let mut t = SlabHash::new(1, 5, &mut sim).unwrap();
        let initial_pool = t.pool_slabs;
        // Push enough keys into one bucket-space to exceed the pool.
        let kvs: Vec<(u32, u32)> = (1..=(initial_pool as u32 + 10) * 32)
            .map(|k| (k, k))
            .collect();
        t.insert_batch(&mut sim, &kvs).unwrap();
        assert!(t.pool_slabs > initial_pool);
        assert_eq!(t.pool_slabs % POOL_CHUNK, 0);
    }
}
