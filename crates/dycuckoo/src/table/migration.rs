//! Incremental migration: the resumable state machine that rehashes one
//! subtable in bounded chunks while foreground traffic keeps serving.
//!
//! With the default `Config::migration_quantum = usize::MAX` a structural
//! resize runs as one stop-the-world pass inside the triggering batch (the
//! historical `rehash` kernels, preserved bit-for-bit). Any finite quantum
//! instead routes the resize through a [`MigrationMachine`]:
//!
//! * **Idle** — no structural work in flight.
//! * **Draining** — a fresh subtable of the target size is allocated and a
//!   cursor sweeps the *source* bucket space, rehashing at most
//!   `migration_quantum` buckets per pump. Each pump is a real scheduled
//!   kernel launch ([`gpu_sim::run_rounds_quantum`]) whose warps take the
//!   same bucket locks foreground operations do.
//! * **Finalizing** — every source bucket is drained; the next pump swaps
//!   the fresh subtable in, frees the old one, re-homes the overflow stash
//!   and retires the migration as a [`super::ResizeEvent`].
//!
//! While a migration is in flight, every foreground operation consults the
//! [`MigrationView`]: for the draining subtable the cursor says — per key,
//! from the raw hash alone — whether the key's bucket has already been
//! drained. A key therefore has exactly **one** valid bucket in the
//! draining subtable (old or fresh, never both), so the paper's two-lookup
//! bound survives mid-migration: the two-layer pairing still yields two
//! candidate subtables, and each contributes a single bucket probe.
//!
//! The routing rule mirrors the conflict-free rehash geometry:
//!
//! * **Upsizing** (`old_n → 2·old_n`): the cursor walks old buckets. A key
//!   whose old bucket `b < cursor` has moved to `hash mod 2·old_n`
//!   (which is `b` or `b + old_n`); otherwise it is still at `b`.
//! * **Downsizing** (`old_n → old_n/2`): the cursor walks *merged* new
//!   buckets. A key whose new bucket `b' < cursor` lives at `b'` in the
//!   fresh subtable (or was pushed to its partner subtable as a residual);
//!   otherwise it is still at `hash mod old_n`.

use gpu_sim::{run_rounds_quantum, RoundCtx, RoundKernel, StepOutcome};

use crate::hashfn::UniversalHash;
use crate::subtable::{SubTable, EMPTY_KEY};

use super::MAX_TABLES;

/// Where a key of the draining subtable currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Route {
    /// Still in the old (draining) subtable, at this bucket.
    Old(usize),
    /// Already moved to the fresh subtable, at this bucket.
    Fresh(usize),
}

/// A coherent snapshot of the draining subtable's old/new split, consulted
/// by the find/insert/delete kernels while a migration is in flight.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MigrationView {
    /// The subtable being migrated.
    pub table: usize,
    /// Growing (`true`) or shrinking (`false`).
    pub grow: bool,
    /// Source buckets drained so far (old buckets when growing, merged new
    /// buckets when shrinking).
    pub cursor: usize,
    /// Bucket count of the old (draining) subtable.
    pub old_n: usize,
    /// Bucket count of the fresh (replacement) subtable.
    pub new_n: usize,
}

impl MigrationView {
    /// The single bucket (old or fresh) where `key` may reside in the
    /// draining subtable. Exactly one probe — the two-lookup bound holds.
    pub fn route(&self, hash: &UniversalHash, key: u32) -> Route {
        if self.grow {
            let b_old = hash.bucket(key, self.old_n);
            if b_old < self.cursor {
                Route::Fresh(hash.bucket(key, self.new_n))
            } else {
                Route::Old(b_old)
            }
        } else {
            let b_new = hash.bucket(key, self.new_n);
            if b_new < self.cursor {
                Route::Fresh(b_new)
            } else {
                Route::Old(hash.bucket(key, self.old_n))
            }
        }
    }

    /// Lock address space of the fresh subtable's bucket locks. The old
    /// subtable keeps its usual space (= its table index); the fresh table
    /// gets a disjoint space so conflict grouping distinguishes the two.
    pub fn fresh_space(&self) -> u32 {
        (self.table + MAX_TABLES) as u32
    }
}

/// In-flight migration bookkeeping (the Draining/Finalizing payload).
#[derive(Debug)]
pub(crate) struct DrainState {
    /// Index of the subtable being migrated.
    pub table: usize,
    /// Growing or shrinking.
    pub grow: bool,
    /// The replacement subtable being filled.
    pub fresh: SubTable,
    /// Source buckets drained so far.
    pub cursor: usize,
    /// Total source buckets to drain (old count when growing, new count
    /// when shrinking).
    pub span: usize,
    /// Bucket count of the old subtable when the migration started.
    pub old_buckets: usize,
    /// KVs rehashed into the fresh subtable so far.
    pub moved: u64,
    /// KVs pushed to partner subtables so far (shrinking only).
    pub residuals: u64,
}

impl DrainState {
    /// The foreground routing view of this state.
    pub fn view(&self) -> MigrationView {
        MigrationView {
            table: self.table,
            grow: self.grow,
            cursor: self.cursor,
            old_n: self.old_buckets,
            new_n: self.fresh.n_buckets(),
        }
    }
}

/// The migration state machine. Owned by [`super::DyCuckoo`]; transitions
/// are driven by the maintenance path (`table/maintenance.rs`).
#[derive(Debug, Default)]
pub(crate) enum MigrationMachine {
    /// No structural work in flight.
    #[default]
    Idle,
    /// A bounded chunk of source buckets is rehashed per pump.
    Draining(DrainState),
    /// All source buckets drained; the next pump swaps the fresh subtable
    /// in and retires the migration.
    Finalizing(DrainState),
}

impl MigrationMachine {
    /// Whether a migration is in flight (draining or awaiting finalize).
    pub fn in_flight(&self) -> bool {
        !matches!(self, MigrationMachine::Idle)
    }

    /// Source buckets not yet drained, plus one pump for the finalize step.
    /// 0 when idle — the `migration_backlog` gauge.
    pub fn backlog(&self) -> u64 {
        match self {
            MigrationMachine::Idle => 0,
            MigrationMachine::Draining(d) => (d.span - d.cursor) as u64 + 1,
            MigrationMachine::Finalizing(_) => 1,
        }
    }

    /// The in-flight drain state, if any.
    pub fn state(&self) -> Option<&DrainState> {
        match self {
            MigrationMachine::Idle => None,
            MigrationMachine::Draining(d) | MigrationMachine::Finalizing(d) => Some(d),
        }
    }

    /// Mutable in-flight drain state, if any.
    pub fn state_mut(&mut self) -> Option<&mut DrainState> {
        match self {
            MigrationMachine::Idle => None,
            MigrationMachine::Draining(d) | MigrationMachine::Finalizing(d) => Some(d),
        }
    }

    /// Kernel-facing context for mutating ops: the routing view plus the
    /// fresh store it routes into.
    pub fn kernel_ctx(&mut self) -> Option<(MigrationView, &mut SubTable)> {
        self.state_mut().map(|d| {
            let view = d.view();
            (view, &mut d.fresh)
        })
    }

    /// Kernel-facing context for read-only ops (find).
    pub fn kernel_ctx_ro(&self) -> Option<(MigrationView, &SubTable)> {
        self.state().map(|d| (d.view(), &d.fresh))
    }
}

/// One warp of the migrate kernel: drains one source bucket.
struct MigrateWarp {
    src: usize,
}

/// The chunked rehash kernel: one warp per source bucket, taking the same
/// per-bucket locks foreground kernels use (old side in the subtable's own
/// lock space, fresh side in [`MigrationView::fresh_space`]), so migration
/// launches are charged for their atomics like any other kernel.
struct MigrateKernel<'a> {
    old: &'a mut SubTable,
    fresh: &'a mut SubTable,
    hash: &'a UniversalHash,
    grow: bool,
    old_space: u32,
    fresh_space: u32,
    moved: u64,
    residuals: Vec<(u32, u32)>,
}

impl MigrateKernel<'_> {
    /// Drain old bucket `b` into fresh buckets `b` / `b + old_n` (upsize
    /// geometry: conflict-free, both destinations belong to this warp).
    fn drain_grow(&mut self, b: usize, ctx: &mut RoundCtx) {
        let drain = self.old.layout().drain_lines();
        let old_n = self.old.n_buckets();
        let new_n = self.fresh.n_buckets();
        // One warp reads the source bucket's key and value lines in full.
        for _ in 0..drain {
            ctx.read_line();
        }
        let mut wrote_lo = false;
        let mut wrote_hi = false;
        let mut cleared = false;
        for s in 0..self.old.slots_per_bucket() {
            let (k, v) = self.old.slot(b, s);
            if k == EMPTY_KEY {
                continue;
            }
            let nb = self.hash.bucket(k, new_n);
            debug_assert!(
                nb == b || nb == b + old_n,
                "upsize moved key across buckets"
            );
            let slot = self
                .fresh
                .find_empty(nb)
                .expect("doubled bucket cannot overflow");
            self.fresh.write_new(nb, slot, k, v);
            self.old.erase(b, s);
            self.moved += 1;
            cleared = true;
            if nb == b {
                wrote_lo = true;
            } else {
                wrote_hi = true;
            }
        }
        for _ in 0..drain * (wrote_lo as u64 + wrote_hi as u64) {
            ctx.write_line();
        }
        if cleared {
            // Marking the source bucket drained: one coalesced key-line
            // clear (the bucket's lines are already in registers).
            ctx.write_line();
        }
    }

    /// Merge old buckets `nb` and `nb + new_n` into fresh bucket `nb`
    /// (downsize geometry); overflow becomes residuals for the caller to
    /// re-insert into partner subtables.
    fn drain_shrink(&mut self, nb: usize, ctx: &mut RoundCtx) {
        let drain = self.old.layout().drain_lines();
        let new_n = self.fresh.n_buckets();
        // One warp reads both source buckets in full.
        for _ in 0..2 * drain {
            ctx.read_line();
        }
        let mut wrote = false;
        for ob in [nb, nb + new_n] {
            let mut cleared = false;
            for s in 0..self.old.slots_per_bucket() {
                let (k, v) = self.old.slot(ob, s);
                if k == EMPTY_KEY {
                    continue;
                }
                if let Some(slot) = self.fresh.find_empty(nb) {
                    self.fresh.write_new(nb, slot, k, v);
                    self.moved += 1;
                    wrote = true;
                } else {
                    self.residuals.push((k, v));
                }
                self.old.erase(ob, s);
                cleared = true;
            }
            if cleared {
                ctx.write_line();
            }
        }
        if wrote {
            for _ in 0..drain {
                ctx.write_line();
            }
        }
    }
}

impl RoundKernel<MigrateWarp> for MigrateKernel<'_> {
    fn step(&mut self, w: &mut MigrateWarp, ctx: &mut RoundCtx) -> StepOutcome {
        if self.grow {
            let b = w.src;
            let hi = b + self.old.n_buckets();
            if !ctx.atomic_cas_lock(&mut self.old.locks, self.old_space, b) {
                return StepOutcome::Pending;
            }
            if !ctx.atomic_cas_lock(&mut self.fresh.locks, self.fresh_space, b) {
                ctx.atomic_exch_unlock(&mut self.old.locks, self.old_space, b);
                return StepOutcome::Pending;
            }
            if !ctx.atomic_cas_lock(&mut self.fresh.locks, self.fresh_space, hi) {
                ctx.atomic_exch_unlock(&mut self.old.locks, self.old_space, b);
                ctx.atomic_exch_unlock(&mut self.fresh.locks, self.fresh_space, b);
                return StepOutcome::Pending;
            }
            self.drain_grow(b, ctx);
            ctx.atomic_exch_unlock(&mut self.old.locks, self.old_space, b);
            ctx.atomic_exch_unlock(&mut self.fresh.locks, self.fresh_space, b);
            ctx.atomic_exch_unlock(&mut self.fresh.locks, self.fresh_space, hi);
        } else {
            let nb = w.src;
            let hi = nb + self.fresh.n_buckets();
            if !ctx.atomic_cas_lock(&mut self.old.locks, self.old_space, nb) {
                return StepOutcome::Pending;
            }
            if !ctx.atomic_cas_lock(&mut self.old.locks, self.old_space, hi) {
                ctx.atomic_exch_unlock(&mut self.old.locks, self.old_space, nb);
                return StepOutcome::Pending;
            }
            if !ctx.atomic_cas_lock(&mut self.fresh.locks, self.fresh_space, nb) {
                ctx.atomic_exch_unlock(&mut self.old.locks, self.old_space, nb);
                ctx.atomic_exch_unlock(&mut self.old.locks, self.old_space, hi);
                return StepOutcome::Pending;
            }
            self.drain_shrink(nb, ctx);
            ctx.atomic_exch_unlock(&mut self.old.locks, self.old_space, nb);
            ctx.atomic_exch_unlock(&mut self.old.locks, self.old_space, hi);
            ctx.atomic_exch_unlock(&mut self.fresh.locks, self.fresh_space, nb);
        }
        StepOutcome::Done
    }

    fn end_round(&mut self) {
        self.old.locks.end_round();
        self.fresh.locks.end_round();
    }
}

/// Outcome of one drained chunk.
pub(crate) struct ChunkOutcome {
    /// KVs rehashed into the fresh subtable by this chunk.
    pub moved: u64,
    /// Overflow KVs (shrinking only) the caller must re-insert into
    /// partner subtables with the draining table excluded.
    pub residuals: Vec<(u32, u32)>,
}

/// Drain the next `chunk` source buckets of `state` as one scheduled
/// launch. Advances `state.cursor` / `state.moved` but does **not** count
/// `state.residuals` — the caller does after placing them.
pub(crate) fn drain_chunk(
    state: &mut DrainState,
    old: &mut SubTable,
    hash: &UniversalHash,
    chunk: usize,
    schedule: gpu_sim::SchedulePolicy,
    metrics: &mut gpu_sim::Metrics,
) -> ChunkOutcome {
    let end = (state.cursor + chunk).min(state.span);
    let mut warps: Vec<MigrateWarp> = (state.cursor..end).map(|src| MigrateWarp { src }).collect();
    let mut kernel = MigrateKernel {
        old,
        fresh: &mut state.fresh,
        hash,
        grow: state.grow,
        old_space: state.table as u32,
        fresh_space: (state.table + MAX_TABLES) as u32,
        moved: 0,
        residuals: Vec::new(),
    };
    // Bounded launch through the quantum-scheduling hook; warps that lose a
    // lock race resume in follow-up launches of the same pump.
    while !warps.is_empty() {
        run_rounds_quantum(
            &mut kernel,
            &mut warps,
            metrics,
            schedule,
            chunk.max(1) as u64,
        );
    }
    state.cursor = end;
    state.moved += kernel.moved;
    ChunkOutcome {
        moved: kernel.moved,
        residuals: kernel.residuals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::LayoutConfig;

    fn hash() -> UniversalHash {
        UniversalHash::from_seed(0xD1C2_B3A4)
    }

    fn filled(n_buckets: usize, keys: std::ops::Range<u32>, h: &UniversalHash) -> SubTable {
        let mut t = SubTable::new(n_buckets, LayoutConfig::default());
        for k in keys {
            let b = h.bucket(k, n_buckets);
            if let Some(s) = t.find_empty(b) {
                t.write_new(b, s, k, k + 1);
            }
        }
        t
    }

    #[test]
    fn grow_routing_splits_on_cursor() {
        let h = hash();
        let view = MigrationView {
            table: 0,
            grow: true,
            cursor: 2,
            old_n: 4,
            new_n: 8,
        };
        for k in 1..200u32 {
            let b_old = h.bucket(k, 4);
            match view.route(&h, k) {
                Route::Fresh(nb) => {
                    assert!(b_old < 2, "key {k} routed fresh from undrained bucket");
                    assert_eq!(nb, h.bucket(k, 8));
                    assert!(nb == b_old || nb == b_old + 4);
                }
                Route::Old(b) => {
                    assert!(b_old >= 2);
                    assert_eq!(b, b_old);
                }
            }
        }
    }

    #[test]
    fn shrink_routing_splits_on_merged_cursor() {
        let h = hash();
        let view = MigrationView {
            table: 1,
            grow: false,
            cursor: 1,
            old_n: 4,
            new_n: 2,
        };
        for k in 1..200u32 {
            let b_new = h.bucket(k, 2);
            match view.route(&h, k) {
                Route::Fresh(nb) => {
                    assert!(b_new < 1);
                    assert_eq!(nb, b_new);
                }
                Route::Old(b) => {
                    assert!(b_new >= 1);
                    assert_eq!(b, h.bucket(k, 4));
                }
            }
        }
    }

    #[test]
    fn drain_chunk_moves_and_clears_grow() {
        let h = hash();
        let mut old = filled(4, 1..100, &h);
        let before = old.occupied();
        let mut state = DrainState {
            table: 0,
            grow: true,
            fresh: SubTable::new(8, LayoutConfig::default()),
            cursor: 0,
            span: 4,
            old_buckets: 4,
            moved: 0,
            residuals: 0,
        };
        let mut m = gpu_sim::Metrics::default();
        let out = drain_chunk(
            &mut state,
            &mut old,
            &h,
            2,
            gpu_sim::SchedulePolicy::FixedOrder,
            &mut m,
        );
        assert!(out.residuals.is_empty(), "upsizing never overflows");
        assert_eq!(state.cursor, 2);
        assert_eq!(old.occupied() + state.fresh.occupied(), before);
        // Drained source buckets are empty; every moved key is at its
        // routed fresh bucket.
        for b in 0..2 {
            assert!(old.bucket_keys(b).iter().all(|&k| k == EMPTY_KEY));
        }
        let view = state.view();
        for nb in 0..8 {
            for &k in state.fresh.bucket_keys(nb) {
                if k == EMPTY_KEY {
                    continue;
                }
                assert_eq!(view.route(&h, k), Route::Fresh(nb));
            }
        }
        // Second pump finishes the drain.
        drain_chunk(
            &mut state,
            &mut old,
            &h,
            2,
            gpu_sim::SchedulePolicy::FixedOrder,
            &mut m,
        );
        assert_eq!(state.cursor, 4);
        assert_eq!(old.occupied(), 0);
        assert_eq!(state.fresh.occupied(), before);
        assert!(old.locks.all_free() && state.fresh.locks.all_free());
        assert!(m.atomic_ops > 0, "migration launches charge their atomics");
    }

    #[test]
    fn drain_chunk_collects_shrink_residuals() {
        let h = hash();
        // Overfill 2 old buckets' worth of keys into a 2-bucket table so
        // merging into 1 bucket must overflow.
        let mut old = SubTable::new(2, LayoutConfig::default());
        let mut stored = 0u64;
        for k in 1..2000u32 {
            let b = h.bucket(k, 2);
            if let Some(s) = old.find_empty(b) {
                old.write_new(b, s, k, k);
                stored += 1;
            }
        }
        assert_eq!(stored, 64, "both buckets full");
        let mut state = DrainState {
            table: 0,
            grow: false,
            fresh: SubTable::new(1, LayoutConfig::default()),
            cursor: 0,
            span: 1,
            old_buckets: 2,
            moved: 0,
            residuals: 0,
        };
        let mut m = gpu_sim::Metrics::default();
        let out = drain_chunk(
            &mut state,
            &mut old,
            &h,
            1,
            gpu_sim::SchedulePolicy::FixedOrder,
            &mut m,
        );
        assert_eq!(out.moved, 32);
        assert_eq!(out.residuals.len(), 32);
        assert_eq!(old.occupied(), 0);
        assert_eq!(state.fresh.occupied(), 32);
    }

    #[test]
    fn machine_backlog_counts_down_to_idle() {
        let mut machine = MigrationMachine::Idle;
        assert!(!machine.in_flight());
        assert_eq!(machine.backlog(), 0);
        machine = MigrationMachine::Draining(DrainState {
            table: 0,
            grow: true,
            fresh: SubTable::new(8, LayoutConfig::default()),
            cursor: 1,
            span: 4,
            old_buckets: 4,
            moved: 0,
            residuals: 0,
        });
        assert!(machine.in_flight());
        assert_eq!(machine.backlog(), 4); // 3 buckets + finalize
        if let MigrationMachine::Draining(d) = &mut machine {
            d.cursor = 4;
        }
        assert_eq!(machine.backlog(), 1);
    }
}
