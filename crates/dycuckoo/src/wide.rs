//! Wide-key tables — the paper's "KV sizes beyond 64 bits" design point.
//!
//! Prior GPU cuckoo tables (CUDPP, MegaKV) move a KV pair with a single
//! 64-bit `atomicExch`, which caps keys+values at 8 bytes total. DyCuckoo
//! locks the *bucket* instead, so a KV entry can be arbitrarily wide: "we
//! lock the entire bucket exclusively for a warp… thus, we do not limit
//! ourselves to supporting KV pairs with only 64 bits. Suppose the keys are
//! 8 bytes, a bucket can then accommodate 16 KV pairs."
//!
//! [`WideDyCuckoo`] demonstrates exactly that trade: 8-byte keys and
//! values, 16 key slots per 128-byte bucket line, the same two-layer
//! pairing and locked-bucket insertion, and conflict-free doubling on
//! overflow. Storage and transaction accounting come from the shared probe
//! engine — the subtables are [`gpu_sim::BucketStore`]s over 64-bit words
//! and every charge flows through the table's [`LayoutConfig`] — so
//! experiments can quantify the halved bucket arity directly against the
//! 4-byte table, under either layout scheme.

use gpu_sim::ChargeKind;
use gpu_sim::{
    run_rounds_with, BucketStore, LayoutConfig, RoundCtx, RoundKernel, SchedulePolicy, SimContext,
    StepOutcome, WARP_SIZE,
};

use crate::error::{Error, Result};
use crate::hashfn::{splitmix64, UniversalHash};
use crate::rmw::MergeRule;
use crate::two_layer::PairHash;

/// Key slots per bucket: 16 eight-byte keys fill one 128-byte line.
pub const WIDE_BUCKET_SLOTS: usize = 16;

const EMPTY: u64 = 0;

/// A subtable of wide KV pairs: a bucketized engine store over 64-bit
/// words.
type WideSubTable = BucketStore<u64, u64>;

/// Hash a 64-bit key down to the 32-bit domain of the universal family
/// (a full-avalanche fold, so both halves contribute).
#[inline]
fn fold_key(key: u64) -> u32 {
    (splitmix64(key) >> 16) as u32
}

/// Fingerprint-gated bucket scan for the lock-free batch paths, which
/// charge raw transaction counters instead of going through a
/// [`RoundCtx`]. Mirrors [`BucketStore::probe_find`]: without a lane the
/// full key scan is charged; with one, a gate rejection pays only the
/// single fingerprint line and the key lines are charged on a match.
#[inline]
fn gated_find_raw(
    store: &WideSubTable,
    b: usize,
    key: u64,
    metrics: &mut gpu_sim::Metrics,
) -> Option<usize> {
    let layout = store.layout();
    if !store.fp_active() {
        metrics.charge(ChargeKind::ReadTx, layout.probe_lines());
        return store.find_slot(b, key);
    }
    metrics.charge(ChargeKind::ReadTx, layout.fp_lines());
    if !store.bucket_fps(b).contains(&store.fp_of(key)) {
        debug_assert!(store.find_slot(b, key).is_none());
        return None;
    }
    metrics.charge(ChargeKind::ReadTx, layout.probe_lines());
    store.find_slot(b, key)
}

/// A dynamic two-layer cuckoo table over 64-bit keys and values.
///
/// Key 0 is reserved as the empty sentinel (as in the 32-bit table).
/// The table grows by doubling one subtable at a time when insertions
/// fail; the two-lookup guarantee and two-layer invariant are identical to
/// [`crate::DyCuckoo`].
pub struct WideDyCuckoo {
    tables: Vec<WideSubTable>,
    hashes: Vec<UniversalHash>,
    pair: PairHash,
    layout: LayoutConfig,
    seed: u64,
    eviction_limit: u32,
    op_counter: u64,
    schedule: SchedulePolicy,
    /// In-flight incremental upsize (see [`WideDyCuckoo::begin_upsize`]);
    /// `None` between migrations and always `None` in the default
    /// stop-the-world configuration.
    migration: Option<WideMigration>,
}

/// Cursor state of an in-flight wide upsize: the fresh (doubled) subtable
/// plus how far the old one has been drained. The same conflict-free
/// argument as the 32-bit machine applies — a key in old bucket `loc` can
/// only land in fresh bucket `loc` or `loc + old_n` — so a single cursor
/// partitions every key's location: old bucket `b < cursor` means the key
/// now lives fresh-side, `b >= cursor` means it is still old-side. Each
/// candidate subtable therefore still costs exactly one bucket probe and
/// the two-lookup bound survives mid-migration.
struct WideMigration {
    /// Index of the subtable being doubled.
    idx: usize,
    /// The doubled replacement, filling as the cursor sweeps.
    fresh: WideSubTable,
    /// Old buckets `< cursor` are drained.
    cursor: usize,
    /// Bucket count of the old subtable.
    old_n: usize,
    /// KV pairs moved so far.
    moved: u64,
}

impl WideMigration {
    /// Locate `key`'s bucket for the migrating subtable: `(bucket, fresh?)`.
    fn route(&self, hash: &UniversalHash, key: u64) -> (usize, bool) {
        let fk = fold_key(key);
        let b_old = hash.bucket(fk, self.old_n);
        if b_old < self.cursor {
            (hash.bucket(fk, self.old_n * 2), true)
        } else {
            (b_old, false)
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct WideOp {
    key: u64,
    val: u64,
    target: usize,
    /// Optimistic duplicate pre-probe of both pair buckets done?
    checked_dup: bool,
    tried_both: bool,
    evictions: u32,
    /// Merge rule applied on the duplicate path; `val` is the raw
    /// argument while armed. Eviction swaps materialize the KV and reset
    /// to `LastWrite` (carried victims are literal pairs).
    rule: MergeRule,
}

struct WideInsertKernel<'a> {
    tables: &'a mut [WideSubTable],
    hashes: &'a [UniversalHash],
    pair: &'a PairHash,
    layout: LayoutConfig,
    seed: u64,
    eviction_limit: u32,
    inserted: u64,
    updated: u64,
    failed: Vec<(u64, u64)>,
    /// In-flight incremental upsize of one subtable: probes of it route
    /// per key to its old or fresh bucket. `(idx, cursor, old_n, fresh)`.
    migration: Option<(usize, usize, usize, &'a mut WideSubTable)>,
}

struct WideWarp {
    ops: Vec<WideOp>,
    cur: usize,
}

impl WideInsertKernel<'_> {
    /// Resolve `key`'s bucket in subtable `t`, honouring an in-flight
    /// migration of that subtable: `(bucket, lock_space, fresh?)`.
    fn locate(&self, t: usize, key: u64) -> (usize, u32, bool) {
        if let Some((idx, cursor, old_n, _)) = &self.migration {
            if *idx == t {
                let fk = fold_key(key);
                let b_old = self.hashes[t].bucket(fk, *old_n);
                return if b_old < *cursor {
                    let b = self.hashes[t].bucket(fk, old_n * 2);
                    (b, (t + crate::table::MAX_TABLES) as u32, true)
                } else {
                    (b_old, t as u32, false)
                };
            }
        }
        let b = self.hashes[t].bucket(fold_key(key), self.tables[t].n_buckets());
        (b, t as u32, false)
    }

    fn store(&mut self, t: usize, in_fresh: bool) -> &mut WideSubTable {
        if in_fresh {
            self.migration.as_mut().expect("fresh without migration").3
        } else {
            &mut self.tables[t]
        }
    }
}

impl RoundKernel<WideWarp> for WideInsertKernel<'_> {
    fn step(&mut self, warp: &mut WideWarp, ctx: &mut RoundCtx) -> StepOutcome {
        let Some(op) = warp.ops.get(warp.cur).copied() else {
            return StepOutcome::Done;
        };
        if !op.checked_dup {
            // Upsert semantics: probe both pair buckets for the key first,
            // so an update never creates a second copy in the partner.
            let fk = fold_key(op.key);
            let (i, j) = self.pair.pair_of(fk);
            for t in [i, j] {
                let (b, _, in_fresh) = self.locate(t, op.key);
                if self.store(t, in_fresh).probe_find(b, op.key, ctx).is_some() {
                    let cur = &mut warp.ops[warp.cur];
                    cur.target = t;
                    cur.tried_both = true;
                    break;
                }
            }
            warp.ops[warp.cur].checked_dup = true;
            return StepOutcome::Pending;
        }
        let t = op.target;
        let (b, space, in_fresh) = self.locate(t, op.key);
        if !ctx.atomic_cas_lock(&mut self.store(t, in_fresh).locks, space, b) {
            return StepOutcome::Pending; // warp-serial table: simple spin
        }
        let (dup, empty) = self.store(t, in_fresh).probe_for_insert(b, op.key, ctx);
        if let Some(slot) = dup {
            let new = if op.rule.reads_old() {
                let old = self.store(t, in_fresh).slot(b, slot).1;
                self.layout.charge_value_read(ctx);
                op.rule.merge_u64(old, op.val)
            } else {
                op.val
            };
            self.store(t, in_fresh).update_val(b, slot, new);
            self.layout.charge_value_write(ctx);
            self.updated += 1;
            warp.cur += 1;
        } else if let Some(slot) = empty {
            self.store(t, in_fresh)
                .write_new(b, slot, op.key, op.rule.initial_u64(op.val));
            self.layout.charge_kv_write(ctx);
            self.inserted += 1;
            warp.cur += 1;
        } else if !op.tried_both {
            let partner = self.pair.partner(fold_key(op.key), t);
            let cur = &mut warp.ops[warp.cur];
            cur.target = partner;
            cur.tried_both = true;
        } else {
            // Evict a pseudo-random victim to its own partner subtable.
            let slot = (splitmix64(self.seed ^ op.key ^ (op.evictions as u64) << 24) as usize)
                % self.layout.slots;
            let (ek, ev) =
                self.store(t, in_fresh)
                    .swap(b, slot, op.key, op.rule.initial_u64(op.val));
            self.layout.charge_kv_write(ctx);
            ctx.metrics.charge(ChargeKind::Evictions, 1);
            let next = self.pair.partner(fold_key(ek), t);
            let cur = &mut warp.ops[warp.cur];
            cur.key = ek;
            cur.val = ev;
            cur.target = next;
            cur.checked_dup = true; // evicted keys are unique by construction
            cur.tried_both = true;
            cur.evictions = op.evictions + 1;
            cur.rule = MergeRule::LastWrite; // victim KVs are literal
            if cur.evictions >= self.eviction_limit {
                self.failed.push((cur.key, cur.val));
                warp.cur += 1;
            }
        }
        ctx.atomic_exch_unlock(&mut self.store(t, in_fresh).locks, space, b);
        if warp.cur == warp.ops.len() {
            StepOutcome::Done
        } else {
            StepOutcome::Pending
        }
    }

    fn end_round(&mut self) {
        for t in self.tables.iter_mut() {
            t.locks.end_round();
        }
        if let Some((_, _, _, fresh)) = self.migration.as_mut() {
            fresh.locks.end_round();
        }
    }
}

impl WideDyCuckoo {
    /// Create a wide table with `d` subtables of `initial_buckets` buckets
    /// under the paper's wide layout (SoA, 16 eight-byte slots).
    pub fn new(d: usize, initial_buckets: usize, seed: u64, sim: &mut SimContext) -> Result<Self> {
        Self::with_layout(
            d,
            initial_buckets,
            seed,
            LayoutConfig::soa(WIDE_BUCKET_SLOTS, 8, 8),
            sim,
        )
    }

    /// Create a wide table under an explicit bucket layout (the sweep and
    /// the layout-equivalence property test drive this).
    pub fn with_layout(
        d: usize,
        initial_buckets: usize,
        seed: u64,
        layout: LayoutConfig,
        sim: &mut SimContext,
    ) -> Result<Self> {
        if !(2..=16).contains(&d) {
            return Err(Error::InvalidConfig(format!(
                "wide table needs 2..=16 subtables, got {d}"
            )));
        }
        layout.validate().map_err(Error::InvalidConfig)?;
        if layout.key_bytes != 8 || layout.val_bytes != 8 {
            return Err(Error::InvalidConfig(format!(
                "wide table holds 8-byte words, layout says {}/{}",
                layout.key_bytes, layout.val_bytes
            )));
        }
        let tables: Vec<WideSubTable> = (0..d)
            .map(|_| WideSubTable::new(initial_buckets.max(1), layout))
            .collect();
        for t in &tables {
            sim.device.alloc(t.device_bytes())?;
        }
        Ok(Self {
            tables,
            hashes: (0..d)
                .map(|i| UniversalHash::from_seed(seed ^ ((i as u64 + 1) << 40)))
                .collect(),
            pair: PairHash::new(seed ^ 0x77_1D_E0, d),
            layout,
            seed,
            eviction_limit: 64,
            op_counter: 0,
            schedule: SchedulePolicy::FixedOrder,
            migration: None,
        })
    }

    /// Set the warp ordering the insert kernel's rounds use (exploration
    /// harness; the default fixed order is what benchmarks measure).
    pub fn set_schedule(&mut self, policy: SchedulePolicy) {
        self.schedule = policy;
    }

    /// The bucket layout this table charges under.
    pub fn layout(&self) -> &LayoutConfig {
        &self.layout
    }

    /// Live KV pairs (including keys already moved to the fresh side of an
    /// in-flight upsize).
    pub fn len(&self) -> u64 {
        self.tables.iter().map(|t| t.occupied()).sum::<u64>()
            + self.migration.as_ref().map_or(0, |m| m.fresh.occupied())
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Overall filled factor.
    pub fn fill_factor(&self) -> f64 {
        let slots: u64 = self.tables.iter().map(|t| t.capacity_slots()).sum();
        self.len() as f64 / slots as f64
    }

    /// Device bytes held (an in-flight upsize transiently holds both the
    /// old and the fresh allocation, like the 32-bit machine).
    pub fn device_bytes(&self) -> u64 {
        self.tables.iter().map(|t| t.device_bytes()).sum::<u64>()
            + self
                .migration
                .as_ref()
                .map_or(0, |m| m.fresh.device_bytes())
    }

    fn pair_of(&self, key: u64) -> (usize, usize) {
        self.pair.pair_of(fold_key(key))
    }

    /// Conflict-free doubling of the smallest subtable (same argument as
    /// the 32-bit table: a key in bucket `loc` moves to `loc` or `loc+n`).
    fn upsize_smallest(&mut self, sim: &mut SimContext) -> Result<()> {
        let idx = (0..self.tables.len())
            .min_by_key(|&i| (self.tables[i].n_buckets(), i))
            .expect("non-empty");
        let old_n = self.tables[idx].n_buckets();
        let new_n = old_n * 2;
        let _attr = obs::attr::scope("maintenance/rehash");
        let drain = self.layout.drain_lines();
        let mut fresh = WideSubTable::new(new_n, self.layout);
        sim.device.alloc(fresh.device_bytes())?;
        sim.metrics.charge(ChargeKind::Rounds, 1);
        for b in 0..old_n {
            sim.metrics.charge(ChargeKind::ReadTx, drain);
            for s in 0..self.layout.slots {
                let (k, v) = self.tables[idx].slot(b, s);
                if k == EMPTY {
                    continue;
                }
                let nb = self.hashes[idx].bucket(fold_key(k), new_n);
                debug_assert!(nb == b || nb == b + old_n);
                let slot = fresh.find_empty(nb).expect("doubled bucket");
                fresh.write_new(nb, slot, k, v);
            }
            sim.metrics.charge(ChargeKind::WriteTx, drain);
        }
        let old_bytes = self.tables[idx].device_bytes();
        self.tables[idx] = fresh;
        sim.device.free(old_bytes)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Incremental upsize: the wide analogue of the 32-bit table's
    // migration machine, reduced to the grow-only case the wide table
    // needs (it resizes solely on insertion failure).
    // ------------------------------------------------------------------

    /// Whether an incremental upsize is in flight.
    pub fn migration_in_flight(&self) -> bool {
        self.migration.is_some()
    }

    /// Old buckets not yet drained plus the pending finalize swap; 0 when
    /// idle.
    pub fn migration_backlog(&self) -> u64 {
        self.migration
            .as_ref()
            .map_or(0, |m| (m.old_n - m.cursor) as u64 + 1)
    }

    /// Start an incremental upsize of the smallest subtable: allocate the
    /// doubled replacement and leave the drain to [`Self::migrate_quantum`]
    /// pumps. Errors if a migration is already in flight.
    pub fn begin_upsize(&mut self, sim: &mut SimContext) -> Result<()> {
        if self.migration.is_some() {
            return Err(Error::InvalidConfig(
                "wide upsize already in flight".to_string(),
            ));
        }
        let idx = (0..self.tables.len())
            .min_by_key(|&i| (self.tables[i].n_buckets(), i))
            .expect("non-empty");
        let old_n = self.tables[idx].n_buckets();
        let fresh = WideSubTable::new(old_n * 2, self.layout);
        sim.device.alloc(fresh.device_bytes())?;
        self.migration = Some(WideMigration {
            idx,
            fresh,
            cursor: 0,
            old_n,
            moved: 0,
        });
        Ok(())
    }

    /// Pump one migration quantum: drain up to `budget` old buckets into
    /// the fresh subtable, or perform the finalize swap once the drain is
    /// complete. Returns the KV pairs moved by this pump. No-op when idle.
    pub fn migrate_quantum(&mut self, sim: &mut SimContext, budget: usize) -> Result<u64> {
        let Some(m) = self.migration.as_mut() else {
            return Ok(0);
        };
        if m.cursor == m.old_n {
            // Finalize: swap the fresh subtable in and free the old one.
            let m = self.migration.take().expect("checked above");
            debug_assert_eq!(self.tables[m.idx].occupied(), 0, "fully drained");
            let old_bytes = self.tables[m.idx].device_bytes();
            self.tables[m.idx] = m.fresh;
            sim.device.free(old_bytes)?;
            return Ok(0);
        }
        let idx = m.idx;
        let _attr = obs::attr::scope("maintenance/migrate");
        let end = (m.cursor + budget.max(1)).min(m.old_n);
        let drain = self.layout.drain_lines();
        let old = &mut self.tables[idx];
        let new_n = m.old_n * 2;
        sim.metrics.charge(ChargeKind::Rounds, 1);
        let mut moved = 0u64;
        for b in m.cursor..end {
            sim.metrics.charge(ChargeKind::ReadTx, drain);
            for s in 0..self.layout.slots {
                let (k, v) = old.slot(b, s);
                if k == EMPTY {
                    continue;
                }
                let nb = self.hashes[idx].bucket(fold_key(k), new_n);
                debug_assert!(nb == b || nb == b + m.old_n);
                let slot = m.fresh.find_empty(nb).expect("doubled bucket");
                m.fresh.write_new(nb, slot, k, v);
                old.erase(b, s);
                moved += 1;
            }
            sim.metrics.charge(ChargeKind::WriteTx, drain);
        }
        m.cursor = end;
        m.moved += moved;
        Ok(moved)
    }

    /// Run an in-flight upsize to completion (drain + finalize); the
    /// correctness escape hatch for stuck inserts.
    fn finish_migration(&mut self, sim: &mut SimContext) -> Result<()> {
        while self.migration.is_some() {
            let rest = self
                .migration
                .as_ref()
                .map_or(1, |m| (m.old_n - m.cursor).max(1));
            self.migrate_quantum(sim, rest)?;
        }
        Ok(())
    }

    /// Insert a batch of wide KV pairs, growing on insertion failure.
    pub fn insert_batch(&mut self, sim: &mut SimContext, kvs: &[(u64, u64)]) -> Result<()> {
        if kvs.iter().any(|&(k, _)| k == EMPTY) {
            return Err(Error::ZeroKey);
        }
        let _attr = obs::attr::scope("wide/insert");
        sim.metrics.charge(ChargeKind::Ops, kvs.len() as u64);
        self.run_batch(sim, kvs, MergeRule::LastWrite)
    }

    /// Read-modify-write a batch under `rule` (wide analogue of
    /// [`crate::DyCuckoo::upsert_batch`]): absent keys insert
    /// `rule.initial_u64(arg)`, present keys merge under the bucket lock.
    /// Duplicate keys are pre-coalesced in submission order (`Count`
    /// occurrences normalize to one `Add`).
    pub fn upsert_batch(
        &mut self,
        sim: &mut SimContext,
        kvs: &[(u64, u64)],
        rule: MergeRule,
    ) -> Result<()> {
        if kvs.iter().any(|&(k, _)| k == EMPTY) {
            return Err(Error::ZeroKey);
        }
        let _attr = obs::attr::scope("wide/upsert");
        sim.metrics.charge(ChargeKind::Ops, kvs.len() as u64);
        let eff = match rule {
            MergeRule::Count => MergeRule::Add,
            r => r,
        };
        let mut entries: Vec<(u64, u64)> = Vec::with_capacity(kvs.len());
        let mut index: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for &(k, arg) in kvs {
            let a = if rule == MergeRule::Count { 1 } else { arg };
            match index.entry(k) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    let i = *e.get();
                    entries[i].1 = match eff {
                        MergeRule::LastWrite => a,
                        _ => eff.merge_u64(entries[i].1, a),
                    };
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(entries.len());
                    entries.push((k, a));
                }
            }
        }
        self.run_batch(sim, &entries, eff)
    }

    /// Counting-table special case over wide keys.
    pub fn increment_batch(&mut self, sim: &mut SimContext, keys: &[u64]) -> Result<()> {
        let kvs: Vec<(u64, u64)> = keys.iter().map(|&k| (k, 0)).collect();
        self.upsert_batch(sim, &kvs, MergeRule::Count)
    }

    /// Drive batches of `(key, arg, rule)` through the kernel until every
    /// op lands; failed ops carry materialized victim KVs and retry as
    /// `LastWrite` after a grow.
    fn run_batch(
        &mut self,
        sim: &mut SimContext,
        kvs: &[(u64, u64)],
        rule: MergeRule,
    ) -> Result<()> {
        let mut pending: Vec<(u64, u64, MergeRule)> =
            kvs.iter().map(|&(k, v)| (k, v, rule)).collect();
        let mut attempts = 0;
        while !pending.is_empty() {
            let ops: Vec<WideOp> = pending
                .iter()
                .map(|&(key, val, rule)| {
                    self.op_counter += 1;
                    let (i, j) = self.pair_of(key);
                    let target = if splitmix64(self.seed ^ self.op_counter) & 1 == 0 {
                        i
                    } else {
                        j
                    };
                    WideOp {
                        key,
                        val,
                        target,
                        checked_dup: false,
                        tried_both: false,
                        evictions: 0,
                        rule,
                    }
                })
                .collect();
            let mut warps: Vec<WideWarp> = ops
                .chunks(WARP_SIZE)
                .map(|c| WideWarp {
                    ops: c.to_vec(),
                    cur: 0,
                })
                .collect();
            let mut kernel = WideInsertKernel {
                tables: &mut self.tables,
                hashes: &self.hashes,
                pair: &self.pair,
                layout: self.layout,
                seed: self.seed,
                eviction_limit: self.eviction_limit,
                inserted: 0,
                updated: 0,
                failed: Vec::new(),
                migration: self
                    .migration
                    .as_mut()
                    .map(|m| (m.idx, m.cursor, m.old_n, &mut m.fresh)),
            };
            run_rounds_with(&mut kernel, &mut warps, &mut sim.metrics, self.schedule);
            // Failed ops hold materialized victim KVs (the eviction swap
            // reset their rule), so retries are plain last-write inserts.
            pending = kernel
                .failed
                .iter()
                .map(|&(k, v)| (k, v, MergeRule::LastWrite))
                .collect();
            if !pending.is_empty() {
                attempts += 1;
                if attempts > 40 {
                    return Err(Error::InsertStuck {
                        failed_ops: pending.len(),
                    });
                }
                // Stuck inserts need capacity now: complete any in-flight
                // migration first (often freeing enough room), then fall
                // back to a stop-the-world doubling.
                if self.migration.is_some() {
                    self.finish_migration(sim)?;
                } else {
                    self.upsize_smallest(sim)?;
                }
            }
        }
        Ok(())
    }

    /// Look up a batch of wide keys: at most two bucket probes each.
    pub fn find_batch(&self, sim: &mut SimContext, keys: &[u64]) -> Vec<Option<u64>> {
        let _attr = obs::attr::scope("wide/find");
        sim.metrics.charge(ChargeKind::Ops, keys.len() as u64);
        let metrics = &mut sim.metrics;
        let value_read = self.layout.value_read_lines();
        let mut out = Vec::with_capacity(keys.len());
        let mut rounds = 0u64;
        for chunk in keys.chunks(WARP_SIZE) {
            let mut warp_rounds = 0u64;
            for &key in chunk {
                let (i, j) = self.pair_of(key);
                let mut found = None;
                for t in [i, j] {
                    // Route through an in-flight migration of subtable `t`:
                    // still exactly one bucket probe per candidate.
                    let (store, b) = match &self.migration {
                        Some(m) if m.idx == t => {
                            let (b, in_fresh) = m.route(&self.hashes[t], key);
                            (if in_fresh { &m.fresh } else { &self.tables[t] }, b)
                        }
                        _ => {
                            let table = &self.tables[t];
                            (
                                table,
                                self.hashes[t].bucket(fold_key(key), table.n_buckets()),
                            )
                        }
                    };
                    metrics.charge(ChargeKind::Lookups, 1);
                    warp_rounds += 1;
                    if let Some(slot) = gated_find_raw(store, b, key, metrics) {
                        metrics.charge(ChargeKind::ReadTx, value_read);
                        found = Some(store.bucket_vals(b)[slot]);
                        break;
                    }
                }
                out.push(found);
            }
            rounds = rounds.max(warp_rounds);
        }
        metrics.charge(ChargeKind::Rounds, rounds);
        out
    }

    /// Delete a batch of wide keys; returns the number erased.
    pub fn delete_batch(&mut self, sim: &mut SimContext, keys: &[u64]) -> u64 {
        let _attr = obs::attr::scope("wide/delete");
        sim.metrics.charge(ChargeKind::Ops, keys.len() as u64);
        let metrics = &mut sim.metrics;
        let key_write = self.layout.key_write_lines();
        let mut deleted = 0;
        let mut rounds = 0u64;
        for chunk in keys.chunks(WARP_SIZE) {
            let mut warp_rounds = 0u64;
            for &key in chunk {
                let (i, j) = self.pair.pair_of(fold_key(key));
                for t in [i, j] {
                    let (store, b): (&mut WideSubTable, usize) = match self.migration.as_mut() {
                        Some(m) if m.idx == t => {
                            let (b, in_fresh) = m.route(&self.hashes[t], key);
                            (
                                if in_fresh {
                                    &mut m.fresh
                                } else {
                                    &mut self.tables[t]
                                },
                                b,
                            )
                        }
                        _ => {
                            let n = self.tables[t].n_buckets();
                            (&mut self.tables[t], self.hashes[t].bucket(fold_key(key), n))
                        }
                    };
                    metrics.charge(ChargeKind::Lookups, 1);
                    warp_rounds += 1;
                    if let Some(slot) = gated_find_raw(store, b, key, metrics) {
                        store.erase(b, slot);
                        metrics.charge(ChargeKind::WriteTx, key_write);
                        deleted += 1;
                        break;
                    }
                }
            }
            rounds = rounds.max(warp_rounds);
        }
        metrics.charge(ChargeKind::Rounds, rounds);
        deleted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wide_keys(n: usize) -> Vec<(u64, u64)> {
        // 64-bit keys well above the 32-bit range, so folding matters.
        (0..n as u64)
            .map(|i| ((i + 1) << 33 | 0x5, i.wrapping_mul(0x1234_5678_9ABC)))
            .collect()
    }

    #[test]
    fn bucket_geometry_matches_paper() {
        // 8-byte keys halve the bucket arity: 16 keys per 128-byte line.
        assert_eq!(WIDE_BUCKET_SLOTS, crate::BUCKET_SLOTS / 2);
        assert_eq!(WIDE_BUCKET_SLOTS * 8, 128);
    }

    #[test]
    fn insert_find_roundtrip() {
        let mut sim = SimContext::new();
        let mut t = WideDyCuckoo::new(4, 2, 7, &mut sim).unwrap();
        let kvs = wide_keys(500);
        t.insert_batch(&mut sim, &kvs).unwrap();
        assert_eq!(t.len(), 500);
        let keys: Vec<u64> = kvs.iter().map(|&(k, _)| k).collect();
        let found = t.find_batch(&mut sim, &keys);
        for ((k, v), f) in kvs.iter().zip(found) {
            assert_eq!(f, Some(*v), "key {k:#x}");
        }
        assert_eq!(t.find_batch(&mut sim, &[0xDEAD_BEEF_0000]), vec![None]);
    }

    #[test]
    fn grows_on_overflow() {
        let mut sim = SimContext::new();
        let mut t = WideDyCuckoo::new(2, 1, 7, &mut sim).unwrap();
        // 2 tables × 1 bucket × 16 slots = 32 slots; 300 keys force growth.
        let kvs = wide_keys(300);
        let before = t.device_bytes();
        t.insert_batch(&mut sim, &kvs).unwrap();
        assert_eq!(t.len(), 300);
        assert!(t.device_bytes() > before);
        let keys: Vec<u64> = kvs.iter().map(|&(k, _)| k).collect();
        assert!(t.find_batch(&mut sim, &keys).iter().all(|f| f.is_some()));
    }

    #[test]
    fn delete_and_update() {
        let mut sim = SimContext::new();
        let mut t = WideDyCuckoo::new(4, 2, 7, &mut sim).unwrap();
        let kvs = wide_keys(100);
        t.insert_batch(&mut sim, &kvs).unwrap();
        // Update in place.
        let updates: Vec<(u64, u64)> = kvs.iter().map(|&(k, _)| (k, 42)).collect();
        t.insert_batch(&mut sim, &updates).unwrap();
        assert_eq!(t.len(), 100);
        let keys: Vec<u64> = kvs.iter().map(|&(k, _)| k).collect();
        assert!(t.find_batch(&mut sim, &keys).iter().all(|f| *f == Some(42)));
        assert_eq!(t.delete_batch(&mut sim, &keys), 100);
        assert!(t.is_empty());
    }

    #[test]
    fn find_probes_at_most_two_buckets() {
        let mut sim = SimContext::new();
        let mut t = WideDyCuckoo::new(6, 4, 7, &mut sim).unwrap();
        let kvs = wide_keys(800);
        t.insert_batch(&mut sim, &kvs).unwrap();
        sim.take_metrics();
        let keys: Vec<u64> = kvs.iter().map(|&(k, _)| k).collect();
        t.find_batch(&mut sim, &keys);
        let m = sim.take_metrics();
        assert!(m.lookups <= 2 * 800, "two-layer guarantee for wide keys");
    }

    #[test]
    fn rejects_zero_key() {
        let mut sim = SimContext::new();
        let mut t = WideDyCuckoo::new(2, 2, 7, &mut sim).unwrap();
        assert!(matches!(
            t.insert_batch(&mut sim, &[(0, 1)]),
            Err(Error::ZeroKey)
        ));
    }

    #[test]
    fn aos_layout_places_keys_identically_to_soa() {
        let mut sim_a = SimContext::new();
        let mut sim_b = SimContext::new();
        let mut soa = WideDyCuckoo::new(4, 2, 7, &mut sim_a).unwrap();
        let mut aos = WideDyCuckoo::with_layout(
            4,
            2,
            7,
            LayoutConfig::aos(WIDE_BUCKET_SLOTS, 8, 8),
            &mut sim_b,
        )
        .unwrap();
        let kvs = wide_keys(400);
        soa.insert_batch(&mut sim_a, &kvs).unwrap();
        aos.insert_batch(&mut sim_b, &kvs).unwrap();
        assert_eq!(soa.len(), aos.len());
        let keys: Vec<u64> = kvs.iter().map(|&(k, _)| k).collect();
        assert_eq!(
            soa.find_batch(&mut sim_a, &keys),
            aos.find_batch(&mut sim_b, &keys)
        );
        // Equal slot counts, different cost model: lookups agree while the
        // transaction counts diverge (AoS-16 over 8-byte pairs spans two
        // lines per probe).
        let (ma, mb) = (sim_a.take_metrics(), sim_b.take_metrics());
        assert_eq!(ma.lookups, mb.lookups);
        assert_ne!(ma.read_transactions, mb.read_transactions);
    }

    #[test]
    fn incremental_upsize_stays_coherent_and_matches_legacy() {
        let mut sim = SimContext::new();
        let mut t = WideDyCuckoo::new(4, 8, 7, &mut sim).unwrap();
        let kvs = wide_keys(300);
        t.insert_batch(&mut sim, &kvs).unwrap();
        let keys: Vec<u64> = kvs.iter().map(|&(k, _)| k).collect();
        let before = t.find_batch(&mut sim, &keys);
        let bytes_idle = t.device_bytes();

        t.begin_upsize(&mut sim).unwrap();
        assert!(t.migration_in_flight());
        assert!(t.device_bytes() > bytes_idle, "old + fresh both held");
        let mut backlog = t.migration_backlog();
        let mut moved_total = 0u64;
        let mut pumps = 0;
        while t.migration_in_flight() {
            // Mid-migration, every op must behave as if quiescent.
            assert_eq!(t.find_batch(&mut sim, &keys), before);
            let extra = 0xF000_0000_0000 + pumps;
            t.insert_batch(&mut sim, &[(extra, pumps)]).unwrap();
            assert_eq!(t.find_batch(&mut sim, &[extra]), vec![Some(pumps)]);
            assert_eq!(t.delete_batch(&mut sim, &[extra]), 1);
            moved_total += t.migrate_quantum(&mut sim, 2).unwrap();
            let now = t.migration_backlog();
            assert!(now < backlog, "backlog strictly decreases per pump");
            backlog = now;
            pumps += 1;
        }
        assert!(pumps > 2, "quantum 2 must take several pumps");
        assert!(moved_total > 0);
        assert_eq!(t.len(), 300);
        assert_eq!(t.find_batch(&mut sim, &keys), before);
    }

    #[test]
    fn rejects_narrow_layout() {
        let mut sim = SimContext::new();
        assert!(matches!(
            WideDyCuckoo::with_layout(4, 2, 7, LayoutConfig::soa(32, 4, 4), &mut sim),
            Err(Error::InvalidConfig(_))
        ));
    }
}
