//! Property tests for dataset generation and dynamic workload construction.

use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

use workloads::{DatasetSpec, DynamicWorkload};

fn spec(total: usize, unique: usize, max_dup: u32) -> DatasetSpec {
    DatasetSpec {
        name: "prop",
        total_pairs: total,
        unique_keys: unique,
        zipf_s: 1.0,
        max_dup,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Generated datasets match their spec exactly: total pairs, unique
    /// keys, per-key duplication cap, and no sentinel keys.
    #[test]
    fn dataset_matches_spec(
        unique in 10usize..3000,
        dup_factor in 1u32..6,
        seed in any::<u64>(),
    ) {
        let max_dup = dup_factor.max(1) + 1;
        let total = unique + (unique / 2) * dup_factor as usize / 4;
        let spec = spec(total, unique, max_dup);
        let ds = spec.generate(seed);
        prop_assert_eq!(ds.len(), total);
        let mut counts: HashMap<u32, u32> = HashMap::new();
        for &(k, _) in &ds.pairs {
            prop_assert_ne!(k, 0);
            prop_assert_ne!(k, u32::MAX);
            *counts.entry(k).or_insert(0) += 1;
        }
        prop_assert_eq!(counts.len(), unique);
        prop_assert!(counts.values().all(|&c| c <= max_dup));
    }

    /// The dynamic workload's phase-1 deletes always target live keys, and
    /// the full two-phase replay against a reference set is consistent.
    #[test]
    fn workload_replays_consistently(
        unique in 50usize..1500,
        batch in 20usize..200,
        r_tenths in 1u32..6,
        seed in any::<u64>(),
    ) {
        let total = unique + unique / 5;
        let ds = spec(total, unique, 4).generate(seed);
        let r = r_tenths as f64 / 10.0;
        let w = DynamicWorkload::build(&ds, batch, r, seed);

        prop_assert_eq!(w.batches.len(), 2 * w.phase1_len);
        let mut live: HashSet<u32> = HashSet::new();
        for (i, b) in w.batches.iter().enumerate() {
            for &(k, _) in &b.inserts {
                live.insert(k);
            }
            for &k in &b.deletes {
                if i < w.phase1_len {
                    prop_assert!(live.remove(&k), "phase-1 delete of dead key {}", k);
                } else {
                    live.remove(&k);
                }
            }
            // Finds only reference keys that were live at build time.
            prop_assert!(!b.finds.is_empty() || b.inserts.is_empty());
        }

        // Phase 2 mirrors phase 1's inserts as deletes.
        for j in 0..w.phase1_len {
            let p1_keys: Vec<u32> = w.batches[j].inserts.iter().map(|&(k, _)| k).collect();
            prop_assert_eq!(&w.batches[w.phase1_len + j].deletes, &p1_keys);
        }
    }

    /// Scaling preserves the unique/total ratio within rounding.
    #[test]
    fn scaling_preserves_ratio(factor_pct in 1u32..100) {
        let base = spec(100_000, 40_000, 6);
        let scaled = base.scaled(factor_pct as f64 / 100.0);
        let base_ratio = base.total_pairs as f64 / base.unique_keys as f64;
        let new_ratio = scaled.total_pairs as f64 / scaled.unique_keys as f64;
        prop_assert!((base_ratio - new_ratio).abs() < 0.05,
            "ratio drifted: {} vs {}", base_ratio, new_ratio);
    }
}
