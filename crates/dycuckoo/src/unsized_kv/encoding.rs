//! Inline-or-spill slot encodings for the unsized tier.
//!
//! Each entry of an [`super::UnsizedTable`] occupies one fixed-width bucket
//! slot: a 16-byte **key word** and an 8-byte **value word**. Short byte
//! strings are stored *inline* in the word itself; longer ones *spill* into
//! the byte arena and the word holds a `(len, page, off)` handle plus a
//! 16-bit fingerprint. The two encodings are distinguished by the low tag
//! byte, whose ranges are disjoint by construction:
//!
//! | tag byte        | meaning                                   |
//! |-----------------|-------------------------------------------|
//! | `0`             | empty slot (the store's all-zero sentinel)|
//! | `len + 1`       | inline payload of `len` bytes             |
//! | `0xFF`          | spill handle into the arena               |
//!
//! Key word (`u128`), inline (`len ≤ 12`):
//!
//! ```text
//! bits   0..8    8..104        104..128
//!        tag     key bytes     zero
//! ```
//!
//! Key word, spill (`len > 12`):
//!
//! ```text
//! bits   0..8   8..24   24..40   40..64   64..80   80..128
//!        0xFF   fp      len      page     off      h48
//! ```
//!
//! The spill word carries the low 48 bits of the key's hash (`h48`) so an
//! eviction chain can re-route a spilled key to its other candidate bucket
//! **without dereferencing the arena** — bucket choice is a pure function
//! of `h48`. The fingerprint is the *high* 16 bits of the hash, independent
//! of `h48`, and rejects non-matching spilled keys from the bucket line
//! before any arena read (the two-lookup bound).
//!
//! Value word (`u64`), inline (`len ≤ 7`): tag then up to 7 payload bytes.
//! Value word, spill: `0xFF | len:u16 | page:u24 | off:u16`.
//!
//! Because inline tags are `1..=13` (keys) / `1..=8` (values) and the spill
//! tag is `0xFF`, no inline encoding can collide with a spill handle or
//! with the empty sentinel — the prefix-freedom the property tests pin.

/// Longest key stored inline in the 16-byte key word.
pub const INLINE_KEY_MAX: usize = 12;
/// Longest value stored inline in the 8-byte value word.
pub const INLINE_VAL_MAX: usize = 7;
/// Tag byte marking a spill handle.
pub const SPILL_TAG: u8 = 0xFF;
/// Longest byte string either word can address (the handle's 16-bit len).
pub const MAX_BLOB_LEN: usize = u16::MAX as usize;
/// Exclusive bound on the handle's 24-bit page index.
pub const MAX_PAGES: u32 = 1 << 24;
/// Exclusive bound on the handle's 16-bit in-page byte offset.
pub const MAX_PAGE_OFF: u32 = 1 << 16;

/// A block of spilled bytes in the arena: page index, byte offset within
/// the page, and length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpillRef {
    /// Arena page index.
    pub page: u32,
    /// Byte offset within the page.
    pub off: u32,
    /// Block length in bytes.
    pub len: u32,
}

/// FNV-1a over the key bytes: the 64-bit hash every per-subtable bucket
/// derivation and the fingerprint are drawn from.
#[inline]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// The low 48 bits of a key hash — what bucket derivation consumes and
/// what a spill key word stores.
#[inline]
pub fn h48(hash: u64) -> u64 {
    hash & 0xFFFF_FFFF_FFFF
}

/// The 16-bit fingerprint: the high bits of the hash, independent of
/// [`h48`].
#[inline]
pub fn fingerprint(hash: u64) -> u16 {
    (hash >> 48) as u16
}

/// A decoded key word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyRepr {
    /// The key bytes live in the word itself.
    Inline {
        /// Key length (≤ [`INLINE_KEY_MAX`]).
        len: u8,
        /// Payload, zero-padded.
        bytes: [u8; INLINE_KEY_MAX],
    },
    /// The key bytes live in the arena.
    Spill {
        /// Hash fingerprint (pre-arena reject filter).
        fp: u16,
        /// Arena block holding the key bytes.
        blob: SpillRef,
        /// Low 48 hash bits (bucket derivation without an arena read).
        h48: u64,
    },
}

impl KeyRepr {
    /// The inline payload as a slice, if inline.
    pub fn inline_bytes(&self) -> Option<&[u8]> {
        match self {
            KeyRepr::Inline { len, bytes } => Some(&bytes[..*len as usize]),
            KeyRepr::Spill { .. } => None,
        }
    }

    /// The arena block, if spilled.
    pub fn spill(&self) -> Option<SpillRef> {
        match self {
            KeyRepr::Inline { .. } => None,
            KeyRepr::Spill { blob, .. } => Some(*blob),
        }
    }
}

/// Encode a short key inline. Panics if `bytes` exceeds
/// [`INLINE_KEY_MAX`].
pub fn encode_inline_key(bytes: &[u8]) -> u128 {
    assert!(bytes.len() <= INLINE_KEY_MAX, "inline key too long");
    let mut w = bytes.len() as u128 + 1;
    for (i, &b) in bytes.iter().enumerate() {
        w |= (b as u128) << (8 + 8 * i);
    }
    w
}

/// Encode a spilled key: fingerprint + arena handle + `h48`.
pub fn encode_spill_key(fp: u16, blob: SpillRef, h48: u64) -> u128 {
    assert!(blob.len as usize <= MAX_BLOB_LEN, "spill key too long");
    assert!(blob.page < MAX_PAGES, "arena page index overflow");
    assert!(blob.off < MAX_PAGE_OFF, "arena page offset overflow");
    debug_assert_eq!(h48 >> 48, 0, "h48 wider than 48 bits");
    SPILL_TAG as u128
        | (fp as u128) << 8
        | (blob.len as u128) << 24
        | (blob.page as u128) << 40
        | (blob.off as u128) << 64
        | (h48 as u128) << 80
}

/// Decode a non-empty key word. Panics on the empty sentinel or a
/// malformed tag (both indicate corruption, which `verify_integrity`
/// surfaces as an error instead).
pub fn decode_key(w: u128) -> KeyRepr {
    let tag = (w & 0xFF) as u8;
    assert_ne!(tag, 0, "decoding the empty key sentinel");
    if tag == SPILL_TAG {
        KeyRepr::Spill {
            fp: (w >> 8) as u16,
            blob: SpillRef {
                len: (w >> 24) as u16 as u32,
                page: ((w >> 40) & 0xFF_FFFF) as u32,
                off: (w >> 64) as u16 as u32,
            },
            h48: ((w >> 80) & 0xFFFF_FFFF_FFFF) as u64,
        }
    } else {
        let len = tag - 1;
        assert!(len as usize <= INLINE_KEY_MAX, "malformed inline key tag");
        let mut bytes = [0u8; INLINE_KEY_MAX];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = (w >> (8 + 8 * i)) as u8;
        }
        KeyRepr::Inline { len, bytes }
    }
}

/// A decoded value word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValRepr {
    /// The value bytes live in the word itself.
    Inline {
        /// Value length (≤ [`INLINE_VAL_MAX`]).
        len: u8,
        /// Payload, zero-padded.
        bytes: [u8; INLINE_VAL_MAX],
    },
    /// The value bytes live in the arena.
    Spill(SpillRef),
}

impl ValRepr {
    /// The arena block, if spilled.
    pub fn spill(&self) -> Option<SpillRef> {
        match self {
            ValRepr::Inline { .. } => None,
            ValRepr::Spill(blob) => Some(*blob),
        }
    }
}

/// Encode a short value inline. Panics if `bytes` exceeds
/// [`INLINE_VAL_MAX`].
pub fn encode_inline_val(bytes: &[u8]) -> u64 {
    assert!(bytes.len() <= INLINE_VAL_MAX, "inline value too long");
    let mut w = bytes.len() as u64 + 1;
    for (i, &b) in bytes.iter().enumerate() {
        w |= (b as u64) << (8 + 8 * i);
    }
    w
}

/// Encode a spilled value handle.
pub fn encode_spill_val(blob: SpillRef) -> u64 {
    assert!(blob.len as usize <= MAX_BLOB_LEN, "spill value too long");
    assert!(blob.page < MAX_PAGES, "arena page index overflow");
    assert!(blob.off < MAX_PAGE_OFF, "arena page offset overflow");
    SPILL_TAG as u64 | (blob.len as u64) << 8 | (blob.page as u64) << 24 | (blob.off as u64) << 48
}

/// Decode a non-empty value word (panics on the empty sentinel or a
/// malformed tag, as [`decode_key`] does).
pub fn decode_val(w: u64) -> ValRepr {
    let tag = (w & 0xFF) as u8;
    assert_ne!(tag, 0, "decoding the empty value sentinel");
    if tag == SPILL_TAG {
        ValRepr::Spill(SpillRef {
            len: (w >> 8) as u16 as u32,
            page: ((w >> 24) & 0xFF_FFFF) as u32,
            off: (w >> 48) as u16 as u32,
        })
    } else {
        let len = tag - 1;
        assert!(len as usize <= INLINE_VAL_MAX, "malformed inline value tag");
        let mut bytes = [0u8; INLINE_VAL_MAX];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = (w >> (8 + 8 * i)) as u8;
        }
        ValRepr::Inline { len, bytes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn inline_key_round_trips_all_lengths() {
        for len in 0..=INLINE_KEY_MAX {
            let bytes: Vec<u8> = (0..len as u8).map(|i| i.wrapping_mul(37) ^ 0xA5).collect();
            let w = encode_inline_key(&bytes);
            match decode_key(w) {
                KeyRepr::Inline { len: l, bytes: b } => {
                    assert_eq!(l as usize, len);
                    assert_eq!(&b[..len], &bytes[..]);
                }
                other => panic!("inline key decoded as {other:?}"),
            }
        }
    }

    #[test]
    fn spill_key_round_trips_fields() {
        let blob = SpillRef {
            page: 0xAB_CDEF,
            off: 0xBEEF,
            len: 4321,
        };
        let w = encode_spill_key(0x1234, blob, 0x0DEA_DBEE_F123);
        match decode_key(w) {
            KeyRepr::Spill { fp, blob: b, h48 } => {
                assert_eq!(fp, 0x1234);
                assert_eq!(b, blob);
                assert_eq!(h48, 0x0DEA_DBEE_F123);
            }
            other => panic!("spill key decoded as {other:?}"),
        }
    }

    #[test]
    fn value_words_round_trip() {
        for len in 0..=INLINE_VAL_MAX {
            let bytes: Vec<u8> = (0..len as u8).map(|i| 0xF0 ^ i).collect();
            match decode_val(encode_inline_val(&bytes)) {
                ValRepr::Inline { len: l, bytes: b } => {
                    assert_eq!(l as usize, len);
                    assert_eq!(&b[..len], &bytes[..]);
                }
                other => panic!("inline value decoded as {other:?}"),
            }
        }
        let blob = SpillRef {
            page: 7,
            off: 4088,
            len: 65535,
        };
        assert_eq!(decode_val(encode_spill_val(blob)), ValRepr::Spill(blob));
    }

    #[test]
    fn fingerprint_and_h48_partition_the_hash() {
        let h = hash_bytes(b"the quick brown fox");
        assert_eq!((fingerprint(h) as u64) << 48 | h48(h), h);
    }

    proptest! {
        /// The tentpole property: encoding round-trips for every length
        /// 0..=64 and is prefix-free — an inline word can never equal a
        /// spill word (disjoint tags) nor the empty sentinel.
        #[test]
        fn keyrepr_round_trips_and_is_prefix_free(
            len in 0usize..=64,
            seed in any::<u64>(),
        ) {
            let bytes: Vec<u8> = (0..len)
                .map(|i| (seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (8 * (i % 8))) as u8)
                .collect();
            let hash = hash_bytes(&bytes);
            if len <= INLINE_KEY_MAX {
                let w = encode_inline_key(&bytes);
                prop_assert_ne!(w, 0u128, "inline word must not be the empty sentinel");
                prop_assert_ne!((w & 0xFF) as u8, SPILL_TAG);
                match decode_key(w) {
                    KeyRepr::Inline { len: l, bytes: b } => {
                        prop_assert_eq!(l as usize, len);
                        prop_assert_eq!(&b[..len], &bytes[..]);
                    }
                    other => prop_assert!(false, "decoded as {:?}", other),
                }
                // Prefix-freedom: no spill word with any handle can equal
                // this inline word, because their tag bytes differ.
                let blob = SpillRef { page: (seed % 100) as u32, off: (seed % 4096) as u32, len: len.max(13) as u32 };
                let s = encode_spill_key(fingerprint(hash), blob, h48(hash));
                prop_assert_ne!(w, s, "inline/spill bit patterns must be disjoint");
            } else {
                let blob = SpillRef { page: (seed % 1000) as u32, off: (seed % 4096) as u32, len: len as u32 };
                let w = encode_spill_key(fingerprint(hash), blob, h48(hash));
                prop_assert_eq!((w & 0xFF) as u8, SPILL_TAG);
                match decode_key(w) {
                    KeyRepr::Spill { fp, blob: b, h48: h } => {
                        prop_assert_eq!(fp, fingerprint(hash));
                        prop_assert_eq!(b, blob);
                        prop_assert_eq!(h, h48(hash));
                    }
                    other => prop_assert!(false, "decoded as {:?}", other),
                }
            }
        }

        /// Value words obey the same tag discipline.
        #[test]
        fn valrepr_round_trips_and_is_prefix_free(
            len in 0usize..=64,
            seed in any::<u64>(),
        ) {
            let bytes: Vec<u8> = (0..len).map(|i| (seed >> (8 * (i % 8))) as u8).collect();
            if len <= INLINE_VAL_MAX {
                let w = encode_inline_val(&bytes);
                prop_assert_ne!(w, 0u64);
                prop_assert_ne!((w & 0xFF) as u8, SPILL_TAG);
                match decode_val(w) {
                    ValRepr::Inline { len: l, bytes: b } => {
                        prop_assert_eq!(l as usize, len);
                        prop_assert_eq!(&b[..len], &bytes[..]);
                    }
                    other => prop_assert!(false, "decoded as {:?}", other),
                }
            } else {
                let blob = SpillRef { page: (seed % 1000) as u32, off: (seed % 4096) as u32, len: len as u32 };
                let w = encode_spill_val(blob);
                prop_assert_eq!(decode_val(w), ValRepr::Spill(blob));
            }
        }

        /// Distinct inline keys produce distinct words (the word IS the
        /// identity for short keys, so bucket scans need no byte compare).
        #[test]
        fn inline_encoding_is_injective(a in 0u64..1 << 20, b in 0u64..1 << 20) {
            let ka = a.to_le_bytes();
            let kb = b.to_le_bytes();
            let wa = encode_inline_key(&ka);
            let wb = encode_inline_key(&kb);
            prop_assert_eq!(a == b, wa == wb);
        }
    }
}
