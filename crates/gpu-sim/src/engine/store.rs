//! Typed device buffers: bucketized and flat slot stores.
//!
//! [`BucketStore`] is the storage half of the probe engine — the bucketed
//! key/value arrays plus per-bucket locks that every bucketized cuckoo
//! scheme in the workspace (DyCuckoo's subtables, the wide-KV variant,
//! MegaKV) is built on. Its geometry and its device-byte footprint come
//! from the [`LayoutConfig`] it is created with, so a table can be
//! instantiated under any scheme × bucket-width combination without
//! touching kernel code.
//!
//! [`SlotStore`] is the degenerate, bucketless case: a flat key array and
//! a flat value array addressed slot by slot, as the per-slot baselines
//! (CUDPP, linear probing) and SlabHash's slab pool use. Accounting for
//! slot stores is inherently layout-free — every access is an uncoalesced
//! single-slot transaction charged at the call site.

use crate::atomic::{Locks, RoundCtx};

use super::layout::LayoutConfig;

/// The splitmix64 finalizer — the store's default fingerprint mixer.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A key or value word a store can hold: fixed width, with a reserved
/// all-zeroes sentinel for empty slots.
pub trait SlotWord: Copy + Eq + std::fmt::Debug {
    /// The empty-slot sentinel.
    const EMPTY: Self;
    /// Device bytes per word.
    const BYTES: u64;

    /// Whether this word is the empty sentinel.
    #[inline]
    fn is_empty_word(self) -> bool {
        self == Self::EMPTY
    }

    /// Default hash feeding the fingerprint lane: any deterministic
    /// function of the stored word preserves false-negative freedom.
    /// Stores whose words are *not* stable for a given logical key (the
    /// unsized tier's spill handles move between arena pages) install a
    /// custom function via [`BucketStore::set_fp_fn`] instead.
    fn fp_hash(self) -> u64;
}

impl SlotWord for u32 {
    const EMPTY: Self = 0;
    const BYTES: u64 = 4;

    #[inline]
    fn fp_hash(self) -> u64 {
        mix64(self as u64)
    }
}

impl SlotWord for u64 {
    const EMPTY: Self = 0;
    const BYTES: u64 = 8;

    #[inline]
    fn fp_hash(self) -> u64 {
        mix64(self)
    }
}

impl SlotWord for u128 {
    const EMPTY: Self = 0;
    const BYTES: u64 = 16;

    #[inline]
    fn fp_hash(self) -> u64 {
        mix64((self ^ (self >> 64)) as u64)
    }
}

/// A bucketized key/value store with per-bucket locks.
///
/// The logical structure (which bucket holds which pair) is independent of
/// the layout; the layout governs geometry (slots per bucket) and cost
/// (transactions per operation, device bytes). Two stores with equal slot
/// counts therefore place keys identically even under different schemes —
/// the invariant the layout-equivalence property test pins.
#[derive(Debug, Clone)]
pub struct BucketStore<K: SlotWord, V: SlotWord> {
    keys: Vec<K>,
    vals: Vec<V>,
    /// Per-slot fingerprints, allocated only when the layout carries a
    /// fingerprint lane. Invariant: `fps[idx] == 0` ⟺ `keys[idx]` empty,
    /// so emptiness is answerable from the lane alone.
    fps: Vec<u16>,
    /// Hash feeding the lane; defaults to [`SlotWord::fp_hash`].
    fp_fn: fn(K) -> u64,
    /// Per-bucket lock flags (public so kernels can pass them to
    /// [`crate::RoundCtx`] atomics).
    pub locks: Locks,
    layout: LayoutConfig,
    n_buckets: usize,
    occupied: u64,
}

impl<K: SlotWord, V: SlotWord> BucketStore<K, V> {
    /// Create an empty store of `n_buckets` buckets under `layout` (any
    /// positive count; even counts can later be halved cleanly).
    pub fn new(n_buckets: usize, layout: LayoutConfig) -> Self {
        assert!(n_buckets >= 1, "bucket count must be positive");
        debug_assert_eq!(layout.key_bytes, K::BYTES, "layout key width vs key type");
        debug_assert_eq!(
            layout.val_bytes,
            V::BYTES,
            "layout value width vs value type"
        );
        let fp_slots = if layout.has_fp() {
            n_buckets * layout.slots
        } else {
            0
        };
        Self {
            keys: vec![K::EMPTY; n_buckets * layout.slots],
            vals: vec![V::EMPTY; n_buckets * layout.slots],
            fps: vec![0; fp_slots],
            fp_fn: K::fp_hash,
            locks: Locks::new(n_buckets),
            layout,
            n_buckets,
            occupied: 0,
        }
    }

    /// Install a custom fingerprint hash. Must be called before any key
    /// is stored — the lane is not recomputed retroactively.
    pub fn set_fp_fn(&mut self, f: fn(K) -> u64) {
        debug_assert_eq!(self.occupied, 0, "set_fp_fn on a populated store");
        self.fp_fn = f;
    }

    /// Whether this store maintains a fingerprint lane.
    #[inline]
    pub fn fp_active(&self) -> bool {
        self.layout.has_fp()
    }

    /// The installed fingerprint hash (so a thread-safe twin can be
    /// created with identical lane contents; see
    /// [`BucketStore::to_striped`]).
    #[inline]
    pub fn fp_fn(&self) -> fn(K) -> u64 {
        self.fp_fn
    }

    /// The fingerprint the lane stores for `key`: the configured hash
    /// folded into `1..=2^bits - 1` (0 is the empty-slot sentinel).
    #[inline]
    pub fn fp_of(&self, key: K) -> u16 {
        self.fp_of_hash((self.fp_fn)(key))
    }

    /// Fold a precomputed fingerprint hash into the lane's value range.
    /// Query paths that cannot reconstruct the stored word (the unsized
    /// tier's spill handles) hash their side and fold here.
    #[inline]
    pub fn fp_of_hash(&self, h: u64) -> u16 {
        debug_assert!(self.fp_active());
        (h % self.layout.fp_max() + 1) as u16
    }

    /// The fingerprint word of bucket `b`.
    #[inline]
    pub fn bucket_fps(&self, b: usize) -> &[u16] {
        let s = self.layout.slots;
        &self.fps[b * s..(b + 1) * s]
    }

    /// The layout this store was created under.
    #[inline]
    pub fn layout(&self) -> &LayoutConfig {
        &self.layout
    }

    /// Slots per bucket.
    #[inline]
    pub fn slots_per_bucket(&self) -> usize {
        self.layout.slots
    }

    /// Number of buckets.
    #[inline]
    pub fn n_buckets(&self) -> usize {
        self.n_buckets
    }

    /// Total key slots (`n_i` in the paper, measured in slots).
    #[inline]
    pub fn capacity_slots(&self) -> u64 {
        (self.n_buckets * self.layout.slots) as u64
    }

    /// Occupied slots (`m_i` in the paper).
    #[inline]
    pub fn occupied(&self) -> u64 {
        self.occupied
    }

    /// This store's filled factor `θ_i = m_i / n_i`.
    #[inline]
    pub fn fill_factor(&self) -> f64 {
        self.occupied as f64 / self.capacity_slots() as f64
    }

    /// Device bytes this store occupies under its layout: padded bucket
    /// strides plus one lock word per bucket.
    pub fn device_bytes(&self) -> u64 {
        self.layout.device_bytes_for(self.n_buckets)
    }

    /// The keys of bucket `b`.
    #[inline]
    pub fn bucket_keys(&self, b: usize) -> &[K] {
        let s = self.layout.slots;
        &self.keys[b * s..(b + 1) * s]
    }

    /// The values of bucket `b`.
    #[inline]
    pub fn bucket_vals(&self, b: usize) -> &[V] {
        let s = self.layout.slots;
        &self.vals[b * s..(b + 1) * s]
    }

    /// Warp-wide probe: the slot in bucket `b` holding `key`, if any.
    /// (In CUDA this is one ballot over the lanes.)
    #[inline]
    pub fn find_slot(&self, b: usize, key: K) -> Option<usize> {
        self.bucket_keys(b).iter().position(|&k| k == key)
    }

    /// Warp-wide probe for an empty slot in bucket `b`.
    #[inline]
    pub fn find_empty(&self, b: usize) -> Option<usize> {
        self.find_slot(b, K::EMPTY)
    }

    /// Fingerprint-gated probe for `key` in bucket `b`, charging as it
    /// goes. Without a lane this is exactly a bare probe (one
    /// `charge_probe` + `find_slot`). With a lane, the gate reads only
    /// the fingerprint word; the key lines are charged (and scanned)
    /// only when some slot's fingerprint matches — a false positive
    /// still pays the confirm and then misses on the key scan, so the
    /// result is always identical to the ungated probe.
    pub fn probe_find(&self, b: usize, key: K, ctx: &mut RoundCtx) -> Option<usize> {
        if !self.fp_active() {
            self.layout.charge_probe(ctx);
            return self.find_slot(b, key);
        }
        self.layout.charge_fp_probe(ctx);
        let fp = self.fp_of(key);
        if !self.bucket_fps(b).contains(&fp) {
            debug_assert!(
                self.find_slot(b, key).is_none(),
                "fingerprint false negative"
            );
            return None;
        }
        self.layout.charge_fp_confirm(ctx);
        self.find_slot(b, key)
    }

    /// Fingerprint-gated insert-side probe: `(duplicate slot, empty
    /// slot)` for `key` in bucket `b`, charged like [`Self::probe_find`].
    /// The empty slot is read off the fingerprint word itself when the
    /// lane exists (`fps[s] == 0` ⟺ empty), so a gate rejection still
    /// answers "where can this key go" from the single fingerprint line.
    pub fn probe_for_insert(
        &self,
        b: usize,
        key: K,
        ctx: &mut RoundCtx,
    ) -> (Option<usize>, Option<usize>) {
        if !self.fp_active() {
            self.layout.charge_probe(ctx);
            return (self.find_slot(b, key), self.find_empty(b));
        }
        self.layout.charge_fp_probe(ctx);
        let fp = self.fp_of(key);
        let fps = self.bucket_fps(b);
        let empty = fps.iter().position(|&f| f == 0);
        debug_assert_eq!(empty, self.find_empty(b), "fp lane / key lane empty drift");
        if !fps.contains(&fp) {
            debug_assert!(
                self.find_slot(b, key).is_none(),
                "fingerprint false negative"
            );
            return (None, empty);
        }
        self.layout.charge_fp_confirm(ctx);
        (self.find_slot(b, key), empty)
    }

    /// Read the KV pair at `(bucket, slot)`.
    #[inline]
    pub fn slot(&self, b: usize, s: usize) -> (K, V) {
        let idx = b * self.layout.slots + s;
        (self.keys[idx], self.vals[idx])
    }

    /// Write a KV pair into an **empty** slot, growing the occupancy count.
    #[inline]
    pub fn write_new(&mut self, b: usize, s: usize, key: K, val: V) {
        let idx = b * self.layout.slots + s;
        debug_assert!(self.keys[idx].is_empty_word(), "write_new over a live slot");
        debug_assert!(!key.is_empty_word());
        if self.fp_active() {
            self.fps[idx] = self.fp_of(key);
        }
        self.keys[idx] = key;
        self.vals[idx] = val;
        self.occupied += 1;
    }

    /// Overwrite the value of a live slot (an in-place update).
    #[inline]
    pub fn update_val(&mut self, b: usize, s: usize, val: V) {
        let idx = b * self.layout.slots + s;
        debug_assert!(!self.keys[idx].is_empty_word());
        self.vals[idx] = val;
    }

    /// Swap the KV at `(b, s)` with the given pair, returning the evicted
    /// occupant. Occupancy is unchanged.
    #[inline]
    pub fn swap(&mut self, b: usize, s: usize, key: K, val: V) -> (K, V) {
        let idx = b * self.layout.slots + s;
        debug_assert!(!self.keys[idx].is_empty_word(), "swap with an empty slot");
        let old = (self.keys[idx], self.vals[idx]);
        if self.fp_active() {
            self.fps[idx] = self.fp_of(key);
        }
        self.keys[idx] = key;
        self.vals[idx] = val;
        old
    }

    /// Erase the key at `(b, s)`, shrinking the occupancy count. The value
    /// is deliberately untouched — under SoA, deletion never pays for
    /// value traffic.
    #[inline]
    pub fn erase(&mut self, b: usize, s: usize) {
        let idx = b * self.layout.slots + s;
        debug_assert!(!self.keys[idx].is_empty_word(), "erasing an empty slot");
        if self.fp_active() {
            self.fps[idx] = 0;
        }
        self.keys[idx] = K::EMPTY;
        self.occupied -= 1;
    }

    /// Iterate over all live `(key, value)` pairs (host-side; used by
    /// rehashing, verification and tests — not charged to the cost model).
    pub fn iter_live(&self) -> impl Iterator<Item = (K, V)> + '_ {
        self.keys
            .iter()
            .zip(self.vals.iter())
            .filter(|(&k, _)| !k.is_empty_word())
            .map(|(&k, &v)| (k, v))
    }

    /// Recount occupancy from the key array. Used by debug assertions and
    /// the accounting-drift property test.
    pub fn recount(&self) -> u64 {
        self.keys.iter().filter(|k| !k.is_empty_word()).count() as u64
    }
}

/// A flat, bucketless key/value store addressed slot by slot.
#[derive(Debug, Clone)]
pub struct SlotStore<K: SlotWord, V: SlotWord> {
    keys: Vec<K>,
    vals: Vec<V>,
}

impl<K: SlotWord, V: SlotWord> SlotStore<K, V> {
    /// Create a store of `n_slots` empty slots.
    pub fn new(n_slots: usize) -> Self {
        Self {
            keys: vec![K::EMPTY; n_slots],
            vals: vec![V::EMPTY; n_slots],
        }
    }

    /// Number of slots.
    #[inline]
    pub fn n_slots(&self) -> usize {
        self.keys.len()
    }

    /// Grow the store to `n_slots` slots, filling with empties (slab-pool
    /// growth). Shrinking is not supported.
    pub fn grow(&mut self, n_slots: usize) {
        debug_assert!(n_slots >= self.keys.len());
        self.keys.resize(n_slots, K::EMPTY);
        self.vals.resize(n_slots, V::EMPTY);
    }

    /// Device bytes occupied (keys + values, densely packed).
    pub fn device_bytes(&self) -> u64 {
        self.keys.len() as u64 * (K::BYTES + V::BYTES)
    }

    /// The key at `slot`.
    #[inline]
    pub fn key(&self, slot: usize) -> K {
        self.keys[slot]
    }

    /// The value at `slot`.
    #[inline]
    pub fn val(&self, slot: usize) -> V {
        self.vals[slot]
    }

    /// Store a KV pair at `slot`, returning the previous occupant.
    #[inline]
    pub fn exchange(&mut self, slot: usize, key: K, val: V) -> (K, V) {
        let old = (self.keys[slot], self.vals[slot]);
        self.keys[slot] = key;
        self.vals[slot] = val;
        old
    }

    /// Overwrite the key at `slot` (tombstoning, erasure).
    #[inline]
    pub fn set_key(&mut self, slot: usize, key: K) {
        self.keys[slot] = key;
    }

    /// Overwrite the value at `slot`.
    #[inline]
    pub fn set_val(&mut self, slot: usize, val: V) {
        self.vals[slot] = val;
    }

    /// A contiguous window of the key array (slab scans).
    #[inline]
    pub fn keys_in(&self, range: std::ops::Range<usize>) -> &[K] {
        &self.keys[range]
    }

    /// Iterate over all live `(key, value)` pairs, with `dead` treated as
    /// an additional non-live marker (tombstones).
    pub fn iter_live_except(&self, dead: K) -> impl Iterator<Item = (K, V)> + '_ {
        self.keys
            .iter()
            .zip(self.vals.iter())
            .filter(move |(&k, _)| !k.is_empty_word() && k != dead)
            .map(|(&k, &v)| (k, v))
    }

    /// Reset every slot to empty (rebuilds).
    pub fn clear(&mut self) {
        self.keys.iter_mut().for_each(|k| *k = K::EMPTY);
        self.vals.iter_mut().for_each(|v| *v = V::EMPTY);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_store_roundtrip() {
        let mut t: BucketStore<u32, u32> = BucketStore::new(4, LayoutConfig::default());
        assert_eq!(t.n_buckets(), 4);
        assert_eq!(t.capacity_slots(), 4 * 32);
        let s = t.find_empty(2).unwrap();
        t.write_new(2, s, 99, 7);
        assert_eq!(t.occupied(), 1);
        let found = t.find_slot(2, 99).unwrap();
        assert_eq!(t.slot(2, found), (99, 7));
        t.erase(2, found);
        assert_eq!(t.occupied(), 0);
        assert!(t.find_slot(2, 99).is_none());
    }

    #[test]
    fn bucket_store_width_follows_layout() {
        let t: BucketStore<u32, u32> = BucketStore::new(4, LayoutConfig::aos(16, 4, 4));
        assert_eq!(t.slots_per_bucket(), 16);
        assert_eq!(t.capacity_slots(), 64);
        assert_eq!(t.bucket_keys(0).len(), 16);
        assert_eq!(t.device_bytes(), 4 * (128 + 4));
    }

    #[test]
    fn equal_slot_layouts_place_keys_identically() {
        let mut soa: BucketStore<u32, u32> = BucketStore::new(4, LayoutConfig::soa(16, 4, 4));
        let mut aos: BucketStore<u32, u32> = BucketStore::new(4, LayoutConfig::aos(16, 4, 4));
        for k in 1..=40u32 {
            let b = (k % 4) as usize;
            let (ss, sa) = (soa.find_empty(b), aos.find_empty(b));
            assert_eq!(ss, sa);
            if let Some(s) = ss {
                soa.write_new(b, s, k, k * 2);
                aos.write_new(b, s, k, k * 2);
            }
        }
        assert_eq!(soa.occupied(), aos.occupied());
        for b in 0..4 {
            assert_eq!(soa.bucket_keys(b), aos.bucket_keys(b));
        }
        // Same placement, different footprint: that is the whole point.
        assert!(aos.device_bytes() < soa.device_bytes() + 1);
    }

    #[test]
    fn wide_words_use_eight_byte_accounting() {
        let t: BucketStore<u64, u64> = BucketStore::new(3, LayoutConfig::soa(16, 8, 8));
        assert_eq!(t.device_bytes(), 3 * (16 * 16 + 4));
    }

    #[test]
    fn fp_lane_tracks_mutations() {
        let mut t: BucketStore<u32, u32> = BucketStore::new(4, LayoutConfig::default().with_fp(8));
        assert!(t.fp_active());
        let s = t.find_empty(1).unwrap();
        t.write_new(1, s, 42, 7);
        assert_eq!(t.bucket_fps(1)[s], t.fp_of(42));
        let old = t.swap(1, s, 99, 8);
        assert_eq!(old, (42, 7));
        assert_eq!(t.bucket_fps(1)[s], t.fp_of(99));
        t.erase(1, s);
        assert_eq!(t.bucket_fps(1)[s], 0);
    }

    #[test]
    fn gated_probe_matches_bare_probe_results() {
        use crate::metrics::Metrics;

        let mut gated: BucketStore<u32, u32> =
            BucketStore::new(4, LayoutConfig::default().with_fp(16));
        let mut bare: BucketStore<u32, u32> = BucketStore::new(4, LayoutConfig::default());
        for k in 1..=100u32 {
            let b = (k % 4) as usize;
            if let Some(s) = gated.find_empty(b) {
                gated.write_new(b, s, k, k);
                bare.write_new(b, s, k, k);
            }
        }
        let mut m = Metrics::default();
        let mut ctx = RoundCtx::new(&mut m);
        for k in 1..=200u32 {
            let b = (k % 4) as usize;
            assert_eq!(
                gated.probe_find(b, k, &mut ctx),
                bare.find_slot(b, k),
                "key {k}"
            );
            let (dup, empty) = gated.probe_for_insert(b, k, &mut ctx);
            assert_eq!(dup, bare.find_slot(b, k), "key {k}");
            assert_eq!(empty, bare.find_empty(b), "key {k}");
        }
        ctx.finish();
    }

    #[test]
    fn gated_probe_saves_lines_on_multi_line_layouts() {
        use crate::metrics::Metrics;

        // aos32 probes span two lines; the fp gate answers a clean miss
        // from one. Use an empty table so every lookup is a gate reject.
        let gated: BucketStore<u32, u32> =
            BucketStore::new(4, LayoutConfig::aos(32, 4, 4).with_fp(8));
        let bare: BucketStore<u32, u32> = BucketStore::new(4, LayoutConfig::aos(32, 4, 4));
        let miss_lines = |f: &dyn Fn(&mut RoundCtx)| {
            let mut m = Metrics::default();
            let mut ctx = RoundCtx::new(&mut m);
            f(&mut ctx);
            ctx.finish();
            (m.read_transactions, m.lookups)
        };
        let g = miss_lines(&|ctx| {
            assert!(gated.probe_find(0, 7, ctx).is_none());
        });
        let b = miss_lines(&|ctx| {
            bare.layout().charge_probe(ctx);
            assert!(bare.find_slot(0, 7).is_none());
        });
        assert_eq!(g, (1, 1));
        assert_eq!(b, (2, 1));
    }

    #[test]
    fn slot_store_roundtrip() {
        let mut s: SlotStore<u32, u32> = SlotStore::new(8);
        assert_eq!(s.device_bytes(), 64);
        assert_eq!(s.exchange(3, 7, 70), (0, 0));
        assert_eq!((s.key(3), s.val(3)), (7, 70));
        s.set_val(3, 71);
        assert_eq!(s.val(3), 71);
        s.set_key(3, u32::MAX); // tombstone
        assert_eq!(s.iter_live_except(u32::MAX).count(), 0);
        s.grow(16);
        assert_eq!(s.n_slots(), 16);
        s.clear();
        assert_eq!(s.key(3), 0);
    }
}
