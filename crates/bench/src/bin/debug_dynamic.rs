//! Diagnostic: cost-term breakdown for one dynamic run per scheme.
use bench::driver::{build_dynamic, run_batch, Scheme};
use gpu_sim::{CostModel, SimContext};
use workloads::{dataset_by_name, DynamicWorkload};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "TW".into());
    let scale = bench::scale();
    let ds = dataset_by_name(&name).unwrap().scaled(scale).generate(1);
    let batch = ((1_000_000.0 * scale).round() as usize).max(1000);
    let w = DynamicWorkload::build(&ds, batch, 0.2, 7);
    println!("{} dynamic: {} batches of {}", name, w.batches.len(), batch);
    for scheme in Scheme::dynamic_set() {
        let mut sim = SimContext::new();
        let mut t = build_dynamic(scheme, 0.30, 0.85, batch, 1, &mut sim);
        for b in &w.batches {
            run_batch(t.as_mut(), &mut sim, b);
        }
        let m = sim.take_metrics();
        let model = CostModel::new(sim.device.config());
        println!(
            "{:<9} {:6.1} Mops | mem {:9.0} atomic {:9.0} issue {:8.0} ns | coal {} rand {} dep {} atomics {} serial {} rounds {} evict {} lockfail {} ops {}",
            scheme.label(),
            model.mops(m.ops, &m),
            model.memory_time_ns(&m), model.atomic_time_ns(&m), model.issue_time_ns(&m),
            m.transactions(), m.random_transactions(), m.dependent_read_transactions,
            m.atomic_ops, m.atomic_serial_units, m.rounds, m.evictions, m.lock_failures, m.ops
        );
    }
}
