//! The unified telemetry registry: named, labeled counters and gauges with
//! one deterministic snapshot format.
//!
//! `gpu_sim::Metrics` and `kv_service::ShardMetrics` keep their plain-struct
//! counters on the hot path (field increments, no lookups); their
//! `register_into` bridges copy those counters here under stable names and
//! labels so one snapshot covers the whole stack. Iteration order is the
//! `BTreeMap` order of `(name, labels)` — fully deterministic, so snapshots
//! are exact-match CI artifacts.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A registered metric value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Monotonic count; repeated registration adds.
    Counter(u64),
    /// Point-in-time value; repeated registration overwrites.
    Gauge(f64),
}

/// Summary statistics of a histogram, registered as five derived metrics
/// (`<name>_count`, `_mean`, `_p50`, `_p99`, `_max`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistStats {
    /// Number of recorded samples.
    pub count: u64,
    /// Mean sample value.
    pub mean: f64,
    /// 50th-percentile sample value.
    pub p50: u64,
    /// 99th-percentile sample value.
    pub p99: u64,
    /// Maximum sample value.
    pub max: u64,
}

/// A deterministic registry of labeled metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    metrics: BTreeMap<(String, String), Value>,
}

/// Render labels canonically: sorted by label name, `{a=b,c=d}`; empty
/// label sets render as the empty string.
fn label_key(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut ls: Vec<(&str, &str)> = labels.to_vec();
    ls.sort_unstable();
    let mut out = String::from("{");
    for (i, (k, v)) in ls.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}={v}");
    }
    out.push('}');
    out
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `v` to the counter `name{labels}` (created at 0 if absent). If
    /// the key was previously registered as a gauge it becomes a counter.
    pub fn counter(&mut self, name: &str, labels: &[(&str, &str)], v: u64) {
        let key = (name.to_string(), label_key(labels));
        let entry = self.metrics.entry(key).or_insert(Value::Counter(0));
        match entry {
            Value::Counter(c) => *c += v,
            Value::Gauge(_) => *entry = Value::Counter(v),
        }
    }

    /// Set the gauge `name{labels}` to `v` (overwrites).
    pub fn gauge(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.metrics
            .insert((name.to_string(), label_key(labels)), Value::Gauge(v));
    }

    /// Register a histogram's summary statistics as five derived metrics:
    /// `<name>_count` (counter) and `_mean`/`_p50`/`_p99`/`_max` (gauges).
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], h: HistStats) {
        self.counter(&format!("{name}_count"), labels, h.count);
        self.gauge(&format!("{name}_mean"), labels, h.mean);
        self.gauge(&format!("{name}_p50"), labels, h.p50 as f64);
        self.gauge(&format!("{name}_p99"), labels, h.p99 as f64);
        self.gauge(&format!("{name}_max"), labels, h.max as f64);
    }

    /// Look up a counter's current value.
    pub fn get_counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.metrics.get(&(name.to_string(), label_key(labels)))? {
            Value::Counter(c) => Some(*c),
            Value::Gauge(_) => None,
        }
    }

    /// Look up a gauge's current value.
    pub fn get_gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.metrics.get(&(name.to_string(), label_key(labels)))? {
            Value::Gauge(g) => Some(*g),
            Value::Counter(_) => None,
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Merge `other` into `self`: counters add, gauges overwrite.
    pub fn merge(&mut self, other: &Registry) {
        for ((name, labels), value) in &other.metrics {
            let entry = self
                .metrics
                .entry((name.clone(), labels.clone()))
                .or_insert(Value::Counter(0));
            match (entry, value) {
                (Value::Counter(a), Value::Counter(b)) => *a += b,
                (entry, v) => *entry = *v,
            }
        }
    }

    /// The snapshot format: one `name{labels} value` line per metric,
    /// sorted by `(name, labels)`. Counters print as integers, gauges with
    /// six decimals — both deterministic.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for ((name, labels), value) in &self.metrics {
            match value {
                Value::Counter(c) => {
                    let _ = writeln!(out, "{name}{labels} {c}");
                }
                Value::Gauge(g) => {
                    let _ = writeln!(out, "{name}{labels} {g:.6}");
                }
            }
        }
        out
    }

    /// CSV form of the snapshot: `name,labels,type,value` rows in the same
    /// deterministic order as [`Registry::to_text`]. Name and label fields
    /// are RFC 4180-quoted, so label values containing commas or quotes
    /// (e.g. `{path=a,b}` from canonicalized label sets) round-trip instead
    /// of corrupting the column structure.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("name,labels,type,value\n");
        for ((name, labels), value) in &self.metrics {
            let name = csv_field(name);
            let labels = csv_field(labels);
            match value {
                Value::Counter(c) => {
                    let _ = writeln!(out, "{name},{labels},counter,{c}");
                }
                Value::Gauge(g) => {
                    let _ = writeln!(out, "{name},{labels},gauge,{g:.6}");
                }
            }
        }
        out
    }
}

/// RFC 4180 field quoting: wrap fields containing commas, quotes, or line
/// breaks in double quotes, doubling any embedded quote. Plain fields pass
/// through unchanged so existing snapshots stay byte-identical.
pub fn csv_field(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_and_gauges_overwrite() {
        let mut r = Registry::new();
        r.counter("ops", &[("shard", "0")], 3);
        r.counter("ops", &[("shard", "0")], 4);
        r.gauge("depth", &[], 2.0);
        r.gauge("depth", &[], 5.0);
        assert_eq!(r.get_counter("ops", &[("shard", "0")]), Some(7));
        assert_eq!(r.get_gauge("depth", &[]), Some(5.0));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn labels_are_canonicalized_by_sorting() {
        let mut r = Registry::new();
        r.counter("x", &[("b", "2"), ("a", "1")], 1);
        r.counter("x", &[("a", "1"), ("b", "2")], 1);
        assert_eq!(r.len(), 1);
        assert_eq!(r.get_counter("x", &[("b", "2"), ("a", "1")]), Some(2));
        assert!(r.to_text().contains("x{a=1,b=2} 2"));
    }

    #[test]
    fn text_snapshot_is_sorted_and_deterministic() {
        let mut r = Registry::new();
        r.gauge("zeta", &[], 1.5);
        r.counter("alpha", &[("k", "v")], 9);
        r.counter("alpha", &[], 1);
        let text = r.to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines, vec!["alpha 1", "alpha{k=v} 9", "zeta 1.500000"]);
        assert_eq!(text, r.clone().to_text());
        assert!(r.to_csv().starts_with("name,labels,type,value\n"));
        assert_eq!(r.to_csv().lines().count(), 1 + r.len());
    }

    #[test]
    fn csv_quotes_labels_with_commas_and_quotes() {
        let mut r = Registry::new();
        // Canonical label rendering of a multi-label set embeds a comma,
        // and adversarial label *values* can carry quotes; both must stay
        // inside one CSV column.
        r.counter("x", &[("a", "1"), ("b", "2")], 7);
        r.counter("path", &[("p", "say \"hi\", world")], 3);
        let csv = r.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,labels,type,value");
        assert!(csv.contains("x,\"{a=1,b=2}\",counter,7"));
        assert!(csv.contains("path,\"{p=say \"\"hi\"\", world}\",counter,3"));
        // Unquoting each data row must yield exactly four columns.
        for line in &lines[1..] {
            let mut cols = 1;
            let mut in_quotes = false;
            let mut chars = line.chars().peekable();
            while let Some(c) = chars.next() {
                match c {
                    '"' if in_quotes && chars.peek() == Some(&'"') => {
                        chars.next();
                    }
                    '"' => in_quotes = !in_quotes,
                    ',' if !in_quotes => cols += 1,
                    _ => {}
                }
            }
            assert_eq!(cols, 4, "row has wrong column count: {line}");
        }
    }

    #[test]
    fn csv_field_passes_plain_strings_through() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("q\"q"), "\"q\"\"q\"");
        assert_eq!(csv_field(""), "");
    }

    #[test]
    fn merge_adds_counters_and_overwrites_gauges() {
        let mut a = Registry::new();
        a.counter("n", &[], 2);
        a.gauge("g", &[], 1.0);
        let mut b = Registry::new();
        b.counter("n", &[], 3);
        b.gauge("g", &[], 9.0);
        b.counter("only_b", &[], 1);
        a.merge(&b);
        assert_eq!(a.get_counter("n", &[]), Some(5));
        assert_eq!(a.get_gauge("g", &[]), Some(9.0));
        assert_eq!(a.get_counter("only_b", &[]), Some(1));
    }

    #[test]
    fn histogram_expands_to_five_metrics() {
        let mut r = Registry::new();
        r.histogram(
            "lat",
            &[("shard", "1")],
            HistStats {
                count: 10,
                mean: 2.5,
                p50: 2,
                p99: 9,
                max: 11,
            },
        );
        assert_eq!(r.len(), 5);
        assert_eq!(r.get_counter("lat_count", &[("shard", "1")]), Some(10));
        assert_eq!(r.get_gauge("lat_max", &[("shard", "1")]), Some(11.0));
    }
}
