//! Cross-crate integration of the `kv-service` layer: semantic
//! equivalence with a reference map across shard boundaries, shard/bucket
//! hash independence, typed overload behaviour, and determinism.

use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::HashMap;

use dycuckoo::hashfn::UniversalHash;
use dycuckoo::{Config, MergeRule};
use gpu_sim::{SchedulePolicy, SimContext};
use kv_service::{AdmitError, KvService, Op, Reply, ServiceConfig, ShardRouter};

/// A service sized so nothing is ever shed (queues exceed the op count).
fn roomy_cfg(shards: usize, ops: usize, seed: u64) -> ServiceConfig {
    ServiceConfig {
        shards,
        table: Config {
            initial_buckets: 8,
            ..Config::default()
        },
        max_batch: 32,
        max_delay_ticks: 3,
        queue_capacity: (ops + 1).max(32),
        shed_watermark: (ops + 1).max(32),
        seed,
        ..ServiceConfig::default()
    }
}

/// Drive `ops` through a service, ticking every `tick_every` submissions,
/// and return the reply observed for each submission index.
fn run_service(ops: &[Op], shards: usize, seed: u64, tick_every: usize) -> Vec<(u32, Reply)> {
    let mut sim = SimContext::new();
    let mut svc = KvService::new(roomy_cfg(shards, ops.len(), seed), &mut sim).unwrap();
    let mut id_to_index = HashMap::new();
    for (i, &op) in ops.iter().enumerate() {
        let id = svc.submit((i % 5) as u32, op).unwrap();
        id_to_index.insert(id, i);
        if (i + 1) % tick_every == 0 {
            svc.tick(&mut sim).unwrap();
        }
    }
    while svc.queue_depths().iter().any(|&d| d > 0) {
        svc.tick(&mut sim).unwrap();
    }
    let mut replies = vec![None; ops.len()];
    for c in svc.drain_completions() {
        replies[id_to_index[&c.id]] = Some((c.key, c.reply));
    }
    replies
        .into_iter()
        .map(|r| r.expect("every op completes"))
        .collect()
}

/// Replay the same sequence into a reference `HashMap`, recording the value
/// each Get would observe at its submission point. The service preserves
/// per-key order (same key → same shard FIFO; coalescing is order-aware),
/// so its Get replies must match these exactly.
fn reference_replies(ops: &[Op]) -> Vec<Option<Option<u32>>> {
    let mut map: HashMap<u32, u32> = HashMap::new();
    ops.iter()
        .map(|&op| match op {
            Op::Get(k) => Some(map.get(&k).copied()),
            Op::Put(k, v) => {
                map.insert(k, v);
                None
            }
            Op::Delete(k) => {
                map.remove(&k);
                None
            }
            Op::Upsert(k, arg, rule) => {
                let merged = match map.get(&k) {
                    Some(&old) => rule.merge(old, arg),
                    None => rule.initial(arg),
                };
                map.insert(k, merged);
                None
            }
            Op::Increment(k) => {
                let merged = match map.get(&k) {
                    Some(&old) => MergeRule::Count.merge(old, 0),
                    None => MergeRule::Count.initial(0),
                };
                map.insert(k, merged);
                None
            }
        })
        .collect()
}

/// Strategy: an op over a small key space (collisions and cross-shard
/// traffic are the interesting cases).
fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (1u32..400).prop_map(Op::Get),
        4 => ((1u32..400), any::<u32>()).prop_map(|(k, v)| Op::Put(k, v)),
        2 => (1u32..400).prop_map(Op::Delete),
        2 => ((1u32..400), (0u32..1000), (0usize..5))
            .prop_map(|(k, v, r)| Op::Upsert(k, v, MergeRule::ALL[r])),
        1 => (1u32..400).prop_map(Op::Increment),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Find-after-insert/delete equivalence with a reference map, across
    /// shard boundaries and interleaved batching/ticking.
    #[test]
    fn service_matches_reference_map(
        ops in vec(op_strategy(), 1..500),
        seed in 1u64..10_000,
    ) {
        let expected = reference_replies(&ops);
        let got = run_service(&ops, 4, seed, 17);
        for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
            if let Some(exp) = e {
                prop_assert_eq!(g.1, Reply::Value(*exp), "op {} ({:?})", i, ops[i]);
            }
        }
    }

    /// Shard count is semantically invisible: the same sequence through 1
    /// shard and through 8 shards yields identical replies.
    #[test]
    fn sharding_is_transparent(
        ops in vec(op_strategy(), 1..300),
        seed in 1u64..10_000,
    ) {
        let one = run_service(&ops, 1, seed, 13);
        let eight = run_service(&ops, 8, seed, 13);
        prop_assert_eq!(one, eight);
    }
}

/// The router's partitioning bits are independent of the bits any subtable
/// hashes on: conditioning keys on their shard leaves every subtable's
/// bucket distribution near-uniform. (The router uses a salted splitmix64
/// stream; the tables use seeded universal hashing over fmix32 — disjoint
/// families with no shared parameters.)
#[test]
fn shard_bits_do_not_constrain_bucket_bits() {
    let table_seed = Config::default().seed;
    let router = ShardRouter::new(4, 0x5E1C_E000).unwrap();
    // The same per-subtable hash construction DyCuckoo::new uses.
    let subtable_hashes: Vec<UniversalHash> = (0..4)
        .map(|i| {
            UniversalHash::from_seed(
                table_seed.wrapping_add(0x517C_C1B7_2722_0A95u64.wrapping_mul(i as u64 + 1)),
            )
        })
        .collect();
    let n_buckets = 64;
    let keys_per_shard = 64_000u32;

    for shard in 0..4 {
        // Collect keys routed to this shard.
        let mut histograms = vec![vec![0u32; n_buckets]; subtable_hashes.len()];
        let mut collected = 0u32;
        let mut k = 0u32;
        while collected < keys_per_shard {
            k += 1;
            if router.shard_of(k) != shard {
                continue;
            }
            collected += 1;
            for (h, hist) in subtable_hashes.iter().zip(histograms.iter_mut()) {
                hist[h.bucket(k, n_buckets)] += 1;
            }
        }
        // If shard bits overlapped a subtable's hash bits, conditioning on
        // the shard would empty (or overfill) some buckets. Require every
        // bucket within ±25% of uniform — far tighter than any overlap
        // failure mode, far looser than random fluctuation at 1000/bucket.
        let expect = keys_per_shard / n_buckets as u32;
        for (t, hist) in histograms.iter().enumerate() {
            for (b, &count) in hist.iter().enumerate() {
                assert!(
                    count > expect * 3 / 4 && count < expect * 5 / 4,
                    "shard {shard}, subtable {t}, bucket {b}: {count} keys vs uniform {expect}"
                );
            }
        }
    }
}

/// Offered load beyond the configured bounds surfaces as typed errors and
/// the queues never exceed their capacity — no unbounded growth.
#[test]
fn overload_is_typed_and_bounded() {
    let mut sim = SimContext::new();
    let cfg = ServiceConfig {
        shards: 2,
        table: Config {
            initial_buckets: 8,
            ..Config::default()
        },
        max_batch: 16,
        max_delay_ticks: 4,
        queue_capacity: 100,
        shed_watermark: 60,
        seed: 3,
        ..ServiceConfig::default()
    };
    let mut svc = KvService::new(cfg, &mut sim).unwrap();
    let (mut shed, mut overloaded) = (0, 0);
    for k in 1..=2_000u32 {
        match svc.submit(0, Op::Put(k, k)) {
            Ok(_) => {}
            Err(AdmitError::Overloaded {
                shard,
                depth,
                capacity,
            }) => {
                overloaded += 1;
                assert!(shard < 2 && depth >= capacity && capacity == 100);
            }
            Err(e) => panic!("unexpected admission error {e:?}"),
        }
        match svc.submit(0, Op::Get(k)) {
            Ok(_) => {}
            Err(AdmitError::Shed {
                depth, watermark, ..
            }) => {
                shed += 1;
                assert!(depth >= watermark && watermark == 60);
            }
            Err(AdmitError::Overloaded { .. }) => overloaded += 1,
            Err(e) => panic!("unexpected admission error {e:?}"),
        }
        for depth in svc.queue_depths() {
            assert!(depth <= 100, "queue exceeded its bound: {depth}");
        }
    }
    assert!(shed > 0, "watermark never shed a read");
    assert!(overloaded > 0, "hard cap never refused a write");
    let m = svc.metrics().total();
    assert_eq!(m.shed_overloaded + m.shed_reads, shed + overloaded);
}

/// Two identical runs — including resizes under load — produce
/// bit-identical metrics CSVs and identical completion streams.
#[test]
fn end_to_end_determinism_with_resizes() {
    let run = || {
        let mut sim = SimContext::new();
        let cfg = ServiceConfig {
            shards: 4,
            table: Config {
                initial_buckets: 4,
                ..Config::default()
            },
            max_batch: 64,
            max_delay_ticks: 2,
            queue_capacity: 100_000,
            shed_watermark: 100_000,
            seed: 77,
            ..ServiceConfig::default()
        };
        let mut svc = KvService::new(cfg, &mut sim).unwrap();
        for k in 1..=6_000u32 {
            svc.submit(k % 11, Op::Put(k, k.rotate_left(7))).unwrap();
            if k % 40 == 0 {
                svc.tick(&mut sim).unwrap();
            }
        }
        while svc.queue_depths().iter().any(|&d| d > 0) {
            svc.tick(&mut sim).unwrap();
        }
        (svc.snapshot().to_csv(), svc.drain_completions())
    };
    let (csv_a, comp_a) = run();
    let (csv_b, comp_b) = run();
    assert_eq!(csv_a, csv_b, "metrics CSV must be bit-identical");
    assert_eq!(comp_a, comp_b);
    // Under this load at least one shard must have resized, so the
    // determinism claim covers the resize path too.
    assert!(
        csv_a.lines().skip(1).any(|l| {
            l.split(',')
                .nth(20)
                .is_some_and(|v| v.parse::<u64>().unwrap_or(0) > 0)
        }),
        "no resize occurred; the determinism check did not exercise resizing"
    );
}

/// Submit `ops` into a single coalesced flush window (no intermediate
/// ticks), flush every shard under `flush_order`, and return each
/// submission's reply in submission order.
fn run_one_window(ops: &[Op], flush_order: SchedulePolicy) -> Vec<(u32, Reply)> {
    let mut sim = SimContext::new();
    let mut cfg = roomy_cfg(4, ops.len(), 0xF1_005);
    cfg.flush_order = flush_order;
    let mut svc = KvService::new(cfg, &mut sim).unwrap();
    let mut id_to_index = HashMap::new();
    for (i, &op) in ops.iter().enumerate() {
        let id = svc.submit((i % 5) as u32, op).unwrap();
        id_to_index.insert(id, i);
    }
    svc.flush_all(&mut sim).unwrap();
    while svc.queue_depths().iter().any(|&d| d > 0) {
        svc.flush_all(&mut sim).unwrap();
    }
    let mut replies = vec![None; ops.len()];
    for c in svc.drain_completions() {
        replies[id_to_index[&c.id]] = Some((c.key, c.reply));
    }
    replies
        .into_iter()
        .map(|r| r.expect("every op completes"))
        .collect()
}

/// A coalesced flush window containing insert → delete → find of the same
/// key yields identical replies no matter in which order the shards flush:
/// within-window coalescing is per-key FIFO, and shards are independent, so
/// the shard visit order must be semantically invisible.
#[test]
fn coalesced_window_identical_across_shard_flush_orders() {
    // Per-key chains that only make sense if submission order is the
    // linearization order: a Get between Put and Delete sees the value, a
    // Get after Delete sees nothing, a re-Put resurrects. Keys are spread
    // across all 4 shards by the router.
    let mut ops = Vec::new();
    for k in (1u32..=40).step_by(3) {
        ops.push(Op::Put(k, k * 100));
        ops.push(Op::Get(k));
        ops.push(Op::Delete(k));
        ops.push(Op::Get(k));
        ops.push(Op::Put(k, k * 100 + 1));
        ops.push(Op::Get(k));
    }
    // Interleave some cross-key traffic so coalescing windows hold more
    // than one key per shard.
    for k in 500u32..540 {
        ops.push(Op::Put(k, k));
        ops.push(Op::Get(k));
    }
    let expected = reference_replies(&ops);

    let orders = [
        SchedulePolicy::FixedOrder,
        SchedulePolicy::Reversed,
        SchedulePolicy::Rotating { stride: 1 },
        SchedulePolicy::Rotating { stride: 3 },
        SchedulePolicy::Shuffled { seed: 1 },
        SchedulePolicy::Shuffled { seed: 0xDEAD_BEEF },
        SchedulePolicy::ContendedFirst { seed: 7 },
    ];
    let baseline = run_one_window(&ops, orders[0]);
    // The fixed-order run must match the reference map exactly.
    for (i, (got, exp)) in baseline.iter().zip(&expected).enumerate() {
        if let Some(exp) = exp {
            assert_eq!(got.1, Reply::Value(*exp), "op {i} ({:?})", ops[i]);
        }
    }
    // And every other shard-flush order must be indistinguishable.
    for order in &orders[1..] {
        let run = run_one_window(&ops, *order);
        assert_eq!(
            run, baseline,
            "flush order {:?} changed visible replies",
            order
        );
    }
}
