//! Collection strategies: `vec(element, size)`.

use crate::strategy::Strategy;
use crate::TestRng;

/// Something usable as a vector-length specification: a fixed `usize` or a
/// half-open `Range<usize>`.
pub trait IntoSizeRange {
    /// Convert to `(min, max_exclusive)`.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self + 1)
    }
}

impl IntoSizeRange for std::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty vec size range");
        (self.start, self.end)
    }
}

impl IntoSizeRange for std::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end() + 1)
    }
}

/// Strategy producing `Vec`s of values from `element`.
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max_exclusive: usize,
}

/// Build a vector strategy: `vec(1u32..10, 0..40)` or `vec(any::<bool>(), 300)`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min, max_exclusive) = size.bounds();
    VecStrategy {
        element,
        min,
        max_exclusive,
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.max_exclusive - self.min) as u64;
        let len = self.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_vecs_generate() {
        let mut rng = TestRng::for_case("nested", 0);
        let s = vec(vec(0usize..8, 0..12), 1..40);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 40);
            for inner in &v {
                assert!(inner.len() < 12);
                assert!(inner.iter().all(|&x| x < 8));
            }
        }
    }

    #[test]
    fn fixed_size_is_exact() {
        let mut rng = TestRng::for_case("fixed", 0);
        let s = vec(crate::any::<bool>(), 300usize);
        assert_eq!(s.generate(&mut rng).len(), 300);
    }
}
