//! Round-based interleaved execution of in-flight warps.
//!
//! A real GPU keeps thousands of warps in flight; their loop iterations
//! interleave, which is when lock conflicts occur. The simulator reproduces
//! this with **rounds**: each round executes one step (one iteration of the
//! kernel's while-loop) of every still-pending warp, in warp order. Locks
//! acquired during a round stay held until the kernel's end-of-round hook
//! runs, so warps later in the round observe conflicts exactly as truly
//! concurrent warps would.
//!
//! Determinism: warp order is fixed, so a given input always produces the
//! same interleaving, the same conflicts, and the same metrics.

use crate::atomic::RoundCtx;
use crate::metrics::Metrics;

/// What a warp reports after executing one round step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// All of the warp's operations have completed; stop scheduling it.
    Done,
    /// The warp still has active operations; schedule it next round.
    Pending,
}

/// A kernel driven round-by-round over a set of warp states.
///
/// The kernel object owns (usually borrows) the data structures the warps
/// operate on — subtables, lock tables, output buffers — so a single `&mut`
/// borrow covers both the per-warp step and the end-of-round bookkeeping.
pub trait RoundKernel<S> {
    /// Execute one round step of one warp.
    fn step(&mut self, state: &mut S, ctx: &mut RoundCtx) -> StepOutcome;

    /// Called once after every round. Flush deferred lock releases here
    /// (call [`crate::atomic::Locks::end_round`] on every lock table the
    /// kernel touches).
    fn end_round(&mut self) {}
}

/// Drive the warp states to completion under `kernel`.
///
/// Returns the number of rounds executed (also accumulated in
/// `metrics.rounds`).
pub fn run_rounds<S, K: RoundKernel<S>>(
    kernel: &mut K,
    states: &mut [S],
    metrics: &mut Metrics,
) -> u64 {
    let mut pending: Vec<usize> = (0..states.len()).collect();
    let mut rounds = 0u64;
    while !pending.is_empty() {
        rounds += 1;
        metrics.rounds += 1;
        let mut ctx = RoundCtx::new(metrics);
        pending.retain(|&i| kernel.step(&mut states[i], &mut ctx) == StepOutcome::Pending);
        ctx.finish();
        kernel.end_round();
    }
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic::Locks;

    struct Countdown;

    impl RoundKernel<u32> for Countdown {
        fn step(&mut self, s: &mut u32, _ctx: &mut RoundCtx) -> StepOutcome {
            *s -= 1;
            if *s == 0 {
                StepOutcome::Done
            } else {
                StepOutcome::Pending
            }
        }
    }

    #[test]
    fn warps_run_until_done() {
        let mut m = Metrics::default();
        let mut states = vec![3u32, 1, 2];
        let rounds = run_rounds(&mut Countdown, &mut states, &mut m);
        assert_eq!(rounds, 3);
        assert_eq!(m.rounds, 3);
        assert!(states.iter().all(|&s| s == 0));
    }

    #[test]
    fn empty_input_runs_zero_rounds() {
        let mut m = Metrics::default();
        let mut states: Vec<u32> = vec![];
        assert_eq!(run_rounds(&mut Countdown, &mut states, &mut m), 0);
    }

    struct LockOnce {
        locks: Locks,
    }

    impl RoundKernel<bool> for LockOnce {
        fn step(&mut self, acquired: &mut bool, ctx: &mut RoundCtx) -> StepOutcome {
            if !*acquired && ctx.atomic_cas_lock(&mut self.locks, 0, 0) {
                *acquired = true;
                ctx.atomic_exch_unlock(&mut self.locks, 0, 0);
            }
            if *acquired {
                StepOutcome::Done
            } else {
                StepOutcome::Pending
            }
        }

        fn end_round(&mut self) {
            self.locks.end_round();
        }
    }

    #[test]
    fn lock_contention_serializes_across_rounds() {
        // Two warps both need lock 0; only one can hold it per round, so the
        // second succeeds one round later.
        let mut m = Metrics::default();
        let mut kernel = LockOnce {
            locks: Locks::new(1),
        };
        let mut states = vec![false, false];
        let rounds = run_rounds(&mut kernel, &mut states, &mut m);
        assert_eq!(rounds, 2);
        assert_eq!(m.lock_failures, 1);
        assert!(kernel.locks.all_free());
    }

    #[test]
    fn n_contending_warps_take_n_rounds() {
        let mut m = Metrics::default();
        let mut kernel = LockOnce {
            locks: Locks::new(1),
        };
        let mut states = vec![false; 10];
        let rounds = run_rounds(&mut kernel, &mut states, &mut m);
        assert_eq!(rounds, 10);
        assert_eq!(m.lock_failures, 9 + 8 + 7 + 6 + 5 + 4 + 3 + 2 + 1);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut m = Metrics::default();
            let mut kernel = LockOnce {
                locks: Locks::new(1),
            };
            let mut states = vec![false; 5];
            run_rounds(&mut kernel, &mut states, &mut m);
            m
        };
        assert_eq!(run(), run());
    }
}
