//! Experiment drivers: scheme construction, the static protocol, and the
//! dynamic two-phase batch protocol.

use gpu_sim::SimContext;

use baselines::{
    Cudpp, DyCuckooTable, GpuHashTable, LinearProbing, MegaKv, ResizeBounds, SlabHash,
};
use dycuckoo::{Config, DupPolicy};
use workloads::{mix64, Batch, Dataset, DynamicWorkload};

use crate::{measure, Measurement};

/// The schemes compared in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// This paper's contribution.
    DyCuckoo,
    /// Zhang et al. (two-function bucketized cuckoo).
    MegaKv,
    /// Ashkiani et al. (slab-list chaining).
    Slab,
    /// Alcantara et al. / CUDPP (per-slot cuckoo; insert+find only).
    Cudpp,
    /// Linear probing (appendix baseline).
    Linear,
}

impl Scheme {
    /// Display label, matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Scheme::DyCuckoo => "DyCuckoo",
            Scheme::MegaKv => "MegaKV",
            Scheme::Slab => "Slab",
            Scheme::Cudpp => "CUDPP",
            Scheme::Linear => "Linear",
        }
    }

    /// The schemes used in the static comparison (Fig. 8).
    pub fn static_set() -> Vec<Scheme> {
        vec![
            Scheme::Cudpp,
            Scheme::MegaKv,
            Scheme::Slab,
            Scheme::DyCuckoo,
        ]
    }

    /// The schemes used in the dynamic comparison (CUDPP excluded: no
    /// deletes).
    pub fn dynamic_set() -> Vec<Scheme> {
        vec![Scheme::MegaKv, Scheme::Slab, Scheme::DyCuckoo]
    }
}

/// Build a scheme pre-sized for a *static* experiment: `items` keys at
/// `target_fill`.
pub fn build_static(
    scheme: Scheme,
    items: usize,
    target_fill: f64,
    seed: u64,
    sim: &mut SimContext,
) -> Box<dyn GpuHashTable> {
    match scheme {
        Scheme::DyCuckoo => {
            let cfg = Config {
                // Static runs fix the memory budget: disable resizing by
                // setting the bounds wide open, as the paper does when it
                // fixes θ.
                alpha: 0.0,
                beta: 1.0,
                seed,
                dup_policy: DupPolicy::PaperInsert,
                ..Config::default()
            };
            Box::new(
                DyCuckooTable::with_capacity(cfg, items, target_fill, sim)
                    .expect("DyCuckoo construction"),
            )
        }
        Scheme::MegaKv => {
            Box::new(MegaKv::with_capacity(items, target_fill, None, seed, sim).expect("MegaKV"))
        }
        Scheme::Slab => {
            Box::new(SlabHash::with_capacity(items, target_fill, seed, sim).expect("SlabHash"))
        }
        Scheme::Cudpp => {
            Box::new(Cudpp::with_capacity(items, target_fill, seed, sim).expect("CUDPP"))
        }
        Scheme::Linear => {
            Box::new(LinearProbing::with_capacity(items, target_fill, seed, sim).expect("Linear"))
        }
    }
}

/// Build a scheme for a *dynamic* experiment with filled-factor bounds
/// `[alpha, beta]`.
///
/// The adaptive schemes (DyCuckoo, MegaKV) start small and must grow.
/// SlabHash cannot grow its bucket array, only its chains: following its
/// published usage, its base array is provisioned for the near-term load
/// (`slab_capacity_hint` keys — the harness passes one batch's worth),
/// after which a sustained insert stream lengthens the chains, exactly the
/// degradation the paper describes.
pub fn build_dynamic(
    scheme: Scheme,
    alpha: f64,
    beta: f64,
    slab_capacity_hint: usize,
    seed: u64,
    sim: &mut SimContext,
) -> Box<dyn GpuHashTable> {
    const INITIAL_BUCKETS: usize = 64;
    match scheme {
        Scheme::DyCuckoo => {
            let cfg = Config {
                alpha,
                beta,
                seed,
                initial_buckets: INITIAL_BUCKETS,
                // Algorithm-1 semantics, matching what the paper measured
                // (no cross-bucket duplicate pre-pass).
                dup_policy: DupPolicy::PaperInsert,
                ..Config::default()
            };
            Box::new(DyCuckooTable::new(cfg, sim).expect("DyCuckoo construction"))
        }
        Scheme::MegaKv => Box::new(
            MegaKv::new(
                INITIAL_BUCKETS,
                Some(ResizeBounds { alpha, beta }),
                seed,
                sim,
            )
            .expect("MegaKV"),
        ),
        Scheme::Slab => Box::new(
            SlabHash::with_capacity(slab_capacity_hint.max(1), 0.6, seed, sim).expect("SlabHash"),
        ),
        Scheme::Cudpp | Scheme::Linear => {
            panic!("{} does not support the dynamic protocol", scheme.label())
        }
    }
}

/// Result of the static protocol: bulk insert, then random finds.
#[derive(Debug, Clone)]
pub struct StaticResult {
    /// Insert-phase measurement.
    pub insert: Measurement,
    /// Find-phase measurement.
    pub find: Measurement,
    /// Filled factor reached after the load.
    pub fill: f64,
    /// Device bytes held after the load.
    pub device_bytes: u64,
}

/// Run the paper's static protocol: insert the whole dataset, then issue
/// `n_queries` random finds over the inserted keys.
pub fn run_static(
    table: &mut dyn GpuHashTable,
    sim: &mut SimContext,
    dataset: &Dataset,
    n_queries: usize,
    seed: u64,
) -> StaticResult {
    let (_, insert) = measure(sim, |sim| {
        table
            .insert_batch(sim, &dataset.pairs)
            .unwrap_or_else(|e| panic!("{} insert failed: {e}", table.name()));
    });
    let keys = dataset.distinct_keys();
    let queries: Vec<u32> = (0..n_queries)
        .map(|i| keys[(mix64(seed ^ i as u64) % keys.len() as u64) as usize])
        .collect();
    let (_, find) = measure(sim, |sim| {
        table.find_batch(sim, &queries);
    });
    StaticResult {
        insert,
        find,
        fill: table.fill_factor(),
        device_bytes: table.device_bytes(),
    }
}

/// Per-batch trace of a dynamic run (drives the filled-factor tracking
/// figure).
#[derive(Debug, Clone)]
pub struct BatchTrace {
    /// Batch index in execution order.
    pub batch: usize,
    /// Throughput of this batch (all op types combined).
    pub mops: f64,
    /// Filled factor after the batch.
    pub fill: f64,
    /// Device bytes held after the batch.
    pub device_bytes: u64,
}

/// Aggregate result of a dynamic run.
#[derive(Debug, Clone)]
pub struct DynamicResult {
    /// Per-batch traces.
    pub traces: Vec<BatchTrace>,
    /// Overall throughput across the whole workload.
    pub mops: f64,
    /// Total operations executed.
    pub total_ops: u64,
    /// Total simulated nanoseconds.
    pub total_ns: f64,
    /// Peak steady-state footprint observed after any batch.
    pub peak_bytes: u64,
    /// True device high-water mark, including transient old+new
    /// coexistence during full rehashes (MegaKV's resize spike).
    pub device_peak_bytes: u64,
}

/// Drive a table through a dynamic workload, measuring each batch.
pub fn run_dynamic(
    table: &mut dyn GpuHashTable,
    sim: &mut SimContext,
    workload: &DynamicWorkload,
) -> DynamicResult {
    let mut traces = Vec::with_capacity(workload.batches.len());
    let mut total_ops = 0u64;
    let mut total_ns = 0.0;
    let mut peak = 0u64;
    for (i, batch) in workload.batches.iter().enumerate() {
        let (_, m) = measure(sim, |sim| run_batch(table, sim, batch));
        total_ops += m.ops;
        total_ns += m.ns;
        peak = peak.max(table.device_bytes());
        traces.push(BatchTrace {
            batch: i,
            mops: m.mops,
            fill: table.fill_factor(),
            device_bytes: table.device_bytes(),
        });
    }
    DynamicResult {
        traces,
        mops: if total_ns > 0.0 {
            total_ops as f64 / total_ns * 1e3
        } else {
            0.0
        },
        total_ops,
        total_ns,
        peak_bytes: peak,
        device_peak_bytes: sim.device.peak_bytes(),
    }
}

/// Execute one batch: inserts, then finds, then deletes — each a
/// single-type kernel launch, as the paper prescribes.
pub fn run_batch(table: &mut dyn GpuHashTable, sim: &mut SimContext, batch: &Batch) {
    if !batch.inserts.is_empty() {
        table
            .insert_batch(sim, &batch.inserts)
            .unwrap_or_else(|e| panic!("{} insert failed: {e}", table.name()));
    }
    if !batch.finds.is_empty() {
        table.find_batch(sim, &batch.finds);
    }
    if !batch.deletes.is_empty() {
        table
            .delete_batch(sim, &batch.deletes)
            .unwrap_or_else(|e| panic!("{} delete failed: {e}", table.name()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::DatasetSpec;

    fn tiny_dataset() -> Dataset {
        DatasetSpec {
            name: "T",
            total_pairs: 2000,
            unique_keys: 1800,
            zipf_s: 1.0,
            max_dup: 4,
        }
        .generate(3)
    }

    #[test]
    fn static_protocol_runs_all_schemes() {
        let ds = tiny_dataset();
        for scheme in Scheme::static_set() {
            let mut sim = SimContext::new();
            let mut table = build_static(scheme, ds.unique_keys, 0.7, 1, &mut sim);
            let r = run_static(table.as_mut(), &mut sim, &ds, 500, 7);
            assert!(r.insert.mops > 0.0, "{}", scheme.label());
            assert!(r.find.mops > 0.0, "{}", scheme.label());
            // Paper-faithful insert paths (CUDPP, and DyCuckoo's
            // PaperInsert policy) may store a duplicate occurrence twice,
            // so assert bounds and findability rather than an exact count.
            assert!(table.len() >= ds.unique_keys as u64, "{}", scheme.label());
            assert!(table.len() <= ds.len() as u64, "{}", scheme.label());
            let keys = ds.distinct_keys();
            let found = table.find_batch(&mut sim, &keys);
            assert!(
                found.iter().all(|f| f.is_some()),
                "{}: not all keys findable",
                scheme.label()
            );
        }
    }

    #[test]
    fn dynamic_protocol_runs_all_schemes() {
        let ds = tiny_dataset();
        let w = DynamicWorkload::build(&ds, 200, 0.2, 5);
        for scheme in Scheme::dynamic_set() {
            let mut sim = SimContext::new();
            let mut table = build_dynamic(scheme, 0.3, 0.85, 800, 1, &mut sim);
            let r = run_dynamic(table.as_mut(), &mut sim, &w);
            assert_eq!(r.traces.len(), w.batches.len(), "{}", scheme.label());
            assert!(r.mops > 0.0, "{}", scheme.label());
            assert!(r.total_ops as usize >= w.total_ops(), "{}", scheme.label());
        }
    }

    #[test]
    fn dynamic_final_population_matches_reference() {
        // Replay the workload against a host-side reference set; DyCuckoo
        // (whose Upsert policy is duplicate-exact) must match it exactly,
        // and MegaKV (bucket-local dedup only) must be within a whisker.
        let ds = tiny_dataset();
        let w = DynamicWorkload::build(&ds, 200, 0.3, 9);
        let mut reference = std::collections::HashSet::new();
        for b in &w.batches {
            for &(k, _) in &b.inserts {
                reference.insert(k);
            }
            for &k in &b.deletes {
                reference.remove(&k);
            }
        }
        let expect = reference.len() as u64;

        let mut sim = SimContext::new();
        let mut dy = build_dynamic(Scheme::DyCuckoo, 0.3, 0.85, 800, 1, &mut sim);
        run_dynamic(dy.as_mut(), &mut sim, &w);
        // PaperInsert semantics may carry a few cross-bucket duplicates.
        let drift = dy.len().abs_diff(expect);
        assert!(drift <= expect / 50, "DyCuckoo drift {drift} vs {expect}");

        let mut sim = SimContext::new();
        let mut mk = build_dynamic(Scheme::MegaKv, 0.3, 0.85, 800, 1, &mut sim);
        run_dynamic(mk.as_mut(), &mut sim, &w);
        let drift = mk.len().abs_diff(expect);
        assert!(drift <= expect / 50, "MegaKV drift {drift} vs {expect}");
    }
}
