//! **Ablation: voter coordination vs. spinning** (Section "Parallel Hash
//! Table Operations").
//!
//! The paper motivates the voter scheme with the Twitter-celebrity
//! scenario: a few keys receive a large share of the updates, so many
//! warps contend for the same buckets. A warp that spins on a failed lock
//! wastes its round; a warp that re-votes completes another lane's
//! operation instead. We sweep the fraction of operations hitting hot keys
//! and report insert throughput for both coordination policies.

use bench::measure;
use bench::report::{fmt_mops, Table};
use bench::seed;
use dycuckoo::{Config, Coordination, DupPolicy, DyCuckoo};
use gpu_sim::SimContext;
use workloads::mix64;

const OPS: usize = 200_000;
const HOT_KEYS: u32 = 16;

fn run(coordination: Coordination, hot_pct: u32, seed: u64) -> f64 {
    let mut sim = SimContext::new();
    let cfg = Config {
        coordination,
        dup_policy: DupPolicy::PaperInsert,
        seed,
        ..Config::default()
    };
    let mut table = DyCuckoo::with_capacity(cfg, OPS, 0.7, &mut sim).unwrap();
    let kvs: Vec<(u32, u32)> = (0..OPS as u32)
        .map(|i| {
            let r = mix64(seed ^ i as u64);
            if (r % 100) < hot_pct as u64 {
                ((r >> 32) as u32 % HOT_KEYS + 1, i)
            } else {
                (i + HOT_KEYS + 1, i)
            }
        })
        .collect();
    let (_, m) = measure(&mut sim, |sim| table.insert_batch(sim, &kvs).unwrap());
    m.mops
}

fn main() {
    let seed = seed();
    println!("Ablation: voter vs spin under contention ({OPS} inserts, {HOT_KEYS} hot keys)");
    let mut t = Table::new(&["hot ops %", "Spin Mops", "Voter Mops", "voter speedup"]);
    for hot_pct in [0u32, 5, 10, 20, 40] {
        let spin = run(Coordination::Spin, hot_pct, seed);
        let voter = run(Coordination::Voter, hot_pct, seed);
        t.row(vec![
            format!("{hot_pct}%"),
            fmt_mops(spin),
            fmt_mops(voter),
            format!("{:.2}x", voter / spin),
        ]);
    }
    t.print("Voter coordination ablation");
}
