//! # engine — the shared probe/storage engine
//!
//! Every bucketized hash table in the workspace is the same machine wearing
//! different policy: bucketed key/value arrays probed warp-cooperatively,
//! guarded by per-bucket locks, charged by the 128-byte line. This module
//! is that machine, factored out once:
//!
//! * [`layout`] — pluggable bucket layouts ([`LayoutConfig`]): interleaved
//!   AoS vs split-array SoA, bucket widths of 8/16/32 slots, and the
//!   transaction-accounting rules each combination implies.
//! * [`store`] — typed device buffers: the bucketized [`BucketStore`] and
//!   the flat [`SlotStore`] used by per-slot baselines.
//! * [`probe`] — warp packing, voter rotation after failed lock
//!   acquisitions, and the randomized index selection behind
//!   eviction-destination steering.
//! * [`sizing`] — capacity sizing (buckets for a target filled factor)
//!   shared by all schemes and bucket widths.
//! * [`striped`] — the lock-striped, thread-safe access mode of the
//!   bucketized store that the `host-par` backend runs real OS threads
//!   against (the sim path keeps the round scheduler's atomic locks).
//!
//! The default layout reproduces the pre-engine accounting exactly, so the
//! schedule-fuzz digests and telemetry snapshots pin the refactor as
//! behaviour-preserving; non-default layouts turn memory layout into a
//! benchmarkable axis (`bench --bin layout_sweep`).

pub mod layout;
pub mod probe;
pub mod sizing;
pub mod store;
pub mod striped;

pub use layout::{Aos, BucketLayout, LayoutConfig, LayoutScheme, Soa, LINE_BYTES, LOCK_BYTES};
pub use probe::{nth_active_lane, pack_warps, rotated_index, weighted_index};
pub use sizing::{buckets_for_load, mixed_bucket_sizes};
pub use store::{BucketStore, SlotStore, SlotWord};
pub use striped::{StripeGuard, StripedStore};
